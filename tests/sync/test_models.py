"""Tests for the synchronization latency models."""

import pytest

from repro.errors import ConfigError
from repro.sync.model import CentralSyncModel, RingSyncModel, TreeSyncModel
from repro import units

M = 100 * units.MB


def test_single_accelerator_costs_nothing():
    for model in (RingSyncModel(), TreeSyncModel(), CentralSyncModel()):
        assert model.time(1, M) == 0.0
        assert model.time(8, 0.0) == 0.0


def test_ring_normalized_latency_saturates_at_two():
    """Figure 2b: latency normalized to n=2 approaches (and stays near) 2."""
    model = RingSyncModel()
    norms = [model.normalized_latency(n, M) for n in (2, 4, 16, 64, 256)]
    assert norms[0] == pytest.approx(1.0)
    assert all(a <= b + 1e-12 for a, b in zip(norms, norms[1:]))  # monotone
    assert norms[-1] < 2.5
    assert norms[-1] > 1.8


def test_ring_bandwidth_term_formula():
    model = RingSyncModel(step_latency=0.0)
    for n in (2, 4, 8, 64):
        expected = 2 * (n - 1) / n * M / model.bandwidth
        assert model.time(n, M) == pytest.approx(expected)


def test_central_is_linear_in_n():
    model = CentralSyncModel(step_latency=0.0)
    assert model.time(64, M) == pytest.approx(63 / 1 * model.time(2, M))


def test_tree_is_logarithmic():
    model = TreeSyncModel(step_latency=0.0)
    assert model.time(256, M) == pytest.approx(8 * model.time(2, M))
    assert model.time(250, M) == model.time(256, M)  # same ceil(log2)


def test_ordering_at_scale():
    """ring < tree < central for large n — why NCCL uses rings."""
    n = 256
    ring = RingSyncModel().time(n, M)
    tree = TreeSyncModel().time(n, M)
    central = CentralSyncModel().time(n, M)
    assert ring < tree < central


def test_ring_time_monotone_in_model_size():
    model = RingSyncModel()
    assert model.time(8, 2 * M) > model.time(8, M)


def test_validation():
    model = RingSyncModel()
    with pytest.raises(ConfigError):
        model.time(0, M)
    with pytest.raises(ConfigError):
        model.time(4, -1.0)


def test_normalize_requires_nonzero_base():
    model = RingSyncModel()
    with pytest.raises(ConfigError):
        model.normalized_latency(4, 0.0)
