"""Tests for the functional tree all-reduce."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sync.ring import ring_allreduce
from repro.sync.tree import tree_allreduce


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 13])
def test_tree_equals_sum(n, rng):
    bufs = [rng.normal(size=41) for _ in range(n)]
    expected = np.sum(bufs, axis=0)
    tree_allreduce(bufs)
    for buf in bufs:
        assert np.allclose(buf, expected)


def test_single_rank_noop(rng):
    buf = rng.normal(size=5)
    original = buf.copy()
    stats = tree_allreduce([buf])
    assert stats.total_bytes == 0
    assert np.array_equal(buf, original)


def test_root_sends_most():
    """The broadcast fans out from the root: rank 0 sends to both
    children, leaves send once (reduce) and never broadcast."""
    bufs = [np.ones(16) for _ in range(7)]
    stats = tree_allreduce(bufs)
    # Rank 0 only broadcasts (2 children), leaves only reduce (1 send).
    assert stats.bytes_sent_per_rank[0] == 2 * 16 * 8
    assert stats.bytes_sent_per_rank[6] == 16 * 8


def test_tree_moves_more_bytes_than_ring_at_scale(rng):
    """Why rings win for large gradients: total volume is ~2·n·M for the
    tree vs 2·M·(n-1) spread as (n-1)/n per rank for the ring — but the
    ring's *per-rank critical path* is constant while the tree's root
    serializes log n full-gradient hops (latency models pin the time
    side; here we pin volume shape)."""
    n, length = 8, 64
    tree_bufs = [rng.normal(size=length) for _ in range(n)]
    ring_bufs = [b.copy() for b in tree_bufs]
    tree_stats = tree_allreduce(tree_bufs)
    ring_stats = ring_allreduce(ring_bufs)
    for a, b in zip(tree_bufs, ring_bufs):
        assert np.allclose(a, b)
    # Max per-rank volume: tree's internal nodes send whole gradients.
    assert max(tree_stats.bytes_sent_per_rank) >= max(
        ring_stats.bytes_sent_per_rank
    )


def test_shape_mismatch(rng):
    with pytest.raises(ConfigError):
        tree_allreduce([rng.normal(size=3), rng.normal(size=4)])


def test_requires_list(rng):
    with pytest.raises(ConfigError):
        tree_allreduce(tuple([rng.normal(size=3)]))


def test_empty_rejected():
    with pytest.raises(ConfigError):
        tree_allreduce([])


def test_depth_is_logarithmic():
    for n, expected in ((2, 1), (4, 2), (8, 3), (15, 3)):
        bufs = [np.zeros(4) for _ in range(n)]
        stats = tree_allreduce(bufs)
        assert stats.depth == expected, n
