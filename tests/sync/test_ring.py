"""Tests for the functional ring all-reduce."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sync.ring import RingAllReduce, ring_allreduce


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_allreduce_equals_sum(n, rng):
    bufs = [rng.normal(size=53) for _ in range(n)]
    expected = np.sum(bufs, axis=0)
    ring_allreduce(bufs)
    for buf in bufs:
        assert np.allclose(buf, expected)


def test_multidimensional_buffers(rng):
    bufs = [rng.normal(size=(4, 5, 2)) for _ in range(3)]
    expected = np.sum(bufs, axis=0)
    ring_allreduce(bufs)
    for buf in bufs:
        assert np.allclose(buf, expected)


def test_step_count_is_2n_minus_2(rng):
    for n in (2, 3, 5):
        bufs = [rng.normal(size=10) for _ in range(n)]
        stats = ring_allreduce(bufs)
        assert stats.steps == 2 * (n - 1)


def test_communication_volume_identity(rng):
    """Each rank moves 2·M·(n-1)/n bytes — the Figure 2b scaling law."""
    n, length = 5, 100
    bufs = [rng.normal(size=length) for _ in range(n)]
    nbytes = length * 8
    stats = ring_allreduce(bufs)
    for sent in stats.bytes_sent_per_rank:
        # Within segment-rounding of the ideal volume.
        assert abs(sent - 2 * nbytes * (n - 1) / n) <= 2 * (n - 1) * 8


def test_single_rank_no_communication(rng):
    buf = rng.normal(size=10)
    original = buf.copy()
    stats = ring_allreduce([buf])
    assert stats.total_bytes == 0
    assert np.array_equal(buf, original)


def test_buffer_count_mismatch(rng):
    with pytest.raises(ConfigError):
        RingAllReduce(3)([rng.normal(size=4)] * 2)


def test_shape_mismatch(rng):
    with pytest.raises(ConfigError):
        ring_allreduce([rng.normal(size=4), rng.normal(size=5)])


def test_invalid_rank_count():
    with pytest.raises(ConfigError):
        RingAllReduce(0)


def test_small_payload_fewer_elements_than_ranks(rng):
    """Segments may be empty when the buffer is tiny; still correct."""
    bufs = [rng.normal(size=2) for _ in range(5)]
    expected = np.sum(bufs, axis=0)
    ring_allreduce(bufs)
    for buf in bufs:
        assert np.allclose(buf, expected)


def test_integer_buffers(rng):
    bufs = [rng.integers(-5, 6, size=16) for _ in range(4)]
    expected = np.sum(bufs, axis=0)
    ring_allreduce(bufs)
    for buf in bufs:
        assert np.array_equal(buf, expected)
