"""Tests for the Table I workload registry."""

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    TABLE_I,
    InputType,
    NNType,
    audio_workloads,
    estimated_flops_per_sample,
    get_workload,
    image_workloads,
    implied_utilization,
    workload_names,
)
from repro import units


def test_seven_workloads():
    assert len(TABLE_I) == 7
    assert set(workload_names()) == {
        "VGG-19",
        "Resnet-50",
        "Inception-v4",
        "RNN-S",
        "RNN-L",
        "Transformer-SR",
        "Transformer-AA",
    }


def test_table1_rows_verbatim():
    resnet = get_workload("Resnet-50")
    assert resnet.batch_size == 8192
    assert resnet.model_bytes == pytest.approx(97.5 * units.MB)
    assert resnet.sample_rate == 7431
    assert resnet.nn_type is NNType.CNN

    tf_sr = get_workload("Transformer-SR")
    assert tf_sr.batch_size == 512
    assert tf_sr.model_bytes == pytest.approx(268.3 * units.MB)
    assert tf_sr.sample_rate == 2001
    assert tf_sr.task == "Speech recognition"


def test_input_type_partition():
    images = image_workloads()
    audio = audio_workloads()
    assert len(images) == 5
    assert len(audio) == 2
    assert all(w.input_type is InputType.IMAGE for w in images)
    assert {w.name for w in audio} == {"Transformer-SR", "Transformer-AA"}


def test_aliases_and_case_insensitive_lookup():
    assert get_workload("tf-sr").name == "Transformer-SR"
    assert get_workload("TF-AA").name == "Transformer-AA"
    assert get_workload("resnet-50").name == "Resnet-50"
    assert get_workload("vgg19").name == "VGG-19"


def test_unknown_workload():
    with pytest.raises(ConfigError):
        get_workload("GPT-7")


def test_accelerator_spec_matches_table():
    for workload in TABLE_I.values():
        spec = workload.accelerator_spec()
        assert spec.throughput(workload.batch_size) == pytest.approx(
            workload.sample_rate
        )


def test_legacy_gpu_much_slower():
    for workload in TABLE_I.values():
        assert workload.legacy_gpu_rate < workload.sample_rate / 20


def test_pipeline_binding():
    assert get_workload("Resnet-50").prep_pipeline().name == "image-prep"
    assert get_workload("TF-SR").prep_pipeline().name == "audio-prep"


def test_dataset_spec_binding():
    assert get_workload("VGG-19").dataset_sample_spec().kind == "jpeg"
    assert get_workload("TF-AA").dataset_sample_spec().kind == "audio_pcm"


def test_implied_utilization_plausible():
    """Table I rates must imply TPU utilization in a sane band (guards
    against registry typos)."""
    for workload in TABLE_I.values():
        util = implied_utilization(workload.name, workload.sample_rate)
        assert 0.001 < util < 1.0, workload.name


def test_flops_estimates_exist_for_all():
    for name in TABLE_I:
        assert estimated_flops_per_sample(name) > 0
    with pytest.raises(ConfigError):
        estimated_flops_per_sample("nope")
