"""Tests for the PCIe tree structure and its invariants."""

import pytest

from repro.errors import TopologyError
from repro.pcie.link import PcieGen
from repro.pcie.topology import (
    Endpoint,
    NodeKind,
    PcieTopology,
    RootComplex,
    Switch,
    chain_boxes,
)


def test_root_must_be_root_complex():
    topo = PcieTopology()
    with pytest.raises(TopologyError):
        topo.add_root(Switch("s"))


def test_single_root_enforced():
    topo = PcieTopology(RootComplex())
    with pytest.raises(TopologyError):
        topo.add_root(RootComplex("rc2"))


def test_attach_before_root_fails():
    topo = PcieTopology()
    with pytest.raises(TopologyError):
        topo.attach(Switch("s"), "rc")


def test_duplicate_node_id_rejected():
    topo = PcieTopology(RootComplex())
    topo.attach(Switch("s"), "rc")
    with pytest.raises(TopologyError):
        topo.attach(Switch("s"), "rc")


def test_endpoints_are_leaves():
    topo = PcieTopology(RootComplex())
    topo.attach(Endpoint("e"), "rc")
    with pytest.raises(TopologyError):
        topo.attach(Endpoint("e2"), "e")


def test_switch_link_budget_enforced():
    topo = PcieTopology(RootComplex())
    sw = topo.attach(Switch("s", max_links=3), "rc")  # uplink + 2 down
    topo.attach(Endpoint("e0"), "s")
    topo.attach(Endpoint("e1"), "s")
    with pytest.raises(TopologyError):
        topo.attach(Endpoint("e2"), "s")


def test_root_link_budget_counts_no_uplink():
    topo = PcieTopology(RootComplex(max_links=2))
    topo.attach(Endpoint("e0"), "rc")
    topo.attach(Endpoint("e1"), "rc")
    with pytest.raises(TopologyError):
        topo.attach(Endpoint("e2"), "rc")


def test_parent_child_links(small_topology):
    topo = small_topology
    assert topo.parent_of("a") == "s1"
    assert topo.parent_of("s1") == "rc"
    assert topo.parent_of("rc") is None
    assert sorted(topo.children_of("s1")) == ["a", "b"]
    assert topo.uplink_of("a").parent_id == "s1"


def test_uplink_of_root_fails(small_topology):
    with pytest.raises(TopologyError):
        small_topology.uplink_of("rc")


def test_unknown_node_lookup(small_topology):
    with pytest.raises(TopologyError):
        small_topology.node("nope")


def test_ancestors_and_depth(small_topology):
    topo = small_topology
    assert topo.ancestors("a") == ["s1", "rc"]
    assert topo.depth("a") == 2
    assert topo.depth("rc") == 0


def test_lowest_common_ancestor(small_topology):
    topo = small_topology
    assert topo.lowest_common_ancestor("a", "b") == "s1"
    assert topo.lowest_common_ancestor("a", "c") == "rc"
    assert topo.lowest_common_ancestor("a", "a") == "a"
    assert topo.lowest_common_ancestor("a", "s1") == "s1"


def test_subtree_preorder(small_topology):
    ids = [n.node_id for n in small_topology.subtree("s1")]
    assert ids[0] == "s1"
    assert set(ids) == {"s1", "a", "b"}


def test_endpoints_listing(small_topology):
    ids = {n.node_id for n in small_topology.endpoints()}
    assert ids == {"a", "b", "c"}


def test_validate_passes_on_good_tree(small_topology):
    small_topology.validate()


def test_len_and_contains(small_topology):
    assert len(small_topology) == 6
    assert "a" in small_topology
    assert "zz" not in small_topology


def test_upgrade_links_changes_generation(small_topology):
    small_topology.upgrade_links(PcieGen.GEN4)
    for link in small_topology.links():
        assert link.gen is PcieGen.GEN4


def test_chain_boxes_daisy_chains():
    topo = PcieTopology(RootComplex())
    boxes = [Switch(f"b{i}") for i in range(3)]
    chain_boxes(topo, boxes)
    assert topo.parent_of("b0") == "rc"
    assert topo.parent_of("b1") == "b0"
    assert topo.parent_of("b2") == "b1"


def test_node_kinds():
    assert RootComplex().kind is NodeKind.ROOT_COMPLEX
    assert Switch("s").kind is NodeKind.SWITCH
    assert Endpoint("e").kind is NodeKind.ENDPOINT
