"""Tests for PCIe link generations and bandwidth math."""

import pytest

from repro.pcie.link import Link, LinkDirection, PcieGen, link_bandwidth
from repro import units


def test_gen3_x16_is_16_gb_s():
    assert link_bandwidth(PcieGen.GEN3, 16) == pytest.approx(16 * units.GB)


def test_gen4_doubles_gen3():
    assert link_bandwidth(PcieGen.GEN4, 16) == pytest.approx(
        2 * link_bandwidth(PcieGen.GEN3, 16)
    )


def test_every_generation_doubles():
    gens = list(PcieGen)
    for prev, cur in zip(gens, gens[1:]):
        assert cur.per_lane_bandwidth == pytest.approx(2 * prev.per_lane_bandwidth)


def test_next_gen():
    assert PcieGen.GEN3.next_gen() is PcieGen.GEN4
    with pytest.raises(ValueError):
        PcieGen.GEN5.next_gen()


def test_invalid_lane_count_rejected():
    with pytest.raises(ValueError):
        link_bandwidth(PcieGen.GEN3, 3)


def test_link_directions_independent():
    link = Link("child", "parent")
    up = link.directed(LinkDirection.UP)
    down = link.directed(LinkDirection.DOWN)
    assert up != down
    assert up.bandwidth == down.bandwidth == link.bandwidth


def test_directed_links_hashable_and_equal():
    link = Link("child", "parent")
    a = link.directed(LinkDirection.UP)
    b = Link("child", "parent").directed(LinkDirection.UP)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1
