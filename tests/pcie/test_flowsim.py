"""Tests for the fluid flow-level simulator."""

import pytest

from repro.errors import ConfigError
from repro.pcie.flowsim import FlowSimulator, Transfer
from repro.pcie.traffic import Flow, completion_time
from repro import units

GB = units.GB


def test_single_transfer_exact(small_topology):
    sim = FlowSimulator(small_topology)
    records = sim.run([Transfer("a", "c", 16 * GB)])
    assert records[0].finish_time == pytest.approx(1.0)
    assert records[0].mean_rate == pytest.approx(16 * GB)


def test_two_sharing_flows(small_topology):
    sim = FlowSimulator(small_topology)
    records = sim.run(
        [Transfer("a", "c", 16 * GB), Transfer("b", "c", 16 * GB)]
    )
    # Equal shares of the 16 GB/s downlink: both finish at 2 s.
    for record in records:
        assert record.finish_time == pytest.approx(2.0)


def test_unequal_volumes_release_bandwidth(small_topology):
    """When the small flow drains, the big one speeds up: classic fluid
    behaviour the steady-state law cannot capture."""
    sim = FlowSimulator(small_topology)
    records = sim.run(
        [Transfer("a", "c", 8 * GB), Transfer("b", "c", 24 * GB)]
    )
    small, big = records
    assert small.finish_time == pytest.approx(1.0)   # 8 GB at 8 GB/s
    # Big: 8 GB at 8 GB/s (1 s), then 16 GB at full 16 GB/s (1 s).
    assert big.finish_time == pytest.approx(2.0)


def test_matches_steady_state_for_symmetric_volumes(small_topology):
    """With equal volumes started together the fluid makespan equals the
    analytical pipelined completion time."""
    flows = [Flow("a", "c", volume=10 * GB), Flow("b", "c", volume=10 * GB)]
    analytic = completion_time(small_topology, flows)
    sim = FlowSimulator(small_topology)
    fluid = sim.makespan(
        [Transfer("a", "c", 10 * GB), Transfer("b", "c", 10 * GB)]
    )
    assert fluid == pytest.approx(analytic)


def test_staggered_start(small_topology):
    sim = FlowSimulator(small_topology)
    records = sim.run(
        [
            Transfer("a", "c", 16 * GB, start_time=0.0),
            Transfer("b", "c", 16 * GB, start_time=1.0),
        ]
    )
    first, second = records
    # First runs alone for 1 s (16 GB done) — finishes exactly then.
    assert first.finish_time == pytest.approx(1.0)
    assert second.finish_time == pytest.approx(2.0)


def test_demand_capped_transfer(small_topology):
    sim = FlowSimulator(small_topology)
    records = sim.run([Transfer("a", "c", 4 * GB, demand=2 * GB)])
    assert records[0].finish_time == pytest.approx(2.0)


def test_disjoint_paths_parallel(small_topology):
    sim = FlowSimulator(small_topology)
    makespan = sim.makespan(
        [Transfer("a", "b", 16 * GB), Transfer("rc", "c", 16 * GB)]
    )
    assert makespan == pytest.approx(1.0)


def test_self_transfer_instant(small_topology):
    sim = FlowSimulator(small_topology)
    records = sim.run([Transfer("a", "a", 1e12)])
    assert records[0].finish_time == pytest.approx(0.0)


def test_empty_input(small_topology):
    sim = FlowSimulator(small_topology)
    assert sim.run([]) == []
    assert sim.makespan([]) == 0.0


def test_validation(small_topology):
    with pytest.raises(ConfigError):
        Transfer("a", "b", 0)
    with pytest.raises(ConfigError):
        Transfer("a", "b", 1.0, start_time=-1)


def test_many_staggered_transfers_compact_admission_queue(small_topology):
    """A long staggered sequence exercises the admission-queue
    compaction; results must match the obvious per-transfer timing."""
    sim = FlowSimulator(small_topology)
    n = 64
    transfers = [
        Transfer("a", "c", 16 * GB, start_time=float(i)) for i in range(n)
    ]
    records = sim.run(transfers)
    # Each 16 GB transfer has the 16 GB/s path to itself for its second.
    for i, record in enumerate(records):
        assert record.finish_time == pytest.approx(i + 1.0)


def test_conservation_of_work(small_topology):
    """Total bytes moved per unit time never exceed the cut capacity
    into the destination."""
    sim = FlowSimulator(small_topology)
    volumes = [5 * GB, 9 * GB, 13 * GB]
    records = sim.run(
        [Transfer(src, "c", v) for src, v in zip(("a", "b", "rc"), volumes)]
    )
    makespan = max(r.finish_time for r in records)
    # The c downlink is 16 GB/s; all 27 GB must take >= 27/16 s.
    assert makespan >= sum(volumes) / (16 * GB) - 1e-9
