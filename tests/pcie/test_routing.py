"""Tests for tree routing and address-based forwarding."""

import pytest

from repro.errors import RoutingError
from repro.pcie.link import LinkDirection
from repro.pcie.routing import (
    crosses_root_complex,
    forward_path,
    route,
    route_nodes,
)

from tests.conftest import build_deep_topology


def test_same_node_route_is_empty(small_topology):
    assert route(small_topology, "a", "a") == []


def test_route_within_switch_has_two_hops(small_topology):
    hops = route(small_topology, "a", "b")
    assert len(hops) == 2
    assert hops[0].direction is LinkDirection.UP
    assert hops[1].direction is LinkDirection.DOWN
    assert hops[0].link.child_id == "a"
    assert hops[1].link.child_id == "b"


def test_route_across_root(small_topology):
    hops = route(small_topology, "a", "c")
    assert len(hops) == 4
    directions = [h.direction for h in hops]
    assert directions == [
        LinkDirection.UP,
        LinkDirection.UP,
        LinkDirection.DOWN,
        LinkDirection.DOWN,
    ]


def test_route_nodes_lists_path(small_topology):
    assert route_nodes(small_topology, "a", "c") == ["a", "s1", "rc", "s2", "c"]
    assert route_nodes(small_topology, "a", "b") == ["a", "s1", "b"]
    assert route_nodes(small_topology, "a", "a") == ["a"]


def test_forward_matches_route_nodes(small_topology):
    topo = small_topology
    endpoints = [n.node_id for n in topo.endpoints()]
    for src in endpoints:
        for dst in endpoints:
            if src == dst:
                continue
            assert forward_path(topo, src, dst) == route_nodes(topo, src, dst)


def test_forward_matches_route_nodes_deep_tree():
    topo = build_deep_topology(depth=3, fanout=2)
    endpoints = [n.node_id for n in topo.endpoints()]
    for src in endpoints[:4]:
        for dst in endpoints:
            if src != dst:
                assert forward_path(topo, src, dst) == route_nodes(topo, src, dst)


def test_crosses_root_complex(small_topology):
    assert not crosses_root_complex(small_topology, "a", "b")
    assert crosses_root_complex(small_topology, "a", "c")
    assert not crosses_root_complex(small_topology, "a", "a")


def test_forward_requires_enumeration():
    from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch

    topo = PcieTopology(RootComplex())
    topo.attach(Switch("s"), "rc")
    topo.attach(Endpoint("e0"), "s")
    topo.attach(Endpoint("e1"), "s")
    with pytest.raises(RoutingError):
        forward_path(topo, "e0", "e1")


def test_p2p_under_shared_switch_stays_local(small_topology):
    """The clustering property: sibling endpoints never touch the RC."""
    hops = route(small_topology, "a", "b")
    for hop in hops:
        assert hop.link.parent_id != "rc" or hop.link.child_id != "rc"
    assert "rc" not in route_nodes(small_topology, "a", "b")
