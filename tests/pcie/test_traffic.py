"""Tests for flow accounting and max-min fair allocation."""

import math

import pytest

from repro.pcie.link import LinkDirection
from repro.pcie.traffic import (
    Flow,
    TrafficSolver,
    bottleneck_link,
    completion_time,
    link_loads,
)
from repro import units


GB = units.GB


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow("a", "b", volume=-1)
    with pytest.raises(ValueError):
        Flow("a", "b", demand=0)


def test_link_loads_accumulate(small_topology):
    flows = [Flow("a", "c", volume=10.0), Flow("b", "c", volume=5.0)]
    loads = link_loads(small_topology, flows)
    # The rc->s2 downlink carries both flows.
    down = [
        (hop, load)
        for hop, load in loads.items()
        if hop.link.child_id == "s2" and hop.direction is LinkDirection.DOWN
    ]
    assert len(down) == 1
    assert down[0][1] == pytest.approx(15.0)


def test_zero_volume_flows_ignored(small_topology):
    assert link_loads(small_topology, [Flow("a", "c", volume=0.0)]) == {}
    assert completion_time(small_topology, []) == 0.0


def test_completion_time_single_flow(small_topology):
    # 16 GB over a 16 GB/s Gen3 x16 path = 1 second.
    t = completion_time(small_topology, [Flow("a", "c", volume=16 * GB)])
    assert t == pytest.approx(1.0)


def test_completion_time_sharing(small_topology):
    # Two 16 GB flows into c share its downlink: 2 seconds.
    flows = [Flow("a", "c", volume=16 * GB), Flow("b", "c", volume=16 * GB)]
    assert completion_time(small_topology, flows) == pytest.approx(2.0)


def test_completion_time_disjoint_paths(small_topology):
    # a->b stays under s1; independent of a parallel c download.
    flows = [Flow("a", "b", volume=16 * GB), Flow("rc", "c", volume=16 * GB)]
    assert completion_time(small_topology, flows) == pytest.approx(1.0)


def test_bottleneck_link_identity(small_topology):
    flows = [Flow("a", "c", volume=16 * GB), Flow("b", "c", volume=16 * GB)]
    hop, t = bottleneck_link(small_topology, flows)
    assert t == pytest.approx(2.0)
    # Both s1's uplink and s2's downlink carry 32 GB; either is a valid
    # argmax.
    assert hop.link.child_id in ("s1", "s2", "c")
    assert bottleneck_link(small_topology, []) is None


def test_maxmin_equal_split(small_topology):
    solver = TrafficSolver(small_topology)
    rates = solver.allocate([Flow("a", "c"), Flow("b", "c")])
    assert rates[0] == pytest.approx(8 * GB, rel=1e-6)
    assert rates[1] == pytest.approx(8 * GB, rel=1e-6)


def test_maxmin_demand_cap_redistributes(small_topology):
    solver = TrafficSolver(small_topology)
    rates = solver.allocate([Flow("a", "c", demand=2 * GB), Flow("b", "c")])
    assert rates[0] == pytest.approx(2 * GB, rel=1e-6)
    # The capped flow's leftover goes to the elastic flow.
    assert rates[1] == pytest.approx(14 * GB, rel=1e-6)


def test_maxmin_no_links_unbounded(small_topology):
    solver = TrafficSolver(small_topology)
    rates = solver.allocate([Flow("a", "a")])
    assert math.isinf(rates[0])
    rates = solver.allocate([Flow("a", "a", demand=5.0)])
    assert rates[0] == pytest.approx(5.0)


def test_maxmin_never_exceeds_capacity(small_topology):
    solver = TrafficSolver(small_topology)
    flows = [Flow("a", "c"), Flow("b", "c"), Flow("a", "b"), Flow("rc", "c")]
    rates = solver.allocate(flows)
    loads = {}
    from repro.pcie.routing import route

    for flow, rate in zip(flows, rates):
        for hop in route(small_topology, flow.src, flow.dst):
            loads[hop] = loads.get(hop, 0.0) + rate
    for hop, load in loads.items():
        assert load <= hop.bandwidth * (1 + 1e-6)


def test_maxmin_is_work_conserving(small_topology):
    """No flow can be increased without decreasing a slower one."""
    solver = TrafficSolver(small_topology)
    flows = [Flow("a", "c"), Flow("b", "c")]
    rates = solver.allocate(flows)
    # Both flows bottleneck on the same link; equal split is max-min.
    assert rates[0] == pytest.approx(rates[1])
    assert sum(rates) == pytest.approx(16 * GB, rel=1e-6)
