"""Tests for PCIe enumeration and address windows."""

import pytest

from repro.errors import TopologyError
from repro.pcie.address import enumerate_topology, resolve_address
from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch


def _fresh_tree():
    topo = PcieTopology(RootComplex())
    topo.attach(Switch("s1"), "rc")
    topo.attach(Switch("s2"), "rc")
    topo.attach(Endpoint("a"), "s1")
    topo.attach(Endpoint("b"), "s1")
    topo.attach(Endpoint("c"), "s2")
    return topo


def test_every_node_enumerated():
    topo = _fresh_tree()
    enumerate_topology(topo)
    for node in topo.nodes():
        assert node.enumerated, node.node_id


def test_parent_window_contains_children():
    topo = _fresh_tree()
    enumerate_topology(topo)
    for node in topo.nodes():
        parent_id = topo.parent_of(node.node_id)
        if parent_id is None:
            continue
        parent = topo.node(parent_id)
        assert parent.addr_base <= node.addr_base
        assert node.addr_limit <= parent.addr_limit


def test_sibling_windows_disjoint():
    topo = _fresh_tree()
    enumerate_topology(topo)
    for node in topo.nodes():
        kids = [topo.node(c) for c in topo.children_of(node.node_id)]
        kids.sort(key=lambda k: k.addr_base)
        for first, second in zip(kids, kids[1:]):
            assert first.addr_limit <= second.addr_base


def test_endpoint_windows_have_requested_size():
    topo = _fresh_tree()
    enumerate_topology(topo, window=4096)
    for endpoint in topo.endpoints():
        assert endpoint.addr_limit - endpoint.addr_base == 4096


def test_resolve_address_finds_owner():
    topo = _fresh_tree()
    enumerate_topology(topo)
    for endpoint in topo.endpoints():
        mid = (endpoint.addr_base + endpoint.addr_limit) // 2
        assert resolve_address(topo, mid) == endpoint.node_id


def test_resolve_address_outside_tree_fails():
    topo = _fresh_tree()
    assignments = enumerate_topology(topo)
    top = max(r.stop for r in assignments.values())
    with pytest.raises(TopologyError):
        resolve_address(topo, top + 1)


def test_contains_address_before_enumeration_fails():
    topo = _fresh_tree()
    with pytest.raises(TopologyError):
        topo.node("a").contains_address(123)


def test_invalid_window_rejected():
    topo = _fresh_tree()
    with pytest.raises(TopologyError):
        enumerate_topology(topo, window=0)


def test_enumeration_returns_assignments():
    topo = _fresh_tree()
    assignments = enumerate_topology(topo)
    assert set(assignments) == {n.node_id for n in topo.nodes()}
    root_range = assignments["rc"]
    for r in assignments.values():
        assert root_range.start <= r.start and r.stop <= root_range.stop
