"""Tests for data-parallel training and the augmentation experiment."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.training.nn import MLP
from repro.training.trainer import (
    CenterCrop,
    DataParallelTrainer,
    TrainConfig,
    augmentation_experiment,
    augmentation_pipeline,
)


def _toy_batches(n_ranks, rng, features=6, classes=3, per_rank=8):
    batches = []
    for _ in range(n_ranks):
        x = rng.normal(size=(per_rank, features))
        y = rng.integers(0, classes, per_rank)
        batches.append((x, y))
    return batches


def test_replicas_stay_in_sync(rng):
    model = MLP([6, 8, 3], seed=0)
    trainer = DataParallelTrainer(model, n_ranks=4)
    for _ in range(5):
        trainer.step(_toy_batches(4, rng), lr=0.05)
    assert trainer.replicas_in_sync()


def test_data_parallel_equals_large_batch(rng):
    """n ranks with averaged gradients ≡ single rank on the concatenated
    batch — the correctness property of synchronous data parallelism."""
    seed_model = MLP([6, 8, 3], seed=7)
    batches = _toy_batches(4, rng)

    parallel = DataParallelTrainer(seed_model, n_ranks=4)
    parallel.step(batches, lr=0.1)

    single = MLP([6, 8, 3], seed=0)
    single.set_flat_params(seed_model.flat_params())
    x = np.concatenate([b[0] for b in batches])
    y = np.concatenate([b[1] for b in batches])
    _, grads = single.loss_and_grads(x, y)
    single.apply_grads(grads, lr=0.1)

    assert np.allclose(
        parallel.model.flat_params(), single.flat_params(), atol=1e-9
    )


def test_step_validates_batch_count(rng):
    trainer = DataParallelTrainer(MLP([6, 3]), n_ranks=2)
    with pytest.raises(ConfigError):
        trainer.step(_toy_batches(3, rng), lr=0.1)


def test_trainer_validation():
    with pytest.raises(ConfigError):
        DataParallelTrainer(MLP([4, 2]), n_ranks=0)


def test_config_validation():
    with pytest.raises(ConfigError):
        TrainConfig(epochs=0)
    with pytest.raises(ConfigError):
        TrainConfig(lr=0)


def test_center_crop_is_deterministic_center():
    img = np.arange(6 * 6 * 3, dtype=np.uint8).reshape(6, 6, 3)
    crop = CenterCrop(4, 4)
    rng = np.random.default_rng(0)
    out1 = crop.apply(img, rng)
    out2 = crop.apply(img, np.random.default_rng(99))
    assert np.array_equal(out1, out2)
    assert np.array_equal(out1, img[1:5, 1:5])
    assert crop.name == "center_crop"


def test_augmentation_pipeline_variants():
    aug = augmentation_pipeline(20, augment=True)
    noaug = augmentation_pipeline(20, augment=False)
    assert len(aug) == 4
    assert len(noaug) == 2
    assert aug.ops[0].name == "random_crop"
    assert noaug.ops[0].name == "center_crop"


def test_augmentation_experiment_smoke():
    """A miniature run: both curves exist, lengths match, values valid."""
    curves = augmentation_experiment(
        num_train=32,
        num_test=48,
        image_size=16,
        crop=12,
        num_classes=4,
        hidden=16,
        n_ranks=2,
        config=TrainConfig(epochs=2, lr=0.05, batch_size=8, seed=0),
        top_k=1,
    )
    assert set(curves) == {"with_augmentation", "without_augmentation"}
    for curve in curves.values():
        assert len(curve) == 2
        assert all(0.0 <= a <= 1.0 for a in curve)


@pytest.mark.slow
def test_augmentation_improves_heldout_accuracy():
    """The Figure 5 claim at our scale: augmentation clearly wins."""
    curves = augmentation_experiment(
        config=TrainConfig(epochs=25, lr=0.03, batch_size=32, seed=0)
    )
    final_aug = np.mean(curves["with_augmentation"][-3:])
    final_noaug = np.mean(curves["without_augmentation"][-3:])
    assert final_aug > final_noaug + 0.03


def test_augmentation_experiment_cnn_variant():
    """The CNN path runs end to end; its built-in translation
    equivariance means we assert validity, not a gap."""
    curves = augmentation_experiment(
        num_train=32,
        num_test=48,
        image_size=16,
        crop=12,
        num_classes=4,
        n_ranks=2,
        config=TrainConfig(epochs=2, lr=0.05, batch_size=8, seed=0),
        top_k=1,
        model="cnn",
    )
    for curve in curves.values():
        assert len(curve) == 2
        assert all(0.0 <= a <= 1.0 for a in curve)


def test_augmentation_experiment_rejects_unknown_model():
    with pytest.raises(ConfigError):
        augmentation_experiment(model="transformer")
