"""Tests for the numpy MLP."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.training.nn import MLP, softmax_cross_entropy


def test_softmax_ce_uniform_logits():
    logits = np.zeros((4, 10))
    labels = np.array([0, 3, 5, 9])
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss == pytest.approx(np.log(10))
    assert grad.shape == (4, 10)
    # Gradient rows sum to zero.
    assert np.allclose(grad.sum(axis=1), 0, atol=1e-12)


def test_softmax_ce_validation():
    with pytest.raises(ConfigError):
        softmax_cross_entropy(np.zeros(10), np.zeros(1, dtype=int))
    with pytest.raises(ConfigError):
        softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))


def test_forward_shapes(rng):
    model = MLP([12, 8, 4])
    x = rng.normal(size=(5, 12))
    assert model.forward(x).shape == (5, 4)


def test_gradient_check(rng):
    """Backprop gradients match central finite differences."""
    model = MLP([6, 5, 3], seed=1)
    x = rng.normal(size=(4, 6))
    y = np.array([0, 1, 2, 1])
    _, grads = model.loss_and_grads(x, y)
    flat_grad = MLP.flatten_grads(grads)
    params = model.flat_params()
    eps = 1e-6
    idxs = rng.choice(params.size, size=25, replace=False)
    for i in idxs:
        bumped = params.copy()
        bumped[i] += eps
        model.set_flat_params(bumped)
        up, _ = model.loss_and_grads(x, y)
        bumped[i] -= 2 * eps
        model.set_flat_params(bumped)
        down, _ = model.loss_and_grads(x, y)
        numeric = (up - down) / (2 * eps)
        model.set_flat_params(params)
        assert numeric == pytest.approx(flat_grad[i], rel=1e-4, abs=1e-7)


def test_sgd_reduces_loss(rng):
    model = MLP([8, 16, 3], seed=0)
    x = rng.normal(size=(32, 8))
    y = rng.integers(0, 3, 32)
    first, grads = model.loss_and_grads(x, y)
    for _ in range(50):
        _, grads = model.loss_and_grads(x, y)
        model.apply_grads(grads, lr=0.1)
    last, _ = model.loss_and_grads(x, y)
    assert last < first / 2


def test_flat_param_roundtrip(rng):
    model = MLP([7, 5, 2], seed=3)
    flat = model.flat_params()
    other = MLP([7, 5, 2], seed=99)
    other.set_flat_params(flat)
    x = rng.normal(size=(3, 7))
    assert np.allclose(model.forward(x), other.forward(x))


def test_flat_grads_roundtrip(rng):
    model = MLP([7, 5, 2])
    x = rng.normal(size=(3, 7))
    y = np.array([0, 1, 0])
    _, grads = model.loss_and_grads(x, y)
    flat = MLP.flatten_grads(grads)
    back = model.unflatten_grads(flat)
    for a, b in zip(grads, back):
        assert np.array_equal(a, b)


def test_model_bytes():
    model = MLP([10, 4, 2])
    assert model.model_bytes == (10 * 4 + 4 + 4 * 2 + 2) * 8


def test_topk_accuracy(rng):
    model = MLP([4, 8], seed=0)
    x = rng.normal(size=(20, 4))
    y = rng.integers(0, 8, 20)
    top1 = model.top_k_accuracy(x, y, k=1)
    top5 = model.top_k_accuracy(x, y, k=5)
    top8 = model.top_k_accuracy(x, y, k=8)
    assert top1 <= top5 <= top8 == 1.0
    assert top1 == model.accuracy(x, y)


def test_validation():
    with pytest.raises(ConfigError):
        MLP([5])
    with pytest.raises(ConfigError):
        MLP([5, 0, 2])
    model = MLP([3, 2])
    with pytest.raises(ConfigError):
        model.set_flat_params(np.zeros(3))
    with pytest.raises(ConfigError):
        model.apply_grads([np.zeros((3, 2))], lr=0.1)
