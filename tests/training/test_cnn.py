"""Tests for the numpy ConvNet."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.training.cnn import ConvNet, _col2im, _im2col
from repro.training.trainer import DataParallelTrainer


def _net(seed=0):
    return ConvNet((12, 12, 3), channels=(4, 6), num_classes=5, seed=seed)


def test_im2col_geometry(rng):
    x = rng.normal(size=(2, 6, 6, 3))
    patches = _im2col(x, 3)
    assert patches.shape == (2, 4, 4, 27)
    # The first patch is the top-left 3x3 window.
    assert np.allclose(patches[0, 0, 0], x[0, :3, :3, :].reshape(-1))


def test_col2im_adjoint_of_im2col(rng):
    """<im2col(x), g> == <x, col2im(g)> — the defining adjoint identity."""
    x = rng.normal(size=(1, 5, 5, 2))
    g = rng.normal(size=(1, 3, 3, 3 * 3 * 2))
    lhs = float((_im2col(x, 3) * g).sum())
    rhs = float((x * _col2im(g, x.shape, 3)).sum())
    assert lhs == pytest.approx(rhs)


def test_forward_shapes(rng):
    net = _net()
    x = rng.normal(size=(4, 12, 12, 3))
    assert net.forward(x).shape == (4, 5)


def test_input_validation(rng):
    net = _net()
    with pytest.raises(ConfigError):
        net.forward(rng.normal(size=(4, 10, 10, 3)))
    with pytest.raises(ConfigError):
        ConvNet((4, 4, 3))  # too small for two conv+pool stages
    with pytest.raises(ConfigError):
        ConvNet((12, 12, 3), channels=(4, 5, 6))
    with pytest.raises(ConfigError):
        ConvNet((12, 12, 3), num_classes=0)


def test_gradient_check(rng):
    net = _net(seed=2)
    x = rng.normal(size=(3, 12, 12, 3))
    y = np.array([0, 2, 4])
    _, grads = net.loss_and_grads(x, y)
    flat_grad = ConvNet.flatten_grads(grads)
    params = net.flat_params()
    eps = 1e-6
    idxs = rng.choice(params.size, size=20, replace=False)
    for i in idxs:
        bumped = params.copy()
        bumped[i] += eps
        net.set_flat_params(bumped)
        up, _ = net.loss_and_grads(x, y)
        bumped[i] -= 2 * eps
        net.set_flat_params(bumped)
        down, _ = net.loss_and_grads(x, y)
        numeric = (up - down) / (2 * eps)
        net.set_flat_params(params)
        assert numeric == pytest.approx(flat_grad[i], rel=2e-4, abs=1e-7)


def test_sgd_reduces_loss(rng):
    net = _net(seed=1)
    x = rng.normal(size=(24, 12, 12, 3))
    y = rng.integers(0, 5, 24)
    first, _ = net.loss_and_grads(x, y)
    for _ in range(40):
        _, grads = net.loss_and_grads(x, y)
        net.apply_grads(grads, lr=0.05)
    last, _ = net.loss_and_grads(x, y)
    assert last < first / 2


def test_flat_param_roundtrip_and_clone(rng):
    net = _net(seed=3)
    twin = net.clone()
    x = rng.normal(size=(2, 12, 12, 3))
    assert np.allclose(net.forward(x), twin.forward(x))
    # Mutating the clone leaves the original untouched.
    twin.apply_grads(twin.unflatten_grads(np.ones(twin.flat_params().size)), 0.1)
    assert not np.allclose(net.flat_params(), twin.flat_params())


def test_grad_validation(rng):
    net = _net()
    with pytest.raises(ConfigError):
        net.apply_grads([np.zeros(3)], lr=0.1)
    with pytest.raises(ConfigError):
        net.set_flat_params(np.zeros(5))


def test_convnet_in_data_parallel_trainer(rng):
    """The ConvNet plugs into the ring-all-reduce trainer unchanged."""
    net = _net(seed=0)
    trainer = DataParallelTrainer(net, n_ranks=3)
    batches = [
        (rng.normal(size=(4, 12, 12, 3)), rng.integers(0, 5, 4))
        for _ in range(3)
    ]
    loss = trainer.step(batches, lr=0.05)
    assert np.isfinite(loss)
    assert trainer.replicas_in_sync()


def test_learns_synthetic_classes():
    """End-to-end: the ConvNet separates the synthetic image classes."""
    from repro.datasets.imagenet import SyntheticImageDataset

    ds = SyntheticImageDataset(num_items=96, height=14, width=14, num_classes=3, seed=0)
    items = [ds.raw_item(i) for i in range(96)]
    # Center the inputs: zero-mean features train far faster.
    x = np.stack([img for img, _ in items]).astype(np.float32) / 255.0 - 0.5
    y = np.array([label for _, label in items])
    net = ConvNet((14, 14, 3), channels=(8, 12), num_classes=3, seed=0)
    rng = np.random.default_rng(0)
    for _ in range(200):
        idx = rng.permutation(96)[:32]
        _, grads = net.loss_and_grads(x[idx], y[idx])
        net.apply_grads(grads, lr=0.1)
    assert net.accuracy(x, y) > 0.9
