"""Tests for the large-batch / LR-scaling experiment (§II-B)."""

import pytest

from repro.errors import ConfigError
from repro.training.large_batch import (
    BatchScalingResult,
    batch_scaling_experiment,
)


def test_result_predicates():
    good = BatchScalingResult(0.9, 0.88, 0.6)
    assert good.scaling_recovers_accuracy()
    assert good.unscaled_underperforms()
    bad = BatchScalingResult(0.9, 0.5, 0.49)
    assert not bad.scaling_recovers_accuracy()
    assert not bad.unscaled_underperforms()


def test_scale_validation():
    with pytest.raises(ConfigError):
        batch_scaling_experiment(scale=1)


def test_experiment_smoke():
    result = batch_scaling_experiment(
        num_train=64, num_test=48, epochs=2, hidden=16, num_classes=4
    )
    for value in (
        result.small_batch,
        result.large_batch_scaled_lr,
        result.large_batch_unscaled_lr,
    ):
        assert 0.0 <= value <= 1.0


@pytest.mark.slow
def test_linear_scaling_recovers_large_batch_accuracy():
    """§II-B: a properly scaled learning rate removes the large-batch
    instability; an unscaled one undertrains."""
    result = batch_scaling_experiment(seed=1)
    assert result.scaling_recovers_accuracy()
    assert result.unscaled_underperforms()
