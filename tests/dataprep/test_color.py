"""Tests for color conversion and chroma subsampling."""

import numpy as np
import pytest

from repro.dataprep.jpeg import color
from repro.errors import CodecError


def test_rgb_ycbcr_roundtrip(rng):
    rgb = rng.integers(0, 256, (16, 12, 3), dtype=np.uint8)
    back = color.ycbcr_to_rgb(color.rgb_to_ycbcr(rgb))
    assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1


def test_gray_has_neutral_chroma():
    gray = np.full((8, 8, 3), 77, dtype=np.uint8)
    ycc = color.rgb_to_ycbcr(gray)
    assert np.allclose(ycc[..., 0], 77, atol=0.5)
    assert np.allclose(ycc[..., 1:], 128, atol=0.5)


def test_luma_weights_sum_to_one():
    white = np.full((2, 2, 3), 255, dtype=np.uint8)
    ycc = color.rgb_to_ycbcr(white)
    assert np.allclose(ycc[..., 0], 255, atol=1e-6)


def test_shape_validation():
    with pytest.raises(CodecError):
        color.rgb_to_ycbcr(np.zeros((4, 4)))
    with pytest.raises(CodecError):
        color.ycbcr_to_rgb(np.zeros((4, 4, 1)))


def test_subsample_upsample_420():
    plane = np.arange(16).reshape(4, 4).astype(float)
    sub = color.subsample_420(plane)
    assert sub.shape == (2, 2)
    assert sub[0, 0] == pytest.approx(plane[:2, :2].mean())
    up = color.upsample_420(sub)
    assert up.shape == (4, 4)
    assert np.allclose(up[:2, :2], sub[0, 0])


def test_subsample_constant_is_exact():
    plane = np.full((8, 8), 42.0)
    assert np.allclose(
        color.upsample_420(color.subsample_420(plane)), plane
    )


def test_subsample_rejects_odd_dims():
    with pytest.raises(CodecError):
        color.subsample_420(np.zeros((3, 4)))
