"""Tests for the PNG decode op and PNG-sourced pipelines."""

import numpy as np
import pytest

from repro.dataprep.ops_image import DecodePng, image_pipeline
from repro.dataprep.pipeline import SampleSpec
from repro.dataprep.png import encode as png_encode
from repro.errors import DataprepError


def test_decode_png_executes(smooth_image, rng):
    out = DecodePng().apply(png_encode(smooth_image), rng)
    assert np.array_equal(out, smooth_image)  # lossless


def test_decode_png_rejects_arrays(rng):
    with pytest.raises(DataprepError):
        DecodePng().apply(np.zeros((4, 4, 3), dtype=np.uint8), rng)


def test_png_pipeline_execution(rng):
    img = np.random.default_rng(1).integers(0, 256, (40, 40, 3), dtype=np.uint8)
    pipe = image_pipeline(out_height=32, out_width=32, source_format="png")
    out = pipe.run(png_encode(img), rng)
    assert out.shape == (32, 32, 3)
    assert out.dtype == np.float32


def test_png_cost_cheaper_per_pixel_than_jpeg():
    png_spec = SampleSpec("png", (256, 256, 3), 120_000)
    jpeg_spec = SampleSpec("jpeg", (256, 256, 3), 45_000)
    png_cost = image_pipeline(source_format="png").cost(png_spec)
    jpeg_cost = image_pipeline().cost(jpeg_spec)
    png_decode = png_cost.by_stage()["decode_png"]
    jpeg_decode = jpeg_cost.by_stage()["decode_jpeg"]
    assert png_decode.cpu_cycles < jpeg_decode.cpu_cycles
    # ...but the PNG payload read from storage is larger.
    assert png_decode.bytes_in > jpeg_decode.bytes_in


def test_png_cost_spec_threading():
    spec = SampleSpec("png", (256, 256, 3), 120_000)
    out = image_pipeline(source_format="png").output_spec(spec)
    assert out.kind == "image_f32"
    assert out.shape == (224, 224, 3)


def test_unknown_source_format_rejected():
    with pytest.raises(DataprepError):
        image_pipeline(source_format="webp")


def test_kind_mismatch_rejected():
    with pytest.raises(DataprepError):
        image_pipeline(source_format="png").cost(
            SampleSpec("jpeg", (256, 256, 3), 45_000)
        )
