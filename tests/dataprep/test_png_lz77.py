"""Tests for the LZ77 matcher."""

import pytest

from repro.dataprep.png.lz77 import (
    MAX_MATCH,
    MIN_MATCH,
    Match,
    compression_tokens_ratio,
    expand,
    tokenize,
)
from repro.errors import CodecError


def test_roundtrip_simple():
    data = b"abcabcabcabcxyz"
    tokens = tokenize(data)
    assert expand(tokens) == data
    assert any(isinstance(t, Match) for t in tokens)


def test_roundtrip_no_matches():
    data = bytes(range(200))
    tokens = tokenize(data)
    assert expand(tokens) == data


def test_overlapping_match_rle():
    """Runs compress to a literal + one long overlapping match."""
    data = b"a" * 100
    tokens = tokenize(data)
    assert expand(tokens) == data
    matches = [t for t in tokens if isinstance(t, Match)]
    assert matches and matches[0].distance == 1


def test_empty_input():
    assert tokenize(b"") == []
    assert expand([]) == b""


def test_match_validation():
    with pytest.raises(CodecError):
        Match(length=MIN_MATCH - 1, distance=1)
    with pytest.raises(CodecError):
        Match(length=MAX_MATCH + 1, distance=1)
    with pytest.raises(CodecError):
        Match(length=10, distance=0)


def test_expand_rejects_bad_distance():
    with pytest.raises(CodecError):
        expand([65, Match(length=3, distance=5)])


def test_expand_rejects_bad_literal():
    with pytest.raises(CodecError):
        expand([300])


def test_max_match_cap():
    data = b"x" * 1000
    tokens = tokenize(data)
    for token in tokens:
        if isinstance(token, Match):
            assert token.length <= MAX_MATCH
    assert expand(tokens) == data


def test_repetitive_data_mostly_matched():
    data = b"the quick brown fox " * 50
    tokens = tokenize(data)
    assert compression_tokens_ratio(tokens, len(data)) > 0.9
    assert expand(tokens) == data


def test_ratio_validation():
    with pytest.raises(CodecError):
        compression_tokens_ratio([], 0)


def test_max_chain_zero_degrades_to_literals():
    data = b"abcabcabc"
    tokens = tokenize(data, max_chain=0)
    assert all(not isinstance(t, Match) for t in tokens)
    assert expand(tokens) == data
