"""Golden-bitstream equivalence of the vectorized JPEG fast paths.

The fast entropy encoder must emit byte-identical streams to the
symbol-at-a-time reference (``JpegCodec(fast=False)``), and the
table-driven fast decoder must reconstruct identical pixels, across
shapes (including odd, non-multiple-of-8 and non-multiple-of-16 dims),
qualities, and both subsampling modes.
"""

import numpy as np
import pytest

from repro.dataprep.jpeg import decode_batch, encode_batch
from repro.dataprep.jpeg.codec import JpegCodec
from repro.dataprep.jpeg.huffman import BitWriter, pack_bits


def _image(shape, seed=0):
    rng = np.random.default_rng(seed)
    h, w, _ = shape
    gx = np.linspace(0, 200, w)
    img = gx[None, :, None] + rng.normal(0, 20, shape)
    return np.clip(img, 0, 255).astype(np.uint8)


SHAPES = [(8, 8, 3), (16, 16, 3), (17, 23, 3), (9, 130, 3), (33, 65, 3)]


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("quality", [35, 75, 100])
@pytest.mark.parametrize("subsample", [True, False])
def test_fast_encode_bitstream_identical(shape, quality, subsample):
    img = _image(shape)
    fast = JpegCodec(quality=quality, subsample=subsample, fast=True)
    ref = JpegCodec(quality=quality, subsample=subsample, fast=False)
    assert fast.encode(img) == ref.encode(img)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("subsample", [True, False])
def test_fast_decode_pixels_identical(shape, subsample):
    img = _image(shape, seed=3)
    blob = JpegCodec(quality=75, subsample=subsample).encode(img)
    fast = JpegCodec.decode(blob, fast=True)
    ref = JpegCodec.decode(blob, fast=False)
    assert fast.dtype == ref.dtype == np.uint8
    assert np.array_equal(fast, ref)


def test_pack_bits_matches_bitwriter():
    rng = np.random.default_rng(1)
    nbits = rng.integers(0, 17, 500)
    values = np.array([int(rng.integers(0, 1 << n)) if n else 0 for n in nbits])
    writer = BitWriter()
    for v, n in zip(values, nbits):
        writer.write(int(v), int(n))
    assert pack_bits(values, nbits) == writer.getvalue()


def test_encode_batch_matches_per_image_encode():
    images = [_image((24, 16, 3), seed=i) for i in range(5)]
    codec = JpegCodec(quality=80)
    assert encode_batch(images, quality=80) == [codec.encode(i) for i in images]


def test_encode_batch_mixed_shapes_falls_back():
    images = [_image((16, 16, 3), seed=0), _image((24, 8, 3), seed=1)]
    blobs = encode_batch(images, quality=75)
    for blob, img in zip(blobs, images):
        assert blob == JpegCodec(quality=75).encode(img)


def test_decode_batch_roundtrip():
    # Lossy codec: exact pixel equality holds against the reference
    # decode of the same blob, not the original image.
    images = [_image((16, 24, 3), seed=i) for i in range(4)]
    blobs = encode_batch(images, quality=90)
    decoded = decode_batch(blobs)
    refs = [JpegCodec.decode(b, fast=False) for b in blobs]
    for out, img, ref in zip(decoded, images, refs):
        assert out.shape == img.shape
        assert np.array_equal(out, ref)
