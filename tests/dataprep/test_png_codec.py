"""Tests for the deflate layer and the PNG-like codec."""

import numpy as np
import pytest

from repro.dataprep.png import decode, encode
from repro.dataprep.png.deflate import (
    compress,
    decompress,
    distance_symbol,
    length_symbol,
)
from repro.errors import CodecError


# -- deflate ------------------------------------------------------------------


def test_deflate_roundtrip_text():
    data = b"to be or not to be, that is the question " * 20
    packed = compress(data)
    assert decompress(packed) == data
    assert len(packed) < len(data) / 2


def test_deflate_roundtrip_binary(rng):
    data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
    assert decompress(compress(data)) == data


def test_deflate_empty():
    assert decompress(compress(b"")) == b""


def test_deflate_single_byte():
    assert decompress(compress(b"z")) == b"z"


def test_length_symbol_table():
    # RFC 1951 anchors: length 3 -> 257, 10 -> 264, 258 -> 285.
    assert length_symbol(3) == (257, 0, 0)
    assert length_symbol(10) == (264, 0, 0)
    assert length_symbol(258) == (285, 0, 0)
    # Code 265 covers lengths 11-12 (1 extra bit), 266 covers 13-14.
    sym, nbits, extra = length_symbol(12)
    assert sym == 265 and nbits == 1 and extra == 1
    sym, nbits, extra = length_symbol(13)
    assert sym == 266 and nbits == 1 and extra == 0


def test_distance_symbol_table():
    assert distance_symbol(1) == (0, 0, 0)
    assert distance_symbol(4) == (3, 0, 0)
    sym, nbits, extra = distance_symbol(5)
    assert sym == 4 and nbits == 1 and extra == 0
    sym, nbits, extra = distance_symbol(24577)
    assert sym == 29 and nbits == 13 and extra == 0


def test_every_length_and_distance_roundtrips():
    from repro.dataprep.png.deflate import (
        _DIST_BASE,
        _DIST_EXTRA,
        _LENGTH_BASE,
        _LENGTH_EXTRA,
    )

    for length in range(3, 259):
        sym, nbits, extra = length_symbol(length)
        idx = sym - 257
        assert _LENGTH_BASE[idx] + extra == length
        assert extra < (1 << nbits) or nbits == 0 and extra == 0
    for distance in (1, 2, 3, 4, 5, 100, 1024, 32768):
        sym, nbits, extra = distance_symbol(distance)
        assert _DIST_BASE[sym] + extra == distance


# -- codec --------------------------------------------------------------------


def test_png_lossless_roundtrip(smooth_image):
    data = encode(smooth_image)
    out = decode(data)
    assert np.array_equal(out, smooth_image)


def test_png_compresses_smooth_images(smooth_image):
    assert len(encode(smooth_image)) < smooth_image.nbytes * 0.8


def test_png_channel_counts(rng):
    for channels in (1, 3, 4):
        img = rng.integers(0, 256, (11, 13, channels), dtype=np.uint8)
        assert np.array_equal(decode(encode(img)), img)


def test_png_tiny_image(rng):
    img = rng.integers(0, 256, (1, 1, 3), dtype=np.uint8)
    assert np.array_equal(decode(encode(img)), img)


def test_png_validation(rng):
    with pytest.raises(CodecError):
        encode(rng.integers(0, 256, (4, 4), dtype=np.uint8))
    with pytest.raises(CodecError):
        encode(rng.integers(0, 256, (4, 4, 2), dtype=np.uint8))
    with pytest.raises(CodecError):
        encode(rng.random((4, 4, 3)).astype(np.float32))
    with pytest.raises(CodecError):
        decode(b"nope")


def test_png_deterministic(smooth_image):
    assert encode(smooth_image) == encode(smooth_image)


def test_png_vs_jpeg_tradeoff(smooth_image):
    """PNG is exact but bigger than JPEG on photo-like content — the
    reason ImageNet ships as JPEG."""
    from repro.dataprep.jpeg import encode as jpeg_encode

    png_size = len(encode(smooth_image))
    jpeg_size = len(jpeg_encode(smooth_image, quality=75))
    assert jpeg_size < png_size
