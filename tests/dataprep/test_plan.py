"""Compiled prep plans: bit-identity, arena reuse, memoization, fallback.

The plan compiler's whole contract is "same bits, fewer allocations":
every test here pins ``PrepPlan.execute`` against the kept per-sample
reference (``run_batch_reference``) or the per-op vectorized path, and
the arena tests pin the zero-allocation steady state.
"""

import numpy as np
import pytest

from repro import obs, perf
from repro.cache import clear_memo
from repro.dataprep import jpeg
from repro.dataprep.ops_audio import audio_pipeline
from repro.dataprep.ops_image import (
    CastToFloat,
    GaussianNoise,
    Mirror,
    RandomCrop,
    image_pipeline,
)
from repro.dataprep.pipeline import PrepPipeline, spawn_rngs
from repro.dataprep.plan import (
    PlanInapplicable,
    compile_plan,
    geometry_for_batch,
    plan_fingerprint,
    try_plan,
)
from repro.dataprep.png import codec as png
from repro.errors import DataprepError


def _images(n, h, w, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, (h, w, 3), dtype=np.uint8) for i in range(n)]


def _jpeg_blobs(n, h=48, w=48, seed=3):
    return jpeg.encode_batch(_images(n, h, w, seed), quality=80)


def _assert_matches_reference(pipe, batch, n, seed=11):
    plan = try_plan(pipe, batch)
    assert plan is not None
    rngs = spawn_rngs(np.random.default_rng(seed), n)
    planned = plan.execute(batch, rngs).copy()
    rngs = spawn_rngs(np.random.default_rng(seed), n)
    reference = pipe.run_batch_reference(batch, rngs)
    for i, ref in enumerate(reference):
        assert ref.dtype == planned.dtype
        assert np.array_equal(ref, planned[i]), f"sample {i} differs"
    return plan


def test_jpeg_plan_bit_identical_to_reference():
    pipe = image_pipeline(out_height=32, out_width=32)
    _assert_matches_reference(pipe, _jpeg_blobs(6), 6)


def test_png_plan_bit_identical_to_reference():
    pipe = image_pipeline(out_height=32, out_width=32, source_format="png")
    blobs = [png.encode(img) for img in _images(5, 48, 48, seed=9)]
    _assert_matches_reference(pipe, blobs, 5)


def test_audio_plan_bit_identical_to_reference_int16():
    pipe = audio_pipeline()
    pcm = (
        np.clip(np.random.default_rng(5).normal(0, 0.2, (4, 8_000)), -1, 1)
        * 32767
    ).astype(np.int16)
    _assert_matches_reference(pipe, pcm, 4)


def test_audio_plan_bit_identical_to_reference_float():
    pipe = audio_pipeline()
    pcm = np.random.default_rng(6).normal(0, 0.2, (3, 8_000))
    _assert_matches_reference(pipe, pcm, 3)


def test_execute_returns_same_arena_buffer_each_call():
    """Steady state re-serves the same arena view — no per-batch output
    allocation."""
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    plan = try_plan(pipe, blobs)
    out1 = plan.execute(blobs, spawn_rngs(np.random.default_rng(0), 4))
    out2 = plan.execute(blobs, spawn_rngs(np.random.default_rng(1), 4))
    assert out1 is out2


def test_plan_steady_state_zero_alloc():
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    plan = try_plan(pipe, blobs)

    def step():
        plan.execute(blobs, spawn_rngs(np.random.default_rng(0), 4))

    perf.assert_zero_alloc(step, warmup=2, iters=4)


def test_assert_zero_alloc_catches_leaks():
    sink = []

    def leaky():
        sink.append(np.zeros(64 * 1024, dtype=np.uint8))

    with pytest.raises(AssertionError):
        perf.assert_zero_alloc(leaky, warmup=1, iters=4)


def test_run_batch_vectorized_routes_through_plan_and_copies():
    """The pipeline entry point must hand the caller an owned copy, not
    the arena (which the next batch would overwrite)."""
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    rngs = spawn_rngs(np.random.default_rng(2), 4)
    out1 = pipe.run_batch_vectorized(blobs, rngs)
    rngs = spawn_rngs(np.random.default_rng(2), 4)
    out2 = pipe.run_batch_vectorized(blobs, rngs)
    assert out1 is not out2
    assert np.array_equal(out1, out2)
    plan = try_plan(pipe, blobs)
    arena_out = plan.execute(blobs, spawn_rngs(np.random.default_rng(2), 4))
    assert out1 is not arena_out
    assert np.array_equal(out1, arena_out)


def test_plan_false_pins_per_op_path_bit_identically():
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(5)
    rngs = spawn_rngs(np.random.default_rng(4), 5)
    planned = pipe.run_batch_vectorized(blobs, rngs)
    rngs = spawn_rngs(np.random.default_rng(4), 5)
    per_op = pipe.run_batch_vectorized(blobs, rngs, plan=False)
    assert np.array_equal(planned, per_op)


def test_mixed_geometry_falls_back_bit_identically():
    """Raggedly-sized payloads cannot take the plan path but must still
    produce reference bits through the per-op fallback."""
    pipe = image_pipeline(out_height=16, out_width=16)
    blobs = _jpeg_blobs(2, 32, 32) + _jpeg_blobs(2, 40, 40, seed=8)
    assert try_plan(pipe, blobs) is None
    rngs = spawn_rngs(np.random.default_rng(7), 4)
    out = pipe.run_batch_vectorized(blobs, rngs)
    rngs = spawn_rngs(np.random.default_rng(7), 4)
    reference = pipe.run_batch_reference(blobs, rngs)
    for i, ref in enumerate(reference):
        assert np.array_equal(ref, out[i])


def test_plan_memoized_per_fingerprint_and_geometry():
    clear_memo()
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    plan1 = try_plan(pipe, blobs)
    plan2 = try_plan(pipe, blobs)
    assert plan1 is plan2
    # An identically-configured pipeline object shares the fingerprint…
    twin = image_pipeline(out_height=32, out_width=32)
    assert plan_fingerprint(
        twin, geometry_for_batch(twin, blobs)
    ) == plan_fingerprint(pipe, geometry_for_batch(pipe, blobs))
    assert try_plan(twin, blobs) is plan1
    # …while a different geometry compiles its own plan.
    other = _jpeg_blobs(5)
    assert try_plan(pipe, other) is not plan1


def test_plan_compile_reports_span_and_metrics():
    clear_memo()
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    with obs.session(tracer=tracer, metrics=registry):
        plan = try_plan(pipe, blobs)
    assert plan.compile_seconds > 0
    assert any(s.name == "prep.plan_compile" for s in tracer.spans)
    manifest = registry.to_manifest()
    assert manifest["counters"].get("prep.plan_compile_total") == 1
    assert manifest["histograms"]["prep.plan_compile_ms"]["count"] == 1


def test_describe_names_fusions_hoists_and_arena():
    pipe = image_pipeline(out_height=32, out_width=32)
    text = try_plan(pipe, _jpeg_blobs(4)).describe()
    assert "random_crop+mirror" in text
    assert "gaussian_noise+cast" in text
    assert "huffman_luts" in text
    assert "lockstep_min" in text
    assert "arena:" in text
    atext = try_plan(
        audio_pipeline(),
        np.zeros((2, 4_000), dtype=np.int16),
    ).describe()
    assert "hann_window" in atext
    assert "mel_bank" in atext


def test_execute_batch_size_mismatch_raises_before_any_stage():
    pipe = image_pipeline(out_height=32, out_width=32)
    blobs = _jpeg_blobs(4)
    plan = try_plan(pipe, blobs)
    with pytest.raises(PlanInapplicable):
        plan.execute(blobs[:3], spawn_rngs(np.random.default_rng(0), 3))
    with pytest.raises(DataprepError):
        plan.execute(blobs, spawn_rngs(np.random.default_rng(0), 3))


def test_plan_does_not_mutate_caller_batch():
    pipe = PrepPipeline(
        [
            RandomCrop(out_height=8, out_width=8),
            Mirror(probability=0.5),
            GaussianNoise(sigma=2.0),
            CastToFloat(),
        ],
        name="array-prep",
    )
    batch = np.stack(_images(3, 16, 16, seed=13))
    before = batch.copy()
    rngs = spawn_rngs(np.random.default_rng(1), 3)
    pipe.run_batch_vectorized(batch, rngs)
    assert np.array_equal(batch, before)


def test_array_input_plan_matches_reference():
    pipe = PrepPipeline(
        [
            RandomCrop(out_height=10, out_width=10),
            Mirror(probability=0.5),
            GaussianNoise(sigma=3.0),
            CastToFloat(),
        ],
        name="array-prep",
    )
    batch = np.stack(_images(5, 20, 20, seed=17))
    _assert_matches_reference(pipe, batch, 5)
