"""Tests for PNG scanline filters."""

import numpy as np
import pytest

from repro.dataprep.png import filters
from repro.errors import CodecError


@pytest.mark.parametrize("method", sorted(filters.FILTER_NAMES))
def test_scanline_roundtrip_every_method(method, rng):
    line = rng.integers(0, 256, 30, dtype=np.uint8)
    prev = rng.integers(0, 256, 30, dtype=np.uint8)
    residual = filters.filter_scanline(line, prev, bpp=3, method=method)
    back = filters.unfilter_scanline(residual, prev, bpp=3, method=method)
    assert np.array_equal(back, line)


def test_unknown_method_rejected(rng):
    line = rng.integers(0, 256, 12, dtype=np.uint8)
    with pytest.raises(CodecError):
        filters.filter_scanline(line, line, 3, 9)
    with pytest.raises(CodecError):
        filters.unfilter_scanline(line, line, 3, 9)


def test_sub_filter_on_constant_line_is_zero():
    line = np.full(12, 55, dtype=np.uint8)
    prev = np.zeros(12, dtype=np.uint8)
    residual = filters.filter_scanline(line, prev, bpp=1, method=filters.FILTER_SUB)
    # First pixel keeps its value; the rest difference to zero.
    assert residual[0] == 55
    assert np.all(residual[1:] == 0)


def test_up_filter_on_repeated_line_is_zero(rng):
    line = rng.integers(0, 256, 12, dtype=np.uint8)
    residual = filters.filter_scanline(line, line, bpp=3, method=filters.FILTER_UP)
    assert np.all(residual == 0)


def test_choose_filter_prefers_cheap_residuals():
    # A horizontal gradient: SUB yields tiny residuals, NONE does not.
    line = np.arange(0, 120, 2, dtype=np.uint8)
    prev = np.zeros_like(line)
    method, residual = filters.choose_filter(line, prev, bpp=1)
    assert method in (filters.FILTER_SUB, filters.FILTER_AVERAGE, filters.FILTER_PAETH)
    assert int(np.abs(residual[1:].astype(np.int16)).sum()) <= int(line.sum())


def test_image_roundtrip(rng):
    image = rng.integers(0, 256, (9, 7, 3), dtype=np.uint8)
    methods, residuals = filters.filter_image(image)
    back = filters.unfilter_image(methods, residuals, image.shape)
    assert np.array_equal(back, image)
    assert len(methods) == 9


def test_image_validation(rng):
    with pytest.raises(CodecError):
        filters.filter_image(rng.integers(0, 256, (4, 4), dtype=np.uint8))
    with pytest.raises(CodecError):
        filters.filter_image(rng.random((4, 4, 3)))
    methods, residuals = filters.filter_image(
        rng.integers(0, 256, (4, 4, 3), dtype=np.uint8)
    )
    with pytest.raises(CodecError):
        filters.unfilter_image(methods, residuals, (5, 4, 3))
    with pytest.raises(CodecError):
        filters.unfilter_image(methods[:-1], residuals, (4, 4, 3))


def test_paeth_predictor_cases():
    # a=left, b=up, c=upleft; exact tie-break order a, b, c.
    a = np.array([10], dtype=np.int16)
    b = np.array([20], dtype=np.int16)
    c = np.array([15], dtype=np.int16)
    # p = 15; pa=5, pb=5, pc=0 -> c wins only when strictly smaller.
    assert filters._paeth_predictor(a, b, c)[0] == 15
    c2 = np.array([30], dtype=np.int16)
    # p = 0; pa=10, pb=20, pc=30 -> a.
    assert filters._paeth_predictor(a, b, c2)[0] == 10
