"""Tests for the image preparation operations."""

import numpy as np
import pytest

from repro.dataprep.jpeg import encode
from repro.dataprep.ops_image import (
    CastToFloat,
    DecodeJpeg,
    GaussianNoise,
    Mirror,
    RandomCrop,
    image_pipeline,
)
from repro.dataprep.pipeline import SampleSpec
from repro.errors import DataprepError


def test_decode_executes(smooth_image, rng):
    data = encode(smooth_image, quality=90)
    out = DecodeJpeg().apply(data, rng)
    assert out.shape == smooth_image.shape
    assert out.dtype == np.uint8


def test_decode_rejects_arrays(rng):
    with pytest.raises(DataprepError):
        DecodeJpeg().apply(np.zeros((4, 4, 3), dtype=np.uint8), rng)


def test_crop_shape_and_content(rng):
    img = np.arange(40 * 40 * 3, dtype=np.uint8).reshape(40, 40, 3)
    crop = RandomCrop(32, 32)
    out = crop.apply(img, rng)
    assert out.shape == (32, 32, 3)
    # The crop must be a contiguous window of the source.
    found = False
    for top in range(9):
        for left in range(9):
            if np.array_equal(out, img[top : top + 32, left : left + 32]):
                found = True
    assert found


def test_crop_too_small_rejected(rng):
    with pytest.raises(DataprepError):
        RandomCrop(64, 64).apply(np.zeros((32, 32, 3), dtype=np.uint8), rng)


def test_crop_randomness(rng):
    img = np.arange(40 * 40 * 3, dtype=np.uint8).reshape(40, 40, 3)
    crop = RandomCrop(20, 20)
    outs = {crop.apply(img, rng).tobytes() for _ in range(16)}
    assert len(outs) > 1  # different offsets actually sampled


def test_mirror_flips_horizontally():
    img = np.arange(4 * 4 * 3, dtype=np.uint8).reshape(4, 4, 3)
    always = Mirror(probability=1.0)
    out = always.apply(img, np.random.default_rng(0))
    assert np.array_equal(out, img[:, ::-1])
    never = Mirror(probability=0.0)
    assert np.array_equal(never.apply(img, np.random.default_rng(0)), img)


def test_mirror_probability_validated():
    with pytest.raises(DataprepError):
        Mirror(probability=1.5)


def test_noise_changes_pixels_but_bounded(rng):
    img = np.full((16, 16, 3), 128, dtype=np.uint8)
    out = GaussianNoise(sigma=5.0).apply(img, rng)
    assert out.dtype == np.uint8
    assert not np.array_equal(out, img)
    assert np.abs(out.astype(int) - 128).max() < 40


def test_noise_zero_sigma_near_identity(rng):
    img = np.full((8, 8, 3), 100, dtype=np.uint8)
    out = GaussianNoise(sigma=0.0).apply(img, rng)
    assert np.array_equal(out, img)


def test_noise_requires_uint8(rng):
    with pytest.raises(DataprepError):
        GaussianNoise().apply(np.zeros((4, 4, 3), dtype=np.float32), rng)


def test_cast_scales_to_unit_range(rng):
    img = np.array([[[0, 128, 255]]], dtype=np.uint8)
    out = CastToFloat().apply(img, rng)
    assert out.dtype == np.float32
    assert out.min() == pytest.approx(0.0)
    assert out.max() == pytest.approx(1.0)


def test_full_pipeline_execution(rng):
    img = np.random.default_rng(0).integers(0, 256, (40, 40, 3), dtype=np.uint8)
    pipe = image_pipeline(out_height=32, out_width=32)
    out = pipe.run(encode(img), rng)
    assert out.shape == (32, 32, 3)
    assert out.dtype == np.float32


def test_pipeline_cost_matches_calibration():
    """The 256×256 image pipeline costs ≈3.9 M CPU cycles (DESIGN.md §5)."""
    spec = SampleSpec("jpeg", (256, 256, 3), 45_000)
    cost = image_pipeline().cost(spec)
    assert cost.cpu_cycles == pytest.approx(3.93e6, rel=0.02)
    assert cost.bytes_out == pytest.approx(224 * 224 * 3 * 4)


def test_cost_spec_threading():
    spec = SampleSpec("jpeg", (256, 256, 3), 45_000)
    pipe = image_pipeline()
    out_spec = pipe.output_spec(spec)
    assert out_spec.kind == "image_f32"
    assert out_spec.shape == (224, 224, 3)


def test_cost_rejects_wrong_input_kind():
    with pytest.raises(DataprepError):
        image_pipeline().cost(SampleSpec("audio_pcm", (1000,), 2000))


def test_crop_cost_validates_geometry():
    spec = SampleSpec("image_u8", (100, 100, 3), 30_000)
    with pytest.raises(DataprepError):
        RandomCrop(224, 224).cost(spec)
