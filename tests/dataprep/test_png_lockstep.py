"""Lock-step PNG inflate: identity with the per-stream path, errors,
and arena (``out=``) delivery.

The deflate lock-step walk only engages above its measured crossover
(``_LOCKSTEP_MIN_STREAMS``); every test here forces both sides of the
threshold with ``lockstep_min=`` so the vectorized walk is actually
exercised on small batches.
"""

import numpy as np
import pytest

from repro.dataprep.png import codec as png
from repro.dataprep.png import deflate
from repro.errors import CodecError


def _images(n, h=12, w=10, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        if i % 2 == 0:  # smooth gradient: match-heavy filter residuals
            base = np.add.outer(
                np.arange(h, dtype=np.uint16) * 3,
                np.arange(w, dtype=np.uint16) * 5,
            )
            img = (base[..., None] + np.arange(3) * 7 + i).astype(np.uint8)
        else:  # noise: literal-heavy streams
            img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        out.append(img)
    return out


def _streams(n, seed=0):
    rng = np.random.default_rng(seed)
    blobs = []
    for i in range(n):
        if i % 3 == 0:
            raw = bytes(rng.integers(0, 256, 200 + i, dtype=np.uint8))
        else:  # repetitive payload: exercises the match phases
            raw = (b"abcdef" * 40 + bytes([i]))[: 180 + i]
        blobs.append(deflate.compress(raw))
    return blobs


def test_lockstep_inflate_identity_above_threshold():
    blobs = _streams(12)
    reference = [deflate.decompress(b) for b in blobs]
    assert deflate.decompress_batch(blobs, lockstep_min=2) == reference


def test_below_threshold_uses_per_stream_path_identically():
    blobs = _streams(6, seed=4)
    reference = [deflate.decompress(b) for b in blobs]
    assert deflate.decompress_batch(blobs, lockstep_min=100) == reference
    # And the default threshold (192) also routes this small batch
    # through the per-stream loop with identical bytes.
    assert deflate.decompress_batch(blobs) == reference


def test_lockstep_threshold_floor_is_two():
    blobs = _streams(3, seed=9)
    reference = [deflate.decompress(b) for b in blobs]
    assert deflate.decompress_batch(blobs, lockstep_min=0) == reference


def test_malformed_stream_raises_reference_error():
    blobs = _streams(8, seed=2)
    truncated = blobs[3][: len(blobs[3]) // 2]
    with pytest.raises(CodecError) as reference_err:
        deflate.decompress(truncated)
    blobs[3] = truncated
    with pytest.raises(CodecError) as batch_err:
        deflate.decompress_batch(blobs, lockstep_min=2)
    assert str(batch_err.value) == str(reference_err.value)


def test_codec_decode_batch_identity_both_regimes():
    imgs = _images(10)
    blobs = [png.encode(img) for img in imgs]
    for lockstep_min in (2, 100):
        decoded = png.decode_batch(blobs, lockstep_min=lockstep_min)
        for img, got in zip(imgs, decoded):
            assert np.array_equal(img, got)


def test_codec_decode_batch_out_arena_delivery():
    imgs = _images(8, h=9, w=7, seed=5)
    blobs = [png.encode(img) for img in imgs]
    arena = np.empty((8, 9, 7, 3), dtype=np.uint8)
    returned = png.decode_batch(blobs, lockstep_min=2, out=arena)
    assert returned is arena
    for img, got in zip(imgs, arena):
        assert np.array_equal(img, got)


def test_codec_decode_batch_out_validates_count_and_shape():
    imgs = _images(4, h=9, w=7, seed=6)
    blobs = [png.encode(img) for img in imgs]
    with pytest.raises(CodecError):
        png.decode_batch(blobs, out=np.empty((3, 9, 7, 3), dtype=np.uint8))
    with pytest.raises(CodecError):
        png.decode_batch(blobs, out=np.empty((4, 8, 7, 3), dtype=np.uint8))
