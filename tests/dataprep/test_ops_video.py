"""Tests for the video extension (§V-C partial reconfiguration story)."""

import numpy as np
import pytest

from repro.dataprep.ops_video import (
    ClipCast,
    ClipCrop,
    DecodeVideo,
    TemporalSubsample,
    decode_clip,
    encode_clip,
    video_engine_resources,
    video_pipeline,
)
from repro.dataprep.pipeline import SampleSpec
from repro.devices.fpga import FpgaResourceModel, audio_resource_model
from repro.errors import CodecError, DataprepError


def _frames(rng, count=6, h=24, w=24):
    # Smooth, photo-like frames (noise frames would stress the lossy
    # JPEG bound, which test_codec covers separately).
    x = np.linspace(0, 200, w)[None, :] * np.ones((h, 1))
    base = np.stack([x, x[::-1], np.full((h, w), 90.0)], axis=-1)
    base = np.clip(base + rng.normal(0, 4, base.shape), 0, 255).astype(np.uint8)
    return [
        np.clip(base.astype(int) + 5 * i, 0, 255).astype(np.uint8)
        for i in range(count)
    ]


def test_clip_container_roundtrip(rng):
    frames = _frames(rng)
    clip = encode_clip(frames, quality=90)
    back = decode_clip(clip)
    assert len(back) == len(frames)
    for a, b in zip(back, frames):
        assert a.shape == b.shape
        assert np.abs(a.astype(int) - b.astype(int)).mean() < 15


def test_clip_validation(rng):
    with pytest.raises(CodecError):
        encode_clip([])
    with pytest.raises(CodecError):
        encode_clip([_frames(rng)[0], _frames(rng, h=16)[0]])
    with pytest.raises(CodecError):
        decode_clip(b"xxxx")


def test_pipeline_execution(rng):
    clip = encode_clip(_frames(rng, count=8, h=32, w=32))
    pipe = video_pipeline(out_height=24, out_width=24, stride=2)
    out = pipe.run(clip, rng)
    assert out.shape == (4, 24, 24, 3)
    assert out.dtype == np.float32


def test_temporal_subsample(rng):
    data = rng.integers(0, 256, (10, 4, 4, 3), dtype=np.uint8)
    out = TemporalSubsample(3).apply(data, rng)
    assert out.shape[0] == 4
    assert np.array_equal(out[1], data[3])
    with pytest.raises(DataprepError):
        TemporalSubsample(0)


def test_clip_crop_consistent_across_frames(rng):
    data = np.stack(
        [np.arange(8 * 8 * 3, dtype=np.uint8).reshape(8, 8, 3)] * 5
    )
    out = ClipCrop(4, 4).apply(data, rng)
    assert out.shape == (5, 4, 4, 3)
    for frame in out[1:]:
        assert np.array_equal(frame, out[0])


def test_clip_cast(rng):
    data = rng.integers(0, 256, (3, 4, 4, 3), dtype=np.uint8)
    out = ClipCast().apply(data, rng)
    assert out.dtype == np.float32
    assert out.max() <= 1.0
    with pytest.raises(DataprepError):
        ClipCast().apply(out, rng)


def test_cost_threading():
    spec = SampleSpec("video_mjpeg", (16, 256, 256, 3), 16 * 45_000.0)
    pipe = video_pipeline(stride=2)
    cost = pipe.cost(spec)
    out = pipe.output_spec(spec)
    assert out.kind == "video_f32"
    assert out.shape == (8, 224, 224, 3)
    # Per-frame decode cost matches the image decode calibration.
    decode_op = cost.by_stage()["decode_video"]
    assert decode_op.cpu_cycles == pytest.approx(16 * 38.0 * 256 * 256)


def test_cost_rejects_wrong_kind():
    with pytest.raises(DataprepError):
        video_pipeline().cost(SampleSpec("jpeg", (256, 256, 3), 45_000))


def test_partial_reconfiguration_fits():
    """§V-C: swap the computation engine, keep Ethernet + P2P resident —
    and the result must still fit the XCVU9P."""
    base = audio_resource_model()
    interfacing = [
        e for e in base.engines if e.name in ("ethernet_protocol", "p2p_handler")
    ]
    video = FpgaResourceModel(
        interfacing + [video_engine_resources()], label="video-prep-fpga"
    )
    video.check_fits()
    util = video.utilization()
    assert 0.5 < util["luts"] < 1.0
