"""Tests for the 8×8 block DCT."""

import numpy as np
import pytest

from repro.dataprep.jpeg import dct
from repro.errors import CodecError


def test_roundtrip_identity(rng):
    blocks = rng.normal(0, 50, (10, 8, 8))
    back = dct.idct2(dct.dct2(blocks))
    assert np.allclose(back, blocks, atol=1e-9)


def test_dct_is_orthonormal():
    m = dct._dct_matrix()
    assert np.allclose(m @ m.T, np.eye(8), atol=1e-12)


def test_dc_coefficient_is_scaled_mean():
    block = np.full((1, 8, 8), 100.0)
    coeffs = dct.dct2(block)
    assert coeffs[0, 0, 0] == pytest.approx(100.0 * 8)
    assert np.allclose(coeffs[0].reshape(-1)[1:], 0, atol=1e-9)


def test_energy_preservation(rng):
    """Parseval: orthonormal transform preserves L2 energy."""
    block = rng.normal(0, 30, (4, 8, 8))
    coeffs = dct.dct2(block)
    assert np.sum(block**2) == pytest.approx(np.sum(coeffs**2), rel=1e-10)


def test_blockify_unblockify_roundtrip(rng):
    plane = rng.normal(size=(24, 16))
    blocks = dct.blockify(plane)
    assert blocks.shape == (6, 8, 8)
    assert np.array_equal(dct.unblockify(blocks, (24, 16)), plane)


def test_blockify_ordering():
    plane = np.arange(16 * 16).reshape(16, 16).astype(float)
    blocks = dct.blockify(plane)
    # First block is the top-left 8x8 tile.
    assert np.array_equal(blocks[0], plane[:8, :8])
    assert np.array_equal(blocks[1], plane[:8, 8:])
    assert np.array_equal(blocks[2], plane[8:, :8])


def test_blockify_rejects_unaligned():
    with pytest.raises(CodecError):
        dct.blockify(np.zeros((10, 16)))
    with pytest.raises(CodecError):
        dct.unblockify(np.zeros((2, 8, 8)), (10, 16))
    with pytest.raises(CodecError):
        dct.unblockify(np.zeros((3, 8, 8)), (16, 16))


def test_pad_to_blocks():
    padded = dct.pad_to_blocks(np.ones((10, 17)))
    assert padded.shape == (16, 24)
    already = np.ones((16, 8))
    assert dct.pad_to_blocks(already) is already
