"""Tests for quantization tables and quality scaling."""

import numpy as np
import pytest

from repro.dataprep.jpeg import quant
from repro.errors import CodecError


def test_quality_50_is_base_table():
    assert np.array_equal(quant.scaled_table(quant.LUMA_BASE, 50), quant.LUMA_BASE)


def test_quality_100_is_all_ones():
    assert np.all(quant.scaled_table(quant.LUMA_BASE, 100) == 1)


def test_lower_quality_coarser():
    q25 = quant.scaled_table(quant.LUMA_BASE, 25)
    q75 = quant.scaled_table(quant.LUMA_BASE, 75)
    assert np.all(q25 >= q75)
    assert q25.sum() > q75.sum()


def test_tables_stay_in_byte_range():
    for quality in (1, 10, 50, 90, 100):
        table = quant.scaled_table(quant.CHROMA_BASE, quality)
        assert table.min() >= 1
        assert table.max() <= 255


def test_invalid_quality_rejected():
    with pytest.raises(CodecError):
        quant.scaled_table(quant.LUMA_BASE, 0)
    with pytest.raises(CodecError):
        quant.scaled_table(quant.LUMA_BASE, 101)


def test_quantize_dequantize_error_bounded(rng):
    table = quant.scaled_table(quant.LUMA_BASE, 75)
    coeffs = rng.normal(0, 200, (5, 8, 8))
    q = quant.quantize(coeffs, table)
    back = quant.dequantize(q, table)
    # Round-trip error is at most half a quantization step per entry.
    assert np.all(np.abs(back - coeffs) <= table / 2 + 1e-9)


def test_quantize_is_integer():
    table = quant.scaled_table(quant.LUMA_BASE, 75)
    q = quant.quantize(np.ones((1, 8, 8)) * 7.7, table)
    assert q.dtype == np.int32


def test_base_tables_shape_and_symmetric_roles():
    assert quant.LUMA_BASE.shape == (8, 8)
    assert quant.CHROMA_BASE.shape == (8, 8)
    # Chroma is quantized at least as coarsely as luma at high frequency.
    assert quant.CHROMA_BASE[4:, 4:].min() >= quant.LUMA_BASE[4:, 4:].min()
