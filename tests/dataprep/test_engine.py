"""The multi-process prep engine: determinism and shm lifecycle.

The contract under test (see the module docstring of
``repro.dataprep.engine``): parallel output is bit-identical to serial,
batches arrive in shard order, and every shared-memory segment is
released on success, on consumer errors and on worker crashes alike.
"""

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.dataprep import (
    PrepEngine,
    image_pipeline,
    make_shards,
    run_engine,
)
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.errors import DataprepError

_H = _W = 24
_CROP = 16
_SAMPLE_NBYTES = _CROP * _CROP * 3 * 4  # f32 output pixels


def _blob(index):
    rng = np.random.default_rng(1000 + index)
    img = rng.integers(0, 256, (_H, _W, 3), dtype=np.uint8)
    return jpeg_codec.encode(img, quality=80)


def _loader(start, count):
    return [_blob(start + i) for i in range(count)]


def _crashing_loader(start, count):
    if start >= 4:
        raise RuntimeError("disk on fire")
    return _loader(start, count)


def _pipe():
    return image_pipeline(out_height=_CROP, out_width=_CROP)


def test_make_shards_ragged_tail():
    shards = make_shards(10, 4)
    assert [(s.start, s.count) for s in shards] == [(0, 4), (4, 4), (8, 2)]
    with pytest.raises(DataprepError):
        make_shards(0, 4)
    with pytest.raises(DataprepError):
        make_shards(4, 0)


def test_parallel_bit_identical_to_serial():
    kwargs = dict(seed=13, sample_nbytes=_SAMPLE_NBYTES)
    serial = run_engine(_pipe(), _loader, 10, 4, seed=13, num_workers=0)
    parallel = run_engine(_pipe(), _loader, 10, 4, num_workers=2, **kwargs)
    assert len(serial) == len(parallel) == 3
    for a, b in zip(serial, parallel):
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b)
    # Worker count must not change a bit either.
    parallel3 = run_engine(_pipe(), _loader, 10, 4, num_workers=3, **kwargs)
    for a, b in zip(parallel, parallel3):
        assert np.array_equal(a, b)


def test_batches_arrive_in_shard_order_as_views():
    with PrepEngine(
        _pipe(), _loader, 6, 2, seed=5, num_workers=2,
        sample_nbytes=_SAMPLE_NBYTES,
    ) as engine:
        seen = []
        for batch in engine.batches():
            seen.append(batch.index)
            # Zero-copy contract: the batch data is a view into a ring
            # slot, not a consumer-side copy that owns its buffer.
            assert batch.data.base is not None
        assert seen == [0, 1, 2]
    assert engine.segment_names == []


def test_segments_released_on_success_and_on_worker_crash():
    engine = PrepEngine(
        _pipe(), _loader, 4, 2, num_workers=1, sample_nbytes=_SAMPLE_NBYTES
    )
    names = []
    for batch in engine.batches():
        names = list(engine.segment_names)
    assert names  # segments existed while running
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    engine = PrepEngine(
        _pipe(), _crashing_loader, 8, 2, num_workers=2,
        sample_nbytes=_SAMPLE_NBYTES,
    )
    with pytest.raises(DataprepError, match="disk on fire"):
        for batch in engine.batches():
            names = list(engine.segment_names) or names
    for name in engine.segment_names:
        raise AssertionError("segments must be gone after a crash")


def test_worker_mode_validation():
    with pytest.raises(DataprepError):
        PrepEngine(_pipe(), _loader, 4, 2, num_workers=-1)
    with pytest.raises(DataprepError):
        PrepEngine(_pipe(), _loader, 4, 2, num_workers=1)  # no sample_nbytes
    with pytest.raises(DataprepError):
        PrepEngine(
            _pipe(), _loader, 4, 2, num_workers=1,
            sample_nbytes=_SAMPLE_NBYTES, num_slots=1,
        )
    engine = PrepEngine(_pipe(), _loader, 4, 2, num_workers=0)
    list(engine.batches())
    with pytest.raises(DataprepError):
        list(engine.batches())  # single-iteration contract


def test_undersized_slots_surface_as_error():
    engine = PrepEngine(
        _pipe(), _loader, 4, 2, num_workers=1, sample_nbytes=8
    )
    with pytest.raises(DataprepError, match="raise sample_nbytes"):
        list(engine.batches())


# -- resilience-adjacent engine contracts -----------------------------------


def _stalling_loader(start, count):
    # Shard 0 loads instantly; later shards park their worker so the
    # test can kill a process while its shard is in flight.
    if start >= 2:
        import time

        time.sleep(120)
    return _loader(start, count)


def test_partial_worker_death_raises_promptly_without_resilience():
    """A dead worker among live ones must surface as PrepWorkerCrash,
    not a livelock waiting on a result that can never arrive."""
    import os
    import signal
    import time

    from repro.errors import PrepWorkerCrash

    engine = PrepEngine(
        _pipe(), _stalling_loader, 8, 2, seed=3, num_workers=2,
        sample_nbytes=_SAMPLE_NBYTES,
    )
    start = time.monotonic()
    with pytest.raises(PrepWorkerCrash):
        it = engine.batches()
        first = next(it)
        assert first.index == 0
        # Both workers are now parked inside _stalling_loader with
        # shards in flight; kill one while the other stays alive.
        deadline = time.monotonic() + 10
        victim = None
        while victim is None and time.monotonic() < deadline:
            stuck = [
                w for w in engine._live.values() if w.assignment is not None
            ]
            if stuck:
                victim = stuck[0]
            else:
                time.sleep(0.05)
        assert victim is not None, "no in-flight assignment to kill"
        os.kill(victim.proc.pid, signal.SIGKILL)
        next(it)
    assert time.monotonic() - start < 30
    engine.close()
    assert engine.segment_names == []


def test_close_is_idempotent_and_safe_before_start():
    engine = PrepEngine(
        _pipe(), _loader, 4, 2, num_workers=1, sample_nbytes=_SAMPLE_NBYTES
    )
    engine.close()  # never started
    engine.close()

    engine = PrepEngine(
        _pipe(), _loader, 8, 2, num_workers=2, sample_nbytes=_SAMPLE_NBYTES
    )
    it = engine.batches()
    next(it)  # mid-stream
    engine.close()
    engine.close()
    assert engine.segment_names == []
    assert not engine._live


def test_start_partial_failure_leaks_nothing(monkeypatch):
    """If shared-memory creation fails partway, the segments already
    created are unlinked and no workers are left behind."""
    from repro.dataprep import engine as engine_mod

    real = shared_memory.SharedMemory
    created = []

    class Flaky:
        calls = 0

        def __new__(cls, *args, **kwargs):
            if kwargs.get("create"):
                Flaky.calls += 1
                if Flaky.calls >= 3:
                    raise OSError("shm quota exceeded")
            seg = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(seg.name)
            return seg

    monkeypatch.setattr(engine_mod.shared_memory, "SharedMemory", Flaky)
    engine = PrepEngine(
        _pipe(), _loader, 8, 2, num_workers=2, sample_nbytes=_SAMPLE_NBYTES
    )
    with pytest.raises(OSError, match="shm quota"):
        list(engine.batches())
    monkeypatch.undo()
    assert len(created) == 2
    assert engine.segment_names == []
    assert not engine._live
    for name in created:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
