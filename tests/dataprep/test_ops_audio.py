"""Tests for the audio preparation operations."""

import numpy as np
import pytest

from repro.dataprep.ops_audio import (
    MelFilterBank,
    Normalize,
    SpecMasking,
    Spectrogram,
    audio_pipeline,
)
from repro.dataprep.pipeline import SampleSpec
from repro.errors import DataprepError
import repro.dataprep.audio.stft as stft


def test_spectrogram_executes_int16(rng):
    sig = (rng.normal(0, 0.1, 8000) * 32767).astype(np.int16)
    out = Spectrogram().apply(sig, rng)
    assert out.shape == (stft.num_frames(8000), 257)
    assert out.dtype == np.float32
    assert np.all(out >= 0)


def test_spectrogram_rejects_2d(rng):
    with pytest.raises(DataprepError):
        Spectrogram().apply(rng.normal(size=(10, 10)), rng)


def test_mel_filter_bank_op(rng):
    power = rng.random((50, 257)).astype(np.float32)
    out = MelFilterBank(n_mels=64).apply(power, rng)
    assert out.shape == (50, 64)


def test_masking_masks_a_block(rng):
    feats = rng.normal(size=(100, 64)).astype(np.float32)
    out = SpecMasking(max_time_mask=20, max_freq_mask=10).apply(feats, rng)
    assert out.shape == feats.shape
    # Input untouched (copy semantics).
    assert not np.shares_memory(out, feats)


def test_masking_fill_value_is_mean(rng):
    feats = np.arange(64 * 32, dtype=np.float32).reshape(64, 32)
    out = SpecMasking(max_time_mask=16, max_freq_mask=8).apply(feats, rng)
    changed = out != feats
    if changed.any():
        assert np.allclose(out[changed], feats.mean())


def test_normalize_zero_mean_unit_std(rng):
    feats = rng.normal(5.0, 3.0, (80, 40)).astype(np.float32)
    out = Normalize().apply(feats, rng)
    assert out.mean() == pytest.approx(0.0, abs=1e-3)
    assert out.std() == pytest.approx(1.0, abs=1e-2)


def test_full_audio_pipeline(rng):
    sig = (rng.normal(0, 0.1, 16_000) * 32767).astype(np.int16)
    pipe = audio_pipeline(n_mels=64)
    out = pipe.run(sig, rng)
    assert out.shape == (stft.num_frames(16_000), 64)
    assert out.dtype == np.float32


def test_audio_cost_matches_calibration():
    """A 6.96 s stream costs ≈13.6 M CPU cycles (DESIGN.md §5)."""
    spec = SampleSpec("audio_pcm", (111_360,), 222_720)
    cost = audio_pipeline().cost(spec)
    assert cost.cpu_cycles == pytest.approx(13.6e6, rel=0.02)
    frames = stft.num_frames(111_360)
    assert cost.bytes_out == pytest.approx(frames * 128 * 4)


def test_audio_cost_scales_with_duration():
    short = audio_pipeline().cost(SampleSpec("audio_pcm", (16_000,), 32_000))
    long = audio_pipeline().cost(SampleSpec("audio_pcm", (160_000,), 320_000))
    assert long.cpu_cycles > 8 * short.cpu_cycles


def test_audio_cost_spec_threading():
    spec = SampleSpec("audio_pcm", (111_360,), 222_720)
    out = audio_pipeline(n_mels=80).output_spec(spec)
    assert out.kind == "mel"
    assert out.shape[1] == 80


def test_wrong_input_kind_rejected():
    with pytest.raises(DataprepError):
        audio_pipeline().cost(SampleSpec("jpeg", (256, 256, 3), 45_000))
