"""Tests for entropy-coding primitives."""

import numpy as np
import pytest

from repro.dataprep.jpeg import huffman as hf
from repro.errors import CodecError


# -- zig-zag -----------------------------------------------------------------


def test_zigzag_starts_dc_then_neighbors():
    assert hf.ZIGZAG[0] == 0          # (0,0)
    assert hf.ZIGZAG[1] == 1          # (0,1)
    assert hf.ZIGZAG[2] == 8          # (1,0)
    assert hf.ZIGZAG[63] == 63        # (7,7)


def test_zigzag_is_permutation():
    assert sorted(hf.ZIGZAG.tolist()) == list(range(64))


def test_zigzag_roundtrip(rng):
    block = rng.integers(-100, 100, (8, 8))
    assert np.array_equal(hf.zigzag_unscan(hf.zigzag_scan(block)), block)


# -- magnitude categories ------------------------------------------------------


@pytest.mark.parametrize(
    "value,expected_size",
    [(0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (7, 3), (255, 8), (-255, 8)],
)
def test_magnitude_category(value, expected_size):
    assert hf.magnitude_category(value) == expected_size


@pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 127, -127, 1000, -1000])
def test_amplitude_roundtrip(value):
    size, bits = hf.encode_amplitude(value)
    assert hf.decode_amplitude(size, bits) == value


# -- bit I/O -------------------------------------------------------------------


def test_bit_roundtrip(rng):
    writer = hf.BitWriter()
    values = []
    for _ in range(200):
        nbits = int(rng.integers(1, 17))
        value = int(rng.integers(0, 1 << nbits))
        values.append((value, nbits))
        writer.write(value, nbits)
    reader = hf.BitReader(writer.getvalue())
    for value, nbits in values:
        assert reader.read(nbits) == value


def test_bitwriter_rejects_overflow():
    writer = hf.BitWriter()
    with pytest.raises(CodecError):
        writer.write(4, 2)


def test_bitreader_underrun():
    reader = hf.BitReader(b"\xff")
    reader.read(8)
    with pytest.raises(CodecError):
        reader.read(1)


def test_padding_is_ones():
    writer = hf.BitWriter()
    writer.write(0, 3)
    data = writer.getvalue()
    assert data == bytes([0b00011111])


# -- Huffman -------------------------------------------------------------------


def test_huffman_roundtrip_simple():
    freqs = {0: 100, 1: 50, 2: 20, 3: 5}
    table = hf.HuffmanTable.from_frequencies(freqs)
    writer = hf.BitWriter()
    symbols = [0, 1, 0, 2, 3, 0, 1]
    for s in symbols:
        table.write_symbol(writer, s)
    reader = hf.BitReader(writer.getvalue())
    assert [table.read_symbol(reader) for _ in symbols] == symbols


def test_huffman_single_symbol():
    table = hf.HuffmanTable.from_frequencies({7: 42})
    writer = hf.BitWriter()
    table.write_symbol(writer, 7)
    reader = hf.BitReader(writer.getvalue())
    assert table.read_symbol(reader) == 7


def test_frequent_symbols_get_short_codes():
    freqs = {i: 1 for i in range(16)}
    freqs[0] = 10_000
    table = hf.HuffmanTable.from_frequencies(freqs)
    len0 = table._encode[0][1]
    assert len0 <= min(table._encode[s][1] for s in range(1, 16))


def test_code_lengths_limited_to_16():
    # Exponential frequencies force a degenerate deep tree pre-adjustment.
    freqs = {i: 2**i for i in range(40)}
    table = hf.HuffmanTable.from_frequencies(freqs)
    assert max(length for _, length in table._encode.values()) <= 16
    # Kraft inequality must hold for a valid prefix code.
    kraft = sum(2.0 ** -length for _, length in table._encode.values())
    assert kraft <= 1.0 + 1e-12


def test_unknown_symbol_rejected():
    table = hf.HuffmanTable.from_frequencies({1: 1, 2: 1})
    writer = hf.BitWriter()
    with pytest.raises(CodecError):
        table.write_symbol(writer, 99)


def test_block_symbols_roundtrip(rng):
    dc_freqs, ac_freqs = {}, {}
    blocks = []
    prev_dc = 0
    events = []
    for _ in range(20):
        block = np.zeros((8, 8), dtype=np.int32)
        # Sparse AC pattern typical of quantized DCT output.
        block[0, 0] = int(rng.integers(-200, 200))
        for _ in range(6):
            i, j = rng.integers(0, 8, 2)
            block[i, j] = int(rng.integers(-30, 31))
        blocks.append(block)
        dc_ev, ac_ev, prev_dc = hf.block_symbols(block, prev_dc)
        events.append((dc_ev, ac_ev))
        for s, _a, _n in dc_ev:
            dc_freqs[s] = dc_freqs.get(s, 0) + 1
        for s, _a, _n in ac_ev:
            ac_freqs[s] = ac_freqs.get(s, 0) + 1
    dc_table = hf.HuffmanTable.from_frequencies(dc_freqs)
    ac_table = hf.HuffmanTable.from_frequencies(ac_freqs)
    writer = hf.BitWriter()
    for dc_ev, ac_ev in events:
        for s, amp, nbits in dc_ev:
            dc_table.write_symbol(writer, s)
            writer.write(amp, nbits)
        for s, amp, nbits in ac_ev:
            ac_table.write_symbol(writer, s)
            writer.write(amp, nbits)
    reader = hf.BitReader(writer.getvalue())
    prev = 0
    for block in blocks:
        decoded, prev = hf.decode_block(reader, dc_table, ac_table, prev)
        assert np.array_equal(decoded, block)


def test_all_zero_block_is_just_eob():
    block = np.zeros((8, 8), dtype=np.int32)
    dc_ev, ac_ev, dc = hf.block_symbols(block, prev_dc=0)
    assert dc == 0
    assert dc_ev == [(0, 0, 0)]
    assert ac_ev == [(hf.EOB, 0, 0)]


def test_zrl_runs_of_zeros():
    block = np.zeros((8, 8), dtype=np.int32)
    flat = np.zeros(64, dtype=np.int32)
    flat[0] = 5
    flat[40] = 3  # 39 zeros before it in zig-zag order
    block = hf.zigzag_unscan(flat)
    _dc, ac_ev, _ = hf.block_symbols(block, 0)
    symbols = [s for s, _a, _n in ac_ev]
    assert symbols.count(hf.ZRL) == 2  # 39 zeros = 2 ZRL + run of 7
    assert symbols[-1] == hf.EOB
