"""Tests for the cost model and device profiles."""

import math

import pytest

from repro.dataprep.cost import (
    CPU_PROFILE,
    FPGA_PROFILE,
    GPU_PROFILE,
    OP_KINDS,
    DeviceProfile,
    OpCost,
    PipelineCost,
    cpu_mem_traffic,
    profile_by_name,
)
from repro.dataprep.ops_audio import audio_pipeline
from repro.dataprep.ops_image import image_pipeline
from repro.dataprep.pipeline import SampleSpec
from repro.errors import DataprepError

IMAGE_SPEC = SampleSpec("jpeg", (256, 256, 3), 45_000)
AUDIO_SPEC = SampleSpec("audio_pcm", (111_360,), 222_720)


def test_opcost_validation():
    with pytest.raises(DataprepError):
        OpCost("x", "not-a-kind", 1, 1, 1, 1)
    with pytest.raises(DataprepError):
        OpCost("x", "crop", -1, 1, 1, 1)


def test_every_profile_covers_every_kind():
    for profile in (CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE):
        for kind in OP_KINDS:
            assert profile.speedup(kind) > 0


def test_profile_lookup():
    assert profile_by_name("fpga") is FPGA_PROFILE
    assert profile_by_name("cpu-core") is CPU_PROFILE
    with pytest.raises(DataprepError):
        profile_by_name("tpu")


def test_unknown_kind_rejected():
    with pytest.raises(DataprepError):
        CPU_PROFILE.speedup("warp")
    profile = DeviceProfile("partial", {"crop": 2.0})
    with pytest.raises(DataprepError):
        profile.speedup("decode")


def test_cpu_profile_is_identity():
    cost = image_pipeline().cost(IMAGE_SPEC)
    assert CPU_PROFILE.effective_cycles(cost) == pytest.approx(cost.cpu_cycles)


def test_fpga_is_faster_than_cpu_core_everywhere():
    for pipeline, spec in (
        (image_pipeline(), IMAGE_SPEC),
        (audio_pipeline(), AUDIO_SPEC),
    ):
        cost = pipeline.cost(spec)
        assert FPGA_PROFILE.sample_rate(cost) > CPU_PROFILE.sample_rate(cost)


def test_gpu_weak_at_decode_strong_at_elementwise():
    """The §V-B asymmetry: FPGA ≫ GPU on decode-heavy image prep."""
    image_cost = image_pipeline().cost(IMAGE_SPEC)
    assert FPGA_PROFILE.sample_rate(image_cost) > 5 * GPU_PROFILE.sample_rate(
        image_cost
    )


def test_fpga_beats_gpu_on_audio_small_ffts():
    audio_cost = audio_pipeline().cost(AUDIO_SPEC)
    assert FPGA_PROFILE.sample_rate(audio_cost) > GPU_PROFILE.sample_rate(audio_cost)


def test_calibrated_saturation_points():
    """The baseline host (48×2.5 GHz) saturates at the paper's numbers:
    ≈18.3 accelerators for Inception-v4, ≈4.4 for Transformer-SR."""
    budget = 48 * 2.5e9
    image_rate = budget / image_pipeline().cost(IMAGE_SPEC).cpu_cycles
    audio_rate = budget / audio_pipeline().cost(AUDIO_SPEC).cpu_cycles
    assert image_rate / 1669 == pytest.approx(18.3, rel=0.03)
    assert audio_rate / 2001 == pytest.approx(4.4, rel=0.03)


def test_empty_pipeline_cost_rate_infinite():
    empty = PipelineCost(())
    assert math.isinf(FPGA_PROFILE.sample_rate(empty))
    assert empty.cpu_cycles == 0
    assert empty.mem_traffic == 0


def test_cache_absorption_halves_traffic():
    assert cpu_mem_traffic(100, 200) == pytest.approx(150.0)


def test_image_memory_share_calibration():
    """Figure 11a: formatting+augmentation ≈59%, data load ≈37% of the
    baseline's memory traffic."""
    cost = image_pipeline().cost(IMAGE_SPEC)
    fmt_aug = cost.mem_traffic
    load = cost.bytes_out
    ssd = IMAGE_SPEC.nbytes
    total = fmt_aug + load + ssd
    assert fmt_aug / total == pytest.approx(0.592, abs=0.05)
    assert load / total == pytest.approx(0.367, abs=0.05)
