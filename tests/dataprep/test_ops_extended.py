"""Tests for the extended augmentation ops: time warp, MFCC, RICAP."""

import numpy as np
import pytest

from repro.dataprep.ops_audio import Mfcc, TimeWarp
from repro.dataprep.ops_batch import Ricap, apply_batch_op
from repro.dataprep.pipeline import SampleSpec
from repro.errors import DataprepError


# -- time warp ----------------------------------------------------------------


def test_time_warp_preserves_shape_and_range(rng):
    feats = rng.normal(size=(120, 64)).astype(np.float32)
    out = TimeWarp(max_warp=20).apply(feats, rng)
    assert out.shape == feats.shape
    assert out.dtype == feats.dtype
    # Interpolation cannot exceed the input's envelope.
    assert out.max() <= feats.max() + 1e-5
    assert out.min() >= feats.min() - 1e-5


def test_time_warp_changes_content(rng):
    feats = np.cumsum(rng.normal(size=(100, 32)), axis=0).astype(np.float32)
    outs = [TimeWarp(max_warp=16).apply(feats, rng) for _ in range(8)]
    assert any(not np.allclose(o, feats) for o in outs)


def test_time_warp_zero_budget_is_identity(rng):
    feats = rng.normal(size=(50, 16)).astype(np.float32)
    out = TimeWarp(max_warp=0).apply(feats, rng)
    assert np.array_equal(out, feats)


def test_time_warp_endpoints_fixed(rng):
    feats = rng.normal(size=(80, 8)).astype(np.float32)
    out = TimeWarp(max_warp=10).apply(feats, rng)
    assert np.allclose(out[0], feats[0], atol=1e-5)
    assert np.allclose(out[-1], feats[-1], atol=1e-4)


def test_time_warp_validation(rng):
    with pytest.raises(DataprepError):
        TimeWarp(max_warp=-1)
    with pytest.raises(DataprepError):
        TimeWarp().apply(rng.normal(size=10), rng)


def test_time_warp_cost():
    spec = SampleSpec("mel", (100, 64), 100 * 64 * 4)
    op_cost, out_spec = TimeWarp().cost(spec)
    assert out_spec == spec
    assert op_cost.kind == "masking"


# -- MFCC ---------------------------------------------------------------------


def test_mfcc_shape_and_energy_compaction(rng):
    feats = rng.normal(size=(60, 40)).astype(np.float32)
    out = Mfcc(n_coefficients=13).apply(feats, rng)
    assert out.shape == (60, 13)
    assert out.dtype == np.float32


def test_mfcc_constant_input_concentrates_in_c0():
    feats = np.full((10, 32), 3.0, dtype=np.float32)
    out = Mfcc(n_coefficients=8).apply(feats, np.random.default_rng(0))
    # A constant along the mel axis has only a DC component.
    assert np.allclose(out[:, 1:], 0.0, atol=1e-5)
    assert np.all(out[:, 0] > 0)


def test_mfcc_orthonormal_basis_preserves_energy(rng):
    feats = rng.normal(size=(20, 24)).astype(np.float32)
    full = Mfcc(n_coefficients=24).apply(feats, rng)
    assert np.allclose(
        np.sum(full**2, axis=1), np.sum(feats.astype(np.float64) ** 2, axis=1),
        rtol=1e-5,
    )


def test_mfcc_cost_spec_threading():
    spec = SampleSpec("mel", (100, 64), 100 * 64 * 4)
    op_cost, out_spec = Mfcc(n_coefficients=13).cost(spec)
    assert out_spec.kind == "mfcc"
    assert out_spec.shape == (100, 13)
    assert op_cost.bytes_out == 100 * 13 * 4


def test_mfcc_validation(rng):
    with pytest.raises(DataprepError):
        Mfcc(n_coefficients=0)
    with pytest.raises(DataprepError):
        Mfcc(n_coefficients=40).apply(rng.normal(size=(5, 8)), rng)


# -- RICAP --------------------------------------------------------------------


def _images(rng, count=4, h=40, w=40):
    return [
        rng.integers(0, 256, (h, w, 3), dtype=np.uint8) for _ in range(count)
    ]


def test_ricap_output_geometry(rng):
    op = Ricap(out_height=32, out_width=32)
    out = op.apply(_images(rng), rng)
    assert out.shape == (32, 32, 3)
    assert out.dtype == np.uint8


def test_ricap_weights_sum_to_one(rng):
    op = Ricap(out_height=32, out_width=32)
    op.apply(_images(rng), rng)
    weights = op.mix_weights()
    assert len(weights) == 4
    assert sum(weights) == pytest.approx(1.0)
    assert all(w >= 0 for w in weights)


def test_ricap_regions_come_from_sources(rng):
    # Four constant-valued sources: every output pixel must carry one of
    # the four source values.
    sources = [np.full((40, 40, 3), v, dtype=np.uint8) for v in (10, 60, 170, 240)]
    op = Ricap(out_height=24, out_width=24)
    out = op.apply(sources, rng)
    assert set(np.unique(out)) <= {10, 60, 170, 240}
    # With min_fraction > 0 every source contributes.
    assert len(set(np.unique(out))) == 4


def test_ricap_validation(rng):
    op = Ricap(out_height=32, out_width=32)
    with pytest.raises(DataprepError):
        op.apply(_images(rng, count=3), rng)
    with pytest.raises(DataprepError):
        op.apply(_images(rng, h=16, w=16), rng)
    with pytest.raises(DataprepError):
        Ricap(min_fraction=0.0)
    with pytest.raises(DataprepError):
        Ricap().mix_weights()


def test_ricap_cost():
    spec = SampleSpec("image_u8", (256, 256, 3), 256 * 256 * 3)
    op_cost = Ricap().cost(spec)
    assert op_cost.bytes_in == 4 * spec.nbytes
    assert op_cost.bytes_out == 224 * 224 * 3


def test_apply_batch_op_produces_batch(rng):
    op = Ricap(out_height=24, out_width=24)
    outs = apply_batch_op(op, _images(rng, count=6), rng)
    assert len(outs) == 6
    assert all(o.shape == (24, 24, 3) for o in outs)
    with pytest.raises(DataprepError):
        apply_batch_op(op, [], rng)
