"""Chaos suite: every injected fault heals to bit-identical output.

The resilience contract of ``repro.dataprep.engine``: whatever faults
chaos injects — worker crashes, hangs, lost completion messages,
transient payload corruption — the delivered batches are bit-identical
to the fault-free serial run, within the configured retry budget, with
the recovery accounted exactly in the engine's report and the ``prep.*``
obs counters.  Persistent corruption (``poison``) instead quarantines
the single bad sample with a deterministic fill, so parallel and serial
runs under the same chaos still agree bit-for-bit.
"""

import numpy as np
import pytest

from repro import obs
from repro.dataprep import (
    ChaosSpec,
    PrepEngine,
    ResilienceConfig,
    corrupt_payload,
    image_pipeline,
    run_engine,
    wrap_loader,
)
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.errors import CodecError, DataprepError, PrepWorkerCrash

_H = _W = 24
_CROP = 16
_SAMPLE_NBYTES = _CROP * _CROP * 3 * 4

#: Fast-recovery policy so the whole suite runs in seconds.
_RES = ResilienceConfig(
    shard_timeout_s=2.0,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    heartbeat_timeout_s=8.0,
)


def _blob(index):
    rng = np.random.default_rng(2000 + index)
    img = rng.integers(0, 256, (_H, _W, 3), dtype=np.uint8)
    return jpeg_codec.encode(img, quality=80)


def _loader(start, count):
    return [_blob(start + i) for i in range(count)]


def _pipe():
    return image_pipeline(out_height=_CROP, out_width=_CROP)


def _run(chaos=None, num_workers=2, resilience=_RES, seed=7, **kwargs):
    return run_engine(
        _pipe(), _loader, 20, 4, seed=seed, num_workers=num_workers,
        sample_nbytes=_SAMPLE_NBYTES, resilience=resilience, chaos=chaos,
        **kwargs,
    )


@pytest.fixture(scope="module")
def clean():
    return _run(num_workers=0, resilience=None)


def _assert_identical(batches, reference):
    assert len(batches) == len(reference)
    for a, b in zip(batches, reference):
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b)


@pytest.mark.parametrize("kind", ["crash", "hang", "lose_result"])
def test_process_faults_heal_bit_identically(kind, clean):
    chaos = ChaosSpec(seed=7, **{kind: {1}})
    registry = obs.MetricsRegistry()
    with obs.session(metrics=registry):
        with PrepEngine(
            _pipe(), _loader, 20, 4, seed=7, num_workers=2,
            sample_nbytes=_SAMPLE_NBYTES, resilience=_RES, chaos=chaos,
        ) as engine:
            batches = [b.data.copy() for b in engine.batches()]
            report = engine.report
    _assert_identical(batches, clean)
    assert report.retries >= 1
    assert report.respawns >= 1
    if kind == "crash":
        assert report.worker_crashes >= 1
    else:
        # A hung worker and a stranded slot are both reclaimed by the
        # per-shard deadline.
        assert report.deadline_expiries >= 1
    assert report.shards_quarantined == 0
    assert report.samples_quarantined == 0
    counters = registry.to_manifest()["counters"]
    assert counters["prep.retries"] == report.retries
    assert counters.get("prep.respawns", 0) == report.respawns
    assert counters.get("prep.worker_crashes", 0) == report.worker_crashes
    assert (
        counters.get("prep.deadline_expiries", 0) == report.deadline_expiries
    )


def test_transient_corruption_heals_without_retries(clean):
    # A first-load glitch is healed by the engine's reload-retry inside
    # the worker: bit-identical output, no supervisor-level recovery.
    chaos = ChaosSpec(seed=7, corrupt={1})
    with PrepEngine(
        _pipe(), _loader, 20, 4, seed=7, num_workers=2,
        sample_nbytes=_SAMPLE_NBYTES, resilience=_RES, chaos=chaos,
    ) as engine:
        batches = [b.data.copy() for b in engine.batches()]
        report = engine.report
    _assert_identical(batches, clean)
    assert report.as_dict() == {k: 0 for k in report.as_dict()}


def test_poison_quarantines_one_sample_deterministically(clean):
    chaos = ChaosSpec(seed=7, poison={1})
    victim = chaos.poisoned_sample(1, 4)

    def collect(num_workers):
        with PrepEngine(
            _pipe(), _loader, 20, 4, seed=7, num_workers=num_workers,
            sample_nbytes=_SAMPLE_NBYTES, resilience=_RES, chaos=chaos,
        ) as engine:
            out = [
                (b.index, b.data.copy(), b.quarantined)
                for b in engine.batches()
            ]
            return out, engine.report

    serial, serial_report = collect(0)
    parallel, parallel_report = collect(2)
    # Parallel matches serial bit-for-bit under the same chaos: the
    # quarantine fill is deterministic.
    assert len(serial) == len(parallel)
    for (ia, da, qa), (ib, db, qb) in zip(serial, parallel):
        assert ia == ib and qa == qb
        assert np.array_equal(da, db)
    assert serial_report.samples_quarantined == 1
    assert parallel_report.samples_quarantined == 1
    by_index = {i: (d, q) for i, d, q in parallel}
    data, quarantined = by_index[1]
    assert quarantined == (victim,)
    # The fill is the deterministic zero fill; healthy samples of the
    # same batch match the clean run.
    assert not data[victim].any()
    healthy = [i for i in range(4) if i != victim]
    assert np.array_equal(data[healthy], clean[1][healthy])
    # Every other batch is untouched.
    for i, d, q in parallel:
        if i != 1:
            assert q == ()
            assert np.array_equal(d, clean[i])


def test_persistent_crash_quarantines_the_shard(clean):
    chaos = ChaosSpec(seed=7, crash={1}, first_attempt_only=False)
    registry = obs.MetricsRegistry()
    with obs.session(metrics=registry):
        with PrepEngine(
            _pipe(), _loader, 20, 4, seed=7, num_workers=2,
            sample_nbytes=_SAMPLE_NBYTES, resilience=_RES, chaos=chaos,
        ) as engine:
            batches = [b.data.copy() for b in engine.batches()]
            report = engine.report
    # The in-process reference path re-derives the same bits.
    _assert_identical(batches, clean)
    assert report.shards_quarantined == 1
    assert report.retries == _RES.max_shard_retries
    assert report.samples_quarantined == 0
    counters = registry.to_manifest()["counters"]
    assert counters["prep.shards_quarantined"] == 1


def test_retry_budget_exhaustion_raises(clean):
    chaos = ChaosSpec(seed=7, crash={1}, first_attempt_only=False)
    res = ResilienceConfig(
        shard_timeout_s=2.0, backoff_base_s=0.01, backoff_cap_s=0.05,
        max_total_retries=0,
    )
    with pytest.raises(PrepWorkerCrash, match="retry budget exhausted"):
        _run(chaos=chaos, resilience=res)


def test_process_chaos_requires_workers():
    for kind in ("crash", "hang", "lose_result"):
        with pytest.raises(DataprepError):
            _run(chaos=ChaosSpec(seed=7, **{kind: {0}}), num_workers=0)


def test_chaos_spec_sample_is_deterministic():
    a = ChaosSpec.sample(
        42, 100, crash_rate=0.1, hang_rate=0.1, corrupt_rate=0.2
    )
    b = ChaosSpec.sample(
        42, 100, crash_rate=0.1, hang_rate=0.1, corrupt_rate=0.2
    )
    assert a == b
    assert a.faulted_shards
    assert a.faulted_shards <= frozenset(range(100))
    # Disjoint bands: each shard suffers at most one fault kind.
    kinds = [a.crash, a.hang, a.lose_result, a.corrupt, a.poison]
    for i, left in enumerate(kinds):
        for right in kinds[i + 1:]:
            assert not (left & right)
    # A shard's fate is independent of the shard count.
    wider = ChaosSpec.sample(
        42, 200, crash_rate=0.1, hang_rate=0.1, corrupt_rate=0.2
    )
    assert a.crash <= wider.crash and a.corrupt <= wider.corrupt
    with pytest.raises(DataprepError):
        ChaosSpec.sample(42, 10, crash_rate=0.9, hang_rate=0.2)
    with pytest.raises(DataprepError):
        ChaosSpec.sample(42, 10, crash_rate=-0.1)


def test_corrupt_payload_is_rejected_by_the_codec():
    blob = _blob(0)
    bad = corrupt_payload(blob)
    assert bad == corrupt_payload(blob)  # deterministic
    assert len(bad) < len(blob)
    with pytest.raises(CodecError):
        jpeg_codec.decode(bad)
    with pytest.raises(DataprepError):
        corrupt_payload(np.zeros(4))


def test_wrap_loader_identity_without_payload_faults():
    spec = ChaosSpec(seed=7, crash={1})
    assert wrap_loader(_loader, spec, 4) is _loader
    wrapped = wrap_loader(_loader, ChaosSpec(seed=7, corrupt={0}), 4)
    assert wrapped is not _loader
    first = wrapped(0, 4)
    second = wrapped(0, 4)  # transient: second load reads clean bytes
    assert first != second
    assert second == _loader(0, 4)


def test_drill_covers_every_failure_mode():
    from repro.dataprep.drill import run_drill

    results = run_drill(num_samples=12, batch_size=4, num_workers=2)
    names = [r.name for r in results]
    assert names == [
        "crash", "hang", "lost-result", "corrupt-transient", "poison",
        "crash-persistent",
    ]
    for r in results:
        assert r.ok, f"{r.name}: {r.error}"
