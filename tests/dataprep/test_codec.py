"""End-to-end tests for the JPEG codec."""

import numpy as np
import pytest

from repro.dataprep.jpeg import JpegCodec, decode, encode
from repro.errors import CodecError


def test_roundtrip_shape_and_dtype(smooth_image):
    out = decode(encode(smooth_image))
    assert out.shape == smooth_image.shape
    assert out.dtype == np.uint8


def test_lossy_error_is_bounded(smooth_image):
    out = decode(encode(smooth_image, quality=90))
    err = np.abs(out.astype(int) - smooth_image.astype(int))
    assert err.mean() < 10
    assert err.max() < 70


def test_higher_quality_lower_error(smooth_image):
    errs = []
    for quality in (25, 60, 95):
        out = decode(encode(smooth_image, quality=quality))
        errs.append(np.abs(out.astype(float) - smooth_image).mean())
    assert errs[0] > errs[1] > errs[2]


def test_compression_actually_compresses(smooth_image):
    data = encode(smooth_image, quality=75)
    assert len(data) < smooth_image.nbytes / 3


def test_higher_quality_bigger_stream(smooth_image):
    small = len(encode(smooth_image, quality=30))
    big = len(encode(smooth_image, quality=95))
    assert big > small


def test_flat_image_nearly_lossless():
    flat = np.full((16, 16, 3), 77, dtype=np.uint8)
    out = decode(encode(flat, quality=95))
    assert np.abs(out.astype(int) - 77).max() <= 2


def test_odd_dimensions_roundtrip(rng):
    img = rng.integers(0, 256, (17, 23, 3), dtype=np.uint8)
    out = decode(encode(img, quality=50))
    assert out.shape == img.shape


def test_tiny_image(rng):
    img = rng.integers(0, 256, (1, 1, 3), dtype=np.uint8)
    out = decode(encode(img))
    assert out.shape == (1, 1, 3)


def test_no_subsampling_mode(smooth_image):
    codec = JpegCodec(quality=90, subsample=False)
    out = JpegCodec.decode(codec.encode(smooth_image))
    assert out.shape == smooth_image.shape
    # 4:4:4 at the same quality is at least as accurate on chroma-rich data.
    sub = decode(encode(smooth_image, quality=90, subsample=True))
    err_444 = np.abs(out.astype(float) - smooth_image).mean()
    err_420 = np.abs(sub.astype(float) - smooth_image).mean()
    assert err_444 <= err_420 + 0.5


def test_input_validation():
    with pytest.raises(CodecError):
        encode(np.zeros((4, 4), dtype=np.uint8))
    with pytest.raises(CodecError):
        encode(np.zeros((4, 4, 3), dtype=np.float32))
    with pytest.raises(CodecError):
        decode(b"not a jpeg stream")


def test_deterministic_encoding(smooth_image):
    assert encode(smooth_image) == encode(smooth_image)
