"""Tests for the audio front-end (STFT, Mel filter bank)."""

import numpy as np
import pytest

import repro.dataprep.audio.mel as mel
import repro.dataprep.audio.stft as stft
from repro.errors import DataprepError


def test_hann_window_endpoints_and_peak():
    w = stft.hann_window(400)
    assert w[0] == pytest.approx(0.0)
    assert w.max() == pytest.approx(1.0, abs=1e-4)
    with pytest.raises(DataprepError):
        stft.hann_window(0)


def test_frame_count_formula(rng):
    signal = rng.normal(size=16_000)
    frames = stft.frame_signal(signal)
    assert frames.shape[0] == stft.num_frames(16_000)
    assert frames.shape[1] == stft.WIN_LENGTH


def test_short_signal_padded(rng):
    signal = rng.normal(size=100)  # shorter than one window
    frames = stft.frame_signal(signal)
    assert frames.shape == (1, stft.WIN_LENGTH)
    assert np.array_equal(frames[0, :100], signal)
    assert np.all(frames[0, 100:] == 0)


def test_frame_hop_alignment():
    signal = np.arange(1000).astype(float)
    frames = stft.frame_signal(signal, win_length=400, hop_length=160)
    assert frames[1, 0] == 160.0
    assert frames[2, 0] == 320.0


def test_stft_pure_tone_peaks_at_right_bin():
    sr = 16_000
    freq = 1000.0
    t = np.arange(sr) / sr
    tone = np.sin(2 * np.pi * freq * t)
    power = stft.power_spectrogram(tone)
    peak_bin = power.mean(axis=0).argmax()
    expected_bin = round(freq * stft.N_FFT / sr)
    assert abs(int(peak_bin) - expected_bin) <= 1


def test_stft_validation(rng):
    with pytest.raises(DataprepError):
        stft.stft(rng.normal(size=(10, 10)))
    with pytest.raises(DataprepError):
        stft.stft(rng.normal(size=1000), n_fft=128, win_length=400)
    with pytest.raises(DataprepError):
        stft.frame_signal(np.array([]))


def test_mel_scale_roundtrip():
    hz = np.array([0.0, 440.0, 4000.0, 8000.0])
    assert np.allclose(mel.mel_to_hz(mel.hz_to_mel(hz)), hz)


def test_mel_scale_monotone():
    hz = np.linspace(0, 8000, 100)
    m = mel.hz_to_mel(hz)
    assert np.all(np.diff(m) > 0)


def test_filter_bank_shape_and_coverage():
    bank = mel.mel_filter_bank(n_mels=40, n_fft=512, sample_rate=16_000)
    assert bank.shape == (40, 257)
    assert np.all(bank >= 0)
    # Interior FFT bins are covered by at least one filter.
    coverage = bank.sum(axis=0)
    assert np.all(coverage[2:-2] > 0)


def test_filter_bank_rows_are_triangles():
    bank = mel.mel_filter_bank(n_mels=20)
    for row in bank:
        support = np.nonzero(row)[0]
        if support.size < 3:
            continue
        peak = row.argmax()
        assert np.all(np.diff(row[support[0] : peak + 1]) >= -1e-12)
        assert np.all(np.diff(row[peak : support[-1] + 1]) <= 1e-12)


def test_filter_bank_validation():
    with pytest.raises(DataprepError):
        mel.mel_filter_bank(n_mels=0)
    with pytest.raises(DataprepError):
        mel.mel_filter_bank(fmin=5000, fmax=1000)


def test_mel_spectrogram_shape(rng):
    signal = rng.normal(size=16_000)
    feats = mel.mel_spectrogram(signal, n_mels=64)
    assert feats.shape == (stft.num_frames(16_000), 64)
    assert feats.dtype == np.float32


def test_log_compression_applied(rng):
    signal = rng.normal(size=8_000)
    linear = mel.mel_spectrogram(signal, log=False)
    logged = mel.mel_spectrogram(signal, log=True)
    assert np.all(linear >= 0)
    assert logged.min() < 0  # log of small powers goes negative


def test_frames_are_owned_and_writable(rng):
    """Stride-tricks framing must not hand out views of its scratch
    buffer: frames are mutated in place by the STFT windowing."""
    signal = rng.normal(size=2_000)
    frames = stft.frame_signal(signal)
    assert frames.flags.writeable
    assert frames.flags.c_contiguous
    before = signal.copy()
    frames[:] = 0.0
    assert np.array_equal(signal, before)


def test_stft_matches_per_frame_reference(rng):
    """Golden pin: the batched FFT equals the frame-at-a-time spec."""
    for size in (100, 1_000, 16_000):
        signal = rng.normal(size=size)
        np.testing.assert_allclose(
            stft.stft(signal), stft.stft_reference(signal), rtol=1e-12, atol=1e-12
        )


def test_filter_bank_matches_reference_exactly():
    """Golden pin: the vectorized/cached bank equals the loop spec."""
    for kwargs in (
        {},
        {"n_mels": 40, "n_fft": 512, "sample_rate": 16_000},
        {"n_mels": 20, "fmin": 100.0, "fmax": 7_000.0},
    ):
        assert np.array_equal(
            mel.mel_filter_bank(**kwargs), mel.mel_filter_bank_reference(**kwargs)
        )


def test_filter_bank_cache_returns_fresh_copies():
    a = mel.mel_filter_bank(n_mels=24)
    b = mel.mel_filter_bank(n_mels=24)
    assert a is not b
    assert a.flags.writeable
    a[:] = -1.0  # mutating a caller's copy...
    assert np.array_equal(b, mel.mel_filter_bank(n_mels=24))  # ...harms nobody


def test_mel_spectrogram_matches_uncached_matmul(rng):
    signal = rng.normal(size=8_000)
    power = stft.power_spectrogram(signal)
    expected = power @ mel.mel_filter_bank_reference(n_mels=64).T
    got = mel.mel_spectrogram(signal, n_mels=64, log=False)
    np.testing.assert_allclose(got, expected.astype(np.float32), rtol=1e-5)
