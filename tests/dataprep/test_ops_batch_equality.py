"""Batched-vs-scalar bit-equality: the tentpole contract.

Every ``PrepOp.apply_batch`` must satisfy, bit for bit,
``apply_batch(batch, rngs)[i] == apply(batch[i], rngs[i])`` — across
ops, dtypes, batch sizes (including N=1 and a ragged final batch) and
whole pipelines.  These tests drive both paths on the *same* spawned
streams and compare exactly; no tolerance anywhere.
"""

import numpy as np
import pytest

from repro.dataprep import (
    CastToFloat,
    ClipCast,
    ClipCrop,
    GaussianNoise,
    MelFilterBank,
    Mirror,
    Normalize,
    RandomCrop,
    SpecMasking,
    Spectrogram,
    TemporalSubsample,
    audio_pipeline,
    image_pipeline,
    video_pipeline,
)
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.jpeg import entropy_fast
from repro.dataprep.ops_video import encode_clip
from repro.dataprep.pipeline import spawn_rngs
from repro.errors import CodecError


def _images(n, h=24, w=24, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.integers(0, 256, (h, w, 3), dtype=np.uint8) for _ in range(n)]
    )


def _assert_batch_equals_scalar(op, batch, seed=7):
    rngs_a = spawn_rngs(np.random.default_rng(seed), len(batch))
    rngs_b = spawn_rngs(np.random.default_rng(seed), len(batch))
    batched = op.apply_batch(
        batch.copy() if isinstance(batch, np.ndarray) else list(batch), rngs_a
    )
    for i in range(len(batch)):
        scalar = op.apply(
            batch[i].copy() if isinstance(batch[i], np.ndarray) else batch[i],
            rngs_b[i],
        )
        got = batched[i]
        assert got.dtype == scalar.dtype, op.name
        assert np.array_equal(got, scalar), f"{op.name} differs at sample {i}"


@pytest.mark.parametrize("n", [1, 3, 8])
def test_image_ops_batch_equality(n):
    batch = _images(n)
    for op in [
        RandomCrop(16, 16),
        Mirror(0.5),
        GaussianNoise(4.0),
        CastToFloat(),
    ]:
        _assert_batch_equals_scalar(op, batch, seed=n)


def test_mirror_all_and_none_flipped():
    batch = _images(4)
    _assert_batch_equals_scalar(Mirror(1.0), batch)
    _assert_batch_equals_scalar(Mirror(0.0), batch)


@pytest.mark.parametrize("n", [1, 5])
def test_audio_ops_batch_equality(n):
    rng = np.random.default_rng(11)
    batch = np.stack(
        [
            (rng.standard_normal(4000) * 8000).astype(np.int16)
            for _ in range(n)
        ]
    )
    spec_op = Spectrogram()
    _assert_batch_equals_scalar(spec_op, batch, seed=n)
    rngs = spawn_rngs(np.random.default_rng(0), n)
    specs = spec_op.apply_batch(batch, rngs)
    for op in [MelFilterBank(), SpecMasking(8, 4), Normalize()]:
        _assert_batch_equals_scalar(op, specs, seed=n)
        rngs = spawn_rngs(np.random.default_rng(0), n)
        specs = op.apply_batch(specs, rngs)


def test_video_ops_batch_equality():
    rng = np.random.default_rng(3)
    clips = [
        encode_clip(
            [
                rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
                for _ in range(4)
            ]
        )
        for _ in range(3)
    ]
    pipe = video_pipeline(out_height=12, out_width=12, stride=2)
    decode = pipe.ops[0]
    rngs = spawn_rngs(np.random.default_rng(0), len(clips))
    frames = decode.apply_batch(clips, rngs)
    for i, clip in enumerate(clips):
        assert np.array_equal(
            frames[i], decode.apply(clip, np.random.default_rng())
        )
    for op in [TemporalSubsample(2), ClipCrop(12, 12), ClipCast()]:
        _assert_batch_equals_scalar(op, frames)
        rngs = spawn_rngs(np.random.default_rng(0), len(clips))
        frames = op.apply_batch(frames, rngs)


@pytest.mark.parametrize("n", [1, 4, 7])
def test_image_pipeline_end_to_end_bit_identity(n):
    # 7 with batch_size 4 exercises the ragged final shard shape at the
    # run_batch level: vectorized over the whole list at once.
    blobs = [
        jpeg_codec.encode(img, quality=80) for img in _images(n, 40, 40, n)
    ]
    pipe = image_pipeline(out_height=32, out_width=32)
    rngs_a = spawn_rngs(np.random.default_rng(21), n)
    rngs_b = spawn_rngs(np.random.default_rng(21), n)
    vec = pipe.run_batch_vectorized(blobs, rngs_a)
    ref = pipe.run_batch_reference(blobs, rngs_b)
    for i in range(n):
        assert vec[i].dtype == ref[i].dtype
        assert np.array_equal(vec[i], ref[i])


def test_audio_pipeline_end_to_end_bit_identity():
    rng = np.random.default_rng(9)
    batch = np.stack(
        [(rng.standard_normal(4000) * 1000).astype(np.int16) for _ in range(4)]
    )
    pipe = audio_pipeline(max_time_mask=8, max_freq_mask=4)
    vec = pipe.run_batch_vectorized(
        batch, spawn_rngs(np.random.default_rng(5), 4)
    )
    ref = pipe.run_batch_reference(
        batch, spawn_rngs(np.random.default_rng(5), 4)
    )
    for i in range(4):
        assert np.array_equal(vec[i], ref[i])


# -- the lock-step batched entropy decoder ------------------------------


def _plane_tasks(blobs):
    tasks = []
    for blob in blobs:
        frame = jpeg_codec._parse_frame(bytes(blob))
        geometry = jpeg_codec._plane_geometry(
            frame.subsample, frame.h, frame.w
        )
        dc_l, ac_l, dc_c, ac_c = (
            jpeg_codec.table_from_spec(s) for s in frame.specs
        )
        shapes = geometry.plane_shapes
        tasks.append(
            (
                frame.streams[0],
                dc_l,
                ac_l,
                (shapes[0][0] // 8) * (shapes[0][1] // 8),
            )
        )
        for p in (1, 2):
            tasks.append(
                (
                    frame.streams[p],
                    dc_c,
                    ac_c,
                    (shapes[p][0] // 8) * (shapes[p][1] // 8),
                )
            )
    return tasks


def test_decode_planes_batch_matches_decode_plane():
    blobs = [
        jpeg_codec.encode(img, quality=q)
        for img, q in zip(_images(4, 24, 40, 2), [50, 75, 90, 75])
    ]
    tasks = _plane_tasks(blobs)
    batched = entropy_fast.decode_planes_batch(tasks)
    for got, (stream, dc_t, ac_t, nb) in zip(batched, tasks):
        want = entropy_fast.decode_plane(stream, dc_t, ac_t, nb)
        assert np.array_equal(got, want)


def test_decode_planes_batch_single_and_empty():
    blobs = [jpeg_codec.encode(_images(1, 16, 16)[0])]
    tasks = _plane_tasks(blobs)[:1]
    batched = entropy_fast.decode_planes_batch(tasks)
    want = entropy_fast.decode_plane(*tasks[0])
    assert np.array_equal(batched[0], want)
    assert entropy_fast.decode_planes_batch([]) == []


def test_decode_planes_batch_corrupt_stream_raises():
    blobs = [jpeg_codec.encode(_images(1, 16, 16)[0])]
    stream, dc_t, ac_t, nb = _plane_tasks(blobs)[0]
    with pytest.raises(CodecError):
        entropy_fast.decode_planes_batch([(b"\x00" * 64, dc_t, ac_t, nb)])
    with pytest.raises(CodecError):
        # Truncated stream: runs out of bits before the last block.
        entropy_fast.decode_planes_batch([(stream[:2], dc_t, ac_t, nb)])


def test_decode_batch_lockstep_path_identity(monkeypatch):
    blobs = [
        jpeg_codec.encode(img, quality=75) for img in _images(6, 24, 24, 5)
    ]
    want = [jpeg_codec.JpegCodec.decode(b) for b in blobs]
    monkeypatch.setattr(jpeg_codec, "_LOCKSTEP_MIN_IMAGES", 2)
    got = jpeg_codec.decode_batch(blobs)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)
