"""Tests for pipeline composition and the SampleSpec machinery."""

import numpy as np
import pytest

from repro.dataprep.ops_image import CastToFloat, Mirror, RandomCrop
from repro.dataprep.pipeline import PrepPipeline, SampleSpec
from repro.errors import DataprepError


def test_empty_pipeline_rejected():
    with pytest.raises(DataprepError):
        PrepPipeline([])


def test_duplicate_op_names_rejected():
    with pytest.raises(DataprepError):
        PrepPipeline([Mirror(), Mirror()])


def test_spec_validation():
    with pytest.raises(DataprepError):
        SampleSpec("jpeg", (0, 10, 3), 100)
    with pytest.raises(DataprepError):
        SampleSpec("jpeg", (10, 10, 3), -1)
    spec = SampleSpec("jpeg", (10, 10, 3), 100)
    with pytest.raises(DataprepError):
        spec.expect("image_u8", "some_op")


def test_run_batch(rng):
    pipe = PrepPipeline([RandomCrop(8, 8), CastToFloat()])
    batch = [
        np.random.default_rng(i).integers(0, 256, (12, 12, 3), dtype=np.uint8)
        for i in range(3)
    ]
    outs = pipe.run_batch(batch, rng)
    assert len(outs) == 3
    assert all(o.shape == (8, 8, 3) for o in outs)


def test_cost_aggregation():
    pipe = PrepPipeline([RandomCrop(8, 8), CastToFloat()])
    spec = SampleSpec("image_u8", (12, 12, 3), 12 * 12 * 3)
    cost = pipe.cost(spec)
    assert len(cost.ops) == 2
    assert cost.cpu_cycles == sum(op.cpu_cycles for op in cost.ops)
    assert cost.bytes_in == 12 * 12 * 3
    assert cost.bytes_out == 8 * 8 * 3 * 4


def test_cost_split_by_kind():
    pipe = PrepPipeline([RandomCrop(8, 8), Mirror(), CastToFloat()])
    spec = SampleSpec("image_u8", (12, 12, 3), 12 * 12 * 3)
    cost = pipe.cost(spec)
    crops = cost.split(["crop"])
    assert [op.name for op in crops.ops] == ["random_crop"]
    empty = cost.split(["decode"])
    assert empty.cpu_cycles == 0
    assert empty.bytes_out == 0


def test_describe_and_len():
    pipe = PrepPipeline([RandomCrop(8, 8), CastToFloat()], name="p")
    assert len(pipe) == 2
    assert pipe.describe() == "p: random_crop -> cast"


def test_default_rng_used_when_none():
    pipe = PrepPipeline([RandomCrop(8, 8)])
    img = np.zeros((12, 12, 3), dtype=np.uint8)
    out = pipe.run(img)  # must not raise without an explicit rng
    assert out.shape == (8, 8, 3)


def test_by_stage_lookup():
    pipe = PrepPipeline([RandomCrop(8, 8), CastToFloat()])
    spec = SampleSpec("image_u8", (12, 12, 3), 12 * 12 * 3)
    stages = pipe.cost(spec).by_stage()
    assert set(stages) == {"random_crop", "cast"}
    assert stages["cast"].kind == "cast"
