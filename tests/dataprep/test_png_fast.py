"""Equivalence of the vectorized PNG fast paths with their reference loops.

Every optimized stage keeps a byte-at-a-time reference implementation in
the tree; these tests pin the fast paths to them exactly — same filter
choices, same token streams, same compressed bytes — so the container
format never silently forks.
"""

import numpy as np
import pytest

from repro.dataprep.png import codec, deflate, filters, lz77


def _image(shape, seed=0, smooth=False):
    rng = np.random.default_rng(seed)
    if smooth:
        h, w, _ = shape
        gx = np.linspace(0, 220, w)
        img = gx[None, :, None] + rng.normal(0, 6, shape)
        return np.clip(img, 0, 255).astype(np.uint8)
    return rng.integers(0, 256, shape, dtype=np.uint8)


SHAPES = [(8, 8, 3), (17, 23, 3), (33, 65, 1), (16, 16, 4)]


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("smooth", [True, False])
def test_filter_image_matches_reference(shape, smooth):
    img = _image(shape, smooth=smooth)
    ref_methods, ref_res = filters.filter_image_reference(img)
    methods, res = filters.filter_image(img)
    assert methods == ref_methods
    assert np.array_equal(res, ref_res)


@pytest.mark.parametrize("method", sorted(filters.FILTER_NAMES))
def test_unfilter_image_matches_reference_scanlines(method):
    h, w, c = 11, 13, 3
    res = _image((h, w * c, 1), seed=method)[..., 0]
    ref = np.zeros((h, w * c), dtype=np.uint8)
    prev = np.zeros(w * c, dtype=np.uint8)
    for y in range(h):
        ref[y] = filters.unfilter_scanline(res[y], prev, c, method)
        prev = ref[y]
    fast = filters.unfilter_image([method] * h, res, (h, w, c))
    assert np.array_equal(fast, ref.reshape(h, w, c))


@pytest.mark.parametrize("max_chain", [1, 8, 32])
@pytest.mark.parametrize("lazy", [True, False])
def test_tokenize_matches_reference(max_chain, lazy):
    payloads = [
        b"",
        b"abc",
        b"hello world " * 40,
        bytes(np.random.default_rng(0).integers(0, 7, 3000, dtype=np.uint8)),
        b"\x00" * 500,
    ]
    for data in payloads:
        ref = lz77.tokenize_reference(data, max_chain=max_chain, lazy=lazy)
        fast = lz77.tokenize(data, max_chain=max_chain, lazy=lazy)
        assert fast == ref
        assert lz77.expand(fast) == data


def test_expand_overlapping_matches():
    # distance < length exercises the cyclic-tiling path.
    tokens = [65, 66, 67, lz77.Match(length=10, distance=3)]
    assert lz77.expand(tokens) == b"ABC" + b"ABCABCABCA"


@pytest.mark.parametrize("seed", [0, 1])
def test_compress_matches_reference(seed):
    rng = np.random.default_rng(seed)
    data = bytes(rng.integers(0, 24, 5000, dtype=np.uint8))
    ref = deflate.compress_reference(data)
    fast = deflate.compress(data)
    assert fast == ref
    assert deflate.decompress(fast) == data
    assert deflate.decompress_reference(fast) == data


def test_compress_no_matches_stream():
    # 256 distinct bytes once each: no back-references, no distance table.
    data = bytes(range(256))
    blob = deflate.compress(data)
    assert blob == deflate.compress_reference(data)
    assert deflate.decompress(blob) == data


@pytest.mark.parametrize("shape", SHAPES)
def test_png_codec_roundtrip_and_determinism(shape):
    img = _image(shape, smooth=True)
    blob = codec.encode(img)
    assert codec.encode(img) == blob
    assert np.array_equal(codec.decode(blob), img)
