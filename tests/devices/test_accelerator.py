"""Tests for the NN accelerator model."""

import pytest

from repro.devices.accelerator import AcceleratorSpec, NNAccelerator
from repro.errors import ConfigError


def make_spec(**kwargs):
    defaults = dict(name="t", sample_rate=7431, reference_batch=8192)
    defaults.update(kwargs)
    return AcceleratorSpec(**defaults)


def test_reference_point_reproduced():
    spec = make_spec()
    assert spec.throughput(8192) == pytest.approx(7431)


def test_efficiency_monotone_in_batch():
    spec = make_spec()
    rates = [spec.throughput(b) for b in (8, 64, 512, 4096, 32768)]
    assert rates == sorted(rates)


def test_efficiency_bounded_by_peak():
    spec = make_spec()
    assert spec.throughput(10**9) <= spec.peak_rate * (1 + 1e-9)
    assert spec.efficiency(spec.batch_half) == pytest.approx(0.5)


def test_compute_time_scales_superlinearly_at_small_batch():
    spec = make_spec()
    # Halving the batch less than halves throughput, so per-sample time
    # grows as batches shrink.
    t_small = spec.compute_time(64) / 64
    t_big = spec.compute_time(8192) / 8192
    assert t_small > t_big


def test_invalid_spec_rejected():
    with pytest.raises(ConfigError):
        make_spec(sample_rate=0)
    with pytest.raises(ConfigError):
        make_spec(reference_batch=0)
    with pytest.raises(ConfigError):
        make_spec(batch_half=-1)
    with pytest.raises(ConfigError):
        make_spec().efficiency(0)


def test_device_wrapper():
    acc = NNAccelerator("acc0", spec=make_spec())
    assert acc.compute_time(8192) == pytest.approx(8192 / 7431)
    with pytest.raises(ConfigError):
        NNAccelerator("acc1", spec=None)


def test_fresh_id_unique_and_prefixed():
    from repro.devices.base import Device

    ids = {Device.fresh_id("acc") for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith("acc") for i in ids)
