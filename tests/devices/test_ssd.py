"""Tests for the NVMe SSD model."""

import pytest

from repro.devices.base import DeviceKind
from repro.devices.ssd import NvmeSsd
from repro.errors import ConfigError
from repro import units


def test_read_time():
    ssd = NvmeSsd("s0", read_bandwidth=3.2 * units.GB)
    assert ssd.read_time(3.2 * units.GB) == pytest.approx(1.0)
    assert ssd.read_time(0) == 0.0


def test_driver_cycles_scale_with_commands():
    ssd = NvmeSsd("s0")
    one_cmd = ssd.host_driver_cycles(1024)  # below io_size: one command
    assert one_cmd == pytest.approx(ssd.driver_cycles_per_cmd)
    two_cmds = ssd.host_driver_cycles(2 * ssd.io_size)
    assert two_cmds == pytest.approx(2 * ssd.driver_cycles_per_cmd)


def test_kind_set():
    assert NvmeSsd("s0").kind is DeviceKind.SSD


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigError):
        NvmeSsd("s0", read_bandwidth=0)
    ssd = NvmeSsd("s1")
    with pytest.raises(ConfigError):
        ssd.read_time(-1)
    with pytest.raises(ConfigError):
        ssd.host_driver_cycles(-1)
