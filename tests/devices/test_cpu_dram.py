"""Tests for the host CPU and DRAM budgets."""

import pytest

from repro.devices.cpu import HostCpu
from repro.devices.dram import HostDram
from repro.errors import ConfigError
from repro import units


def test_cycle_budget():
    cpu = HostCpu(cores=48, frequency=2.5 * units.GHZ)
    assert cpu.cycle_budget == pytest.approx(120e9)
    assert cpu.time_for(120e9) == pytest.approx(1.0)
    assert cpu.throughput_for(4e6) == pytest.approx(30_000)


def test_cores_required_inverts_throughput():
    cpu = HostCpu()
    demand = 3.93e6 * 30_000  # cycles/s
    assert cpu.cores_required(demand) == pytest.approx(
        demand / cpu.frequency
    )


def test_parallel_efficiency_discount():
    full = HostCpu(parallel_efficiency=1.0)
    half = HostCpu(parallel_efficiency=0.5)
    assert half.cycle_budget == pytest.approx(full.cycle_budget / 2)


def test_cpu_validation():
    with pytest.raises(ConfigError):
        HostCpu(cores=0)
    with pytest.raises(ConfigError):
        HostCpu(parallel_efficiency=1.5)
    with pytest.raises(ConfigError):
        HostCpu().time_for(-1)
    with pytest.raises(ConfigError):
        HostCpu().throughput_for(0)


def test_dram_budget():
    dram = HostDram(bandwidth=239 * units.GB)
    assert dram.time_for(239 * units.GB) == pytest.approx(1.0)
    assert dram.throughput_for(1 * units.MB) == pytest.approx(239_000)


def test_dram_validation():
    with pytest.raises(ConfigError):
        HostDram(bandwidth=0)
    with pytest.raises(ConfigError):
        HostDram().time_for(-5)
    with pytest.raises(ConfigError):
        HostDram().throughput_for(0)
