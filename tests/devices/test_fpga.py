"""Tests for the FPGA device and the Table II/III resource models."""

import pytest

from repro.devices.base import DeviceKind
from repro.devices.fpga import (
    EngineResources,
    FpgaDevice,
    FpgaResourceModel,
    XCVU9P_CAPACITY,
    audio_resource_model,
    image_resource_model,
)
from repro.devices.gpu_prep import GpuPrepDevice
from repro.errors import CapacityError, ConfigError


def test_image_model_matches_table2_totals():
    """Table II: totals 78.7% LUTs, 38.1% FF, 30.5% DSP."""
    util = image_resource_model().utilization()
    assert util["luts"] == pytest.approx(0.787, abs=0.01)
    assert util["ffs"] == pytest.approx(0.381, abs=0.01)
    assert util["dsps"] == pytest.approx(0.305, abs=0.01)


def test_audio_model_matches_table3_totals():
    """Table III: totals 80.2% LUTs, 46.3% FF, 12.2% DSP."""
    util = audio_resource_model().utilization()
    assert util["luts"] == pytest.approx(0.802, abs=0.01)
    assert util["ffs"] == pytest.approx(0.463, abs=0.01)
    assert util["dsps"] == pytest.approx(0.122, abs=0.01)


def test_jpeg_decoder_dominates_image_luts():
    """Table II: the JPEG decoder alone takes 59.6% of LUTs."""
    per_engine = image_resource_model().engine_utilization()
    assert per_engine["jpeg_decoder"]["luts"] == pytest.approx(0.596, abs=0.005)
    biggest = max(per_engine, key=lambda e: per_engine[e]["luts"])
    assert biggest == "jpeg_decoder"


def test_spectrogram_dominates_audio_luts():
    """Table III: the spectrogram engine takes 52.6% of LUTs."""
    per_engine = audio_resource_model().engine_utilization()
    assert per_engine["spectrogram"]["luts"] == pytest.approx(0.526, abs=0.005)


def test_both_configurations_fit_the_part():
    image_resource_model().check_fits()
    audio_resource_model().check_fits()


def test_over_capacity_rejected():
    huge = EngineResources("huge", XCVU9P_CAPACITY.luts + 1, 0, 0, 0)
    with pytest.raises(CapacityError):
        FpgaResourceModel([huge])


def test_with_engine_partial_reconfiguration():
    model = image_resource_model()
    extra = EngineResources("png_decoder", 50_000, 40_000, 16, 64)
    bigger = model.with_engine(extra)
    assert len(bigger.engines) == len(model.engines) + 1
    assert bigger.utilization()["luts"] > model.utilization()["luts"]
    # The original is unchanged (functional update).
    assert len(model.engines) == 7


def test_duplicate_engine_rejected():
    model = image_resource_model()
    with pytest.raises(ConfigError):
        model.with_engine(EngineResources("crop", 1, 1, 0, 0))


def test_engine_resources_addition():
    a = EngineResources("a", 1, 2, 3, 4)
    b = EngineResources("b", 10, 20, 30, 40)
    total = a + b
    assert (total.luts, total.ffs, total.brams, total.dsps) == (11, 22, 33, 44)


def test_fpga_device_defaults():
    fpga = FpgaDevice("f0")
    assert fpga.kind is DeviceKind.PREP_ACCELERATOR
    assert fpga.pool_link_bandwidth == pytest.approx(12.5e9)
    with pytest.raises(ConfigError):
        FpgaDevice("f1", ethernet_bandwidth=0)


def test_gpu_prep_device():
    gpu = GpuPrepDevice("g0")
    assert gpu.kind is DeviceKind.PREP_ACCELERATOR
    assert not gpu.supports_generic_p2p
