"""Property-based tests for entropy-coding primitives."""

from hypothesis import given, settings, strategies as st

from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    decode_amplitude,
    encode_amplitude,
    magnitude_category,
)


@given(st.integers(min_value=-32767, max_value=32767))
def test_amplitude_roundtrip(value):
    size, bits = encode_amplitude(value)
    assert decode_amplitude(size, bits) == value
    assert size == magnitude_category(value)


@given(
    st.lists(
        st.tuples(st.integers(0, 65535), st.integers(1, 16)).filter(
            lambda t: t[0] < (1 << t[1])
        ),
        min_size=1,
        max_size=300,
    )
)
def test_bitstream_roundtrip(items):
    writer = BitWriter()
    for value, nbits in items:
        writer.write(value, nbits)
    reader = BitReader(writer.getvalue())
    for value, nbits in items:
        assert reader.read(nbits) == value


@given(
    freqs=st.dictionaries(
        keys=st.integers(min_value=0, max_value=255),
        values=st.integers(min_value=1, max_value=10_000),
        min_size=1,
        max_size=150,
    ),
    message=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_huffman_prefix_code_roundtrip(freqs, message):
    """Any frequency table yields a decodable ≤16-bit prefix code."""
    table = HuffmanTable.from_frequencies(freqs)
    lengths = [length for _, length in table._encode.values()]
    assert max(lengths) <= 16
    # Kraft inequality: the code is a valid prefix code.
    assert sum(2.0**-l for l in lengths) <= 1.0 + 1e-12
    symbols = message.draw(
        st.lists(st.sampled_from(sorted(freqs)), min_size=1, max_size=50)
    )
    writer = BitWriter()
    for s in symbols:
        table.write_symbol(writer, s)
    reader = BitReader(writer.getvalue())
    assert [table.read_symbol(reader) for _ in symbols] == symbols


@given(
    freqs=st.dictionaries(
        keys=st.integers(min_value=0, max_value=255),
        values=st.integers(min_value=1, max_value=1_000_000),
        min_size=2,
        max_size=100,
    )
)
@settings(max_examples=50, deadline=None)
def test_huffman_orders_by_frequency(freqs):
    """A strictly most-frequent symbol never gets a longer code than a
    strictly least-frequent one."""
    table = HuffmanTable.from_frequencies(freqs)
    best = max(freqs, key=lambda s: (freqs[s], -s))
    worst = min(freqs, key=lambda s: (freqs[s], -s))
    if freqs[best] > freqs[worst]:
        assert table._encode[best][1] <= table._encode[worst][1]
