"""Property-based tests for the max-min fair traffic solver."""

import math

from hypothesis import given, settings, strategies as st

from repro.pcie.address import enumerate_topology
from repro.pcie.routing import route
from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch
from repro.pcie.traffic import Flow, TrafficSolver, completion_time


def _tree():
    topo = PcieTopology(RootComplex(max_links=8))
    for i in range(3):
        topo.attach(Switch(f"s{i}", max_links=8), "rc")
        for j in range(3):
            topo.attach(Endpoint(f"e{i}{j}"), f"s{i}")
    enumerate_topology(topo)
    return topo


TOPO = _tree()
ENDPOINTS = [n.node_id for n in TOPO.endpoints()]


flows_strategy = st.lists(
    st.builds(
        Flow,
        src=st.sampled_from(ENDPOINTS),
        dst=st.sampled_from(ENDPOINTS),
        volume=st.just(0.0),
        demand=st.one_of(st.none(), st.floats(min_value=1e6, max_value=1e11)),
    ),
    min_size=1,
    max_size=12,
)


@given(flows=flows_strategy)
@settings(max_examples=60, deadline=None)
def test_allocation_feasible(flows):
    """No directed link ever carries more than its capacity."""
    rates = TrafficSolver(TOPO).allocate(flows)
    loads = {}
    for flow, rate in zip(flows, rates):
        if math.isinf(rate):
            assert flow.src == flow.dst
            continue
        for hop in route(TOPO, flow.src, flow.dst):
            loads[hop] = loads.get(hop, 0.0) + rate
    for hop, load in loads.items():
        assert load <= hop.bandwidth * (1 + 1e-6)


@given(flows=flows_strategy)
@settings(max_examples=60, deadline=None)
def test_demands_respected_and_rates_positive(flows):
    rates = TrafficSolver(TOPO).allocate(flows)
    for flow, rate in zip(flows, rates):
        if flow.demand is not None:
            assert rate <= flow.demand * (1 + 1e-9)
        if flow.src != flow.dst:
            assert rate > 0


@given(flows=flows_strategy)
@settings(max_examples=40, deadline=None)
def test_maxmin_no_starved_flow_while_path_idle(flows):
    """Max-min property: every routed flow is bounded either by its
    demand or by at least one saturated link on its path."""
    solver = TrafficSolver(TOPO)
    rates = solver.allocate(flows)
    loads = {}
    for flow, rate in zip(flows, rates):
        if math.isinf(rate):
            continue
        for hop in route(TOPO, flow.src, flow.dst):
            loads[hop] = loads.get(hop, 0.0) + rate
    for flow, rate in zip(flows, rates):
        if flow.src == flow.dst:
            continue
        demand_bound = flow.demand is not None and rate >= flow.demand * (1 - 1e-6)
        saturated = any(
            loads[hop] >= hop.bandwidth * (1 - 1e-6)
            for hop in route(TOPO, flow.src, flow.dst)
        )
        assert demand_bound or saturated


@given(
    volumes=st.lists(
        st.floats(min_value=1.0, max_value=1e12), min_size=1, max_size=8
    ),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_completion_time_scales_linearly(volumes, data):
    """Doubling every volume exactly doubles the pipelined time."""
    pairs = [
        (data.draw(st.sampled_from(ENDPOINTS)), data.draw(st.sampled_from(ENDPOINTS)))
        for _ in volumes
    ]
    flows = [Flow(s, d, volume=v) for (s, d), v in zip(pairs, volumes)]
    doubled = [Flow(s, d, volume=2 * v) for (s, d), v in zip(pairs, volumes)]
    t1 = completion_time(TOPO, flows)
    t2 = completion_time(TOPO, doubled)
    assert t2 == (0.0 if t1 == 0.0 else t1 * 2) or abs(t2 - 2 * t1) < 1e-9 * max(t2, 1)


@given(flows=flows_strategy)
@settings(max_examples=40, deadline=None)
def test_adding_a_flow_never_speeds_others_up(flows):
    """Monotonicity of congestion: extra volume can only increase the
    completion time."""
    base = [Flow(f.src, f.dst, volume=1e9) for f in flows]
    extra = base + [Flow(ENDPOINTS[0], ENDPOINTS[-1], volume=1e9)]
    assert completion_time(TOPO, extra) >= completion_time(TOPO, base) - 1e-12
