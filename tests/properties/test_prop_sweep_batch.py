"""Property: the vectorized sweep kernel equals the scalar engine
bit for bit over random grids — including grids where some points are
forced to demote to per-point evaluation."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.cache import fingerprint
from repro.core import analytical_batch as ab
from repro.core.config import ArchitectureConfig, SyncStrategy
from repro.core.sweeps import SweepPoint, run_sweep
from repro.workloads.registry import EXTENSION_WORKLOADS, TABLE_I

WORKLOADS = list(TABLE_I.values()) + list(EXTENSION_WORKLOADS.values())
FAMILIES = (
    ArchitectureConfig.baseline(),
    ArchitectureConfig.baseline_acc(),
    ArchitectureConfig.baseline_acc_p2p(),
    ArchitectureConfig.baseline_acc_p2p_gen4(),
    ArchitectureConfig.trainbox(prep_pool=False),
    ArchitectureConfig.trainbox(),
)


def _arch(family, sync):
    return dataclasses.replace(
        family, name=f"{family.name}+{sync.value}", sync=sync
    )


# fabric_bandwidth=0.0 is the falsy edge: the scalar engine's
# ``scenario.fabric_bandwidth or hw.accelerator_fabric_bandwidth``
# treats it as "use the default", and the kernel must agree.
points_strategy = st.lists(
    st.builds(
        SweepPoint,
        workload=st.sampled_from(WORKLOADS),
        arch=st.builds(
            _arch,
            st.sampled_from(FAMILIES),
            st.sampled_from(list(SyncStrategy)),
        ),
        scale=st.integers(min_value=1, max_value=300),
        batch_size=st.one_of(st.none(), st.sampled_from([1, 8, 32, 256])),
        accelerator=st.sampled_from(["tpu", "legacy-gpu"]),
        fabric_bandwidth=st.sampled_from([None, 0.0, 25e9, 150e9]),
    ),
    min_size=1,
    max_size=8,
)


def _fingerprints(outcome):
    return [fingerprint(r.to_dict()) for r in outcome.results]


@given(points=points_strategy)
@settings(max_examples=25, deadline=None)
def test_batch_equals_scalar_bit_for_bit(points):
    batched = run_sweep(points, batch=True)
    scalar = run_sweep(points, batch=False)
    assert batched.results == scalar.results
    assert _fingerprints(batched) == _fingerprints(scalar)
    assert batched.batch_points + batched.batch_fallbacks == len(points)
    assert batched.points == scalar.points


@given(points=points_strategy)
@settings(max_examples=10, deadline=None)
def test_forced_fallbacks_preserve_identity(points):
    """With the ring closed form removed, ring points demote to the
    scalar engine — and the mixed grid still matches it bit for bit."""
    removed = ab._SYNC_FORMS.pop(SyncStrategy.RING)
    try:
        batched = run_sweep(points, batch=True)
    finally:
        ab._SYNC_FORMS[SyncStrategy.RING] = removed
    scalar = run_sweep(points, batch=False)
    assert batched.results == scalar.results
    assert _fingerprints(batched) == _fingerprints(scalar)
    ring = sum(1 for p in points if p.arch.sync is SyncStrategy.RING)
    assert batched.batch_fallbacks == ring
    assert batched.batch_points == len(points) - ring
