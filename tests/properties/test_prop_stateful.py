"""Stateful property tests: the pool and rack ledgers never go bad
under arbitrary submit/finish interleavings."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core.rack import JobRequest, TrainBoxRack
from repro.errors import CapacityError, ConfigError
from repro.network.preppool import PrepPool
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


class PoolMachine(RuleBasedStateMachine):
    """The PrepPool conserves FPGAs across any allocate/release order."""

    def __init__(self):
        super().__init__()
        self.pool = PrepPool([f"f{i}" for i in range(12)])
        self.jobs = {}
        self.counter = 0

    @rule(count=st.integers(min_value=0, max_value=14))
    def allocate(self, count):
        job_id = f"job{self.counter}"
        self.counter += 1
        if count > self.pool.available:
            try:
                self.pool.allocate(job_id, count)
                raise AssertionError("over-allocation must fail")
            except CapacityError:
                return
        grant = self.pool.allocate(job_id, count)
        self.jobs[job_id] = grant

    @precondition(lambda self: self.jobs)
    @rule(data=st.data())
    def release(self, data):
        job_id = data.draw(st.sampled_from(sorted(self.jobs)))
        self.pool.release(job_id)
        del self.jobs[job_id]

    @invariant()
    def conservation(self):
        granted = sum(g.count for g in self.jobs.values())
        assert self.pool.available + granted == 12
        assert self.pool.total == 12

    @invariant()
    def grants_disjoint(self):
        seen = set()
        for grant in self.jobs.values():
            ids = set(grant.fpga_ids)
            assert not ids & seen
            seen |= ids


class RackMachine(RuleBasedStateMachine):
    """Rack box/FPGA ledgers stay consistent under arbitrary job churn."""

    def __init__(self):
        super().__init__()
        self.rack = TrainBoxRack(n_boxes=12, external_pool_fpgas=8)
        self.running = set()
        self.counter = 0

    @rule(
        accs=st.sampled_from([8, 16, 24, 48, 96]),
        audio=st.booleans(),
    )
    def submit(self, accs, audio):
        job_id = f"j{self.counter}"
        self.counter += 1
        workload = TF_SR if audio else RESNET
        try:
            self.rack.submit(JobRequest(job_id, workload, accs))
        except CapacityError:
            return
        self.running.add(job_id)

    @precondition(lambda self: self.running)
    @rule(data=st.data())
    def finish(self, data):
        job_id = data.draw(st.sampled_from(sorted(self.running)))
        self.rack.finish(job_id)
        self.running.remove(job_id)

    @invariant()
    def box_conservation(self):
        used = sum(p.n_boxes for p in self.rack.placements())
        assert used + self.rack.free_boxes == 12
        assert 0.0 <= self.rack.utilization() <= 1.0

    @invariant()
    def fpga_ledgers_consistent(self):
        external_out = sum(
            p.borrowed_from_external for p in self.rack.placements()
        )
        assert external_out + self.rack.external_fpgas_available == 8
        idle_out = sum(
            p.borrowed_from_idle_boxes for p in self.rack.placements()
        )
        # Lent idle FPGAs never exceed what the idle boxes physically hold.
        assert idle_out <= self.rack.free_boxes * self.rack.fpgas_per_box
        assert self.rack.idle_fpgas_available >= 0

    @invariant()
    def placements_disjoint(self):
        seen = set()
        for placement in self.rack.placements():
            ids = set(placement.box_ids)
            assert not ids & seen
            seen |= ids


TestPoolMachine = PoolMachine.TestCase
TestPoolMachine.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)
TestRackMachine = RackMachine.TestCase
TestRackMachine.settings = settings(max_examples=15, stateful_step_count=20, deadline=None)
