"""Property-based tests for the lossless PNG-like codec."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataprep.png import decode, encode
from repro.dataprep.png.deflate import compress, decompress
from repro.dataprep.png.filters import filter_image, unfilter_image
from repro.dataprep.png.lz77 import expand, tokenize


any_images = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([1, 3, 4]),
    ),
    elements=st.integers(min_value=0, max_value=255),
)


@given(img=any_images)
@settings(max_examples=40, deadline=None)
def test_png_roundtrip_is_bit_exact(img):
    assert np.array_equal(decode(encode(img)), img)


@given(data=st.binary(min_size=0, max_size=2000))
@settings(max_examples=50, deadline=None)
def test_deflate_roundtrip_any_bytes(data):
    assert decompress(compress(data)) == data


@given(data=st.binary(min_size=0, max_size=1500), chain=st.integers(0, 64))
@settings(max_examples=50, deadline=None)
def test_lz77_roundtrip_any_bytes_any_chain(data, chain):
    assert expand(tokenize(data, max_chain=chain)) == data


@given(
    data=st.binary(min_size=1, max_size=400),
    repeats=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_repetition_never_hurts_compression(data, repeats):
    """Compressing k copies never costs more than ~k× one copy plus a
    constant (the dictionary must exploit repetition)."""
    one = len(compress(data))
    many = len(compress(data * repeats))
    assert many <= one * repeats + 64


@given(img=any_images)
@settings(max_examples=40, deadline=None)
def test_filters_roundtrip_any_image(img):
    methods, residuals = filter_image(img)
    assert np.array_equal(unfilter_image(methods, residuals, img.shape), img)
