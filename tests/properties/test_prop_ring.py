"""Property-based tests for the ring all-reduce."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.sync.ring import ring_allreduce


@given(
    n=st.integers(min_value=1, max_value=8),
    length=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_allreduce_equals_sum_any_shape(n, length, data):
    seeds = data.draw(
        st.lists(st.integers(0, 2**31 - 1), min_size=n, max_size=n)
    )
    bufs = [
        np.random.default_rng(seed).normal(size=length) for seed in seeds
    ]
    expected = np.sum(bufs, axis=0)
    ring_allreduce(bufs)
    for buf in bufs:
        assert np.allclose(buf, expected, atol=1e-9)


@given(
    n=st.integers(min_value=2, max_value=8),
    length=st.integers(min_value=1, max_value=128),
)
@settings(max_examples=60, deadline=None)
def test_volume_law(n, length):
    """Per-rank bytes sent never exceed 2·M·(n-1)/n plus rounding, and
    total steps are exactly 2(n-1)."""
    bufs = [np.ones(length) for _ in range(n)]
    stats = ring_allreduce(bufs)
    assert stats.steps == 2 * (n - 1)
    ideal = 2 * length * 8 * (n - 1) / n
    for sent in stats.bytes_sent_per_rank:
        assert abs(sent - ideal) <= 2 * (n - 1) * 8


@given(
    n=st.integers(min_value=1, max_value=6),
    shape=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
)
@settings(max_examples=40, deadline=None)
def test_multidim_and_permutation_invariance(n, shape):
    """The result is the sum regardless of rank order (commutativity)."""
    rng = np.random.default_rng(0)
    originals = [rng.normal(size=shape) for _ in range(n)]
    a = [o.copy() for o in originals]
    b = [o.copy() for o in reversed(originals)]
    ring_allreduce(a)
    ring_allreduce(b)
    assert np.allclose(a[0], b[0], atol=1e-9)
