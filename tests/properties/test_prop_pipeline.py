"""Property-based tests for pipeline costs and the simulator laws."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.des import Station, run_pipeline
from repro.dataprep.cost import FPGA_PROFILE, GPU_PROFILE
from repro.dataprep.ops_audio import audio_pipeline
from repro.dataprep.ops_image import image_pipeline
from repro.dataprep.pipeline import SampleSpec
from repro.workloads.registry import get_workload


@given(
    side=st.integers(min_value=232, max_value=512),
    compressed=st.floats(min_value=10_000, max_value=200_000),
)
@settings(max_examples=30, deadline=None)
def test_image_cost_monotone_in_resolution(side, compressed):
    """Bigger inputs never cost fewer cycles or bytes."""
    small = image_pipeline().cost(SampleSpec("jpeg", (side, side, 3), compressed))
    big = image_pipeline().cost(
        SampleSpec("jpeg", (side + 8, side + 8, 3), compressed)
    )
    assert big.cpu_cycles >= small.cpu_cycles
    assert big.mem_traffic >= small.mem_traffic


@given(samples=st.integers(min_value=1_000, max_value=500_000))
@settings(max_examples=30, deadline=None)
def test_audio_cost_monotone_in_duration(samples):
    pipe = audio_pipeline()
    a = pipe.cost(SampleSpec("audio_pcm", (samples,), samples * 2))
    b = pipe.cost(SampleSpec("audio_pcm", (samples + 16_000,), (samples + 16_000) * 2))
    assert b.cpu_cycles > a.cpu_cycles
    assert b.bytes_out >= a.bytes_out


@given(
    rates=st.lists(
        st.floats(min_value=10.0, max_value=1e6), min_size=1, max_size=5
    ),
    iter_time=st.floats(min_value=1e-4, max_value=10.0),
    n=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_des_throughput_bounded_by_min_law(rates, iter_time, n):
    """The DES can never beat min(prep, consume) and converges near it."""
    stations = [Station(f"s{i}", r) for i, r in enumerate(rates)]
    batch = 64
    result = run_pipeline(stations, n, batch, iter_time, iterations=40)
    bound = min(min(rates), n * batch / iter_time)
    assert result.throughput <= bound * 1.001
    assert result.throughput >= bound * 0.90


@given(n=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256]))
@settings(max_examples=12, deadline=None)
def test_throughput_monotone_in_accelerators(n):
    """More accelerators never reduce throughput (both architectures)."""
    resnet = get_workload("Resnet-50")
    for arch in (ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()):
        small = simulate(TrainingScenario(resnet, arch, n)).throughput
        if n < 256:
            big = simulate(TrainingScenario(resnet, arch, n * 2)).throughput
            assert big >= small * 0.999


@given(
    spec_bytes=st.floats(min_value=1_000, max_value=1_000_000),
)
@settings(max_examples=30, deadline=None)
def test_device_profiles_ordering_invariant(spec_bytes):
    """FPGA ≥ GPU on the decode-heavy image pipeline for any input size."""
    cost = image_pipeline().cost(SampleSpec("jpeg", (256, 256, 3), spec_bytes))
    assert FPGA_PROFILE.sample_rate(cost) >= GPU_PROFILE.sample_rate(cost)
