"""Fuzzing the server builders: every (architecture, scale) yields a
valid machine with consistent routing and demand accounting."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.config import ArchitectureConfig, PrepDevice
from repro.core.dataflow import build_demand
from repro.core.server import build_server
from repro.pcie.routing import forward_path, route_nodes
from repro.workloads.registry import TABLE_I

ARCHS = ArchitectureConfig.figure19_ladder() + [
    ArchitectureConfig.baseline_acc(PrepDevice.GPU),
    ArchitectureConfig.trainbox(prep_pool=False),
]
WORKLOADS = list(TABLE_I.values())


@given(
    arch=st.sampled_from(ARCHS),
    n=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=40, deadline=None)
def test_every_server_is_structurally_valid(arch, n):
    server = build_server(arch, n)
    server.topology.validate()
    assert server.n_accelerators == n
    # Registries point at real enumerated endpoints of the right shape.
    for device_id in server.acc_ids + server.ssd_ids + server.prep_ids:
        node = server.topology.node(device_id)
        assert node.enumerated
        assert node.device is not None
    if arch.clustering:
        boxes = [b for b in server.boxes if b.acc_ids]
        assert len(boxes) == math.ceil(n / server.hw.accs_per_box)
        for box in boxes:
            assert box.prep_ids and box.ssd_ids


@given(
    arch=st.sampled_from(ARCHS),
    n=st.sampled_from([4, 16, 40]),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_forwarding_consistent_on_built_servers(arch, n, data):
    server = build_server(arch, n)
    endpoints = [e.node_id for e in server.topology.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    assert forward_path(server.topology, src, dst) == route_nodes(
        server.topology, src, dst
    )


@given(
    arch=st.sampled_from(ARCHS),
    n=st.sampled_from([3, 8, 24, 64]),
    workload=st.sampled_from(WORKLOADS),
)
@settings(max_examples=40, deadline=None)
def test_demand_conserves_payload_volumes(arch, n, workload):
    server = build_server(arch, n)
    demand = build_demand(server, workload)
    acc_set = set(server.acc_ids)
    ssd_set = set(server.ssd_ids)
    to_acc = sum(f.volume for f in demand.pcie_flows if f.dst in acc_set)
    from_ssd = sum(f.volume for f in demand.pcie_flows if f.src in ssd_set)
    assert abs(to_acc - demand.bytes_to_accelerator) < 1e-6 * demand.bytes_to_accelerator
    assert abs(from_ssd - demand.ssd_read_bytes) < 1e-6 * demand.ssd_read_bytes
    # Per-sample categories are non-negative and finite.
    for table in (demand.cpu_cycles, demand.mem_bytes):
        for value in table.values():
            assert value >= 0
            assert math.isfinite(value)
