"""Fuzzing fault injection: degradation is monotone, bounded, and never
silently collapses to zero.

The operational claims under test (docstring of
:mod:`repro.core.faults`): losing devices can only lower throughput,
never raise it; any *legal* fault set (one that leaves every box with
an SSD and an FPGA) still prices to positive throughput; a fault set
that strips a box of its last SSD or FPGA is rejected with the drain
rule rather than priced; and a degraded server is itself a valid input
for further degradation (faults compose).
"""

from hypothesis import given, settings, strategies as st

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.faults import FaultSet, inject_faults
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")

_SERVER = build_server(ArchitectureConfig.trainbox(), 32)
_HEALTHY = simulate(
    TrainingScenario(RESNET, _SERVER.arch, 32, hw=_SERVER.hw),
    server=_SERVER,
).throughput


def _throughput(server):
    scenario = TrainingScenario(
        RESNET, server.arch, server.n_accelerators, hw=server.hw
    )
    return simulate(scenario, server=server).throughput


def _legal_fault_sets():
    """Fault subsets that keep every box serviceable: at most one SSD
    and one FPGA per box, any number of accelerators except the last
    one overall."""

    def build(draw_spec):
        ssd_boxes, fpga_boxes, acc_count = draw_spec
        devices = []
        for b in ssd_boxes:
            devices.append(_SERVER.boxes[b].ssd_ids[0])
        for b in fpga_boxes:
            devices.append(_SERVER.boxes[b].prep_ids[0])
        devices.extend(_SERVER.acc_ids[:acc_count])
        return FaultSet(frozenset(devices))

    n_boxes = len([b for b in _SERVER.boxes if b.acc_ids])
    box_subset = st.sets(
        st.integers(min_value=0, max_value=n_boxes - 1), max_size=n_boxes
    )
    return st.tuples(
        box_subset, box_subset,
        st.integers(min_value=0, max_value=_SERVER.n_accelerators - 1),
    ).map(build)


@given(faults=_legal_fault_sets())
@settings(max_examples=40, deadline=None)
def test_degradation_is_bounded_and_never_zero(faults):
    degraded = inject_faults(_SERVER, faults)
    rate = _throughput(degraded)
    assert 0 < rate <= _HEALTHY
    # Half the SSDs and half the FPGAs is the worst legal prep state;
    # with accelerators also failing, throughput scales down with the
    # surviving job but never below half-prep on the shrunken job.
    if not faults.device_ids:
        assert rate == _HEALTHY


@given(faults=_legal_fault_sets(), extra_box=st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_degradation_is_monotone_under_supersets(faults, extra_box):
    box = _SERVER.boxes[extra_box]
    superset = FaultSet(
        faults.device_ids | {box.ssd_ids[0], box.prep_ids[0]}
    )
    base = _throughput(inject_faults(_SERVER, faults))
    worse = _throughput(inject_faults(_SERVER, superset))
    assert worse <= base


@given(faults=_legal_fault_sets())
@settings(max_examples=25, deadline=None)
def test_faults_compose_incrementally(faults):
    # Injecting a set at once equals injecting it on top of a partial
    # injection: the degraded server is a first-class server.
    devices = sorted(faults.device_ids)
    half = FaultSet(frozenset(devices[: len(devices) // 2]))
    rest = FaultSet(faults.device_ids - half.device_ids)
    at_once = inject_faults(_SERVER, faults)
    staged = inject_faults(inject_faults(_SERVER, half), rest)
    assert _throughput(staged) == _throughput(at_once)


@given(box_index=st.integers(min_value=0, max_value=3), kind=st.sampled_from(["ssd", "prep"]))
@settings(max_examples=10, deadline=None)
def test_draining_faults_rejected_never_priced(box_index, kind):
    box = _SERVER.boxes[box_index]
    devices = box.ssd_ids if kind == "ssd" else box.prep_ids
    try:
        inject_faults(_SERVER, FaultSet(frozenset(devices)))
    except ConfigError as exc:
        assert "drain" in str(exc)
    else:
        raise AssertionError("stripping a box must raise the drain rule")
