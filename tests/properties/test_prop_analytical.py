"""Property tests on the analytical engine: more hardware never hurts."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.workloads.registry import TABLE_I

WORKLOADS = list(TABLE_I.values())
BASE_HW = HardwareConfig()


def _throughput(workload, arch, n, hw):
    return simulate(TrainingScenario(workload, arch, n, hw=hw)).throughput


@given(
    workload=st.sampled_from(WORKLOADS),
    factor=st.sampled_from([2.0, 4.0]),
)
@settings(max_examples=20, deadline=None)
def test_more_memory_bandwidth_never_hurts_baseline(workload, factor):
    arch = ArchitectureConfig.baseline()
    hw_big = dataclasses.replace(
        BASE_HW, memory_bandwidth=BASE_HW.memory_bandwidth * factor
    )
    assert _throughput(workload, arch, 64, hw_big) >= _throughput(
        workload, arch, 64, BASE_HW
    ) * (1 - 1e-9)


@given(
    workload=st.sampled_from(WORKLOADS),
    cores=st.sampled_from([96, 192]),
)
@settings(max_examples=20, deadline=None)
def test_more_cores_never_hurt_baseline(workload, cores):
    arch = ArchitectureConfig.baseline()
    hw_big = dataclasses.replace(BASE_HW, cpu_cores=cores)
    assert _throughput(workload, arch, 64, hw_big) >= _throughput(
        workload, arch, 64, BASE_HW
    ) * (1 - 1e-9)


@given(workload=st.sampled_from(WORKLOADS))
@settings(max_examples=14, deadline=None)
def test_faster_ssds_never_hurt_trainbox(workload):
    arch = ArchitectureConfig.trainbox()
    hw_big = dataclasses.replace(
        BASE_HW, ssd_read_bandwidth=BASE_HW.ssd_read_bandwidth * 2
    )
    assert _throughput(workload, arch, 64, hw_big) >= _throughput(
        workload, arch, 64, BASE_HW
    ) * (1 - 1e-9)


@given(workload=st.sampled_from(WORKLOADS))
@settings(max_examples=14, deadline=None)
def test_faster_prep_network_never_hurts(workload):
    arch = ArchitectureConfig.trainbox()
    hw_big = dataclasses.replace(
        BASE_HW, ethernet_bandwidth=BASE_HW.ethernet_bandwidth * 4
    )
    assert _throughput(workload, arch, 128, hw_big) >= _throughput(
        workload, arch, 128, BASE_HW
    ) * (1 - 1e-9)


@given(
    workload=st.sampled_from(WORKLOADS),
    arch=st.sampled_from(ArchitectureConfig.figure19_ladder()),
)
@settings(max_examples=30, deadline=None)
def test_throughput_bounded_by_accelerator_target(workload, arch):
    """No architecture ever exceeds what the accelerators can consume."""
    result = simulate(TrainingScenario(workload, arch, 64))
    assert result.throughput <= result.consume_rate * (1 + 1e-9)
    assert result.throughput <= 64 * workload.accelerator_spec().peak_rate
