"""Property-based tests for the JPEG codec."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataprep.jpeg import decode, encode


small_images = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
        st.just(3),
    ),
    elements=st.integers(min_value=0, max_value=255),
)


@given(img=small_images, quality=st.integers(min_value=1, max_value=100))
@settings(max_examples=40, deadline=None)
def test_roundtrip_shape_dtype_any_image(img, quality):
    out = decode(encode(img, quality=quality))
    assert out.shape == img.shape
    assert out.dtype == np.uint8


@given(img=small_images)
@settings(max_examples=25, deadline=None)
def test_deterministic_encoding(img):
    assert encode(img, quality=75) == encode(img, quality=75)


@given(
    value=st.integers(min_value=0, max_value=255),
    h=st.integers(min_value=1, max_value=20),
    w=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=25, deadline=None)
def test_constant_images_nearly_lossless(value, h, w):
    img = np.full((h, w, 3), value, dtype=np.uint8)
    out = decode(encode(img, quality=95))
    assert np.abs(out.astype(int) - int(value)).max() <= 3


@given(img=small_images)
@settings(max_examples=20, deadline=None)
def test_error_bounded_even_for_noise(img):
    """Even adversarial (noise) images decode within a loose pixel bound
    at high quality — quantization error cannot explode."""
    out = decode(encode(img, quality=95, subsample=False))
    err = np.abs(out.astype(int) - img.astype(int))
    assert err.mean() <= 24
