"""Property-based tests for the compiled prep-plan path.

The plan compiler may fuse, hoist and pool however it likes; the only
observable contract is bit-identity with the per-sample reference.
These properties hammer that contract across random op subsets and
orderings (fused-adjacent and unfused alike), random batch geometries,
random seeds, both audio dtypes, and the PR-5 quarantine fills.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataprep import corrupt_payload, jpeg
from repro.dataprep.engine import ShardSpec, prepare_shard_salvaging
from repro.dataprep.ops_audio import audio_pipeline
from repro.dataprep.ops_image import (
    CastToFloat,
    GaussianNoise,
    Mirror,
    RandomCrop,
    image_pipeline,
)
from repro.dataprep.pipeline import PrepPipeline, sample_rng, spawn_rngs
from repro.dataprep.plan import try_plan


def _assert_plan_matches_reference(pipe, batch, n, seed):
    """run_batch_vectorized (plan path, with per-op fallback) must be
    bit-identical to the kept per-sample reference."""
    rngs = spawn_rngs(np.random.default_rng(seed), n)
    out = pipe.run_batch_vectorized(batch, rngs)
    rngs = spawn_rngs(np.random.default_rng(seed), n)
    reference = pipe.run_batch_reference(batch, rngs)
    for i, ref in enumerate(reference):
        assert ref.dtype == out[i].dtype
        assert np.array_equal(ref, out[i]), f"sample {i} differs"


@st.composite
def _pipeline_and_batch(draw):
    """A random legal image pipeline plus a matching uint8 batch.

    GaussianNoise and CastToFloat require uint8 input, so cast (when
    present) is pinned last; everything before it is a random subset of
    {crop, mirror, noise} in a random order — covering both the
    fusable adjacencies (crop→mirror, noise→cast) and the unfused
    orderings ([mirror, crop], [noise, mirror], …).
    """
    out_h = draw(st.integers(min_value=4, max_value=10))
    out_w = draw(st.integers(min_value=4, max_value=10))
    pool = []
    if draw(st.booleans()):
        pool.append(RandomCrop(out_height=out_h, out_width=out_w))
    if draw(st.booleans()):
        pool.append(Mirror(probability=draw(st.sampled_from([0.0, 0.5, 1.0]))))
    if draw(st.booleans()):
        pool.append(GaussianNoise(sigma=draw(st.sampled_from([0.5, 2.0, 8.0]))))
    ops = list(draw(st.permutations(pool)))
    if draw(st.booleans()) or not ops:
        ops.append(CastToFloat())
    has_crop = any(isinstance(op, RandomCrop) for op in ops)
    h = draw(st.integers(min_value=out_h if has_crop else 4, max_value=20))
    w = draw(st.integers(min_value=out_w if has_crop else 4, max_value=20))
    n = draw(st.integers(min_value=1, max_value=5))
    img_seed = draw(st.integers(min_value=0, max_value=2**31))
    batch = np.random.default_rng(img_seed).integers(
        0, 256, (n, h, w, 3), dtype=np.uint8
    )
    return PrepPipeline(ops, name="prop-prep"), batch


@given(pb=_pipeline_and_batch(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_random_pipelines_plan_bit_identical_to_reference(pb, seed):
    pipe, batch = pb
    _assert_plan_matches_reference(pipe, batch, len(batch), seed)


@given(
    order=st.permutations([0, 1, 2]),
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_fused_and_unfused_orderings_agree_with_reference(order, seed, n):
    """Every ordering of {crop, mirror, noise} (+ trailing cast) is
    bit-identical to its own reference — whether or not the compiler
    found a fusable adjacency in that order."""
    ops = [
        RandomCrop(out_height=8, out_width=8),
        Mirror(probability=0.5),
        GaussianNoise(sigma=2.0),
    ]
    pipe = PrepPipeline(
        [ops[i] for i in order] + [CastToFloat()], name="prop-order"
    )
    batch = np.random.default_rng(seed).integers(
        0, 256, (n, 14, 14, 3), dtype=np.uint8
    )
    _assert_plan_matches_reference(pipe, batch, n, seed)


@given(
    side=st.integers(min_value=24, max_value=56),
    n=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
    quality=st.sampled_from([60, 80, 95]),
)
@settings(max_examples=15, deadline=None)
def test_jpeg_geometries_plan_bit_identical_to_reference(side, n, seed, quality):
    pipe = image_pipeline(out_height=16, out_width=16)
    imgs = np.random.default_rng(seed).integers(
        0, 256, (n, side, side, 3), dtype=np.uint8
    )
    blobs = jpeg.encode_batch(list(imgs), quality=quality)
    assert try_plan(pipe, blobs) is not None
    _assert_plan_matches_reference(pipe, blobs, n, seed)


@given(
    n_samples=st.integers(min_value=2_048, max_value=10_000),
    n=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
    as_int16=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_audio_geometries_plan_bit_identical_to_reference(
    n_samples, n, seed, as_int16
):
    pipe = audio_pipeline()
    pcm = np.random.default_rng(seed).normal(0, 0.2, (n, n_samples))
    if as_int16:
        pcm = (np.clip(pcm, -1, 1) * 32767).astype(np.int16)
    assert try_plan(pipe, pcm) is not None
    _assert_plan_matches_reference(pipe, pcm, n, seed)


@given(
    victim=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_quarantine_fill_matches_per_sample_reference(victim, seed):
    """PR-5 chaos contract through the plan path: a persistently
    corrupt sample makes the shard fall back per-sample, quarantining
    exactly the victim with a deterministic zero fill and leaving every
    healthy sample bit-identical to its reference."""
    pipe = image_pipeline(out_height=16, out_width=16)
    imgs = np.random.default_rng(seed).integers(
        0, 256, (4, 24, 24, 3), dtype=np.uint8
    )
    blobs = jpeg.encode_batch(list(imgs), quality=85)
    blobs[victim] = corrupt_payload(blobs[victim])
    shard = ShardSpec(0, 0, 4)
    stack, quarantined = prepare_shard_salvaging(
        pipe, lambda start, count: blobs[start : start + count], seed % 1000, shard
    )
    assert quarantined == (victim,)
    for i in range(4):
        if i == victim:
            assert not stack[i].any()
            continue
        expected = pipe.run(blobs[i], sample_rng(seed % 1000, i))
        assert np.array_equal(expected, stack[i])
