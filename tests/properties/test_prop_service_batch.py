"""Property: the cross-request batch scheduler is invisible.

Random mixes of analytical ``simulate``/``sweep`` requests — with
duplicate requests and overlapping sweep grids, concurrently and
pipelined — served by a batch-enabled service must answer bit-identical
to a direct :func:`execute_request` evaluation of each request, with the
scheduler's accounting consistent (every response ok, every request
served by the batched path or the request memo/coalescer)."""

import asyncio
import json

from hypothesis import given, settings, strategies as st

from repro import api
from repro.service import ServiceConfig, SimulationService, execute_request
from repro.workloads.registry import workload_names

WORKLOADS = workload_names()
ARCHS = ["baseline", "acc", "trainbox", "gen4"]
SCALES = [1, 4, 16, 64, 256]

simulate_strategy = st.builds(
    api.SimulationRequest,
    workload=st.sampled_from(WORKLOADS),
    arch=st.sampled_from(ARCHS),
    scale=st.sampled_from(SCALES),
)

sweep_strategy = st.builds(
    lambda workloads, archs, scales: api.SweepRequest(
        workloads=tuple(workloads), archs=tuple(archs), scales=tuple(scales)
    ),
    workloads=st.lists(
        st.sampled_from(WORKLOADS), min_size=1, max_size=2, unique=True
    ),
    archs=st.lists(
        st.sampled_from(ARCHS), min_size=1, max_size=2, unique=True
    ),
    scales=st.lists(
        st.sampled_from(SCALES), min_size=1, max_size=3, unique=True
    ),
)

requests_strategy = st.lists(
    st.one_of(simulate_strategy, sweep_strategy), min_size=1, max_size=8
)


def _serve(requests, config):
    service = SimulationService(config)
    envelopes = [
        {"id": i, "tenant": f"t{i % 3}", "request": r.to_dict()}
        for i, r in enumerate(requests)
    ]

    async def main():
        try:
            return await asyncio.gather(
                *(service.handle(e) for e in envelopes)
            )
        finally:
            await service.aclose()

    return asyncio.run(main()), service


@given(requests=requests_strategy, max_points=st.sampled_from([2, 7, 256]))
@settings(max_examples=12, deadline=None)
def test_batched_service_is_bit_identical(requests, max_points):
    responses, service = _serve(
        requests,
        ServiceConfig(
            max_workers=2,
            batch_window_ms=1.0,
            max_batch_points=max_points,
        ),
    )
    for request, response in zip(requests, responses):
        assert response["status"] == "ok"
        assert response["meta"]["served_by"] in (
            "batched",
            "coalesced",
            "memo",
        )
        assert json.dumps(
            response["payload"], sort_keys=True
        ) == json.dumps(execute_request(request), sort_keys=True)

    counters = service.registry.to_manifest()["counters"]
    unique = len({r.fingerprint() for r in requests})
    assert counters.get("service.batched", 0) == unique
    riders = counters.get("service.coalesced", 0) + counters.get(
        "service.memo_hits", 0
    )
    assert riders == len(requests) - unique
    # Every queued point was priced exactly once, whatever the mix of
    # kernel, scalar-fallback and error outcomes (none expected here).
    assert counters.get("service.batch_point_queued", 0) == counters.get(
        "service.batch_point_kernel", 0
    ) + counters.get("service.batch_point_scalar", 0) + counters.get(
        "service.batch_point_disk", 0
    )
