"""Property-based tests for topology routing over random trees."""

from hypothesis import given, settings, strategies as st

from repro.pcie.address import enumerate_topology
from repro.pcie.link import LinkDirection
from repro.pcie.routing import forward_path, route, route_nodes
from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch


@st.composite
def random_trees(draw):
    """A random PCIe tree: switches placed under random parents, then
    endpoints under random internal nodes."""
    topo = PcieTopology(RootComplex(max_links=64))
    internal = ["rc"]
    n_switches = draw(st.integers(min_value=0, max_value=10))
    for i in range(n_switches):
        parent = draw(st.sampled_from(internal))
        sid = f"s{i}"
        topo.attach(Switch(sid, max_links=64), parent)
        internal.append(sid)
    n_endpoints = draw(st.integers(min_value=2, max_value=12))
    for i in range(n_endpoints):
        parent = draw(st.sampled_from(internal))
        topo.attach(Endpoint(f"e{i}"), parent)
    enumerate_topology(topo)
    return topo


@given(tree=random_trees(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_forwarding_agrees_with_tree_routing(tree, data):
    """Address-based hop-by-hop forwarding always takes the LCA path."""
    endpoints = [n.node_id for n in tree.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    assert forward_path(tree, src, dst) == route_nodes(tree, src, dst)


@given(tree=random_trees(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_route_shape_invariants(tree, data):
    """Routes climb then descend: UP hops strictly precede DOWN hops,
    and the reverse route mirrors the forward one."""
    endpoints = [n.node_id for n in tree.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    hops = route(tree, src, dst)
    directions = [h.direction for h in hops]
    if LinkDirection.DOWN in directions:
        first_down = directions.index(LinkDirection.DOWN)
        assert all(d is LinkDirection.DOWN for d in directions[first_down:])
    back = route(tree, dst, src)
    assert len(back) == len(hops)
    assert [h.link for h in back] == [h.link for h in reversed(hops)]


@given(tree=random_trees(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_route_touches_lca_exactly_once(tree, data):
    endpoints = [n.node_id for n in tree.endpoints()]
    src = data.draw(st.sampled_from(endpoints))
    dst = data.draw(st.sampled_from(endpoints))
    nodes = route_nodes(tree, src, dst)
    assert len(nodes) == len(set(nodes))  # no node revisited
    lca = tree.lowest_common_ancestor(src, dst)
    assert lca in nodes
