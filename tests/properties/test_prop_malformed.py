"""Fuzzing the decoders: malformed input must raise CodecError, never a
raw struct/index/value error (production robustness for data read off
storage devices)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.png import codec as png_codec
from repro.dataprep.png.deflate import compress, decompress
from repro.dataprep.ops_video import decode_clip, encode_clip


def _image():
    return np.arange(8 * 8 * 3, dtype=np.uint8).reshape(8, 8, 3)


JPEG_BYTES = jpeg_codec.encode(_image())
PNG_BYTES = png_codec.encode(_image())
CLIP_BYTES = encode_clip([_image(), _image()])
DEFLATE_BYTES = compress(b"hello world " * 10)


def _expect_decoded_or_codec_error(fn, payload):
    try:
        fn(payload)
    except CodecError:
        pass  # the contract: malformed input -> CodecError


@given(cut=st.integers(min_value=4, max_value=len(JPEG_BYTES) - 1))
@settings(max_examples=40, deadline=None)
def test_truncated_jpeg_never_leaks_raw_errors(cut):
    _expect_decoded_or_codec_error(jpeg_codec.decode, JPEG_BYTES[:cut])


@given(
    pos=st.integers(min_value=4, max_value=len(JPEG_BYTES) - 1),
    value=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_bitflipped_jpeg_never_leaks_raw_errors(pos, value):
    corrupted = bytearray(JPEG_BYTES)
    corrupted[pos] = value
    _expect_decoded_or_codec_error(jpeg_codec.decode, bytes(corrupted))


@given(cut=st.integers(min_value=4, max_value=len(PNG_BYTES) - 1))
@settings(max_examples=40, deadline=None)
def test_truncated_png_never_leaks_raw_errors(cut):
    _expect_decoded_or_codec_error(png_codec.decode, PNG_BYTES[:cut])


@given(
    pos=st.integers(min_value=4, max_value=len(PNG_BYTES) - 1),
    value=st.integers(min_value=0, max_value=255),
)
@settings(max_examples=40, deadline=None)
def test_bitflipped_png_never_leaks_raw_errors(pos, value):
    corrupted = bytearray(PNG_BYTES)
    corrupted[pos] = value
    _expect_decoded_or_codec_error(png_codec.decode, bytes(corrupted))


@given(cut=st.integers(min_value=0, max_value=len(DEFLATE_BYTES) - 1))
@settings(max_examples=40, deadline=None)
def test_truncated_deflate_never_leaks_raw_errors(cut):
    _expect_decoded_or_codec_error(decompress, DEFLATE_BYTES[:cut])


@given(cut=st.integers(min_value=4, max_value=len(CLIP_BYTES) - 1))
@settings(max_examples=40, deadline=None)
def test_truncated_clip_never_leaks_raw_errors(cut):
    _expect_decoded_or_codec_error(decode_clip, CLIP_BYTES[:cut])


@given(junk=st.binary(min_size=0, max_size=64))
@settings(max_examples=40, deadline=None)
def test_garbage_with_magic_prefix(junk):
    for magic, fn in (
        (b"RJPG", jpeg_codec.decode),
        (b"RPNG", png_codec.decode),
        (b"RMJP", decode_clip),
    ):
        _expect_decoded_or_codec_error(fn, magic + junk)


def test_wrong_magic_is_immediate_codec_error():
    for fn in (jpeg_codec.decode, png_codec.decode, decode_clip):
        with pytest.raises(CodecError):
            fn(b"\x00\x01\x02\x03 payload")
