"""Property: the codec fast paths agree with the reference paths on
arbitrary inputs — ``decode_fast(encode_fast(x)) == decode(encode(x))``
and the encoded bytes themselves are identical."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataprep.jpeg.codec import JpegCodec
from repro.dataprep.png import deflate, filters, lz77

small_images = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
        st.just(3),
    ),
    elements=st.integers(min_value=0, max_value=255),
)


@given(
    img=small_images,
    quality=st.integers(min_value=1, max_value=100),
    subsample=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_jpeg_fast_equals_reference(img, quality, subsample):
    fast = JpegCodec(quality=quality, subsample=subsample, fast=True)
    ref = JpegCodec(quality=quality, subsample=subsample, fast=False)
    blob = fast.encode(img)
    assert blob == ref.encode(img)
    assert np.array_equal(
        JpegCodec.decode(blob, fast=True), JpegCodec.decode(blob, fast=False)
    )


@given(data=st.binary(max_size=2048), max_chain=st.sampled_from([1, 4, 32]))
@settings(max_examples=40, deadline=None)
def test_lz77_fast_equals_reference(data, max_chain):
    ref = lz77.tokenize_reference(data, max_chain=max_chain)
    fast = lz77.tokenize(data, max_chain=max_chain)
    assert fast == ref
    assert lz77.expand(fast) == data


@given(data=st.binary(max_size=2048))
@settings(max_examples=40, deadline=None)
def test_deflate_fast_equals_reference(data):
    blob = deflate.compress(data)
    assert blob == deflate.compress_reference(data)
    assert deflate.decompress(blob) == data
    assert deflate.decompress_reference(blob) == data


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=st.tuples(
            st.integers(min_value=1, max_value=16),
            st.integers(min_value=1, max_value=16),
            st.sampled_from([1, 3, 4]),
        ),
        elements=st.integers(min_value=0, max_value=255),
    )
)
@settings(max_examples=40, deadline=None)
def test_png_filters_fast_equals_reference(img):
    ref_methods, ref_res = filters.filter_image_reference(img)
    methods, res = filters.filter_image(img)
    assert methods == ref_methods
    assert np.array_equal(res, ref_res)
    assert np.array_equal(
        filters.unfilter_image(methods, res, img.shape), img
    )
