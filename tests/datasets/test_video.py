"""Tests for the synthetic video dataset and the video workload wiring."""

import numpy as np
import pytest

from repro.dataprep.ops_video import decode_clip
from repro.datasets.video import KINETICS_LIKE, SyntheticVideoDataset
from repro.errors import DataprepError
from repro.workloads.registry import (
    EXTENSION_WORKLOADS,
    InputType,
    get_workload,
)


def test_items_are_decodable_clips():
    ds = SyntheticVideoDataset(num_items=2, frames_per_clip=4, height=24, width=24)
    clip_bytes, label = ds[0]
    frames = decode_clip(clip_bytes)
    assert len(frames) == 4
    assert frames[0].shape == (24, 24, 3)
    assert 0 <= label < ds.num_classes


def test_motion_exists_between_frames():
    ds = SyntheticVideoDataset(num_items=4, frames_per_clip=6, height=32, width=32)
    clip, label = ds.raw_item(1)  # label 1 pans at nonzero velocity
    assert not np.array_equal(clip[0], clip[-1])


def test_determinism():
    a = SyntheticVideoDataset(num_items=2, frames_per_clip=3, seed=3)
    b = SyntheticVideoDataset(num_items=2, frames_per_clip=3, seed=3)
    assert a[1][0] == b[1][0]


def test_validation():
    with pytest.raises(DataprepError):
        SyntheticVideoDataset(num_items=0)
    with pytest.raises(DataprepError):
        SyntheticVideoDataset(num_items=1, frames_per_clip=0)
    ds = SyntheticVideoDataset(num_items=1)
    with pytest.raises(IndexError):
        ds[1]


def test_kinetics_like_spec():
    spec = KINETICS_LIKE.sample_spec()
    assert spec.kind == "video_mjpeg"
    assert spec.shape == (16, 256, 256, 3)
    assert spec.nbytes == 16 * 45_000


def test_video_workload_registered():
    workload = get_workload("CNN-Video")
    assert workload.input_type is InputType.VIDEO
    assert workload.prep_pipeline().name == "video-prep"
    assert workload.dataset_sample_spec().kind == "video_mjpeg"
    assert "CNN-Video" in EXTENSION_WORKLOADS


def test_table1_unpolluted():
    from repro.workloads.registry import TABLE_I

    assert len(TABLE_I) == 7
    assert "CNN-Video" not in TABLE_I


def test_video_workload_simulates():
    from repro.core.analytical import TrainingScenario, simulate
    from repro.core.config import ArchitectureConfig

    workload = get_workload("CNN-Video")
    base = simulate(TrainingScenario(workload, ArchitectureConfig.baseline(), 64))
    tb = simulate(TrainingScenario(workload, ArchitectureConfig.trainbox(), 64))
    # Video prep is the heaviest of all: the baseline collapses and
    # TrainBox reaches the accelerator target (the gap is bounded at 64
    # devices only by the accelerators themselves).
    assert tb.throughput > 10 * base.throughput
    assert tb.bottleneck == "accelerator"
    assert base.bottleneck == "host_cpu"


def test_measured_spec():
    ds = SyntheticVideoDataset(num_items=2, frames_per_clip=3, height=24, width=24)
    spec = ds.measured_spec()
    assert spec.kind == "video_mjpeg"
    assert spec.nbytes > 0
