"""Tests for shuffling and weighted sampling (footnote-3 operations)."""

import numpy as np
import pytest

from repro.datasets.sampling import (
    ShuffleBuffer,
    WeightedSampler,
    epoch_permutation,
    exchange_cost,
    recommend_strategy,
    replication_cost,
)
from repro.errors import ConfigError
from repro import units


# -- shuffle buffer -----------------------------------------------------------


def test_shuffle_is_a_permutation():
    items = list(range(100))
    out = list(ShuffleBuffer(capacity=16, seed=0).shuffle(items))
    assert sorted(out) == items
    assert out != items  # astronomically unlikely to be identity


def test_full_capacity_gives_uniform_shuffle():
    items = list(range(50))
    a = list(ShuffleBuffer(capacity=50, seed=1).shuffle(items))
    b = list(ShuffleBuffer(capacity=50, seed=2).shuffle(items))
    assert sorted(a) == items and sorted(b) == items
    assert a != b


def test_shuffle_deterministic_per_seed():
    items = list(range(40))
    a = list(ShuffleBuffer(capacity=8, seed=7).shuffle(items))
    b = list(ShuffleBuffer(capacity=8, seed=7).shuffle(items))
    assert a == b


def test_small_buffer_limits_displacement():
    """An item cannot appear before all but `capacity` of its
    predecessors have been emitted (windowed shuffling semantics)."""
    items = list(range(200))
    out = list(ShuffleBuffer(capacity=10, seed=3).shuffle(items))
    positions = {v: i for i, v in enumerate(out)}
    for value in items:
        assert positions[value] >= value - 10


def test_buffer_validation():
    with pytest.raises(ConfigError):
        ShuffleBuffer(capacity=0)


# -- epoch permutation -------------------------------------------------------


def test_epoch_permutation_properties():
    p0 = epoch_permutation(64, epoch=0, seed=1)
    p0_again = epoch_permutation(64, epoch=0, seed=1)
    p1 = epoch_permutation(64, epoch=1, seed=1)
    assert np.array_equal(p0, p0_again)
    assert not np.array_equal(p0, p1)
    assert sorted(p0.tolist()) == list(range(64))
    with pytest.raises(ConfigError):
        epoch_permutation(0, epoch=0)


# -- weighted sampler --------------------------------------------------------


def test_alias_sampler_matches_weights():
    weights = [1.0, 2.0, 4.0, 1.0]
    sampler = WeightedSampler(weights, seed=0)
    draws = sampler.sample(80_000)
    freqs = np.bincount(draws, minlength=4) / draws.size
    expected = np.asarray(weights) / sum(weights)
    assert np.allclose(freqs, expected, atol=0.01)


def test_alias_sampler_zero_weight_never_drawn():
    sampler = WeightedSampler([0.0, 1.0, 1.0], seed=0)
    draws = sampler.sample(20_000)
    assert not np.any(draws == 0)


def test_alias_sampler_degenerate_single():
    sampler = WeightedSampler([3.0], seed=0)
    assert np.all(sampler.sample(100) == 0)


def test_alias_tables_consistent():
    sampler = WeightedSampler([0.1, 0.2, 0.3, 0.4], seed=0)
    # Reconstruct probabilities from the alias tables.
    recon = np.zeros(sampler.n)
    for i in range(sampler.n):
        recon[i] += sampler._prob[i] / sampler.n
        recon[sampler._alias[i]] += (1.0 - sampler._prob[i]) / sampler.n
    assert np.allclose(recon, sampler.probabilities, atol=1e-12)


def test_sampler_validation():
    with pytest.raises(ConfigError):
        WeightedSampler([])
    with pytest.raises(ConfigError):
        WeightedSampler([-1.0, 2.0])
    with pytest.raises(ConfigError):
        WeightedSampler([0.0, 0.0])
    with pytest.raises(ConfigError):
        WeightedSampler([1.0]).sample(0)


# -- cross-box strategies -----------------------------------------------------


def test_replication_cost_scaling():
    cost = replication_cost(32, dataset_bytes=630e9)
    assert cost.extra_storage_bytes == pytest.approx(31 * 630e9)
    assert cost.ethernet_bytes_per_sample == 0.0


def test_exchange_cost_miss_probability():
    cost = exchange_cost(32, bytes_per_item=45_000)
    assert cost.ethernet_bytes_per_sample == pytest.approx(45_000 * 31 / 32)
    single_box = exchange_cost(1, bytes_per_item=45_000)
    assert single_box.ethernet_bytes_per_sample == 0.0


def test_recommend_prefers_free_replication():
    plan = recommend_strategy(
        n_boxes=4,
        dataset_bytes=1e12,
        bytes_per_item=45_000,
        sample_rate=1e6,
        spare_storage_bytes=1e13,
    )
    assert plan.strategy == "replication"


def test_recommend_falls_back_to_exchange():
    plan = recommend_strategy(
        n_boxes=32,
        dataset_bytes=630e9,
        bytes_per_item=45_000,
        sample_rate=1.9e6,
        spare_storage_bytes=1e12,  # not enough for 31 copies
    )
    assert plan.strategy == "exchange"
    # ImageNet-scale exchange fits comfortably in 100 GbE per FPGA.
    per_fpga = plan.ethernet_bytes_per_sample * (1.9e6 / 32) / 2
    assert per_fpga < 12.5 * units.GB


def test_recommend_raises_when_infeasible():
    with pytest.raises(ConfigError):
        recommend_strategy(
            n_boxes=32,
            dataset_bytes=1e15,
            bytes_per_item=5e6,       # huge items
            sample_rate=1.9e6,
            spare_storage_bytes=0.0,
            ethernet_bandwidth=1e9,   # slow links
        )


def test_cost_validation():
    with pytest.raises(ConfigError):
        replication_cost(0, 1.0)
    with pytest.raises(ConfigError):
        exchange_cost(2, -1.0)
