"""Tests for the synthetic image dataset."""

import numpy as np
import pytest

from repro.dataprep.jpeg import decode
from repro.datasets.imagenet import (
    IMAGENET_LIKE,
    SyntheticImageDataset,
    synthesize_image,
)
from repro.errors import DataprepError


def test_items_are_decodable_jpeg():
    ds = SyntheticImageDataset(num_items=3, height=32, width=32)
    data, label = ds[0]
    img = decode(data)
    assert img.shape == (32, 32, 3)
    assert 0 <= label < ds.num_classes


def test_items_deterministic():
    a = SyntheticImageDataset(num_items=4, height=24, width=24, seed=7)
    b = SyntheticImageDataset(num_items=4, height=24, width=24, seed=7)
    assert a[2][0] == b[2][0]
    assert a[2][1] == b[2][1]


def test_different_seeds_differ():
    a = SyntheticImageDataset(num_items=1, height=24, width=24, seed=1)
    b = SyntheticImageDataset(num_items=1, height=24, width=24, seed=2)
    assert a[0][0] != b[0][0]


def test_labels_cycle_through_classes():
    ds = SyntheticImageDataset(num_items=10, num_classes=4)
    assert [ds.label_of(i) for i in range(5)] == [0, 1, 2, 3, 0]


def test_mirror_symmetric_class_signal():
    """Flipping must not change the class-determined structure (the
    augmentation experiment relies on this)."""
    rng = np.random.default_rng(0)
    img = synthesize_image(rng, 32, 32, label=3).astype(float)
    rng2 = np.random.default_rng(0)
    # Regenerate with the same rng state: identical blobs, so the only
    # asymmetry could come from the base pattern.
    img2 = synthesize_image(rng2, 32, 32, label=3).astype(float)
    assert np.array_equal(img, img2)


def test_compression_is_photo_like():
    ds = SyntheticImageDataset(num_items=2, height=64, width=64, quality=80)
    spec = ds.measured_spec(probe_items=2)
    raw = 64 * 64 * 3
    assert spec.nbytes < raw  # actually compresses
    assert spec.nbytes > raw / 40  # but not degenerate


def test_iteration_and_len():
    ds = SyntheticImageDataset(num_items=3, height=16, width=16)
    items = list(ds)
    assert len(items) == len(ds) == 3


def test_index_bounds():
    ds = SyntheticImageDataset(num_items=2, height=16, width=16)
    with pytest.raises(IndexError):
        ds[2]
    with pytest.raises(IndexError):
        ds[-1]


def test_validation():
    with pytest.raises(DataprepError):
        SyntheticImageDataset(num_items=0)
    with pytest.raises(DataprepError):
        synthesize_image(np.random.default_rng(0), 4, 4, 0)


def test_imagenet_like_spec():
    spec = IMAGENET_LIKE.sample_spec()
    assert spec.kind == "jpeg"
    assert spec.shape == (256, 256, 3)
    assert IMAGENET_LIKE.num_items == 14_000_000


def test_batch_matches_per_item_encoding():
    ds = SyntheticImageDataset(num_items=6, height=16, width=16)
    assert ds.batch(1, 4) == [ds[i] for i in range(1, 5)]


def test_batch_bounds_checked():
    ds = SyntheticImageDataset(num_items=4, height=16, width=16)
    with pytest.raises(DataprepError):
        ds.batch(0, 0)
    with pytest.raises(IndexError):
        ds.batch(2, 3)


def test_measured_spec_uses_real_sizes():
    ds = SyntheticImageDataset(num_items=4, height=16, width=16)
    spec = ds.measured_spec(probe_items=2)
    assert spec.nbytes == np.mean([len(ds[0][0]), len(ds[1][0])])
