"""Tests for the synthetic speech dataset."""

import numpy as np
import pytest

from repro.datasets.librispeech import (
    LIBRISPEECH_LIKE,
    SyntheticSpeechDataset,
    synthesize_utterance,
)
from repro.errors import DataprepError


def test_items_are_int16_pcm():
    ds = SyntheticSpeechDataset(num_items=2, mean_duration_s=0.5)
    pcm, speaker = ds[0]
    assert pcm.dtype == np.int16
    assert pcm.ndim == 1
    assert 0 <= speaker < ds.num_speakers


def test_determinism():
    a = SyntheticSpeechDataset(num_items=2, mean_duration_s=0.3, seed=5)
    b = SyntheticSpeechDataset(num_items=2, mean_duration_s=0.3, seed=5)
    assert np.array_equal(a[1][0], b[1][0])


def test_durations_jitter_around_mean():
    ds = SyntheticSpeechDataset(
        num_items=50, mean_duration_s=2.0, duration_jitter=0.25
    )
    durations = [ds.duration_of(i) for i in range(50)]
    assert min(durations) >= 2.0 * 0.75 - 1e-9
    assert max(durations) <= 2.0 * 1.25 + 1e-9
    assert abs(np.mean(durations) - 2.0) < 0.2


def test_signal_is_spectrally_structured():
    """The synthetic speech must have a harmonic peak, not white noise."""
    rng = np.random.default_rng(0)
    pcm = synthesize_utterance(rng, 16_000, 16_000, speaker=4)
    spectrum = np.abs(np.fft.rfft(pcm.astype(float)))
    f0_bin = int((90 + 4 * 8) * 16_000 / 16_000)  # fundamental, 1 Hz bins
    peak_region = spectrum[f0_bin - 5 : f0_bin + 6].max()
    noise_floor = np.median(spectrum)
    assert peak_region > 20 * noise_floor


def test_amplitude_bounded():
    rng = np.random.default_rng(0)
    pcm = synthesize_utterance(rng, 8000, 16_000, speaker=0)
    assert np.abs(pcm).max() <= 32767


def test_validation():
    with pytest.raises(DataprepError):
        SyntheticSpeechDataset(num_items=0)
    with pytest.raises(DataprepError):
        SyntheticSpeechDataset(num_items=1, mean_duration_s=0)
    with pytest.raises(DataprepError):
        SyntheticSpeechDataset(num_items=1, duration_jitter=1.0)
    with pytest.raises(DataprepError):
        synthesize_utterance(np.random.default_rng(0), 0, 16_000, 0)
    ds = SyntheticSpeechDataset(num_items=1, mean_duration_s=0.1)
    with pytest.raises(IndexError):
        ds[5]


def test_librispeech_like_spec():
    """The paper's geometry: 6.96 s average at 16 kHz, 16-bit."""
    spec = LIBRISPEECH_LIKE.sample_spec()
    assert spec.kind == "audio_pcm"
    assert spec.shape[0] == round(6.96 * 16_000)
    assert spec.nbytes == spec.shape[0] * 2


def test_measured_spec():
    ds = SyntheticSpeechDataset(num_items=3, mean_duration_s=0.2)
    spec = ds.measured_spec(probe_items=3)
    assert spec.kind == "audio_pcm"
    assert spec.nbytes == spec.shape[0] * 2
