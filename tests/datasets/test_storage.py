"""Tests for data sharding across SSDs."""

import pytest

from repro.datasets.storage import DataShard, shard_dataset, validate_sharding
from repro.errors import CapacityError, ConfigError


def test_shards_cover_everything_once():
    shards = shard_dataset(100, ["s0", "s1", "s2"])
    validate_sharding(shards, 100)


def test_shards_balanced():
    shards = shard_dataset(10, ["a", "b", "c"])
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 10


def test_shards_contiguous():
    shards = shard_dataset(9, ["a", "b", "c"])
    assert shards[0].item_indices == range(0, 3)
    assert shards[1].item_indices == range(3, 6)
    assert shards[2].item_indices == range(6, 9)


def test_capacity_respected():
    with pytest.raises(CapacityError):
        shard_dataset(100, ["a"], bytes_per_item=1e9, ssd_capacity=1e10)
    # Fits exactly.
    shard_dataset(10, ["a"], bytes_per_item=1e9, ssd_capacity=1e10)


def test_bytes_stored():
    shard = DataShard("a", range(0, 5))
    assert shard.bytes_stored(2.0) == 10.0


def test_more_ssds_than_items():
    shards = shard_dataset(2, ["a", "b", "c"])
    validate_sharding(shards, 2)
    assert sum(len(s) for s in shards) == 2


def test_validation_errors():
    with pytest.raises(ConfigError):
        shard_dataset(0, ["a"])
    with pytest.raises(ConfigError):
        shard_dataset(5, [])
    with pytest.raises(ConfigError):
        shard_dataset(5, ["a", "a"])


def test_validate_sharding_detects_overlap():
    shards = [DataShard("a", range(0, 3)), DataShard("b", range(2, 5))]
    with pytest.raises(ConfigError):
        validate_sharding(shards, 5)


def test_validate_sharding_detects_gap():
    shards = [DataShard("a", range(0, 2))]
    with pytest.raises(ConfigError):
        validate_sharding(shards, 5)
