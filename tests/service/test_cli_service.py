"""CLI round-trips for the service: batch flags through ``serve``'s
config plumbing, and the pipelined ``client --requests-file`` mode
against a live server."""

import json

from repro import api, cli
from repro.service import ServerThread, ServiceClient


def _parse(argv):
    return cli.build_parser().parse_args(argv)


def test_serve_batch_flags_round_trip_into_the_live_config():
    args = _parse(
        [
            "serve",
            "--batch-window-ms", "7.5",
            "--max-batch-points", "33",
            "--workers", "3",
        ]
    )
    config = cli._service_config(args)
    assert config.batch_window_ms == 7.5
    assert config.max_batch_points == 33
    assert config.batch_enabled
    with ServerThread(config) as srv:
        with ServiceClient(*srv.address) as client:
            stats = client.stats()
    assert stats["config"]["batch_window_ms"] == 7.5
    assert stats["config"]["max_batch_points"] == 33
    assert stats["config"]["batch_enabled"] is True
    assert stats["config"]["max_workers"] == 3


def test_serve_drain_timeout_flag_round_trips():
    args = _parse(["serve", "--drain-timeout", "3.5"])
    assert args.drain_timeout == 3.5
    config = cli._service_config(args)
    assert config.drain_timeout == 3.5
    # Default is the documented 10s budget.
    assert cli._service_config(_parse(["serve"])).drain_timeout == 10.0


def test_bench_service_chaos_flags_parse():
    args = _parse(["bench-service", "--chaos"])
    assert args.chaos is True
    assert args.chaos_seed is None  # falls back to the default seed pair
    args = _parse(
        ["bench-service", "--chaos", "--chaos-seed", "3", "--chaos-seed", "9"]
    )
    assert args.chaos_seed == [3, 9]


def test_serve_no_batch_and_auto_workers():
    from repro.service import default_workers

    config = cli._service_config(_parse(["serve", "--no-batch"]))
    assert not config.batch_enabled
    assert config.max_workers is None
    assert config.workers == default_workers()
    with ServerThread(config) as srv:
        with ServiceClient(*srv.address) as client:
            stats = client.stats()
    assert stats["config"]["batch_enabled"] is False
    assert stats["config"]["max_workers"] == default_workers()


def test_client_requests_file_pipelines_mixed_trace(tmp_path, capsys):
    requests = [
        api.SimulationRequest("Resnet-50", "trainbox", 64),
        api.SweepRequest(
            workloads=("VGG-19",), archs=("baseline",), scales=(4, 16)
        ),
        api.SimulationRequest("Resnet-50", "trainbox", 64),  # duplicate
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "# comment lines and blanks are skipped\n\n"
        + "\n".join(json.dumps(r.to_dict()) for r in requests)
        + "\n"
    )
    with ServerThread() as srv:
        host, port = srv.address
        rc = cli.main(
            [
                "client",
                "--requests-file", str(path),
                "--host", host,
                "--port", str(port),
            ]
        )
    assert rc == 0
    out = capsys.readouterr().out
    assert "3 requests" in out
    assert "0 failed" in out
    assert "batched: 2" in out  # the duplicate rode the memo/coalescer


def test_client_requests_file_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    try:
        cli._pipeline_requests(str(path))
    except SystemExit as exc:
        assert "not JSON" in str(exc)
    else:
        raise AssertionError("garbage JSONL must SystemExit")
