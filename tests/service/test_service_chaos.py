"""The service chaos layer: deterministic fault decisions, healing on
resend, the fault-wrapping cache proxy, and the end-to-end drill.

The drill itself (``run_chaos_drill``) carries its own hard assertions —
bit-identity of non-faulted responses, outcome-accounting balance, a
clean drain — so the smoke here only needs to run it and check the
report shape; a violated invariant raises out of the call.
"""

import pytest

from repro import api
from repro.cache import ResultCache
from repro.errors import ConfigError
from repro.service import (
    ChaosError,
    ChaosInjector,
    ChaosResultCache,
    ServerThread,
    ServiceChaosSpec,
    ServiceClient,
    ServiceConfig,
    run_chaos_drill,
)
from repro.service.chaos import FAULT_KINDS


def test_spec_decisions_are_deterministic_and_seed_keyed():
    spec = ServiceChaosSpec(seed=5)
    again = ServiceChaosSpec(seed=5)
    other = ServiceChaosSpec(seed=6)
    tokens = [f"token-{i}" for i in range(64)]
    for kind in FAULT_KINDS:
        coins = [spec.decide(kind, t) for t in tokens]
        assert coins == [again.decide(kind, t) for t in tokens]
        assert all(0.0 <= c < 1.0 for c in coins)
        # A different seed (or kind) is a different coin stream.
        assert coins != [other.decide(kind, t) for t in tokens]
    assert spec.decide("compute_error", "x") != spec.decide("disk_error", "x")


def test_spec_validates_rates_and_ordinals():
    with pytest.raises(ConfigError):
        ServiceChaosSpec(compute_error_rate=1.5)
    with pytest.raises(ConfigError):
        ServiceChaosSpec(drop_rate=-0.1)
    with pytest.raises(ConfigError):
        ServiceChaosSpec(compute_delay_ms=-1.0)
    with pytest.raises(ConfigError):
        ServiceChaosSpec(dispatch_fault_ordinals=(0, -2))


def test_first_attempt_only_faults_heal_on_resend():
    injector = ChaosInjector(ServiceChaosSpec(seed=0, compute_error_rate=1.0))
    with pytest.raises(ChaosError):
        injector.before_compute("fp-a")
    # The resend of the same fingerprint sails through.
    injector.before_compute("fp-a")
    # A different fingerprint gets its own first-attempt fault.
    with pytest.raises(ChaosError):
        injector.before_compute("fp-b")
    assert injector.snapshot()["compute_error"] == 2

    persistent = ChaosInjector(
        ServiceChaosSpec(
            seed=0, compute_error_rate=1.0, first_attempt_only=False
        )
    )
    for _ in range(3):
        with pytest.raises(ChaosError):
            persistent.before_compute("fp-a")


def test_dispatch_faults_fire_on_listed_ordinals_only():
    injector = ChaosInjector(
        ServiceChaosSpec(seed=0, dispatch_fault_ordinals=(0, 2))
    )
    with pytest.raises(ChaosError):
        injector.before_dispatch()  # ordinal 0
    injector.before_dispatch()      # ordinal 1
    with pytest.raises(ChaosError):
        injector.before_dispatch()  # ordinal 2
    injector.before_dispatch()      # ordinal 3
    assert injector.snapshot()["dispatch_error"] == 2


def test_chaos_result_cache_injects_oserror_then_delegates(tmp_path):
    injector = ChaosInjector(ServiceChaosSpec(seed=0, disk_error_rate=1.0))
    cache = ChaosResultCache(ResultCache(tmp_path), injector)
    with pytest.raises(OSError):
        cache.put("key", {"kind": "simulate"})
    cache.put("key", {"kind": "simulate"})  # second attempt heals
    with pytest.raises(OSError):
        cache.get("key")
    assert cache.get("key") == {"kind": "simulate"}
    assert len(cache) == 1
    assert injector.snapshot()["disk_error"] == 2
    # Attribute access falls through to the wrapped cache.
    assert cache.stats.stores == 1


def test_chaos_compute_fault_surfaces_as_internal_error_and_heals():
    # End-to-end: a ChaosError on the executor thread is NOT a
    # ReproError, so it exercises the broker's unexpected-exception
    # hardening — the client sees an `internal` error envelope, and the
    # resend (first_attempt_only) computes normally, bit-identically.
    injector = ChaosInjector(ServiceChaosSpec(seed=0, compute_error_rate=1.0))
    request = api.SimulationRequest("Resnet-50", "trainbox", 64)
    config = ServiceConfig(max_workers=1, batch_enabled=False)
    with ServerThread(config, chaos=injector) as srv:
        with ServiceClient(*srv.address) as client:
            faulted = client.call(request)
            assert faulted["status"] == "error"
            assert faulted["error"]["code"] == "internal"
            assert "chaos" in faulted["error"]["message"]
            healed = client.call(request)
            assert healed["status"] == "ok"
    assert srv.drain_report["drained"] is True


def test_chaos_drill_smoke():
    report = run_chaos_drill(n_clients=2, dup_factor=1, seed=7)
    assert report.seed == 7
    assert report.n_clients == 2
    assert report.total > 0
    assert report.ok == report.total  # every request eventually answered ok
    assert report.drain["drained"] is True
    assert report.drain["stranded"] == 0
    assert report.faults["dispatch_error"] == 3
    assert report.counters["service.requests"] > 0
    assert "drained clean" in report.summary()
