"""The service broker and TCP server: coalescing, admission, quotas,
tiers, and the bit-identity guarantee.

Broker-level tests drive :meth:`SimulationService.handle` directly under
``asyncio.run`` — with the engine call monkeypatched slow where the test
needs deterministic overlap — and the end-to-end tests run a real
:class:`ServerThread` with real :class:`ServiceClient` sockets.
"""

import asyncio
import json
import time

import pytest

from repro import api
from repro.errors import ConfigError
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    TokenBucket,
    execute_request,
)
from repro.service import server as server_mod

REQ = api.SimulationRequest("Resnet-50", "trainbox", 64)


def _envelope(request, rid=1, tenant="t", **extra):
    return {"id": rid, "tenant": tenant, "request": request.to_dict(), **extra}


def _gather(service, envelopes):
    async def main():
        try:
            return await asyncio.gather(
                *(service.handle(e) for e in envelopes)
            )
        finally:
            service.close()

    return asyncio.run(main())


# -- token bucket -------------------------------------------------------------


def test_token_bucket_enforces_rate_and_burst():
    bucket = TokenBucket(rate=1000.0, burst=2.0)
    assert bucket.take() and bucket.take()
    # Burst exhausted; at 1000/s the next token is ~1ms away.
    if not bucket.take():
        assert bucket.retry_after() > 0
        time.sleep(0.01)
        assert bucket.take()
    infinite = TokenBucket(rate=float("inf"), burst=1.0)
    assert all(infinite.take() for _ in range(1000))
    assert infinite.retry_after() == 0.0


# -- broker behaviour ---------------------------------------------------------


def test_ok_response_is_bit_identical_to_direct_call():
    # Batching on (the default): an analytical request is served by the
    # batch scheduler, still bit-identical to the direct evaluation.
    service = SimulationService(ServiceConfig(max_workers=2))
    [response] = _gather(service, [_envelope(REQ)])
    assert response["status"] == "ok"
    assert response["meta"]["served_by"] == "batched"
    assert json.dumps(response["payload"], sort_keys=True) == json.dumps(
        execute_request(REQ), sort_keys=True
    )

    # Batching off: the classic compute path, same bits.
    plain = SimulationService(
        ServiceConfig(max_workers=2, batch_enabled=False)
    )
    [unbatched] = _gather(plain, [_envelope(REQ)])
    assert unbatched["status"] == "ok"
    assert unbatched["meta"]["served_by"] == "computed"
    assert unbatched["payload"] == response["payload"]


def test_duplicate_in_flight_requests_coalesce(monkeypatch):
    real = server_mod.execute_request
    calls = []

    def slow(request):
        calls.append(request.fingerprint())
        time.sleep(0.2)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)
    # batch_enabled=False: the monkeypatched engine call IS the compute
    # path here (the batch scheduler would bypass it).
    service = SimulationService(
        ServiceConfig(max_workers=4, batch_enabled=False)
    )
    responses = _gather(
        service, [_envelope(REQ, rid=i) for i in range(5)]
    )
    assert [r["status"] for r in responses] == ["ok"] * 5
    served = sorted(r["meta"]["served_by"] for r in responses)
    assert served.count("computed") == 1
    assert served.count("coalesced") == 4
    assert len(calls) == 1  # the engine ran exactly once
    payloads = {json.dumps(r["payload"], sort_keys=True) for r in responses}
    assert len(payloads) == 1  # all five answers bit-identical


def test_sequential_duplicates_hit_the_memo():
    service = SimulationService(ServiceConfig(max_workers=2))

    async def main():
        try:
            first = await service.handle(_envelope(REQ, rid=1))
            second = await service.handle(_envelope(REQ, rid=2))
            return first, second
        finally:
            service.close()

    first, second = asyncio.run(main())
    assert first["meta"]["served_by"] == "batched"
    assert second["meta"]["served_by"] == "memo"
    assert second["payload"] == first["payload"]


def test_backpressure_rejects_beyond_max_pending(monkeypatch):
    real = server_mod.execute_request

    def slow(request):
        time.sleep(0.2)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)
    service = SimulationService(
        ServiceConfig(max_workers=1, max_pending=1, batch_enabled=False)
    )
    distinct = [
        api.SimulationRequest("Resnet-50", "trainbox", scale)
        for scale in (4, 8, 16)
    ]
    responses = _gather(
        service,
        [_envelope(r, rid=i) for i, r in enumerate(distinct)],
    )
    statuses = sorted(r["status"] for r in responses)
    assert statuses.count("ok") == 1
    assert statuses.count("rejected") == 2
    rejected = [r for r in responses if r["status"] == "rejected"]
    for r in rejected:
        assert r["error"]["code"] == "backpressure"
        assert r["meta"]["retry_after"] > 0


def test_backpressure_retry_hint_with_default_workers(monkeypatch):
    """Regression: the retry hint divides by the *resolved* worker
    count, so the default config (``max_workers=None``) must still
    produce the retryable backpressure envelope, not an internal
    TypeError."""
    real = server_mod.execute_request

    def slow(request):
        time.sleep(0.2)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)
    service = SimulationService(
        ServiceConfig(max_pending=1, batch_enabled=False)
    )
    distinct = [
        api.SimulationRequest("Resnet-50", "trainbox", scale)
        for scale in (4, 8, 16)
    ]
    responses = _gather(
        service,
        [_envelope(r, rid=i) for i, r in enumerate(distinct)],
    )
    rejected = [r for r in responses if r["status"] == "rejected"]
    assert rejected  # at least one request hit the pending limit
    for r in rejected:
        assert r["error"]["code"] == "backpressure"
        assert r["meta"]["retry_after"] > 0


def test_tenant_quota_rejects_over_budget():
    service = SimulationService(
        ServiceConfig(max_workers=2, quota_rate=0.001, quota_burst=2.0)
    )
    distinct = [
        api.SimulationRequest("Resnet-50", "trainbox", scale)
        for scale in (4, 8, 16)
    ]
    envelopes = [
        _envelope(r, rid=i, tenant="greedy")
        for i, r in enumerate(distinct)
    ]
    # A second tenant stays under its own bucket.
    envelopes.append(_envelope(REQ, rid=99, tenant="frugal"))

    async def main():
        try:
            return [await service.handle(e) for e in envelopes]
        finally:
            service.close()

    responses = asyncio.run(main())
    greedy = responses[:3]
    assert [r["status"] for r in greedy[:2]] == ["ok", "ok"]
    assert greedy[2]["status"] == "rejected"
    assert greedy[2]["error"]["code"] == "quota"
    assert greedy[2]["meta"]["retry_after"] > 0
    assert responses[3]["status"] == "ok"


def test_disk_and_shared_tiers(tmp_path):
    # Request-level disk/shared tiers are a property of the classic
    # compute path; the batch scheduler caches per *point* instead
    # (covered in tests/service/test_batch.py).
    shared = tmp_path / "shared"
    first = SimulationService(
        ServiceConfig(
            max_workers=1,
            cache_dir=tmp_path / "a",
            shared_dir=shared,
            batch_enabled=False,
        )
    )
    [r1] = _gather(first, [_envelope(REQ)])
    assert r1["meta"]["served_by"] == "computed"

    # A restarted server with the same private dir serves from disk.
    again = SimulationService(
        ServiceConfig(
            max_workers=1, cache_dir=tmp_path / "a", batch_enabled=False
        )
    )
    [r2] = _gather(again, [_envelope(REQ)])
    assert r2["meta"]["served_by"] == "disk"
    assert r2["payload"] == r1["payload"]

    # A different server sharing only the shared tier serves from it.
    other = SimulationService(
        ServiceConfig(
            max_workers=1,
            cache_dir=tmp_path / "b",
            shared_dir=shared,
            batch_enabled=False,
        )
    )
    [r3] = _gather(other, [_envelope(REQ)])
    assert r3["meta"]["served_by"] == "shared"
    assert r3["payload"] == r1["payload"]
    # ...and backfilled its private tier for next time.
    backfilled = SimulationService(
        ServiceConfig(
            max_workers=1, cache_dir=tmp_path / "b", batch_enabled=False
        )
    )
    [r4] = _gather(backfilled, [_envelope(REQ)])
    assert r4["meta"]["served_by"] == "disk"


def test_bad_requests_answer_error_not_crash():
    service = SimulationService(ServiceConfig(max_workers=1))
    envelopes = [
        "not a dict",
        {"id": 1, "op": "teleport"},
        {"id": 2, "request": {"v": "repro-request/99", "kind": "simulate"}},
        {"id": 3, "request": {"v": api.REQUEST_SCHEMA, "kind": "simulate",
                              "workload": "NoSuchNet", "arch": "trainbox",
                              "scale": 4}},
        {"id": 4},  # op defaults to request, but no request body
        # Schema-tagged but malformed field values: each must answer
        # bad-request, never escape handle() (regression: these used to
        # raise and leave the client hanging).
        {"id": 5, "request": {"v": api.REQUEST_SCHEMA, "kind": "simulate",
                              "workload": "Resnet-50",
                              "arch": "trainbox"}},  # missing scale
        {"id": 6, "request": {"v": api.REQUEST_SCHEMA, "kind": "simulate",
                              "workload": "Resnet-50", "arch": "trainbox",
                              "scale": "huge"}},  # string scale
        {"id": 7, "request": {"v": api.REQUEST_SCHEMA, "kind": "simulate",
                              "workload": "Resnet-50", "arch": "trainbox",
                              "scale": -4}},  # non-positive scale
        {"id": 8, "request": {"v": api.REQUEST_SCHEMA,
                              "kind": "price_fault_schedule",
                              "workload": "Resnet-50", "arch": "trainbox",
                              "scale": 4, "events": 7,
                              "horizon": "long"}},  # garbage events/horizon
    ]

    async def main():
        try:
            return [await service.handle(e) for e in envelopes]
        finally:
            service.close()

    responses = asyncio.run(main())
    assert all(r["status"] == "error" for r in responses)
    assert all(
        r["error"]["code"] in ("bad-request",) for r in responses
    )
    # Echoed ids where the envelope had one.
    assert responses[1]["id"] == 1
    assert responses[3]["id"] == 3


def test_owner_cancellation_fails_coalesced_waiters_fast(monkeypatch):
    # If the task owning a computation is cancelled (its connection
    # died), coalesced waiters must get an immediate retryable answer,
    # not hang on a future nobody will resolve.
    real = server_mod.execute_request

    def slow(request):
        time.sleep(0.5)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_enabled=False)
    )
    fp = REQ.fingerprint()

    async def main():
        try:
            owner = asyncio.create_task(service.handle(_envelope(REQ, rid=1)))
            while fp not in service._inflight:
                await asyncio.sleep(0.005)
            waiter = asyncio.create_task(
                service.handle(_envelope(REQ, rid=2))
            )
            # Let the waiter attach to the in-flight future.
            while (
                service.registry.to_manifest()["counters"].get(
                    "service.coalesce_attached", 0
                )
                < 1
            ):
                await asyncio.sleep(0.005)
            owner.cancel()
            start = time.monotonic()
            response = await waiter
            elapsed = time.monotonic() - start
            try:
                await owner
            except asyncio.CancelledError:
                pass
            return response, elapsed
        finally:
            service.close()

    response, elapsed = asyncio.run(main())
    assert response["status"] == "rejected"
    assert response["error"]["code"] == "retry"
    assert elapsed < 0.4  # did not wait out the 0.5s engine run
    assert fp not in service._inflight  # table cleaned up


def test_tenant_bucket_table_is_bounded():
    service = SimulationService(
        ServiceConfig(max_workers=1, max_tenants=2)
    )

    async def main():
        try:
            for i in range(5):
                req = api.SimulationRequest("Resnet-50", "trainbox", 2 ** (i + 2))
                response = await service.handle(
                    _envelope(req, rid=i, tenant=f"tenant-{i}")
                )
                assert response["status"] == "ok"
            return await service.handle({"id": 99, "op": "stats"})
        finally:
            service.close()

    stats = asyncio.run(main())
    assert stats["payload"]["tenants"] <= 2
    counters = stats["payload"]["counters"]
    assert counters["service.tenants_evicted"] == 3


def test_compute_error_reports_and_recovers():
    service = SimulationService(ServiceConfig(max_workers=1))
    # Valid at construction, fails at pricing: unknown device id.
    doomed = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16,
        events=(("no_such_device", 1.0, 2.0),), horizon=10.0,
    )

    async def main():
        try:
            failed = await service.handle(_envelope(doomed, rid=1))
            healthy = await service.handle(_envelope(REQ, rid=2))
            return failed, healthy
        finally:
            service.close()

    failed, healthy = asyncio.run(main())
    assert failed["status"] == "error"
    assert failed["error"]["code"] == "compute"
    assert "no_such_device" in failed["error"]["message"]
    assert healthy["status"] == "ok"  # the broker is not wedged
    counters = service.registry.to_manifest()["counters"]
    assert counters["service.errors"] == 1


def test_admin_ops_and_counters():
    service = SimulationService(ServiceConfig(max_workers=1))

    async def main():
        try:
            pong = await service.handle({"id": 1, "op": "ping"})
            await service.handle(_envelope(REQ, rid=2))
            await service.handle(_envelope(REQ, rid=3))
            stats = await service.handle({"id": 4, "op": "stats"})
            return pong, stats
        finally:
            service.close()

    pong, stats = asyncio.run(main())
    assert pong["payload"]["kind"] == "pong"
    counters = stats["payload"]["counters"]
    assert counters["service.requests"] == 2
    assert counters["service.batched"] == 1  # batching is the default
    assert counters["service.memo_hits"] == 1
    assert counters["service.batch_dispatches"] == 1
    # Engine-internal counters merged into the service manifest.
    assert counters.get("engine.analytical.runs", 0) >= 1
    # The batch counter scope is surfaced directly in stats too.
    assert stats["payload"]["batch"]["service.batch_points"] == 1


# -- end-to-end over real sockets ---------------------------------------------


def test_tcp_round_trip_all_request_kinds():
    from repro.core.server import build_server

    fpga = build_server(api.resolve_arch("trainbox"), 16).boxes[0].prep_ids[0]
    requests = [
        REQ,
        api.SweepRequest(
            workloads=("Resnet-50",), archs=("baseline",), scales=(4, 16),
        ),
        api.FaultScheduleRequest(
            "Resnet-50", "trainbox", 16,
            events=((fpga, 10.0, 40.0),), horizon=60.0,
        ),
    ]
    with ServerThread(ServiceConfig(max_workers=2)) as srv:
        host, port = srv.address
        with ServiceClient(host, port) as client:
            assert client.ping()["payload"]["kind"] == "pong"
            for request in requests:
                payload = client.call_strict(request)
                assert json.dumps(payload, sort_keys=True) == json.dumps(
                    execute_request(request), sort_keys=True
                )


def test_tcp_pipelined_duplicates_dedup():
    requests = [
        api.SimulationRequest("VGG-19", "baseline", s) for s in (4, 16)
    ] * 4
    with ServerThread(ServiceConfig(max_workers=2)) as srv:
        host, port = srv.address
        with ServiceClient(host, port) as client:
            responses = client.request_many(requests)
            assert all(r["status"] == "ok" for r in responses)
            served = [r["meta"]["served_by"] for r in responses]
            assert served.count("batched") == 2  # one per unique request
            assert all(
                s in ("batched", "coalesced", "memo") for s in served
            )
            stats = client.stats()
        counters = stats["counters"]
        assert counters["service.batched"] == 2
        assert (
            counters.get("service.coalesced", 0)
            + counters.get("service.memo_hits", 0)
            == 6
        )


def test_tcp_garbage_line_answers_error_and_connection_survives():
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        host, port = srv.address
        with ServiceClient(host, port) as client:
            client._sock.sendall(b"this is not json\n")
            response = client._recv()
            assert response["status"] == "error"
            assert response["error"]["code"] == "bad-frame"
            # The connection still works afterwards.
            assert client.ping()["payload"]["kind"] == "pong"


def test_server_thread_restartable():
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        first_port = srv.address[1]
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        with ServiceClient(*srv.address) as client:
            assert client.ping()["status"] == "ok"
    assert first_port  # both lifecycles completed cleanly
