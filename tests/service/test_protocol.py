"""Wire framing: canonical frames, envelope builders, garbage handling."""

import json

import pytest

from repro.service import protocol
from repro.service.protocol import ProtocolError


def test_frames_are_canonical_and_newline_terminated():
    frame = protocol.encode_frame({"b": 1, "a": {"z": 2, "y": 3}})
    assert frame.endswith(b"\n")
    assert frame == b'{"a":{"y":3,"z":2},"b":1}\n'
    # Identical objects, whatever insertion order, are byte-identical.
    assert frame == protocol.encode_frame({"a": {"y": 3, "z": 2}, "b": 1})


def test_decode_round_trip():
    obj = {"id": 7, "request": {"kind": "simulate", "scale": 256}}
    assert protocol.decode_frame(protocol.encode_frame(obj)) == obj


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError, match="bad frame"):
        protocol.decode_frame(b"{not json\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        protocol.decode_frame(b"[1,2,3]\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        protocol.decode_frame(b'"just a string"\n')


def test_response_builders():
    ok = protocol.ok_response(7, {"kind": "pong"}, {"served_by": "memo"})
    assert ok["status"] == protocol.STATUS_OK
    assert ok["id"] == 7
    assert ok["meta"]["served_by"] == "memo"

    rej = protocol.rejected_response(8, "backpressure", "busy", 0.05)
    assert rej["status"] == protocol.STATUS_REJECTED
    assert rej["error"]["code"] == "backpressure"
    assert rej["meta"]["retry_after"] == 0.05

    err = protocol.error_response(None, "bad-request", "nope")
    assert err["status"] == protocol.STATUS_ERROR
    assert err["id"] is None
    assert "payload" not in err


def test_floats_round_trip_exactly():
    value = 106292.51700680272
    frame = protocol.encode_frame({"throughput": value})
    assert protocol.decode_frame(frame)["throughput"] == value
