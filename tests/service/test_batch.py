"""The cross-request batch scheduler: flush triggers, stitching,
per-point error isolation, point-level cache tiers.

Tests drive :meth:`SimulationService.handle` directly under
``asyncio.run`` with tight batch windows; counter assertions read the
``service.batch_*`` scope the scheduler threads through the registry.
"""

import asyncio
import json

from repro import api
from repro.cache import ResultCache
from repro.core import analytical_batch
from repro.core.sweeps import cache_key, run_sweep
from repro.errors import SimulationError
from repro.service import (
    ServiceConfig,
    SimulationService,
    batchable,
    execute_request,
)

REQ = api.SimulationRequest("Resnet-50", "trainbox", 64)


def _envelope(request, rid=1, tenant="t", **extra):
    return {"id": rid, "tenant": tenant, "request": request.to_dict(), **extra}


def _gather(service, envelopes):
    async def main():
        try:
            return await asyncio.gather(
                *(service.handle(e) for e in envelopes)
            )
        finally:
            await service.aclose()

    return asyncio.run(main())


def _counters(service):
    return service.registry.to_manifest()["counters"]


# -- batchability -------------------------------------------------------------


def test_batchable_gates_kind_engine_and_profile():
    sweep = api.SweepRequest(
        workloads=("Resnet-50",), archs=("trainbox",), scales=(4,)
    )
    fault = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16, events=(), horizon=60.0
    )
    assert batchable(REQ)
    assert batchable(sweep)
    assert not batchable(REQ, profile=True)
    assert not batchable(fault)
    assert not batchable(
        api.SimulationRequest("Resnet-50", "trainbox", 64, engine="des")
    )


# -- flush triggers -----------------------------------------------------------


def test_window_flush_serves_a_lone_request():
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=1.0)
    )
    [response] = _gather(service, [_envelope(REQ)])
    assert response["status"] == "ok"
    assert response["meta"]["served_by"] == "batched"
    assert json.dumps(response["payload"], sort_keys=True) == json.dumps(
        execute_request(REQ), sort_keys=True
    )
    counters = _counters(service)
    assert counters["service.batch_flush_window"] == 1
    assert counters["service.batch_dispatches"] == 1
    assert counters["service.batch_points"] == 1
    assert counters["service.batch_point_kernel"] == 1


def test_size_flush_fires_before_the_window():
    # A 60s window would hang the test if the size trigger were broken;
    # max_batch_points=2 must flush the 2-point sweep immediately.
    service = SimulationService(
        ServiceConfig(
            max_workers=2, batch_window_ms=60_000.0, max_batch_points=2
        )
    )
    sweep = api.SweepRequest(
        workloads=("Resnet-50",), archs=("trainbox",), scales=(4, 16)
    )

    async def main():
        try:
            return await asyncio.wait_for(
                service.handle(_envelope(sweep)), timeout=30.0
            )
        finally:
            await service.aclose()

    response = asyncio.run(main())
    assert response["status"] == "ok"
    assert response["payload"] == execute_request(sweep)
    counters = _counters(service)
    assert counters["service.batch_flush_size"] == 1
    assert counters.get("service.batch_flush_window", 0) == 0
    assert counters["service.batch_points"] == 2


def test_oversize_request_splits_into_size_flushes():
    # 8 points through a 3-point queue: two size flushes + one window
    # flush for the remainder, every point priced exactly once.
    service = SimulationService(
        ServiceConfig(
            max_workers=2, batch_window_ms=5.0, max_batch_points=3
        )
    )
    sweep = api.SweepRequest(
        workloads=("Resnet-50", "VGG-19"),
        archs=("trainbox", "baseline"),
        scales=(4, 16),
    )
    [response] = _gather(service, [_envelope(sweep)])
    assert response["status"] == "ok"
    assert response["payload"] == execute_request(sweep)
    counters = _counters(service)
    assert counters["service.batch_flush_size"] == 2
    assert counters["service.batch_flush_window"] == 1
    assert counters["service.batch_points"] == 8
    assert counters["service.batch_point_queued"] == 8


# -- stitching and the point memo ---------------------------------------------


def test_concurrent_requests_stitch_shared_points():
    # A simulate and a sweep overlapping on one point: the shared point
    # is queued once and stitched into the second request's wait set.
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=5.0)
    )
    sweep = api.SweepRequest(
        workloads=("Resnet-50",), archs=("trainbox",), scales=(64, 16)
    )
    sim_response, sweep_response = _gather(
        service, [_envelope(REQ, rid=1), _envelope(sweep, rid=2)]
    )
    assert sim_response["status"] == "ok"
    assert sweep_response["status"] == "ok"
    # The shared point's payload is literally the same result.
    assert (
        sweep_response["payload"]["results"][0]
        == sim_response["payload"]["result"]
    )
    counters = _counters(service)
    assert counters["service.batch_point_queued"] == 2  # 64 and 16
    assert counters["service.batch_point_stitched"] == 1
    assert counters["service.batch_dispatches"] == 1


def test_point_memo_serves_repeat_points_across_requests():
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=1.0)
    )
    sweep = api.SweepRequest(
        workloads=("Resnet-50",), archs=("trainbox",), scales=(64, 16)
    )

    async def main():
        try:
            first = await service.handle(_envelope(REQ, rid=1))
            second = await service.handle(_envelope(sweep, rid=2))
            return first, second
        finally:
            await service.aclose()

    first, second = asyncio.run(main())
    assert first["status"] == "ok" and second["status"] == "ok"
    assert second["payload"]["results"][0] == first["payload"]["result"]
    counters = _counters(service)
    # Scale 64 came from the point memo; only scale 16 hit the queue
    # in the second dispatch.
    assert counters["service.batch_point_hits"] == 1
    assert counters["service.batch_point_queued"] == 2
    assert counters["service.batch_dispatches"] == 2


def test_point_memo_can_be_disabled():
    service = SimulationService(
        ServiceConfig(
            max_workers=2, batch_window_ms=1.0, point_memo_entries=0
        )
    )

    async def main():
        try:
            first = await service.handle(_envelope(REQ, rid=1, tenant="a"))
            second = await service.handle(_envelope(REQ, rid=2, tenant="b"))
            return first, second
        finally:
            await service.aclose()

    first, second = asyncio.run(main())
    # The request-level memo still catches the identical request...
    assert first["meta"]["served_by"] == "batched"
    assert second["meta"]["served_by"] == "memo"
    # ...but the point memo held nothing.
    assert _counters(service).get("service.batch_point_hits", 0) == 0


# -- mixed batchable / unbatchable traffic ------------------------------------


def test_mixed_kinds_split_between_batched_and_compute_paths():
    from repro.core.server import build_server

    fpga = (
        build_server(api.resolve_arch("trainbox"), 16).boxes[0].prep_ids[0]
    )
    fault = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16,
        events=((fpga, 10.0, 40.0),), horizon=60.0,
    )
    des = api.SimulationRequest("Resnet-50", "trainbox", 16, engine="des")
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=5.0)
    )
    responses = _gather(
        service,
        [
            _envelope(REQ, rid=1),
            _envelope(fault, rid=2),
            _envelope(des, rid=3),
        ],
    )
    assert [r["status"] for r in responses] == ["ok", "ok", "ok"]
    served = [r["meta"]["served_by"] for r in responses]
    assert served == ["batched", "computed", "computed"]
    for request, response in zip((REQ, fault, des), responses):
        assert response["payload"] == execute_request(request)
    counters = _counters(service)
    assert counters["service.batched"] == 1
    assert counters["service.computed"] == 2
    assert counters["service.batch_points"] == 1


# -- per-point error isolation ------------------------------------------------


POISON_SCALE = 16


def _poisoning(real):
    def evaluate_points(points, isolate_errors=True):
        results, reasons, errors = real(
            points, isolate_errors=isolate_errors
        )
        results, errors = list(results), list(errors)
        for i, point in enumerate(points):
            if point.scale == POISON_SCALE:
                results[i] = None
                errors[i] = SimulationError("poisoned point")
        return results, reasons, errors

    return evaluate_points


def test_poisoned_point_fails_only_its_requests(monkeypatch):
    monkeypatch.setattr(
        analytical_batch,
        "evaluate_points",
        _poisoning(analytical_batch.evaluate_points),
    )
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=5.0)
    )
    poisoned = api.SimulationRequest("Resnet-50", "trainbox", POISON_SCALE)
    sweep = api.SweepRequest(  # contains the poisoned point
        workloads=("Resnet-50",), archs=("trainbox",), scales=(4, 16)
    )
    healthy = api.SimulationRequest("VGG-19", "baseline", 4)
    bad1, bad2, good = _gather(
        service,
        [
            _envelope(poisoned, rid=1),
            _envelope(sweep, rid=2),
            _envelope(healthy, rid=3),
        ],
    )
    # SimulationError is not a ConfigError, so it surfaces through the
    # engine-bug clause — exactly as the unbatched path maps it.
    for bad in (bad1, bad2):
        assert bad["status"] == "error"
        assert bad["error"]["code"] == "internal"
        assert "poisoned point" in bad["error"]["message"]
    assert good["status"] == "ok"
    assert good["payload"] == execute_request(healthy)
    counters = _counters(service)
    assert counters["service.batch_point_errors"] == 1  # one bad point
    assert counters["service.errors"] == 2  # two requests contained it
    assert counters["service.batch_dispatches"] == 1


def test_error_envelope_matches_unbatched_path(monkeypatch):
    # The same poisoned point through batch_enabled=False must produce
    # the same error code and message.
    def poisoned_scalar(point, metrics=None):
        raise SimulationError("poisoned point")

    monkeypatch.setattr(
        analytical_batch,
        "evaluate_points",
        _poisoning(analytical_batch.evaluate_points),
    )
    batched = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=1.0)
    )
    poisoned = api.SimulationRequest("Resnet-50", "trainbox", POISON_SCALE)
    [via_batch] = _gather(batched, [_envelope(poisoned)])

    from repro.service import server as server_mod

    def failing_execute(request):
        raise SimulationError("poisoned point")

    monkeypatch.setattr(server_mod, "execute_request", failing_execute)
    plain = SimulationService(
        ServiceConfig(max_workers=2, batch_enabled=False)
    )
    [direct] = _gather(plain, [_envelope(poisoned)])
    assert via_batch["status"] == direct["status"] == "error"
    assert via_batch["error"] == direct["error"]


# -- point-level cache tiers --------------------------------------------------


def test_points_served_from_disk_after_restart(tmp_path):
    config = ServiceConfig(
        max_workers=2, batch_window_ms=1.0, cache_dir=tmp_path / "cache"
    )
    first = SimulationService(config)
    [r1] = _gather(first, [_envelope(REQ)])
    assert r1["meta"]["served_by"] == "batched"
    assert _counters(first)["service.batch_point_kernel"] == 1

    # A restarted service (fresh memos) finds the *point* on disk:
    # no kernel work at all.
    second = SimulationService(config)
    [r2] = _gather(second, [_envelope(REQ)])
    assert r2["status"] == "ok"
    assert r2["meta"]["served_by"] == "batched"
    assert r2["payload"] == r1["payload"]
    counters = _counters(second)
    assert counters["service.batch_point_disk"] == 1
    assert counters.get("service.batch_point_kernel", 0) == 0


def test_shared_tier_backfills_private_disk(tmp_path):
    shared = tmp_path / "shared"
    seeder = SimulationService(
        ServiceConfig(
            max_workers=2,
            batch_window_ms=1.0,
            cache_dir=tmp_path / "a",
            shared_dir=shared,
        )
    )
    [r1] = _gather(seeder, [_envelope(REQ)])

    other = SimulationService(
        ServiceConfig(
            max_workers=2,
            batch_window_ms=1.0,
            cache_dir=tmp_path / "b",
            shared_dir=shared,
        )
    )
    [r2] = _gather(other, [_envelope(REQ)])
    assert r2["payload"] == r1["payload"]
    assert _counters(other)["service.batch_point_disk"] == 1
    # ...and the private tier was backfilled for next time.
    backfilled = SimulationService(
        ServiceConfig(
            max_workers=2, batch_window_ms=1.0, cache_dir=tmp_path / "b"
        )
    )
    [r3] = _gather(backfilled, [_envelope(REQ)])
    assert r3["payload"] == r1["payload"]
    assert _counters(backfilled)["service.batch_point_disk"] == 1


def test_sweep_cache_interop(tmp_path):
    # run_sweep and the batch scheduler share the sweep-point key
    # domain: a sweep-warmed cache serves the service without any
    # kernel work, and vice versa.
    cache = ResultCache(tmp_path / "cache")
    spec = api.SweepRequest(
        workloads=("Resnet-50",), archs=("trainbox",), scales=(64,)
    ).resolve()
    outcome = run_sweep(spec, cache=cache)

    service = SimulationService(
        ServiceConfig(
            max_workers=2, batch_window_ms=1.0, cache_dir=tmp_path / "cache"
        )
    )
    [response] = _gather(service, [_envelope(REQ)])
    assert response["status"] == "ok"
    assert (
        response["payload"]["result"] == outcome.results[0].to_dict()
    )
    counters = _counters(service)
    assert counters["service.batch_point_disk"] == 1
    assert counters.get("service.batch_point_kernel", 0) == 0
    # The key the service used is literally the sweep's cache key.
    assert cache.get(cache_key(spec.points()[0])) is not None


# -- shutdown -----------------------------------------------------------------


def test_aclose_drains_queued_points():
    # Graceful shutdown *completes* queued work: the point parked behind
    # a 60s window flushes immediately on drain and the request is
    # answered ok, not failed.
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=60_000.0)
    )

    async def main():
        task = asyncio.create_task(service.handle(_envelope(REQ)))
        while len(service._batch) == 0:
            await asyncio.sleep(0.001)
        report = await service.aclose()
        return await asyncio.wait_for(task, timeout=5.0), report

    response, report = asyncio.run(main())
    assert response["status"] == "ok"
    assert response["meta"]["served_by"] == "batched"
    assert report["drained"] is True
    assert report["stranded"] == 0


def test_close_fails_queued_points_fast():
    # The abrupt (synchronous) path still fails queued points instead of
    # hanging their waiters.
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_window_ms=60_000.0)
    )

    async def main():
        task = asyncio.create_task(service.handle(_envelope(REQ)))
        while len(service._batch) == 0:
            await asyncio.sleep(0.001)
        service.close()
        return await asyncio.wait_for(task, timeout=5.0)

    response = asyncio.run(main())
    assert response["status"] == "error"
    assert response["error"]["code"] == "compute"
    assert "shutting down" in response["error"]["message"]
