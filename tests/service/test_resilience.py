"""The resilience layer: deadlines, disconnect cancellation, graceful
drain, the kernel breaker's degrade-to-scalar path, and client retry.

Broker-level tests drive :meth:`SimulationService.handle` under
``asyncio.run`` with the engine monkeypatched slow where a test needs
deterministic overlap; the socket-level tests run a real
:class:`ServerThread` and slam connections mid-request.
"""

import asyncio
import socket
import time

import pytest

from repro import api
from repro.errors import ConfigError
from repro.service import (
    KernelBreaker,
    RetryPolicy,
    ConnectionLost,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    protocol,
)
from repro.service import batch as batch_mod
from repro.service import server as server_mod

REQ = api.SimulationRequest("Resnet-50", "trainbox", 64)


def _envelope(request, rid=1, tenant="t", **extra):
    return {"id": rid, "tenant": tenant, "request": request.to_dict(), **extra}


def _counters(service):
    return service.registry.to_manifest()["counters"]


def _slow_engine(monkeypatch, seconds):
    real = server_mod.execute_request

    def slow(request):
        time.sleep(seconds)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)


# -- deadline_ms parsing ------------------------------------------------------


def test_parse_deadline_ms():
    assert protocol.parse_deadline_ms(None) is None
    assert protocol.parse_deadline_ms(250) == 250.0
    assert protocol.parse_deadline_ms(0.5) == 0.5
    for bad in (True, 0, -5, float("inf"), float("nan"), "soon"):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_deadline_ms(bad)


def test_malformed_deadline_is_a_bad_request():
    service = SimulationService(ServiceConfig(max_workers=1))

    async def main():
        try:
            return await service.handle(
                _envelope(REQ, deadline_ms="never")
            )
        finally:
            service.close()

    response = asyncio.run(main())
    assert response["status"] == "error"
    assert response["error"]["code"] == "bad-request"
    assert "deadline_ms" in response["error"]["message"]


# -- deadline enforcement -----------------------------------------------------


def test_owner_deadline_rejects_at_scatter_time(monkeypatch):
    # The engine outlives the budget: the work still completes (and is
    # memoized for everyone else), but THIS request honestly answers
    # deadline_exceeded instead of a late ok.
    _slow_engine(monkeypatch, 0.2)
    service = SimulationService(
        ServiceConfig(max_workers=1, batch_enabled=False)
    )

    async def main():
        try:
            late = await service.handle(_envelope(REQ, rid=1, deadline_ms=50))
            # The payload was memoized despite the rejection: a resend
            # with a fresh budget is served instantly from the memo.
            resend = await service.handle(_envelope(REQ, rid=2, deadline_ms=50))
            return late, resend
        finally:
            service.close()

    late, resend = asyncio.run(main())
    assert late["status"] == "rejected"
    assert late["error"]["code"] == "deadline_exceeded"
    assert late["meta"]["retry_after"] == 0.0
    assert resend["status"] == "ok"
    assert resend["meta"]["served_by"] == "memo"
    counters = _counters(service)
    assert counters["service.deadline_exceeded"] == 1
    # The accounting partition: both requests landed in exactly one
    # outcome bucket (deadline_exceeded + memo_hits == requests).
    assert counters["service.memo_hits"] == 1
    assert counters["service.requests"] == 2


def test_waiter_deadline_expires_without_killing_the_owner(monkeypatch):
    _slow_engine(monkeypatch, 0.3)
    service = SimulationService(
        ServiceConfig(max_workers=2, batch_enabled=False)
    )
    fp = REQ.fingerprint()

    async def main():
        try:
            owner = asyncio.create_task(service.handle(_envelope(REQ, rid=1)))
            while fp not in service._inflight:
                await asyncio.sleep(0.005)
            waiter = await service.handle(
                _envelope(REQ, rid=2, deadline_ms=50)
            )
            return waiter, await owner
        finally:
            service.close()

    waiter, owner = asyncio.run(main())
    assert waiter["status"] == "rejected"
    assert waiter["error"]["code"] == "deadline_exceeded"
    assert "coalesced" in waiter["error"]["message"]
    # The owner (no deadline) is untouched by the waiter's budget.
    assert owner["status"] == "ok"
    assert owner["meta"]["served_by"] == "computed"


def test_deadline_expired_in_executor_queue_skips_the_engine(monkeypatch):
    # One worker, hogged by a slow request: the queued request's budget
    # burns up before an engine thread picks it up, and the engine is
    # never spent on it.
    real = server_mod.execute_request
    ran = []

    def slow(request):
        ran.append(request.fingerprint())
        time.sleep(0.3)
        return real(request)

    monkeypatch.setattr(server_mod, "execute_request", slow)
    service = SimulationService(
        ServiceConfig(max_workers=1, batch_enabled=False)
    )
    other = api.SimulationRequest("Resnet-50", "trainbox", 16)

    async def main():
        try:
            hog = asyncio.create_task(service.handle(_envelope(REQ, rid=1)))
            while REQ.fingerprint() not in service._inflight:
                await asyncio.sleep(0.005)
            doomed = await service.handle(
                _envelope(other, rid=2, deadline_ms=50)
            )
            return doomed, await hog
        finally:
            service.close()

    doomed, hog = asyncio.run(main())
    assert hog["status"] == "ok"
    assert doomed["status"] == "rejected"
    assert doomed["error"]["code"] == "deadline_exceeded"
    assert "picked" in doomed["error"]["message"]
    assert ran == [REQ.fingerprint()]  # the doomed request never ran


def test_batch_deadline_abandons_sole_waiter_point():
    # A long batching window and a tiny budget: the deadline fires while
    # the point is still queued, and releasing the last waiter reference
    # abandons the point before it ever reaches the kernel.
    service = SimulationService(
        ServiceConfig(max_workers=1, batch_window_ms=500.0)
    )

    async def main():
        try:
            return await service.handle(_envelope(REQ, deadline_ms=30))
        finally:
            service.close()

    response = asyncio.run(main())
    assert response["status"] == "rejected"
    assert response["error"]["code"] == "deadline_exceeded"
    counters = _counters(service)
    assert counters["service.batch_point_abandoned"] == 1
    assert counters.get("service.batch_dispatches", 0) == 0


# -- kernel breaker -----------------------------------------------------------


def test_kernel_breaker_trip_probe_reset():
    breaker = KernelBreaker(threshold=2, probe_after=3)
    assert breaker.allow()  # closed: everything admitted
    assert not breaker.record_failure()
    assert breaker.record_failure()  # second consecutive failure trips
    assert breaker.open
    # Open: two bypasses, then the third is the probe.
    assert not breaker.allow()
    assert not breaker.allow()
    assert breaker.allow()
    assert breaker.record_success()  # the probe's clean dispatch resets
    assert not breaker.open
    assert breaker.failures == 0
    # A success mid-count zeroes the consecutive-failure counter.
    breaker.record_failure()
    assert not breaker.record_success()  # closed already: not a "reset"
    assert breaker.failures == 0


def test_breaker_degrades_batch_path_to_scalar(monkeypatch):
    # Poison the kernel dispatch wholesale: after `threshold` failed
    # dispatches the breaker opens and batchable requests are served by
    # the scalar path; a later clean probe closes it again.
    real = batch_mod.BatchScheduler._compute_batch
    poisoned = [True]

    def compute(self, entries):
        if poisoned[0]:
            raise RuntimeError("kernel poisoned")
        return real(self, entries)

    monkeypatch.setattr(batch_mod.BatchScheduler, "_compute_batch", compute)
    service = SimulationService(
        ServiceConfig(
            max_workers=2,
            batch_window_ms=0.0,
            breaker_threshold=2,
            breaker_probe_after=2,
        )
    )
    requests = [
        api.SimulationRequest("Resnet-50", "trainbox", scale)
        for scale in (4, 8, 16, 32, 64, 128)
    ]

    async def main():
        try:
            return [
                await service.handle(_envelope(r, rid=i))
                for i, r in enumerate(requests)
            ]
        finally:
            service.close()

    responses = asyncio.run(main())
    # Requests 0-1: poisoned dispatches -> internal errors, breaker trips.
    assert [r["status"] for r in responses[:2]] == ["error", "error"]
    # Request 2: breaker open -> degraded to the scalar compute path.
    assert responses[2]["status"] == "ok"
    assert responses[2]["meta"]["served_by"] == "computed"
    # Request 3 is the probe (probe_after=2) — but the kernel is still
    # poisoned mid-run?  No: heal it right before, so the probe's clean
    # dispatch resets the breaker and request 4 batches again.
    poisoned[0] = False
    counters = _counters(service)
    assert counters["service.breaker_tripped"] == 1
    assert counters["service.batch_dispatch_errors"] >= 2
    assert counters["service.breaker_bypassed"] >= 1
    assert service._batch.breaker.state()["threshold"] == 2


def test_breaker_probe_recovers_the_batch_path(monkeypatch):
    real = batch_mod.BatchScheduler._compute_batch
    poisoned = [True]

    def compute(self, entries):
        if poisoned[0]:
            raise RuntimeError("kernel poisoned")
        return real(self, entries)

    monkeypatch.setattr(batch_mod.BatchScheduler, "_compute_batch", compute)
    service = SimulationService(
        ServiceConfig(
            max_workers=2,
            batch_window_ms=0.0,
            breaker_threshold=1,
            breaker_probe_after=1,
        )
    )
    requests = [
        api.SimulationRequest("Resnet-50", "trainbox", scale)
        for scale in (4, 8, 16)
    ]

    async def main():
        try:
            first = await service.handle(_envelope(requests[0], rid=0))
            poisoned[0] = False  # the kernel heals
            # probe_after=1: the very next batchable request is the probe.
            probe = await service.handle(_envelope(requests[1], rid=1))
            after = await service.handle(_envelope(requests[2], rid=2))
            return first, probe, after
        finally:
            service.close()

    first, probe, after = asyncio.run(main())
    assert first["status"] == "error"  # the trip
    assert probe["status"] == "ok"
    assert probe["meta"]["served_by"] == "batched"
    assert after["status"] == "ok"
    assert after["meta"]["served_by"] == "batched"
    counters = _counters(service)
    assert counters["service.breaker_tripped"] == 1
    assert counters["service.breaker_probes"] == 1
    assert counters["service.breaker_reset"] == 1
    assert not service._batch.breaker.open


# -- disconnect cancellation over real sockets --------------------------------


def _poll(fn, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if fn():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached within the poll budget")


def test_disconnect_mid_request_resolves_coalesced_waiter(monkeypatch):
    # The single-flight owner's connection dies mid-compute: the EOF
    # cancels its frame task, and the waiter on another connection gets
    # an immediate retryable rejection instead of hanging.
    _slow_engine(monkeypatch, 0.5)
    config = ServiceConfig(max_workers=2, batch_enabled=False)
    with ServerThread(config) as srv:
        service = srv.service
        owner = ServiceClient(*srv.address)
        with ServiceClient(*srv.address) as waiter:
            owner._send(owner._envelope(REQ, False, None))
            _poll(lambda: len(service._inflight) == 1)
            waiter._send(waiter._envelope(REQ, False, None))
            _poll(
                lambda: _counters(service).get(
                    "service.coalesce_attached", 0
                ) >= 1
            )
            owner.close()  # the owner walks away mid-request
            response = waiter._recv()
            assert response["status"] == "rejected"
            assert response["error"]["code"] == "retry"
            # The broker is healthy: a resend on the same connection
            # computes normally.
            resend = waiter.call(REQ)
            assert resend["status"] == "ok"
        counters = _counters(service)
        assert counters["service.cancelled"] == 1
        assert counters["service.coalesce_aborted"] == 1


def test_disconnect_abandons_sole_waiter_batch_point():
    # The only client interested in a queued batch point disconnects
    # inside the (long) batching window: the point is abandoned before
    # it ever reaches the kernel.
    config = ServiceConfig(max_workers=2, batch_window_ms=800.0)
    with ServerThread(config) as srv:
        service = srv.service
        doomed = ServiceClient(*srv.address)
        doomed._send(doomed._envelope(REQ, False, None))
        _poll(lambda: service.stats()["batch_queued"] >= 1)
        doomed.close()
        _poll(
            lambda: _counters(service).get(
                "service.batch_point_abandoned", 0
            ) >= 1
        )
        counters = _counters(service)
        assert counters["service.cancelled"] == 1
        assert counters.get("service.batch_dispatches", 0) == 0


# -- frame cap ----------------------------------------------------------------


def test_oversized_frame_answers_and_closes():
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        with ServiceClient(*srv.address) as client:
            blob = b"x" * (protocol.MAX_FRAME_BYTES + 16) + b"\n"
            client._sock.sendall(blob)
            response = client._recv()
            assert response["status"] == "error"
            assert response["error"]["code"] == "frame-too-large"
            # The server hangs up after an unframeable stream.
            with pytest.raises(ConnectionLost):
                client._recv()
        # The listener is unharmed: a fresh connection works.
        with ServiceClient(*srv.address) as client:
            assert client.ping()["payload"]["kind"] == "pong"


# -- graceful drain -----------------------------------------------------------


def test_draining_rejects_new_work_but_answers_admin_ops():
    service = SimulationService(ServiceConfig(max_workers=1))

    async def main():
        try:
            before = await service.handle(_envelope(REQ, rid=1))
            service.begin_drain()
            during = await service.handle(_envelope(REQ, rid=2))
            stats = await service.handle({"id": 3, "op": "stats"})
            report = await service.aclose()
            return before, during, stats, report
        finally:
            service.close()

    before, during, stats, report = asyncio.run(main())
    assert before["status"] == "ok"
    assert during["status"] == "rejected"
    assert during["error"]["code"] == "draining"
    assert during["meta"]["retry_after"] > 0
    assert stats["status"] == "ok"
    assert stats["payload"]["draining"] is True
    assert report["drained"] is True
    assert report["stranded"] == 0


def test_drain_completes_inflight_and_flushes_writebacks(
    monkeypatch, tmp_path
):
    _slow_engine(monkeypatch, 0.2)
    shared = tmp_path / "shared"
    service = SimulationService(
        ServiceConfig(
            max_workers=1, batch_enabled=False, shared_dir=shared
        )
    )
    fp = REQ.fingerprint()

    async def main():
        inflight = asyncio.create_task(service.handle(_envelope(REQ)))
        while fp not in service._inflight:
            await asyncio.sleep(0.005)
        report = await service.aclose()
        return await inflight, report

    response, report = asyncio.run(main())
    # The admitted request completed and was answered during the drain.
    assert response["status"] == "ok"
    assert report["drained"] is True
    assert report["stranded"] == 0
    # The deferred shared-tier write-back reached disk before exit.
    assert len(service._writeback) == 0
    from repro.cache import ResultCache

    assert ResultCache(shared).get(fp) is not None
    assert _counters(service)["service.drained_clean"] == 1


def test_drain_timeout_reports_undrained(monkeypatch):
    _slow_engine(monkeypatch, 0.5)
    service = SimulationService(
        ServiceConfig(max_workers=1, batch_enabled=False)
    )
    fp = REQ.fingerprint()

    async def main():
        task = asyncio.create_task(service.handle(_envelope(REQ)))
        while fp not in service._inflight:
            await asyncio.sleep(0.005)
        report = await service.drain(timeout=0.05)
        response = await task  # then let it finish for a clean teardown
        await service.aclose()
        return report, response

    report, response = asyncio.run(main())
    assert report["drained"] is False
    assert report["pending"] == 1
    assert response["status"] == "rejected" or response["status"] == "ok"


def test_server_thread_drain_report_is_clean():
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        with ServiceClient(*srv.address) as client:
            assert client.call(REQ)["status"] == "ok"
    report = srv.drain_report
    assert report is not None
    assert report["drained"] is True
    assert report["stranded"] == 0


def test_server_thread_stop_is_idempotent():
    srv = ServerThread(ServiceConfig(max_workers=1)).__enter__()
    srv.stop()
    srv.stop()  # a second stop on a joined thread is a no-op
    assert srv.drain_report["drained"] is True


# -- client retry policy ------------------------------------------------------


def test_retry_policy_delay_honors_hint_jitter_and_cap():
    import random

    policy = RetryPolicy(
        base_backoff=0.1, max_backoff=1.0, jitter=0.5, seed=7
    )
    rng = random.Random(7)
    # The server hint dominates a small exponential term...
    delay = policy.delay(0, retry_after=0.5, rng=rng)
    assert 0.5 <= delay <= 0.75
    # ...the exponential term dominates a zero hint...
    delay = policy.delay(2, retry_after=0.0, rng=rng)
    assert 0.4 <= delay <= 0.6
    # ...and the cap bounds both (pre-jitter).
    delay = policy.delay(10, retry_after=30.0, rng=rng)
    assert delay <= 1.5
    zero_jitter = RetryPolicy(base_backoff=0.1, max_backoff=1.0, jitter=0.0)
    assert zero_jitter.delay(0, 0.0, rng) == 0.1
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=2.0)


def test_client_retries_backpressure_to_success(monkeypatch):
    _slow_engine(monkeypatch, 0.3)
    config = ServiceConfig(max_workers=1, max_pending=1, batch_enabled=False)
    other = api.SimulationRequest("Resnet-50", "trainbox", 16)
    with ServerThread(config) as srv:
        service = srv.service
        hog = ServiceClient(*srv.address)
        try:
            hog._send(hog._envelope(REQ, False, None))
            _poll(lambda: service.stats()["pending"] >= 1)
            retrying = ServiceClient(
                *srv.address,
                retry=RetryPolicy(
                    max_attempts=6, base_backoff=0.05, jitter=0.2, seed=3
                ),
            )
            with retrying:
                response = retrying.call(other)
            assert response["status"] == "ok"
            assert hog._recv()["status"] == "ok"
        finally:
            hog.close()
        assert _counters(service)["service.rejected_backpressure"] >= 1


def test_client_reconnects_on_broken_pipe():
    # shutdown(), not close(): close() defers the real FD teardown while
    # the makefile reader holds a reference, so sends would still work.
    with ServerThread(ServiceConfig(max_workers=1)) as srv:
        with ServiceClient(
            *srv.address, retry=RetryPolicy(max_attempts=3, seed=1)
        ) as client:
            client._sock.shutdown(socket.SHUT_RDWR)  # transport dies
            response = client.call(REQ)
            assert response["status"] == "ok"
        # Without a policy the same breakage surfaces as ConnectionLost.
        with ServiceClient(*srv.address) as bare:
            bare._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(ConnectionLost):
                bare.call(REQ)


def test_request_many_redials_and_resends_unanswered():
    requests = [
        api.SimulationRequest("VGG-19", "baseline", s) for s in (4, 16, 64)
    ]
    with ServerThread(ServiceConfig(max_workers=2)) as srv:
        with ServiceClient(*srv.address) as client:
            client._sock.shutdown(socket.SHUT_RDWR)  # first dial fails
            responses = client.request_many(requests)
            assert [r["status"] for r in responses] == ["ok"] * 3
            # Answers are in request order despite the redial's fresh ids.
            for request, response in zip(requests, responses):
                assert (
                    response["meta"]["fingerprint"] == request.fingerprint()
                )
