"""Request fingerprints: stable across dict orderings and processes.

The whole coalescing design rests on one property — two requests that
denote the same computation hash identically no matter how they were
spelled, which process serialized them, or what order their dict keys
arrived in.  These tests pin it.
"""

import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.errors import ConfigError

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _requests():
    return [
        api.SimulationRequest("Resnet-50", "trainbox", 256),
        api.SimulationRequest(
            "VGG-19", "baseline", 64, engine="des", des_iterations=30
        ),
        api.SweepRequest(
            workloads=("Resnet-50", "RNN-S"),
            archs=("baseline", "trainbox"),
            scales=(16, 64),
        ),
        api.FaultScheduleRequest(
            "Resnet-50", "trainbox", 16,
            events=(("tbox0_fpga0", 10.0, 40.0), ("tbox1_ssd0", 20.0, None)),
            horizon=60.0,
        ),
    ]


def test_fingerprint_ignores_dict_key_order():
    for request in _requests():
        data = request.to_dict()
        reversed_data = dict(reversed(list(data.items())))
        assert list(reversed_data) != list(data)  # the order truly differs
        clone = api.request_from_dict(reversed_data)
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()


def test_fingerprint_distinguishes_different_computations():
    base = api.SimulationRequest("Resnet-50", "trainbox", 256)
    fps = {
        base.fingerprint(),
        api.SimulationRequest("Resnet-50", "trainbox", 128).fingerprint(),
        api.SimulationRequest("Resnet-50", "baseline", 256).fingerprint(),
        api.SimulationRequest("VGG-19", "trainbox", 256).fingerprint(),
        api.SimulationRequest(
            "Resnet-50", "trainbox", 256, engine="des"
        ).fingerprint(),
    }
    assert len(fps) == 5


def test_fingerprint_stable_across_processes():
    # A fresh interpreter (fresh hash seed, fresh registries) must
    # produce byte-identical fingerprints for the same wire dicts.
    wire = [r.to_dict() for r in _requests()]
    local = [r.fingerprint() for r in _requests()]
    script = (
        "import json, sys\n"
        "from repro import api\n"
        "reqs = [api.request_from_dict(d) for d in json.load(sys.stdin)]\n"
        "print(json.dumps([r.fingerprint() for r in reqs]))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps(wire),
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random"},
        check=True,
    )
    assert json.loads(out.stdout) == local


def test_json_wire_round_trip_preserves_fingerprint():
    for request in _requests():
        wire = json.loads(json.dumps(request.to_dict()))
        clone = api.request_from_dict(wire)
        assert clone.fingerprint() == request.fingerprint()


def test_simulation_request_shares_cache_key_with_sweep_point():
    # The request fingerprint is built from the same cache_key the
    # result cache uses, so a request and the grid point it denotes can
    # never drift apart silently.
    from repro.cache import fingerprint
    from repro.core.sweeps import cache_key

    request = api.SimulationRequest("Resnet-50", "trainbox", 256)
    expected = fingerprint(
        api.REQUEST_SCHEMA, "simulate", cache_key(request.resolve())
    )
    assert request.fingerprint() == expected


def test_unknown_workload_and_arch_rejected_at_construction():
    with pytest.raises(ConfigError):
        api.SimulationRequest("NoSuchNet", "trainbox", 4)
    with pytest.raises(ConfigError, match="unknown architecture"):
        api.SimulationRequest("Resnet-50", "warp", 4)
    with pytest.raises(ConfigError, match="unknown engine"):
        api.SimulationRequest("Resnet-50", "trainbox", 4, engine="quantum")


def test_sweep_request_rejects_empty_axes():
    with pytest.raises(ConfigError, match="non-empty"):
        api.SweepRequest(workloads=(), archs=("trainbox",), scales=(4,))


def test_malformed_field_values_rejected_at_construction():
    # Requests cross a trust boundary: bad field values must raise
    # ConfigError at construction, never TypeError from fingerprint()
    # or an engine (the service maps ConfigError to bad-request).
    with pytest.raises(ConfigError, match="scale"):
        api.SimulationRequest("Resnet-50", "trainbox", "huge")
    with pytest.raises(ConfigError, match="scale"):
        api.SimulationRequest("Resnet-50", "trainbox", 0)
    with pytest.raises(ConfigError, match="batch_size"):
        api.SimulationRequest("Resnet-50", "trainbox", 4, batch_size="big")
    with pytest.raises(ConfigError, match="scale"):
        api.SweepRequest(
            workloads=("Resnet-50",), archs=("trainbox",), scales=(4, "x"),
        )
    with pytest.raises(ConfigError, match="horizon"):
        api.FaultScheduleRequest(
            "Resnet-50", "trainbox", 4, events=(), horizon="long"
        )
    with pytest.raises(ConfigError, match="events"):
        api.FaultScheduleRequest(
            "Resnet-50", "trainbox", 4, events=7, horizon=10.0
        )
    # A missing required field arrives as TypeError from the dataclass;
    # from_dict must convert it to the canonical error.
    with pytest.raises(ConfigError, match="scale"):
        api.request_from_dict(
            {"v": api.REQUEST_SCHEMA, "kind": "simulate",
             "workload": "Resnet-50", "arch": "trainbox"}
        )


def test_request_object_rejects_conflicting_keywords():
    # A request *is* the scenario: explicit scenario keywords alongside
    # one would be silently ignored, so they raise instead.
    request = api.SimulationRequest("Resnet-50", "trainbox", 16)
    with pytest.raises(ConfigError, match="engine"):
        api.simulate(request, engine="des")
    with pytest.raises(ConfigError, match="batch_size"):
        api.simulate(request, batch_size=32)
    fault = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16, events=(), horizon=10.0
    )
    with pytest.raises(ConfigError, match="engine"):
        api.price_fault_schedule(fault, engine="des")
    with pytest.raises(ConfigError, match="not both"):
        api.price_fault_schedule(fault, horizon=99.0)
    # Execution knobs (trace/metrics/cache) still compose with requests.
    assert api.simulate(request).throughput > 0
