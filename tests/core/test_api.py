"""Facade and engine-protocol conformance across all three engines."""

import dataclasses

import pytest

from repro import api, obs
from repro.cache import ResultCache
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationOutcome
from repro.errors import ConfigError, SimulationError
from repro.workloads.registry import get_workload

ENGINES = list(api.ENGINE_NAMES)


def _run(engine, scale=8, **kwargs):
    return api.simulate(
        "Resnet-50", "trainbox", scale, engine=engine,
        des_iterations=30, **kwargs
    )


# -- conformance: every engine satisfies the shared result interface ---------


@pytest.mark.parametrize("engine", ENGINES)
def test_result_satisfies_shared_interface(engine):
    result = _run(engine)
    assert isinstance(result, SimulationOutcome)
    assert result.workload_name == "Resnet-50"
    assert result.arch_name == "trainbox"
    assert result.n_accelerators == 8
    assert result.batch_size > 0
    assert result.throughput > 0
    assert result.prep_rate > 0
    assert result.consume_rate > 0
    assert isinstance(result.bottleneck, str) and result.bottleneck


@pytest.mark.parametrize("engine", ENGINES)
def test_derived_properties_are_consistent(engine):
    result = _run(engine)
    assert result.prep_bound == (result.prep_rate < result.consume_rate)
    expected = result.n_accelerators * result.batch_size / result.throughput
    assert result.iteration_time == pytest.approx(expected)
    assert result.speedup_over(result) == pytest.approx(1.0)


@pytest.mark.parametrize("engine", ENGINES)
def test_roundtrips_through_dict(engine):
    result = _run(engine)
    clone = type(result).from_dict(result.to_dict())
    assert clone.to_dict() == result.to_dict()


def test_engines_agree_on_steady_state():
    # The DES and the fluid engine model the same pipeline the
    # analytical law solves; their throughputs should be close.
    analytical = _run("analytical")
    for engine in ("des", "flow"):
        other = _run(engine)
        assert other.throughput == pytest.approx(
            analytical.throughput, rel=0.05
        )


def test_registered_engines_satisfy_protocol():
    for name in ENGINES:
        engine = api.get_engine(name)
        assert isinstance(engine, api.Engine)
        assert engine.name == name


# -- facade argument handling ------------------------------------------------


def test_string_and_object_arguments_are_equivalent():
    by_name = api.simulate("Resnet-50", "trainbox", 4)
    by_object = api.simulate(
        get_workload("Resnet-50"), ArchitectureConfig.trainbox(), 4
    )
    assert by_name == by_object


def test_unknown_engine_rejected():
    with pytest.raises(ConfigError, match="unknown engine"):
        api.simulate("Resnet-50", "trainbox", 4, engine="quantum")


def test_unknown_arch_rejected():
    with pytest.raises(ConfigError, match="unknown architecture"):
        api.simulate("Resnet-50", "warp-drive", 4)


@pytest.mark.parametrize("engine", ENGINES)
def test_cache_roundtrip(engine, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = _run(engine, cache=cache)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    second = _run(engine, cache=cache)
    assert cache.stats.hits == 1
    assert second.to_dict() == first.to_dict()


def test_cache_accepts_directory_path(tmp_path):
    _run("analytical", cache=tmp_path / "c")
    again = _run("analytical", cache=str(tmp_path / "c"))
    assert again.throughput > 0
    assert len(ResultCache(tmp_path / "c")) == 1


def test_traced_run_bypasses_cache_read(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _run("des", cache=cache)
    tracer = obs.Tracer()
    traced = _run("des", cache=cache, trace=tracer)
    # Recomputed (no cache read), so the trace has real spans.
    assert cache.stats.hits == 0
    assert tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    assert traced.throughput > 0


# -- trace reconciliation (the acceptance criterion) -------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_trace_reconciles_with_iteration_time(engine):
    tracer = obs.Tracer()
    result = _run(engine, scale=16, trace=tracer)
    traced = api.trace_iteration_time(tracer)
    assert traced == pytest.approx(result.iteration_time, rel=0.01)


# -- error-message identity (scenario named in failures) ---------------------


def test_iteration_time_error_names_scenario():
    result = _run("analytical")
    broken = dataclasses.replace(result, throughput=0.0)
    with pytest.raises(SimulationError) as err:
        broken.iteration_time
    message = str(err.value)
    assert "Resnet-50" in message
    assert "trainbox" in message
    assert "n=8" in message


def test_speedup_over_error_names_scenario():
    result = _run("analytical")
    broken = dataclasses.replace(result, throughput=0.0)
    with pytest.raises(SimulationError) as err:
        result.speedup_over(broken)
    message = str(err.value)
    assert "Resnet-50" in message
    assert "trainbox" in message
    assert "n=8" in message


# -- removed deprecation shims ------------------------------------------------


def test_des_station_utilization_shim_is_gone():
    # The deprecated alias was removed with CACHE_VERSION 3; the real
    # field is the only spelling.
    result = _run("des")
    assert not hasattr(result, "station_utilization")
    assert result.resource_utilization


# -- versioned request objects ------------------------------------------------


def test_simulation_request_matches_legacy_call():
    request = api.SimulationRequest("Resnet-50", "trainbox", 16)
    assert api.simulate(request) == api.simulate("Resnet-50", "trainbox", 16)


def test_request_round_trips_through_dict():
    request = api.SimulationRequest(
        "Resnet-50", "trainbox", 64, engine="des", des_iterations=30
    )
    data = request.to_dict()
    assert data["v"] == api.REQUEST_SCHEMA
    assert data["kind"] == "simulate"
    clone = api.request_from_dict(data)
    assert clone == request
    assert clone.fingerprint() == request.fingerprint()


def test_request_rejects_mixed_arguments():
    request = api.SimulationRequest("Resnet-50", "trainbox", 16)
    with pytest.raises(ConfigError, match="not both"):
        api.simulate(request, "trainbox", 16)


def test_request_normalizes_resolved_objects_to_names():
    request = api.SimulationRequest(
        get_workload("Resnet-50"), ArchitectureConfig.trainbox(), 4
    )
    assert request.workload == "Resnet-50"
    assert request.arch == "trainbox"


def test_request_rejects_unregistered_arch():
    custom = dataclasses.replace(
        ArchitectureConfig.trainbox(), name="bespoke"
    )
    with pytest.raises(ConfigError, match="alias"):
        api.SimulationRequest("Resnet-50", custom, 4)


def test_request_rejects_unknown_fields_and_schema():
    data = api.SimulationRequest("Resnet-50", "trainbox", 4).to_dict()
    bad_schema = dict(data, v="repro-request/99")
    with pytest.raises(ConfigError, match="schema"):
        api.request_from_dict(bad_schema)
    bad_field = dict(data, warp_factor=9)
    with pytest.raises(ConfigError, match="unknown"):
        api.request_from_dict(bad_field)
    with pytest.raises(ConfigError, match="kind"):
        api.request_from_dict(dict(data, kind="teleport"))


def test_sweep_request_matches_legacy_sweep():
    request = api.SweepRequest(
        workloads=("Resnet-50",), archs=("baseline", "trainbox"),
        scales=(4, 16),
    )
    via_request = api.sweep(request)
    via_spec = api.sweep(request.resolve())
    assert [r.to_dict() for r in via_request.results] == [
        r.to_dict() for r in via_spec.results
    ]


def test_fault_request_matches_legacy_call():
    from repro.core.faults import FaultEvent, FaultSchedule
    from repro.core.server import build_server

    server = build_server(api.resolve_arch("trainbox"), 16)
    fpga = server.boxes[0].prep_ids[0]
    request = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16,
        events=((fpga, 10.0, 40.0),), horizon=60.0,
    )
    via_request = api.price_fault_schedule(request)
    via_legacy = api.price_fault_schedule(
        "Resnet-50", "trainbox", 16,
        FaultSchedule.of(FaultEvent(fpga, 10.0, 40.0)), 60.0,
    )
    assert via_request.to_dict() == via_legacy.to_dict()


def test_fault_request_spells_inf_recovery_as_none():
    import math

    request = api.FaultScheduleRequest(
        "Resnet-50", "trainbox", 16,
        events=(("d0", 5.0, math.inf), ("d1", 1.0, 2.0)),
        horizon=10.0,
    )
    assert request.events == (("d0", 5.0, None), ("d1", 1.0, 2.0))
    schedule = request.resolve()
    assert schedule.events[0].recover_time == math.inf
    clone = api.request_from_dict(request.to_dict())
    assert clone == request
