"""Facade and engine-protocol conformance across all three engines."""

import dataclasses

import pytest

from repro import api, obs
from repro.cache import ResultCache
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationOutcome
from repro.errors import ConfigError, SimulationError
from repro.workloads.registry import get_workload

ENGINES = list(api.ENGINE_NAMES)


def _run(engine, scale=8, **kwargs):
    return api.simulate(
        "Resnet-50", "trainbox", scale, engine=engine,
        des_iterations=30, **kwargs
    )


# -- conformance: every engine satisfies the shared result interface ---------


@pytest.mark.parametrize("engine", ENGINES)
def test_result_satisfies_shared_interface(engine):
    result = _run(engine)
    assert isinstance(result, SimulationOutcome)
    assert result.workload_name == "Resnet-50"
    assert result.arch_name == "trainbox"
    assert result.n_accelerators == 8
    assert result.batch_size > 0
    assert result.throughput > 0
    assert result.prep_rate > 0
    assert result.consume_rate > 0
    assert isinstance(result.bottleneck, str) and result.bottleneck


@pytest.mark.parametrize("engine", ENGINES)
def test_derived_properties_are_consistent(engine):
    result = _run(engine)
    assert result.prep_bound == (result.prep_rate < result.consume_rate)
    expected = result.n_accelerators * result.batch_size / result.throughput
    assert result.iteration_time == pytest.approx(expected)
    assert result.speedup_over(result) == pytest.approx(1.0)


@pytest.mark.parametrize("engine", ENGINES)
def test_roundtrips_through_dict(engine):
    result = _run(engine)
    clone = type(result).from_dict(result.to_dict())
    assert clone.to_dict() == result.to_dict()


def test_engines_agree_on_steady_state():
    # The DES and the fluid engine model the same pipeline the
    # analytical law solves; their throughputs should be close.
    analytical = _run("analytical")
    for engine in ("des", "flow"):
        other = _run(engine)
        assert other.throughput == pytest.approx(
            analytical.throughput, rel=0.05
        )


def test_registered_engines_satisfy_protocol():
    for name in ENGINES:
        engine = api.get_engine(name)
        assert isinstance(engine, api.Engine)
        assert engine.name == name


# -- facade argument handling ------------------------------------------------


def test_string_and_object_arguments_are_equivalent():
    by_name = api.simulate("Resnet-50", "trainbox", 4)
    by_object = api.simulate(
        get_workload("Resnet-50"), ArchitectureConfig.trainbox(), 4
    )
    assert by_name == by_object


def test_unknown_engine_rejected():
    with pytest.raises(ConfigError, match="unknown engine"):
        api.simulate("Resnet-50", "trainbox", 4, engine="quantum")


def test_unknown_arch_rejected():
    with pytest.raises(ConfigError, match="unknown architecture"):
        api.simulate("Resnet-50", "warp-drive", 4)


@pytest.mark.parametrize("engine", ENGINES)
def test_cache_roundtrip(engine, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = _run(engine, cache=cache)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    second = _run(engine, cache=cache)
    assert cache.stats.hits == 1
    assert second.to_dict() == first.to_dict()


def test_cache_accepts_directory_path(tmp_path):
    _run("analytical", cache=tmp_path / "c")
    again = _run("analytical", cache=str(tmp_path / "c"))
    assert again.throughput > 0
    assert len(ResultCache(tmp_path / "c")) == 1


def test_traced_run_bypasses_cache_read(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _run("des", cache=cache)
    tracer = obs.Tracer()
    traced = _run("des", cache=cache, trace=tracer)
    # Recomputed (no cache read), so the trace has real spans.
    assert cache.stats.hits == 0
    assert tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    assert traced.throughput > 0


# -- trace reconciliation (the acceptance criterion) -------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_trace_reconciles_with_iteration_time(engine):
    tracer = obs.Tracer()
    result = _run(engine, scale=16, trace=tracer)
    traced = api.trace_iteration_time(tracer)
    assert traced == pytest.approx(result.iteration_time, rel=0.01)


# -- error-message identity (scenario named in failures) ---------------------


def test_iteration_time_error_names_scenario():
    result = _run("analytical")
    broken = dataclasses.replace(result, throughput=0.0)
    with pytest.raises(SimulationError) as err:
        broken.iteration_time
    message = str(err.value)
    assert "Resnet-50" in message
    assert "trainbox" in message
    assert "n=8" in message


def test_speedup_over_error_names_scenario():
    result = _run("analytical")
    broken = dataclasses.replace(result, throughput=0.0)
    with pytest.raises(SimulationError) as err:
        result.speedup_over(broken)
    message = str(err.value)
    assert "Resnet-50" in message
    assert "trainbox" in message
    assert "n=8" in message


# -- deprecation shims -------------------------------------------------------


def test_des_station_utilization_shim_warns():
    result = _run("des")
    with pytest.warns(DeprecationWarning, match="resource_utilization"):
        legacy = result.station_utilization
    assert legacy == result.resource_utilization
