"""Tests for the TrainingSession façade."""

import json

import pytest

from repro.core.config import ArchitectureConfig
from repro.core.session import TrainingSession
from repro.errors import ConfigError
from repro.workloads.registry import get_workload


def test_estimate_cached_and_consistent():
    session = TrainingSession("Resnet-50", 32, "trainbox")
    first = session.estimate()
    second = session.estimate()
    assert first is second
    assert first.throughput > 0


def test_accepts_workload_and_arch_objects():
    session = TrainingSession(
        get_workload("VGG-19"), 16, ArchitectureConfig.baseline()
    )
    assert session.estimate().arch_name == "baseline"


def test_unknown_arch_name_rejected():
    with pytest.raises(ConfigError):
        TrainingSession("Resnet-50", 16, "warp-drive")


def test_plan_requires_trainbox():
    session = TrainingSession("Resnet-50", 16, "baseline")
    with pytest.raises(ConfigError):
        session.plan()


def test_plan_cached():
    session = TrainingSession("tf-sr", 64, "trainbox")
    assert session.plan() is session.plan()
    assert session.plan().meets_target


def test_validate_agrees_with_estimate():
    session = TrainingSession("Resnet-50", 16, "trainbox")
    des = session.validate(iterations=40)
    assert des.relative_error(session.estimate().throughput) < 0.02


def test_report_contains_key_facts():
    session = TrainingSession("Inception-v4", 64, "baseline")
    report = session.report()
    assert "Inception-v4" in report
    assert "bottleneck" in report
    assert "host requirements" in report
    assert "x" in report  # normalized figures


def test_to_dict_is_json_serializable():
    session = TrainingSession("Resnet-50", 16, "trainbox")
    payload = json.dumps(session.to_dict())
    data = json.loads(payload)
    assert data["workload"] == "Resnet-50"
    assert data["throughput"] > 0
    assert "breakdown_shares" in data
    # Infinite rates serialize as null.
    assert all(
        v is None or v > 0 for v in data["resource_rates"].values()
    )


def test_batch_override_threads_through():
    session = TrainingSession("Resnet-50", 8, "trainbox", batch_size=256)
    assert session.estimate().batch_size == 256


def test_cli_report_command(capsys):
    from repro.cli import main

    assert main(["report", "Resnet-50", "-n", "16"]) == 0
    assert "bottleneck" in capsys.readouterr().out
    assert main(["report", "Resnet-50", "-n", "16", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["n_accelerators"] == 16
