"""Tests for the batch-level discrete-event simulator."""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.des import DesResult, Station, run_pipeline, simulate_des
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")


def test_station_service_time():
    s = Station("prep", rate=1000.0)
    assert s.service_time(500) == pytest.approx(0.5)
    with pytest.raises(ConfigError):
        Station("bad", rate=0.0).service_time(1)


def test_single_fast_station_accelerator_bound():
    # Prep far faster than consumption: throughput = n·B/iter_time.
    result = run_pipeline(
        [Station("prep", 1e9)],
        n_accelerators=4,
        batch_size=100,
        iteration_time=1.0,
        iterations=50,
    )
    assert result.throughput == pytest.approx(400.0, rel=0.02)


def test_slow_station_prep_bound():
    # Prep delivers 100 samples/s total; accelerators could do 400.
    result = run_pipeline(
        [Station("prep", 100.0)],
        n_accelerators=4,
        batch_size=100,
        iteration_time=1.0,
        iterations=50,
    )
    assert result.throughput == pytest.approx(100.0, rel=0.05)


def test_tandem_bottleneck_is_min():
    stations = [Station("a", 500.0), Station("b", 200.0), Station("c", 900.0)]
    result = run_pipeline(stations, 2, 100, 0.01, iterations=60)
    assert result.throughput == pytest.approx(200.0, rel=0.05)
    # The bottleneck station is the busiest.
    assert max(
        result.resource_utilization, key=result.resource_utilization.get
    ) == "b"


def test_blocking_with_tiny_buffers_still_converges():
    stations = [Station("a", 300.0), Station("b", 300.0)]
    result = run_pipeline(stations, 2, 100, 0.01, iterations=60, buffer_batches=1)
    assert result.throughput == pytest.approx(300.0, rel=0.05)


def test_validation():
    with pytest.raises(ConfigError):
        run_pipeline([Station("a", 1.0)], 1, 1, 1.0, iterations=0)
    with pytest.raises(ConfigError):
        run_pipeline([Station("a", 1.0)], 1, 1, 1.0, iterations=5, buffer_batches=0)


def test_des_matches_analytical_across_configs():
    """The DES and the closed-form solver agree within 2% everywhere."""
    for arch in ArchitectureConfig.figure19_ladder():
        for n in (8, 64):
            scenario = TrainingScenario(RESNET, arch, n)
            analytical = simulate(scenario)
            des = simulate_des(scenario, iterations=60)
            assert des.relative_error(analytical.throughput) < 0.02, (
                arch.name,
                n,
            )


def test_jitter_barely_moves_throughput():
    """§VI-A: latency variation has little impact thanks to pipelining."""
    scenario = TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 32)
    analytical = simulate(scenario)
    des = simulate_des(scenario, iterations=80, jitter=0.3, seed=7)
    assert des.relative_error(analytical.throughput) < 0.08


def test_jitter_deterministic_per_seed():
    scenario = TrainingScenario(RESNET, ArchitectureConfig.baseline(), 8)
    a = simulate_des(scenario, iterations=30, jitter=0.2, seed=1)
    b = simulate_des(scenario, iterations=30, jitter=0.2, seed=1)
    c = simulate_des(scenario, iterations=30, jitter=0.2, seed=2)
    assert a.throughput == pytest.approx(b.throughput)
    assert a.throughput != pytest.approx(c.throughput)


def test_utilization_bounded():
    result = run_pipeline(
        [Station("a", 500.0), Station("b", 200.0)], 2, 100, 0.5, iterations=40
    )
    for value in result.resource_utilization.values():
        assert 0.0 <= value <= 1.0 + 1e-9


def test_multi_server_station_matches_aggregate_throughput():
    """k servers of rate r sustain the same steady throughput as one
    server of rate k·r — but each batch takes k× longer in service."""
    single = run_pipeline(
        [Station("prep", 800.0)], 2, 80, 0.01, iterations=400
    )
    multi = run_pipeline(
        [Station("prep", 100.0, servers=8)], 2, 80, 0.01, iterations=400,
        buffer_batches=8,
    )
    assert multi.throughput == pytest.approx(single.throughput, rel=0.03)


def test_multi_server_utilization_normalized_per_server():
    result = run_pipeline(
        [Station("prep", 50.0, servers=4)], 2, 100, 1e-4, iterations=40,
        buffer_batches=8,
    )
    assert 0.0 <= result.resource_utilization["prep"] <= 1.0 + 1e-9


def test_station_server_validation():
    with pytest.raises(ConfigError):
        Station("bad", 10.0, servers=0)
    assert Station("ok", 10.0, servers=4).aggregate_rate == pytest.approx(40.0)
