"""Tests for the train initializer."""

import pytest

from repro.core.config import ArchitectureConfig
from repro.core.initializer import TrainInitializer
from repro.core.server import build_server
from repro.datasets.storage import validate_sharding
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


def _initializer(n=32, pool=True):
    server = build_server(ArchitectureConfig.trainbox(prep_pool=pool), n)
    return TrainInitializer(server)


def test_requires_trainbox_server():
    server = build_server(ArchitectureConfig.baseline(), 8)
    with pytest.raises(ConfigError):
        TrainInitializer(server)


def test_plan_image_model_needs_no_pool():
    init = _initializer()
    plan = init.plan(get_workload("Inception-v4"), num_items=10_000)
    assert plan.pool_fpgas_requested == 0
    assert plan.pool_fpgas_granted == 0
    assert plan.meets_target


def test_plan_audio_model_requests_pool():
    init = _initializer(n=256)
    plan = init.plan(TF_SR, num_items=10_000)
    assert plan.pool_fpgas_requested > 0
    assert plan.pool_fpgas_granted == plan.pool_fpgas_requested
    assert plan.meets_target
    # §VI-D: ≈54% more FPGA resources for Transformer-SR.
    assert plan.extra_resource_fraction == pytest.approx(0.54, abs=0.05)


def test_no_pool_server_grants_nothing():
    init = _initializer(n=256, pool=False)
    plan = init.plan(TF_SR, num_items=1_000)
    assert plan.pool_fpgas_requested > 0
    assert plan.pool_fpgas_granted == 0
    assert not plan.meets_target


def test_required_rate_uses_sync_model():
    init = _initializer(n=32)
    plan = init.plan(RESNET, num_items=1_000)
    assert plan.per_batch_time > 0
    assert plan.sync_time > 0
    expected = 32 * plan.batch_size / (plan.per_batch_time + plan.sync_time)
    assert plan.required_prep_rate == pytest.approx(expected)


def test_sharding_covers_dataset():
    init = _initializer(n=24)
    plan = init.plan(RESNET, num_items=1003)
    all_shards = [s for shards in plan.shards.values() for s in shards]
    validate_sharding(all_shards, 1003)


def test_shards_proportional_to_box_accelerators():
    init = _initializer(n=12)  # boxes of 8 and 4
    plan = init.plan(RESNET, num_items=1200)
    boxes = {b.box_id: b for b in init.server.boxes}
    counts = {
        box_id: sum(len(s) for s in shards)
        for box_id, shards in plan.shards.items()
    }
    big = [c for bid, c in counts.items() if len(boxes[bid].acc_ids) == 8]
    small = [c for bid, c in counts.items() if len(boxes[bid].acc_ids) == 4]
    assert big and small
    assert big[0] == pytest.approx(2 * small[0], rel=0.05)


def test_shards_live_on_box_ssds():
    init = _initializer(n=16)
    plan = init.plan(RESNET, num_items=100)
    for box in init.server.boxes:
        for shard in plan.shards.get(box.box_id, []):
            assert shard.ssd_id in box.ssd_ids


def test_release_returns_pool_resources():
    init = _initializer(n=256)
    before = init.pool.available
    plan = init.plan(TF_SR, num_items=100, job_id="j1")
    assert init.pool.available == before - plan.pool_fpgas_granted
    init.release("j1")
    assert init.pool.available == before


def test_two_jobs_share_pool():
    init = _initializer(n=256)
    p1 = init.plan(TF_SR, num_items=100, job_id="j1")
    p2 = init.plan(get_workload("Transformer-AA"), num_items=100, job_id="j2")
    granted_ids = set(p1.pool_grant.fpga_ids) & set(p2.pool_grant.fpga_ids)
    assert not granted_ids


def test_batch_override():
    init = _initializer(n=8)
    plan = init.plan(RESNET, num_items=100, batch_size=512)
    assert plan.batch_size == 512
