"""Golden pin: the vectorized DES solver against the scalar reference.

The vectorized path replaces the batch-at-a-time recursion with max-plus
prefix scans; its correctness argument (blocking invariance under
deterministic service) is only trusted because this suite holds across
bottleneck positions, multi-server stations, buffer depths and scales.
"""

import itertools

import numpy as np
import pytest

from repro.core.analytical import TrainingScenario
from repro.core.config import ArchitectureConfig
from repro.core.des import (
    Station,
    run_pipeline,
    run_pipeline_reference,
    simulate_des,
)
from repro.workloads.registry import get_workload

#: Station rate layouts covering every bottleneck position.
RATE_LAYOUTS = (
    (100.0,),
    (100.0, 50.0),
    (50.0, 100.0),
    (100.0, 30.0, 200.0),
    (200.0, 100.0, 30.0),
    (500.0, 10.0, 500.0, 10.0, 500.0),
)


def _stations(rates, servers_pattern):
    return [
        Station(f"s{i}", rate / servers, servers=servers)
        for i, (rate, servers) in enumerate(zip(rates, servers_pattern))
    ]


@pytest.mark.parametrize("rates", RATE_LAYOUTS)
@pytest.mark.parametrize("n_accelerators", [1, 3, 16])
@pytest.mark.parametrize("buffer_batches", [1, 4])
def test_vectorized_matches_reference(rates, n_accelerators, buffer_batches):
    for servers_pattern, iterations, iteration_time in itertools.product(
        (
            [1] * len(rates),
            [1 + (i % 3) for i in range(len(rates))],
        ),
        (3, 40),
        (0.0005, 2.0),
    ):
        stations = _stations(rates, servers_pattern)
        ref = run_pipeline_reference(
            stations, n_accelerators, 32, iteration_time, iterations,
            buffer_batches=buffer_batches,
        )
        vec = run_pipeline(
            stations, n_accelerators, 32, iteration_time, iterations,
            buffer_batches=buffer_batches,
        )
        assert vec.throughput == pytest.approx(ref.throughput, rel=1e-9)
        assert vec.makespan == pytest.approx(ref.makespan, rel=1e-9)
        assert vec.iterations == ref.iterations
        assert vec.stations == ref.stations
        for name, util in ref.resource_utilization.items():
            assert vec.resource_utilization[name] == pytest.approx(
                util, rel=1e-9, abs=1e-12
            )


def test_simulate_des_uses_vectorized_path_consistently():
    """End-to-end: the full scenario pipeline agrees across solvers."""
    for arch in (ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()):
        scenario = TrainingScenario(get_workload("Resnet-50"), arch, 16)
        fast = simulate_des(scenario, iterations=30)
        traced = simulate_des(scenario, iterations=30, record_trace=True)
        assert fast.trace is None
        assert traced.trace is not None  # record_trace forces the reference
        assert fast.throughput == pytest.approx(traced.throughput, rel=1e-9)
        assert fast.makespan == pytest.approx(traced.makespan, rel=1e-9)


def test_jitter_dispatches_to_reference():
    """Jittered runs must replay the scalar RNG draw order exactly."""
    stations = _stations((100.0, 50.0), (1, 2))
    a = run_pipeline(stations, 4, 32, 0.05, 20, jitter=0.3, seed=7)
    b = run_pipeline_reference(stations, 4, 32, 0.05, 20, jitter=0.3, seed=7)
    assert a.throughput == b.throughput
    assert a.makespan == b.makespan


def test_vectorized_is_deterministic():
    stations = _stations((100.0, 30.0, 200.0), (2, 1, 3))
    runs = [
        run_pipeline(stations, 8, 32, 0.01, 25).throughput for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]


def test_desresult_to_from_dict_roundtrip():
    stations = _stations((100.0, 50.0), (1, 2))
    result = run_pipeline(stations, 4, 32, 0.05, 20)
    clone = type(result).from_dict(result.to_dict())
    assert clone.throughput == result.throughput
    assert clone.makespan == result.makespan
    assert clone.resource_utilization == result.resource_utilization
    assert clone.stations == result.stations
    assert clone.trace is None
