"""Tests for fault injection and degraded operation."""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.faults import FaultSet, drain_box, inject_faults
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


def _healthy(n=32):
    return build_server(ArchitectureConfig.trainbox(), n)


def _simulate_on(server, workload=RESNET):
    scenario = TrainingScenario(
        workload, server.arch, server.n_accelerators, hw=server.hw
    )
    return simulate(scenario, server=server)


def test_ssd_failure_degrades_box_bandwidth():
    server = _healthy()
    healthy = _simulate_on(server)
    victim = server.boxes[0].ssd_ids[0]
    degraded_server = inject_faults(server, FaultSet.of(victim))
    degraded = _simulate_on(degraded_server)
    # The surviving drive carries the whole box's reads; system
    # throughput may drop but never below the one-drive bound.
    assert degraded.throughput <= healthy.throughput
    assert degraded.throughput > 0.4 * healthy.throughput


def test_fpga_failure_halves_box_prep():
    server = _healthy()
    healthy = _simulate_on(server, TF_SR)
    victim = server.boxes[0].prep_ids[0]
    degraded = _simulate_on(inject_faults(server, FaultSet.of(victim)), TF_SR)
    assert degraded.throughput <= healthy.throughput
    assert degraded.throughput > 0.5 * healthy.throughput


def test_accelerator_failure_shrinks_the_job():
    server = _healthy()
    victim = server.boxes[0].acc_ids[0]
    degraded_server = inject_faults(server, FaultSet.of(victim))
    assert degraded_server.n_accelerators == server.n_accelerators - 1
    result = _simulate_on(degraded_server)
    assert result.throughput > 0


def test_multiple_faults_compose():
    server = _healthy()
    faults = FaultSet.of(
        server.boxes[0].ssd_ids[0],
        server.boxes[1].prep_ids[0],
        server.boxes[2].acc_ids[3],
    )
    degraded_server = inject_faults(server, faults)
    assert degraded_server.n_accelerators == server.n_accelerators - 1
    assert len(degraded_server.ssd_ids) == len(server.ssd_ids) - 1
    assert _simulate_on(degraded_server).throughput > 0


def test_total_box_ssd_loss_rejected():
    server = _healthy()
    box = server.boxes[0]
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet(frozenset(box.ssd_ids)))


def test_total_box_fpga_loss_rejected():
    server = _healthy()
    box = server.boxes[0]
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet(frozenset(box.prep_ids)))


def test_unknown_device_rejected():
    server = _healthy()
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet.of("flux_capacitor"))


def test_original_server_untouched():
    server = _healthy()
    before = list(server.boxes[0].ssd_ids)
    inject_faults(server, FaultSet.of(before[0]))
    assert server.boxes[0].ssd_ids == before


def test_drain_box():
    server = _healthy()
    drained = drain_box(server, server.boxes[0].box_id)
    assert drained.n_accelerators == server.n_accelerators - 8
    assert _simulate_on(drained).throughput > 0
    with pytest.raises(ConfigError):
        drain_box(server, "nonexistent")


def test_drain_last_box_rejected():
    server = build_server(ArchitectureConfig.trainbox(), 8)
    acc_boxes = [b for b in server.boxes if b.acc_ids]
    with pytest.raises(ConfigError):
        drain_box(server, acc_boxes[0].box_id)


# -- time-varying fault schedules -------------------------------------------


def test_fault_event_validation():
    from repro.core.faults import FaultEvent

    e = FaultEvent("d0", 5.0, 10.0)
    assert not e.down_at(4.9) and e.down_at(5.0)
    assert e.down_at(9.9) and not e.down_at(10.0)
    assert FaultEvent("d0", 0.0).down_at(1e12)  # never recovers
    with pytest.raises(ConfigError):
        FaultEvent("d0", -1.0)
    with pytest.raises(ConfigError):
        FaultEvent("d0", 5.0, 5.0)


def test_schedule_windows_partition_the_horizon():
    from repro.core.faults import FaultEvent, FaultSchedule

    sched = FaultSchedule.of(
        FaultEvent("a", 10.0, 40.0),
        FaultEvent("b", 20.0, 30.0),
    )
    windows = sorted(sched.windows(60.0))
    assert [(t0, t1) for t0, t1, _ in windows] == [
        (0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0), (40.0, 60.0)
    ]
    assert [sorted(f.device_ids) for _, _, f in windows] == [
        [], ["a"], ["a", "b"], ["a"], []
    ]
    # Events past the horizon contribute no cuts.
    late = FaultSchedule.of(FaultEvent("a", 100.0))
    assert late.windows(60.0) == [(0.0, 60.0, late.active_at(0.0))]
    with pytest.raises(ConfigError):
        sched.windows(0.0)


def test_schedule_priced_as_piecewise_timeline():
    from repro.core.faults import FaultEvent, FaultSchedule, price_schedule

    server = _healthy()
    fpga = server.boxes[0].prep_ids[0]
    ssd = server.boxes[1].ssd_ids[0]
    sched = FaultSchedule.of(
        FaultEvent(fpga, 10.0, 40.0),
        FaultEvent(ssd, 20.0, 30.0),
    )
    timeline = price_schedule(server, sched, 60.0, _simulate_on)
    segments = timeline.segments
    assert len(segments) == 5
    healthy = segments[0].throughput
    # FPGA loss dips but the surviving FPGA carries the box; SSD loss
    # composes; recovery restores the healthy rate exactly.
    assert all(0 < s.throughput <= healthy for s in segments)
    assert segments[1].throughput < healthy
    assert segments[-1].throughput == healthy
    assert segments[-1].failed == ()
    assert timeline.min_throughput > 0.4 * healthy
    assert timeline.horizon == 60.0
    assert timeline.throughput_at(15.0) == segments[1].throughput
    with pytest.raises(ConfigError):
        timeline.throughput_at(60.0)
    # The throughput integral is consistent with the segments.
    assert timeline.total_samples == pytest.approx(
        sum(s.throughput * s.duration for s in segments)
    )


def test_schedule_pricing_caches_repeated_fault_sets():
    from repro.core.faults import FaultEvent, FaultSchedule, price_schedule

    server = _healthy()
    fpga = server.boxes[0].prep_ids[0]
    # The same device flaps three times: 4 healthy + 3 degraded windows,
    # but only two distinct fault sets to price.
    sched = FaultSchedule.of(
        FaultEvent(fpga, 10.0, 20.0),
        FaultEvent(fpga, 30.0, 40.0),
        FaultEvent(fpga, 50.0, 60.0),
    )
    calls = []

    def runner(srv):
        calls.append(srv)
        return _simulate_on(srv)

    timeline = price_schedule(server, sched, 70.0, runner)
    assert len(timeline.segments) == 7
    assert len(calls) == 2
    degraded = [s for s in timeline.segments if s.failed]
    assert len(degraded) == 3
    assert len({s.throughput for s in degraded}) == 1


def test_schedule_that_strips_a_box_rejected_like_static_path():
    from repro.core.faults import FaultEvent, FaultSchedule, price_schedule

    server = _healthy()
    box = server.boxes[0]
    sched = FaultSchedule.of(
        *(FaultEvent(s, 10.0) for s in box.ssd_ids)
    )
    with pytest.raises(ConfigError):
        price_schedule(server, sched, 60.0, _simulate_on)


def test_des_and_flow_schedule_engines():
    from repro.core.des import simulate_des_schedule
    from repro.core.faults import FaultEvent, FaultSchedule
    from repro.core.flowengine import simulate_flow_schedule

    server = _healthy()
    scenario = TrainingScenario(RESNET, server.arch, 32, hw=server.hw)
    fpga = server.boxes[0].prep_ids[0]
    sched = FaultSchedule.of(FaultEvent(fpga, 10.0, 30.0))
    for simulate_schedule in (simulate_des_schedule, simulate_flow_schedule):
        timeline = simulate_schedule(scenario, sched, 50.0)
        assert len(timeline.segments) == 3
        healthy = timeline.segments[0].throughput
        assert timeline.segments[1].throughput < healthy
        assert timeline.segments[1].throughput > 0
        assert timeline.segments[2].throughput == healthy


def test_api_price_fault_schedule_facade():
    from repro import api
    from repro.core.faults import FaultEvent, FaultSchedule

    sched = FaultSchedule.of(FaultEvent("tbox0_fpga0", 10.0, 30.0))
    timeline = api.price_fault_schedule(
        "Resnet-50", "trainbox", 32, sched, 50.0
    )
    assert len(timeline.segments) == 3
    assert timeline.segments[0].throughput == timeline.segments[2].throughput
    assert timeline.mean_throughput < timeline.max_throughput
    with pytest.raises(ConfigError):
        api.price_fault_schedule(
            "Resnet-50", "trainbox", 32, sched, 50.0, engine="warp"
        )
