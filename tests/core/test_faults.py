"""Tests for fault injection and degraded operation."""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.faults import FaultSet, drain_box, inject_faults
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


def _healthy(n=32):
    return build_server(ArchitectureConfig.trainbox(), n)


def _simulate_on(server, workload=RESNET):
    scenario = TrainingScenario(
        workload, server.arch, server.n_accelerators, hw=server.hw
    )
    return simulate(scenario, server=server)


def test_ssd_failure_degrades_box_bandwidth():
    server = _healthy()
    healthy = _simulate_on(server)
    victim = server.boxes[0].ssd_ids[0]
    degraded_server = inject_faults(server, FaultSet.of(victim))
    degraded = _simulate_on(degraded_server)
    # The surviving drive carries the whole box's reads; system
    # throughput may drop but never below the one-drive bound.
    assert degraded.throughput <= healthy.throughput
    assert degraded.throughput > 0.4 * healthy.throughput


def test_fpga_failure_halves_box_prep():
    server = _healthy()
    healthy = _simulate_on(server, TF_SR)
    victim = server.boxes[0].prep_ids[0]
    degraded = _simulate_on(inject_faults(server, FaultSet.of(victim)), TF_SR)
    assert degraded.throughput <= healthy.throughput
    assert degraded.throughput > 0.5 * healthy.throughput


def test_accelerator_failure_shrinks_the_job():
    server = _healthy()
    victim = server.boxes[0].acc_ids[0]
    degraded_server = inject_faults(server, FaultSet.of(victim))
    assert degraded_server.n_accelerators == server.n_accelerators - 1
    result = _simulate_on(degraded_server)
    assert result.throughput > 0


def test_multiple_faults_compose():
    server = _healthy()
    faults = FaultSet.of(
        server.boxes[0].ssd_ids[0],
        server.boxes[1].prep_ids[0],
        server.boxes[2].acc_ids[3],
    )
    degraded_server = inject_faults(server, faults)
    assert degraded_server.n_accelerators == server.n_accelerators - 1
    assert len(degraded_server.ssd_ids) == len(server.ssd_ids) - 1
    assert _simulate_on(degraded_server).throughput > 0


def test_total_box_ssd_loss_rejected():
    server = _healthy()
    box = server.boxes[0]
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet(frozenset(box.ssd_ids)))


def test_total_box_fpga_loss_rejected():
    server = _healthy()
    box = server.boxes[0]
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet(frozenset(box.prep_ids)))


def test_unknown_device_rejected():
    server = _healthy()
    with pytest.raises(ConfigError):
        inject_faults(server, FaultSet.of("flux_capacitor"))


def test_original_server_untouched():
    server = _healthy()
    before = list(server.boxes[0].ssd_ids)
    inject_faults(server, FaultSet.of(before[0]))
    assert server.boxes[0].ssd_ids == before


def test_drain_box():
    server = _healthy()
    drained = drain_box(server, server.boxes[0].box_id)
    assert drained.n_accelerators == server.n_accelerators - 8
    assert _simulate_on(drained).throughput > 0
    with pytest.raises(ConfigError):
        drain_box(server, "nonexistent")


def test_drain_last_box_rejected():
    server = build_server(ArchitectureConfig.trainbox(), 8)
    acc_boxes = [b for b in server.boxes if b.acc_ids]
    with pytest.raises(ConfigError):
        drain_box(server, acc_boxes[0].box_id)
