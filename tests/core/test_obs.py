"""Tracer unit suite: disabled no-ops, span nesting, Chrome export."""

import json

import pytest

from repro import obs
from repro.errors import ConfigError


class FakeClock:
    """Deterministic wall clock for span tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


# -- disabled path -----------------------------------------------------------


def test_disabled_helpers_are_noops():
    assert obs.current_tracer() is None
    assert obs.current_metrics() is None
    # No tracer installed: nothing recorded, nothing raised.
    obs.model_span("x", 0.0, 1.0)
    obs.instant("x")
    obs.inc("x")
    obs.observe("x", 1.0)
    with obs.span("x", cat="test"):
        pass


def test_disabled_span_is_shared_singleton():
    # The zero-overhead contract: no allocation on the disabled path.
    assert obs.span("a") is obs.span("b")


def test_profiled_disabled_calls_through():
    calls = []

    @obs.profiled()
    def hot(x):
        calls.append(x)
        return x * 2

    assert hot(21) == 42
    assert calls == [21]
    assert hot.__wrapped__(1) == 2


# -- sessions ----------------------------------------------------------------


def test_session_installs_and_restores():
    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    with obs.session(tracer=tracer, metrics=metrics):
        assert obs.current_tracer() is tracer
        assert obs.current_metrics() is metrics
        obs.inc("seen")
    assert obs.current_tracer() is None
    assert obs.current_metrics() is None
    assert metrics.counters == {"seen": 1}


def test_nested_session_with_none_leaves_outer_instrument():
    outer = obs.Tracer()
    inner_metrics = obs.MetricsRegistry()
    with obs.session(tracer=outer):
        with obs.session(metrics=inner_metrics):
            assert obs.current_tracer() is outer
            assert obs.current_metrics() is inner_metrics
        assert obs.current_tracer() is outer
        assert obs.current_metrics() is None


def test_session_restores_on_exception():
    tracer = obs.Tracer()
    with pytest.raises(RuntimeError):
        with obs.session(tracer=tracer):
            raise RuntimeError("boom")
    assert obs.current_tracer() is None


# -- recording ---------------------------------------------------------------


def test_span_nesting_depth_and_timing():
    clock = FakeClock()
    tracer = obs.Tracer(clock=clock)
    with tracer.span("outer"):
        clock.tick(1.0)
        with tracer.span("inner"):
            clock.tick(0.5)
        clock.tick(0.25)
    inner, outer = tracer.spans  # inner closes first
    assert inner.name == "inner" and inner.depth == 1
    assert outer.name == "outer" and outer.depth == 0
    assert inner.duration == pytest.approx(0.5)
    assert outer.duration == pytest.approx(1.75)
    assert outer.start <= inner.start and inner.end <= outer.end


def test_profiled_enabled_records_default_label():
    tracer = obs.Tracer()

    @obs.profiled()
    def hot():
        return 7

    with obs.session(tracer=tracer):
        assert hot() == 7
    (span,) = tracer.spans
    assert span.name.endswith("hot")
    assert span.cat == "profile"


def test_model_span_rejects_negative_duration():
    tracer = obs.Tracer()
    with pytest.raises(ConfigError):
        tracer.add_model_span("bad", 2.0, 1.0)


def test_model_span_filters():
    tracer = obs.Tracer()
    tracer.add_model_span("a", 0.0, 1.0, cat="iteration", track="des")
    tracer.add_model_span("b", 0.0, 1.0, cat="station", track="des")
    tracer.add_model_span("c", 0.0, 1.0, cat="iteration", track="model")
    with tracer.span("wall-only"):
        pass
    assert {s.name for s in tracer.model_spans()} == {"a", "b", "c"}
    assert {s.name for s in tracer.model_spans(cat="iteration")} == {"a", "c"}
    assert {s.name for s in tracer.model_spans(track="des")} == {"a", "b"}
    assert [s.name for s in tracer.wall_spans()] == ["wall-only"]


def test_summarize_orders_by_total_and_truncates():
    tracer = obs.Tracer()
    tracer.add_model_span("small", 0.0, 1.0)
    tracer.add_model_span("big", 0.0, 5.0)
    tracer.add_model_span("big", 5.0, 8.0)
    summaries = tracer.summarize()
    assert [s.name for s in summaries] == ["big", "small"]
    big = summaries[0]
    assert big.count == 2
    assert big.total == pytest.approx(8.0)
    assert big.mean == pytest.approx(4.0)
    assert big.max_duration == pytest.approx(5.0)
    assert len(tracer.summarize(top=1)) == 1


# -- Chrome export -----------------------------------------------------------


def test_chrome_export_schema(tmp_path):
    clock = FakeClock()
    tracer = obs.Tracer(clock=clock)
    with tracer.span("work", cat="phase", detail=1):
        clock.tick(0.002)
    tracer.add_model_span("iteration", 0.0, 1.5, cat="iteration")
    tracer.instant("mark")

    doc = tracer.to_chrome()
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]

    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {obs.WALL_TRACK, obs.MODEL_TRACK}
    assert all(m["name"] == "process_name" for m in meta)

    complete = [e for e in events if e["ph"] == "X"]
    by_name = {e["name"]: e for e in complete}
    assert by_name["work"]["dur"] == pytest.approx(2000.0)  # µs
    assert by_name["work"]["args"] == {"detail": 1}
    assert by_name["iteration"]["ts"] == 0.0
    assert by_name["iteration"]["dur"] == pytest.approx(1.5e6)
    # Wall and model tracks are separate Chrome processes.
    assert by_name["work"]["pid"] != by_name["iteration"]["pid"]

    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1 and instants[0]["name"] == "mark"

    path = tracer.write_chrome(tmp_path / "sub" / "trace.json")
    assert json.loads(path.read_text()) == doc


# -- iteration-time reconciliation -------------------------------------------


def test_steady_iteration_time_single_span():
    tracer = obs.Tracer()
    tracer.add_model_span("iteration", 0.0, 2.5, cat="iteration")
    spans = tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    assert obs.steady_iteration_time(spans) == pytest.approx(2.5)


def test_steady_iteration_time_span_train_uses_finish_spacing():
    tracer = obs.Tracer()
    # 10 iterations finishing 1s apart after a slow first one.
    end = 0.0
    for i in range(10):
        dur = 3.0 if i == 0 else 1.0
        tracer.add_model_span("iteration", end, end + dur, cat="iteration")
        end += dur
    spans = tracer.model_spans(cat=obs.ITERATION_CATEGORY)
    assert obs.steady_iteration_time(spans) == pytest.approx(1.0)


def test_steady_iteration_time_empty_raises():
    with pytest.raises(ConfigError):
        obs.steady_iteration_time([])
