"""Tests for the inference-serving mode."""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.inference import InferenceScenario, simulate_inference
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")


def test_inference_has_no_sync():
    result = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.trainbox(), 32)
    )
    assert result.sync_time == 0.0
    assert result.arch_name.endswith("/inference")


def test_forward_only_demands_more_prep():
    """§II-A: the insight applies to inference too — forward-only compute
    raises per-device demand, so prep binds at even smaller scale."""
    train = simulate(
        TrainingScenario(RESNET, ArchitectureConfig.baseline(), 8, batch_size=512)
    )
    infer = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.baseline(), 8, batch_size=512)
    )
    assert infer.consume_rate > 2.5 * train.consume_rate
    # Prep capacity is the same datapath.
    assert infer.prep_rate == pytest.approx(train.prep_rate)


def test_baseline_inference_prep_bound_early():
    result = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.baseline(), 8)
    )
    assert result.prep_bound
    # At 8 devices either the host CPU or the single accelerator box's
    # uplink binds — both are preparation-side resources.
    assert result.bottleneck == "host_cpu" or result.bottleneck.startswith("pcie")


def test_trainbox_relieves_inference_too():
    base = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.baseline(), 64)
    )
    tb = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.trainbox(), 64)
    )
    assert tb.throughput > 5 * base.throughput


def test_default_batch_is_fraction_of_training():
    result = simulate_inference(
        InferenceScenario(RESNET, ArchitectureConfig.trainbox(), 4)
    )
    assert result.batch_size == RESNET.batch_size // 16


def test_validation():
    with pytest.raises(ConfigError):
        InferenceScenario(RESNET, ArchitectureConfig.baseline(), 0)
    with pytest.raises(ConfigError):
        InferenceScenario(RESNET, ArchitectureConfig.baseline(), 4, batch_size=0)
    from repro.core.server import build_server

    server = build_server(ArchitectureConfig.baseline(), 8)
    with pytest.raises(ConfigError):
        simulate_inference(
            InferenceScenario(RESNET, ArchitectureConfig.baseline(), 16),
            server=server,
        )
