"""Tests for host-resource accounting."""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import build_demand
from repro.core.resources import (
    host_requirements,
    latency_decomposition,
    resource_breakdown,
    shares,
)
from repro.core.server import build_server
from repro.errors import SimulationError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
RNN_S = get_workload("RNN-S")


def _setup(arch=None, workload=RESNET, n=256):
    arch = arch or ArchitectureConfig.baseline()
    server = build_server(arch, n)
    return server, build_demand(server, workload)


def test_required_cores_formula():
    _, demand = _setup()
    target = 256 * RESNET.sample_rate
    req = host_requirements(demand, target)
    assert req.required_cores == pytest.approx(
        demand.total_cpu_cycles * target / 2.5e9
    )
    assert req.normalized_cores == pytest.approx(req.required_cores / 48)


def test_rnn_s_needs_about_100x_cores():
    """Figure 10a: the worst image model needs ≈100× a DGX-2's cores."""
    _, demand = _setup(workload=RNN_S)
    req = host_requirements(demand, 256 * RNN_S.sample_rate)
    assert req.normalized_cores == pytest.approx(100.7, rel=0.05)


def test_memory_and_pcie_bands():
    """Figure 10b/c: memory up to ≈18×, RC PCIe up to ≈18× DGX-2."""
    worst_mem = 0.0
    worst_pcie = 0.0
    for name in ("Resnet-50", "RNN-S", "Transformer-SR"):
        workload = get_workload(name)
        _, demand = _setup(workload=workload)
        req = host_requirements(demand, 256 * workload.sample_rate)
        worst_mem = max(worst_mem, req.normalized_memory_bandwidth)
        worst_pcie = max(worst_pcie, req.normalized_pcie_bandwidth)
    assert 10 < worst_mem < 30
    assert 10 < worst_pcie < 30


def test_target_rate_must_be_positive():
    _, demand = _setup()
    with pytest.raises(SimulationError):
        host_requirements(demand, 0)


def test_breakdown_tables_cover_resources():
    _, demand = _setup()
    tables = resource_breakdown(demand)
    assert set(tables) == {"cpu", "memory", "pcie"}
    cpu_shares = shares(tables["cpu"])
    assert sum(cpu_shares.values()) == pytest.approx(1.0)
    # Baseline CPU is dominated by formatting + augmentation (Fig 11a).
    assert cpu_shares["formatting"] + cpu_shares["augmentation"] > 0.9


def test_shares_rejects_empty():
    with pytest.raises(SimulationError):
        shares({"a": 0.0})


def test_figure22_normalization_direction():
    """TrainBox strictly reduces every host resource vs the baseline."""
    _, base = _setup()
    _, tb = _setup(arch=ArchitectureConfig.trainbox())
    base_tables = resource_breakdown(base)
    tb_tables = resource_breakdown(tb)
    for resource in ("cpu", "memory", "pcie"):
        base_total = sum(base_tables[resource].values())
        tb_total = sum(tb_tables[resource].values())
        assert tb_total < base_total * 0.2, resource


def test_latency_decomposition_prep_dominates_at_scale():
    """Figure 9: preparation ≈98% of per-batch latency at 256 accels."""
    server, demand = _setup()
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 256))
    decomp = latency_decomposition(
        server, demand, result.compute_time, result.sync_time, result.batch_size
    )
    assert decomp.prep_fraction > 0.95
    stage_shares = decomp.shares()
    assert sum(stage_shares.values()) == pytest.approx(1.0)


def test_latency_decomposition_small_scale_compute_dominates():
    server = build_server(ArchitectureConfig.baseline(), 1)
    demand = build_demand(server, RESNET)
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 1))
    decomp = latency_decomposition(
        server, demand, result.compute_time, result.sync_time, result.batch_size
    )
    assert decomp.prep_fraction < 0.5


def test_offloaded_decomposition_uses_device_rates():
    server = build_server(ArchitectureConfig.trainbox(), 32)
    demand = build_demand(server, RESNET)
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 32))
    decomp = latency_decomposition(
        server, demand, result.compute_time, result.sync_time, result.batch_size
    )
    # FPGA offload shrinks formatting time far below the CPU baseline's.
    base_server = build_server(ArchitectureConfig.baseline(), 32)
    base_demand = build_demand(base_server, RESNET)
    base = latency_decomposition(
        base_server, base_demand, result.compute_time, result.sync_time,
        result.batch_size,
    )
    assert decomp.data_formatting < base.data_formatting / 5


def test_core_to_accelerator_ratio_18_9():
    """§III-C: 'high-performance accelerators and innovations on the
    model synchronization lead to a higher ratio of 18.9:1' — the worst
    Table I workload (RNN-S) demands ≈18.9 prep cores per accelerator,
    versus DGX-2's provisioned 3:1."""
    from repro.core.resources import cores_per_accelerator

    _, demand = _setup(workload=RNN_S)
    ratio = cores_per_accelerator(demand, RNN_S.sample_rate)
    assert ratio == pytest.approx(18.9, rel=0.03)
    ratios = []
    from repro.workloads.registry import TABLE_I

    for workload in TABLE_I.values():
        server, d = _setup(workload=workload)
        ratios.append(cores_per_accelerator(d, workload.sample_rate))
    assert max(ratios) == pytest.approx(18.9, rel=0.03)
    # On average the fleet far exceeds DGX-2's provisioned 3:1.
    assert sum(ratios) / len(ratios) > 3.0


def test_cores_per_accelerator_validation():
    from repro.core.resources import cores_per_accelerator

    _, demand = _setup()
    with pytest.raises(SimulationError):
        cores_per_accelerator(demand, 0)
