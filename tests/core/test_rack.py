"""Tests for rack-scale TrainBox and multi-job scheduling."""

import pytest

from repro.core.rack import JobRequest, TrainBoxRack
from repro.errors import CapacityError, ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")
TF_AA = get_workload("Transformer-AA")


def test_single_job_placement():
    rack = TrainBoxRack(n_boxes=32)
    placement = rack.submit(JobRequest("j1", RESNET, 64))
    assert placement.n_boxes == 8
    assert rack.free_boxes == 24
    assert rack.utilization() == pytest.approx(8 / 32)
    assert placement.result.throughput > 0


def test_audio_job_borrows_idle_fpgas():
    rack = TrainBoxRack(n_boxes=32, external_pool_fpgas=0)
    placement = rack.submit(JobRequest("audio", TF_SR, 128))
    # 16 boxes busy, 16 idle with 32 FPGAs: the audio shortfall is
    # covered by borrowing from idle boxes (§V-D's third realization).
    assert placement.borrowed_from_idle_boxes > 0
    assert placement.borrowed_from_external == 0
    assert placement.result.bottleneck == "accelerator"


def test_external_pool_preferred_over_idle():
    rack = TrainBoxRack(n_boxes=32, external_pool_fpgas=64)
    placement = rack.submit(JobRequest("audio", TF_SR, 128))
    assert placement.borrowed_from_external > 0
    assert placement.borrowed_from_idle_boxes == 0


def test_full_rack_audio_needs_external_pool():
    # Whole rack to one audio job: no idle boxes to borrow from.
    no_pool = TrainBoxRack(n_boxes=32, external_pool_fpgas=0)
    starved = no_pool.submit(JobRequest("a", TF_SR, 256))
    assert starved.pool_fpgas_borrowed == 0
    assert starved.result.bottleneck == "prep_compute"

    with_pool = TrainBoxRack(n_boxes=32, external_pool_fpgas=64)
    fed = with_pool.submit(JobRequest("a", TF_SR, 256))
    assert fed.pool_fpgas_borrowed > 0
    assert fed.result.throughput > 1.4 * starved.result.throughput


def test_multi_job_sync_is_per_job():
    """Footnote 2: each job's ring spans only its own accelerators, so
    smaller co-scheduled jobs see lower sync overhead than one big job."""
    rack = TrainBoxRack(n_boxes=32)
    small = rack.submit(JobRequest("small", RESNET, 32))
    big_rack = TrainBoxRack(n_boxes=32)
    big = big_rack.submit(JobRequest("big", RESNET, 256))
    assert small.result.sync_time < big.result.sync_time


def test_capacity_enforced():
    rack = TrainBoxRack(n_boxes=4)
    rack.submit(JobRequest("j1", RESNET, 24))
    with pytest.raises(CapacityError):
        rack.submit(JobRequest("j2", RESNET, 16))


def test_duplicate_job_rejected():
    rack = TrainBoxRack(n_boxes=8)
    rack.submit(JobRequest("j1", RESNET, 8))
    with pytest.raises(ConfigError):
        rack.submit(JobRequest("j1", RESNET, 8))


def test_finish_releases_everything():
    rack = TrainBoxRack(n_boxes=32, external_pool_fpgas=16)
    placement = rack.submit(JobRequest("j1", TF_AA, 128))
    assert rack.free_boxes == 16
    rack.finish("j1")
    assert rack.free_boxes == 32
    assert rack.external_fpgas_available == 16
    assert rack.idle_fpgas_available == 64
    with pytest.raises(ConfigError):
        rack.finish("j1")


def test_lent_fpgas_pin_their_boxes():
    """A job may not claim boxes whose FPGAs back another job's loan."""
    rack = TrainBoxRack(n_boxes=18, external_pool_fpgas=0)
    # 16 boxes of audio: shortfall ≈ 0.54 * 32 ≈ 18 FPGAs, lent from the
    # 2 idle boxes (4 FPGAs) — partially covered, all idle FPGAs pinned.
    first = rack.submit(JobRequest("audio", TF_SR, 128))
    assert first.borrowed_from_idle_boxes == 4
    with pytest.raises(CapacityError):
        rack.submit(JobRequest("second", RESNET, 16))


def test_two_jobs_coexist():
    rack = TrainBoxRack(n_boxes=32, external_pool_fpgas=64)
    a = rack.submit(JobRequest("img", RESNET, 128))
    b = rack.submit(JobRequest("audio", TF_SR, 128))
    assert a.result.throughput > 0 and b.result.throughput > 0
    assert set(a.box_ids) & set(b.box_ids) == set()
    assert rack.utilization() == 1.0


def test_validation():
    with pytest.raises(ConfigError):
        TrainBoxRack(n_boxes=0)
    with pytest.raises(ConfigError):
        TrainBoxRack(external_pool_fpgas=-1)
    with pytest.raises(ConfigError):
        JobRequest("x", RESNET, 0)
    rack = TrainBoxRack(n_boxes=4)
    with pytest.raises(ConfigError):
        rack.finish("ghost")
