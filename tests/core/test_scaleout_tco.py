"""Tests for the scale-out comparison and the TCO model (§III-A)."""

import pytest

from repro.analysis.tco import (
    BillOfMaterials,
    ComponentPrices,
    host_amortization_ratio,
    scaleout_bom,
    trainbox_bom,
)
from repro.core.scaleout import (
    ScaleOutConfig,
    hierarchical_sync_time,
    scaleup_equivalent_speedup,
    simulate_scaleout,
)
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")


# -- scale-out ---------------------------------------------------------------


def test_96_dgx2_shows_about_40x():
    """§III-A: 'a scale-out system with 96 DGX-2 shows only 39.7×
    improvement over one DGX-2 in MLPerf results'."""
    result = simulate_scaleout(RESNET, 96)
    assert result.speedup_over_one_node == pytest.approx(39.7, rel=0.2)
    assert result.efficiency < 0.55


def test_small_clusters_scale_well():
    for n in (2, 4, 8):
        result = simulate_scaleout(RESNET, n)
        assert result.efficiency > 0.9, n


def test_speedup_monotone_but_efficiency_drops():
    speedups = []
    efficiencies = []
    for n in (1, 4, 16, 48, 96):
        result = simulate_scaleout(RESNET, n)
        speedups.append(result.speedup_over_one_node)
        efficiencies.append(result.efficiency)
    assert speedups == sorted(speedups)
    assert efficiencies == sorted(efficiencies, reverse=True)


def test_faster_nic_helps():
    slow = simulate_scaleout(RESNET, 96)
    fast = simulate_scaleout(
        RESNET, 96, config=ScaleOutConfig(nic_bandwidth=50e9)
    )
    assert fast.speedup_over_one_node > slow.speedup_over_one_node


def test_scaleup_beats_scaleout_at_equal_accelerators():
    """The §III-A punchline: 256 accelerators scale up to ~16 node-
    equivalents on the NVLink fabric, while 16 scale-out nodes of 16
    GPUs lose a chunk to the NIC ring."""
    up = scaleup_equivalent_speedup(RESNET, 256)
    out = simulate_scaleout(RESNET, 16)  # also 256 accelerators
    assert up > out.speedup_over_one_node


def test_hierarchical_sync_components():
    config = ScaleOutConfig()
    one = hierarchical_sync_time(config, 1, RESNET.model_bytes)
    many = hierarchical_sync_time(config, 32, RESNET.model_bytes)
    assert many > one  # the NIC ring adds on top of the intra ring
    assert one > 0


def test_scaleout_validation():
    with pytest.raises(ConfigError):
        simulate_scaleout(RESNET, 0)
    with pytest.raises(ConfigError):
        simulate_scaleout(RESNET, 4, max_batch_growth=0.5)
    with pytest.raises(ConfigError):
        ScaleOutConfig(accs_per_node=0)
    with pytest.raises(ConfigError):
        scaleup_equivalent_speedup(RESNET, 0)


# -- TCO ---------------------------------------------------------------------


def test_host_amortization_grows_with_scale():
    """One host for 256 accelerators vs 256 hosts: the per-accelerator
    host overhead gap is enormous and grows with the node count."""
    r64 = host_amortization_ratio(64)
    r256 = host_amortization_ratio(256)
    assert r256 > r64 > 10


def test_denser_scaleout_nodes_narrow_the_gap():
    sparse = host_amortization_ratio(256, accs_per_node=1)
    dense = host_amortization_ratio(256, accs_per_node=16)
    assert dense < sparse


def test_bom_totals_and_accounting():
    bom = trainbox_bom(64, pool_fpgas=8)
    assert bom.total == pytest.approx(sum(bom.items.values()))
    assert bom.host_overhead < bom.total
    assert bom.items["prep_fpgas"] == (16 + 8) * ComponentPrices().prep_fpga
    assert bom.dollars_per_throughput(1e6) == pytest.approx(bom.total / 1e6)
    with pytest.raises(ConfigError):
        bom.dollars_per_throughput(0)


def test_accelerator_capex_identical_across_organizations():
    up = trainbox_bom(128)
    out = scaleout_bom(128)
    assert up.items["nn_accelerators"] == out.items["nn_accelerators"]


def test_scaleup_total_cheaper_for_same_accelerators():
    up = trainbox_bom(256)
    out = scaleout_bom(256)
    assert up.total < out.total


def test_bom_validation():
    with pytest.raises(ConfigError):
        trainbox_bom(0)
    with pytest.raises(ConfigError):
        scaleout_bom(16, accs_per_node=0)
    with pytest.raises(ConfigError):
        ComponentPrices(nn_accelerator=-1)
