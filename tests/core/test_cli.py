"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "Resnet-50" in out
    assert "Transformer-AA" in out


def test_simulate_command(capsys):
    assert main(["simulate", "Resnet-50", "-a", "trainbox", "-n", "64"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "bottleneck" in out


def test_simulate_with_batch(capsys):
    assert main(["simulate", "Resnet-50", "-n", "8", "-b", "512"]) == 0
    assert "512" in capsys.readouterr().out


def test_ladder_command(capsys):
    assert main(["ladder", "tf-aa", "-n", "64"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "baseline+acc", "trainbox"):
        assert name in out


def test_sweep_command(capsys):
    assert main(["sweep", "Inception-v4", "-a", "baseline", "-n", "32"]) == 0
    out = capsys.readouterr().out
    assert "host_cpu" in out  # saturation visible


def test_plan_command(capsys):
    assert main(["plan", "Transformer-SR", "-n", "64", "--items", "1000"]) == 0
    out = capsys.readouterr().out
    assert "prep-pool FPGAs" in out
    assert "meets target" in out


def test_unknown_architecture_exits():
    with pytest.raises(SystemExit):
        main(["simulate", "Resnet-50", "-a", "warp-drive"])


def test_unknown_workload_raises():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["simulate", "GPT-9"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
