"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "Resnet-50" in out
    assert "Transformer-AA" in out


def test_simulate_command(capsys):
    assert main(["simulate", "Resnet-50", "-a", "trainbox", "-n", "64"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "bottleneck" in out


def test_simulate_with_batch(capsys):
    assert main(["simulate", "Resnet-50", "-n", "8", "-b", "512"]) == 0
    assert "512" in capsys.readouterr().out


def test_ladder_command(capsys):
    assert main(["ladder", "tf-aa", "-n", "64"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "baseline+acc", "trainbox"):
        assert name in out


def test_sweep_command(capsys):
    assert main(["sweep", "Inception-v4", "-a", "baseline", "-n", "32"]) == 0
    out = capsys.readouterr().out
    assert "host_cpu" in out  # saturation visible


def test_plan_command(capsys):
    assert main(["plan", "Transformer-SR", "-n", "64", "--items", "1000"]) == 0
    out = capsys.readouterr().out
    assert "prep-pool FPGAs" in out
    assert "meets target" in out


def test_simulate_engine_flag(capsys):
    assert main(["simulate", "Resnet-50", "-n", "8", "-e", "des"]) == 0
    out = capsys.readouterr().out
    assert "engine        : des" in out
    assert "throughput" in out


def test_simulate_trace_and_metrics_flags(capsys, tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "manifest.json"
    assert main([
        "simulate", "Resnet-50", "-n", "8", "-e", "flow",
        "--trace", str(trace_path), "--metrics", str(metrics_path),
    ]) == 0
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    from repro.obs import load_manifest

    manifest = load_manifest(metrics_path)
    assert manifest["counters"]["engine.flow.runs"] == 1


def test_trace_command_reconciles(capsys, tmp_path):
    import json

    out_path = tmp_path / "fig21.json"
    assert main([
        "trace", "Inception-v4", "-a", "trainbox", "-n", "16",
        "-e", "des", "--out", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "trace written" in out
    assert "RECONCILIATION FAILURE" not in out
    assert json.loads(out_path.read_text())["traceEvents"]


def test_profile_command(capsys):
    assert main(["profile", "Resnet-50", "-n", "8", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "span" in out
    assert "counter" in out
    assert "engine.analytical.runs" in out


def test_sweep_metrics_flag(capsys, tmp_path):
    metrics_path = tmp_path / "sweep-manifest.json"
    assert main([
        "sweep", "Resnet-50", "-a", "trainbox", "-n", "8",
        "--metrics", str(metrics_path),
    ]) == 0
    from repro.obs import load_manifest

    manifest = load_manifest(metrics_path)
    assert manifest["counters"]["sweep.points"] == 4


def test_unknown_engine_exits():
    with pytest.raises(SystemExit):
        main(["simulate", "Resnet-50", "-e", "quantum"])


def test_unknown_architecture_exits():
    with pytest.raises(SystemExit):
        main(["simulate", "Resnet-50", "-a", "warp-drive"])


def test_unknown_workload_raises():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["simulate", "GPT-9"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_chaos_schedule_mode(capsys):
    assert main([
        "chaos", "--fail", "tbox0_fpga0:10:40", "-n", "32",
        "--horizon", "60",
    ]) == 0
    out = capsys.readouterr().out
    assert "tbox0_fpga0" in out
    assert "mean" in out and "samples/s" in out


def test_chaos_schedule_mode_bad_spec():
    with pytest.raises(SystemExit):
        main(["chaos", "--fail", "nonsense"])
    with pytest.raises(SystemExit):
        main(["chaos", "--fail", "dev:not_a_time"])


def test_chaos_drill_smoke(capsys):
    # One worker, tiny dataset: exercises the full drill quickly.
    assert main([
        "chaos", "--workers", "2", "--samples", "8", "--batch", "4",
        "--timeout", "2.0",
    ]) == 0
    out = capsys.readouterr().out
    for scenario in ("crash", "hang", "lost-result", "poison"):
        assert scenario in out
    assert "bit-identical" in out
