"""Tests for the configuration autotuner."""

import pytest

from repro.core.autotune import autotune
from repro.errors import ConfigError
from repro.pcie.link import PcieGen
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
INCEPTION = get_workload("Inception-v4")
TF_SR = get_workload("Transformer-SR")


def _small_space(**kwargs):
    defaults = dict(
        fpga_options=(1, 2),
        ssd_options=(2,),
        gen_options=(PcieGen.GEN3,),
        pool_options=(0, 32, 64),
    )
    defaults.update(kwargs)
    return defaults


def test_best_meets_target_for_easy_workload():
    result = autotune([INCEPTION], 64, **_small_space())
    assert result.best.achieved_fraction >= 0.95
    # The cheap recipe suffices: no pool needed for Inception-v4.
    assert result.best.pool_fpgas == 0


def test_audio_needs_pool_or_more_fpgas():
    result = autotune([TF_SR], 256, **_small_space())
    assert result.best.achieved_fraction >= 0.95
    assert result.best.pool_fpgas > 0 or result.best.fpgas_per_box > 2


def test_best_is_cheapest_feasible():
    result = autotune([INCEPTION], 64, **_small_space())
    for candidate in result.candidates:
        if candidate.achieved_fraction >= 0.95:
            assert result.best.capex <= candidate.capex


def test_gen4_chosen_only_when_it_pays():
    """RNN-S is egress-limited on Gen3; with Gen4 in the space the tuner
    should pick it to reach target."""
    rnn_s = get_workload("RNN-S")
    result = autotune(
        [rnn_s],
        256,
        **_small_space(gen_options=(PcieGen.GEN3, PcieGen.GEN4)),
    )
    assert result.best.achieved_fraction >= 0.95
    assert result.best.pcie_gen is PcieGen.GEN4


def test_multi_workload_takes_the_worst_case():
    mixed = autotune([INCEPTION, TF_SR], 128, **_small_space())
    solo = autotune([INCEPTION], 128, **_small_space())
    # Adding the audio workload can only raise the required provisioning.
    assert mixed.best.capex >= solo.best.capex


def test_infeasible_space_returns_best_effort():
    result = autotune(
        [TF_SR],
        256,
        **_small_space(fpga_options=(1,), pool_options=(0,)),
    )
    assert result.best.achieved_fraction < 0.95
    assert result.feasible() == []
    assert result.best.bottleneck == "prep_compute"


def test_candidate_describe():
    result = autotune([INCEPTION], 32, **_small_space())
    text = result.best.describe()
    assert "FPGA/box" in text and "SSD/box" in text


def test_validation():
    with pytest.raises(ConfigError):
        autotune([], 64)
    with pytest.raises(ConfigError):
        autotune([RESNET], 0)
    with pytest.raises(ConfigError):
        autotune([RESNET], 64, target_fraction=0.0)
