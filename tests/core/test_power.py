"""Tests for the power / energy-efficiency model."""

import pytest

from repro.analysis.power import (
    PowerBudget,
    PowerRatings,
    prep_power_comparison,
    provisioned_cpu_power,
    server_power,
)
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import build_demand
from repro.core.resources import host_requirements
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")


def test_server_power_itemization():
    server = build_server(ArchitectureConfig.trainbox(), 64)
    budget = server_power(server)
    assert budget.total == pytest.approx(sum(budget.items.values()))
    assert budget.items["nn_accelerators"] == 64 * 350.0
    # 8 boxes × 2 FPGAs + 32 pool FPGAs.
    assert budget.items["prep_fpgas"] == (16 + 32) * 75.0


def test_accelerators_dominate_trainbox_power():
    server = build_server(ArchitectureConfig.trainbox(), 256)
    budget = server_power(server)
    assert budget.items["nn_accelerators"] / budget.total > 0.75


def test_efficiency_and_energy_cost():
    budget = PowerBudget("x", {"a": 1000.0})
    assert budget.efficiency(50_000) == pytest.approx(50.0)
    yearly = budget.annual_energy_cost(dollars_per_kwh=0.10, pue=1.0)
    assert yearly == pytest.approx(1.0 * 8766 * 0.10)
    with pytest.raises(ConfigError):
        budget.efficiency(0)
    with pytest.raises(ConfigError):
        budget.annual_energy_cost(pue=0.9)


def test_provisioned_cpu_power_rounds_to_sockets():
    ratings = PowerRatings()
    assert provisioned_cpu_power(24, ratings) == pytest.approx(205.0)
    assert provisioned_cpu_power(25, ratings) == pytest.approx(2 * 205.0)
    with pytest.raises(ConfigError):
        provisioned_cpu_power(-1)


def test_fpga_prep_is_an_order_of_magnitude_more_efficient():
    """The Figure 10a cores (≈4 833 for RNN-S at 256 accelerators) as
    sockets burn far more than the 64+pool FPGAs doing the same work."""
    rnn_s = get_workload("RNN-S")
    server = build_server(ArchitectureConfig.baseline(), 256)
    demand = build_demand(server, rnn_s)
    req = host_requirements(demand, 256 * rnn_s.sample_rate)
    ratio = prep_power_comparison(req.required_cores, n_fpgas=64)
    assert ratio > 5.0


def test_prep_subsystem_power_gap_dominates_system_wash():
    """Accelerators dominate total power, so *system* perf/W between a
    TrainBox and a hypothetically-unbottlenecked baseline is close — the
    real gap is in the preparation subsystem, where the CPU fleet the
    baseline would need burns several times the FPGA array's power."""
    workload = get_workload("Inception-v4")
    n = 256
    tb_server = build_server(
        ArchitectureConfig.trainbox(prep_pool=False), n
    )  # image fleets need no pool installed
    tb = simulate(
        TrainingScenario(workload, ArchitectureConfig.trainbox(prep_pool=False), n),
        server=tb_server,
    )
    tb_budget = server_power(tb_server)
    tb_eff = tb_budget.efficiency(tb.throughput)

    base_server = build_server(ArchitectureConfig.baseline(), n)
    demand = build_demand(base_server, workload)
    target = n * workload.sample_rate
    req = host_requirements(demand, target)
    base_budget = server_power(base_server)
    scaled_cpu = provisioned_cpu_power(req.required_cores)
    base_watts = base_budget.total - base_budget.items["host_cpu"] + scaled_cpu
    base_eff = target / base_watts

    # Prep subsystem: CPU fleet vs FPGA array, several-fold gap.
    assert scaled_cpu / tb_budget.items["prep_fpgas"] > 1.1
    # System level: within a small band (both dominated by accelerators),
    # with TrainBox on the right side of it.
    assert tb_eff > base_eff * 0.95


def test_ratings_validation():
    with pytest.raises(ConfigError):
        PowerRatings(prep_fpga=-5)
    with pytest.raises(ConfigError):
        prep_power_comparison(100, n_fpgas=0)
