"""The caching layers: fingerprints, the memo, the persistent cache."""

import dataclasses
import json

import pytest

from repro.cache import (
    CACHE_VERSION,
    CacheStats,
    ResultCache,
    canonicalize,
    clear_memo,
    fingerprint,
    memo_size,
    memoized,
)
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.errors import ConfigError


# -- fingerprinting ----------------------------------------------------------


def test_fingerprint_is_deterministic():
    hw = HardwareConfig()
    assert fingerprint(hw) == fingerprint(HardwareConfig())


def _bumped_values(value):
    """Candidate replacements for a field; the first one the config's
    validation accepts is used."""
    if isinstance(value, bool):
        return [not value]
    if isinstance(value, int):
        return [value + 1, max(1, value - 1)]
    if isinstance(value, float):
        return [value * 1.5 + 1.0, value * 0.5]
    if isinstance(value, str):
        return [value + "-x"]
    if isinstance(value, dataclasses.Field):
        return []
    # Enums: any other member of the same class.
    return [m for m in type(value) if m is not value]


def _assert_every_field_changes_fingerprint(base):
    reference = fingerprint(base)
    for f in dataclasses.fields(base):
        value = getattr(base, f.name)
        for bumped in _bumped_values(value):
            try:
                variant = dataclasses.replace(base, **{f.name: bumped})
            except ConfigError:
                continue
            assert fingerprint(variant) != reference, f.name
            break
        else:
            # Validation rejects every candidate from this base (e.g.
            # trainbox requires an FPGA prep device); the field still
            # participates structurally: it is a key in the canonical
            # encoding.
            blob = json.dumps(canonicalize(base))
            assert f'"{f.name}"' in blob


def test_fingerprint_sensitive_to_every_hardware_field():
    """No HardwareConfig field may be invisible to the cache key."""
    _assert_every_field_changes_fingerprint(HardwareConfig())


def test_fingerprint_sensitive_to_every_architecture_field():
    _assert_every_field_changes_fingerprint(ArchitectureConfig.trainbox())


def test_fingerprint_distinguishes_float_and_int():
    assert fingerprint(1) != fingerprint(1.0)


def test_fingerprint_distinguishes_container_shapes():
    assert fingerprint([1, 2]) != fingerprint([2, 1])
    assert fingerprint({"a": 1}) != fingerprint({"a": 2})


def test_canonicalize_rejects_opaque_objects():
    with pytest.raises(ConfigError):
        canonicalize(object())


# -- in-process memo ---------------------------------------------------------


def test_memoized_builds_once_and_shares():
    clear_memo()
    calls = []

    def factory():
        calls.append(1)
        return {"built": True}

    a = memoized(("test-memo", 1), factory)
    b = memoized(("test-memo", 1), factory)
    assert a is b
    assert len(calls) == 1
    assert memo_size() >= 1
    clear_memo()
    assert memo_size() == 0


# -- persistent cache --------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    key = fingerprint("point", 1)
    assert cache.get(key) is None
    cache.put(key, {"throughput": 42.5})
    assert cache.get(key) == {"throughput": 42.5}
    assert cache.stats == CacheStats(hits=1, misses=1, stores=1, discards=0)
    assert len(cache) == 1


def test_cache_roundtrips_floats_exactly(tmp_path):
    cache = ResultCache(tmp_path)
    value = 0.1 + 0.2  # not representable; repr round-trips exactly
    cache.put("k" * 64, {"v": value, "inf": float("inf")})
    got = cache.get("k" * 64)
    assert got["v"] == value
    assert got["inf"] == float("inf")


def test_corrupted_entry_is_quarantined_not_fatal(tmp_path):
    cache = ResultCache(tmp_path)
    key = fingerprint("corrupt-me")
    cache.put(key, {"v": 1})
    path = cache._path(key)
    path.write_text("{ not json")
    assert cache.get(key) is None
    assert cache.stats.discards == 1
    assert cache.stats.quarantined == 1
    assert not path.exists()  # the bad file no longer shadows the key
    # ...but it is preserved next door for post-mortem, not destroyed.
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.exists()
    assert quarantined.read_text() == "{ not json"
    assert len(cache) == 0  # quarantined files are not live entries
    assert cache.get(key) is None  # and the key stays a plain miss
    cache.clear()
    assert not quarantined.exists()  # clear() sweeps quarantine too


def test_stale_version_is_quarantined(tmp_path):
    old = ResultCache(tmp_path, version=CACHE_VERSION)
    key = fingerprint("stale")
    old.put(key, {"v": 1})
    new = ResultCache(tmp_path, version=CACHE_VERSION + 1)
    assert new.get(key) is None
    assert new.stats.discards == 1
    assert new.stats.quarantined == 1
    assert len(new) == 0


def test_entry_must_echo_its_key(tmp_path):
    cache = ResultCache(tmp_path)
    key = fingerprint("echo")
    cache.put(key, {"v": 1})
    path = cache._path(key)
    entry = json.loads(path.read_text())
    entry["key"] = "somebody-else"
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(fingerprint("clear", i), {"i": i})
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
