"""Tests for the §III-D static-preparation storage argument."""

import pytest

from repro.analysis.static_prep import (
    AugmentationSpace,
    crop_variants,
    paper_imagenet_example,
    static_prep_storage,
)
from repro.errors import ConfigError
from repro import units


def test_paper_example_is_2_2_petabytes():
    """§III-D: 32×32 crops × 0.15 MB × 14 M images ≈ 2.2 PB."""
    estimate = paper_imagenet_example()
    assert estimate.total_petabytes == pytest.approx(2.15, abs=0.1)


def test_crop_variants_formula():
    assert crop_variants(256, 256, 224, 224) == 33 * 33
    assert crop_variants(224, 224, 224, 224) == 1
    with pytest.raises(ConfigError):
        crop_variants(100, 100, 224, 224)


def test_multiplicity_composes():
    space = AugmentationSpace(
        variants=[("crop", 1024), ("mirror", 2), ("noise_draws", 10)]
    )
    assert space.multiplicity() == 1024 * 2 * 10


def test_empty_space_is_identity():
    assert AugmentationSpace().multiplicity() == 1.0


def test_drives_required():
    estimate = static_prep_storage(
        num_items=1000,
        bytes_per_variant=1 * units.MB,
        space=AugmentationSpace(variants=[("crop", 4)]),
    )
    assert estimate.total_bytes == pytest.approx(4e9)
    assert estimate.drives_required(drive_capacity=1e9) == 4
    with pytest.raises(ConfigError):
        estimate.drives_required(drive_capacity=0)


def test_validation():
    with pytest.raises(ConfigError):
        static_prep_storage(0, 1.0, AugmentationSpace())
    with pytest.raises(ConfigError):
        static_prep_storage(1, 0.0, AugmentationSpace())
    with pytest.raises(ConfigError):
        AugmentationSpace(variants=[("bad", 0)]).multiplicity()


def test_online_prep_vs_static_storage():
    """The argument's punchline: the same dataset stored un-augmented is
    three orders of magnitude smaller than the materialized space."""
    estimate = paper_imagenet_example()
    raw_dataset = 14_000_000 * 45_000  # compressed JPEG
    assert estimate.total_bytes > 1000 * raw_dataset
