"""Tests for the per-architecture datapath demands."""

import math

import pytest

from repro.core.config import ArchitectureConfig, PrepDevice
from repro.core.dataflow import CATEGORIES, build_demand
from repro.core.server import build_server
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


def _demand(arch, workload=RESNET, n=32):
    server = build_server(arch, n)
    return server, build_demand(server, workload)


def test_baseline_cpu_dominated_by_prep_compute():
    _, demand = _demand(ArchitectureConfig.baseline())
    fmt_aug = demand.cpu_cycles["formatting"] + demand.cpu_cycles["augmentation"]
    assert fmt_aug / demand.total_cpu_cycles > 0.95


def test_baseline_memory_shares_match_figure11a():
    """Figure 11a: formatting+augmentation ≈59%, data load ≈37%."""
    _, demand = _demand(ArchitectureConfig.baseline())
    total = demand.total_mem_bytes
    fmt_aug = demand.mem_bytes["formatting"] + demand.mem_bytes["augmentation"]
    assert fmt_aug / total == pytest.approx(0.59, abs=0.06)
    assert demand.mem_bytes["data_load"] / total == pytest.approx(0.37, abs=0.06)


def test_acc_offload_clears_cpu_compute():
    _, demand = _demand(ArchitectureConfig.baseline_acc())
    assert demand.cpu_cycles["formatting"] == 0
    assert demand.cpu_cycles["augmentation"] == 0
    assert demand.total_cpu_cycles > 0  # driver + copies remain


def test_acc_doubles_memory_traffic():
    """§IV-C: offload adds buffering for the prep accelerators."""
    _, base = _demand(ArchitectureConfig.baseline())
    _, acc = _demand(ArchitectureConfig.baseline_acc())
    # Baseline stages c + p plus CPU passes; Acc stages 2(c+p).
    compressed = RESNET.dataset_sample_spec().nbytes
    prepared = base.bytes_to_accelerator
    assert acc.total_mem_bytes == pytest.approx(2 * (compressed + prepared))


def test_p2p_frees_host_memory():
    _, demand = _demand(ArchitectureConfig.baseline_acc_p2p())
    assert demand.total_mem_bytes == 0


def test_p2p_rc_traffic_unchanged_vs_acc():
    """§VI-C: P2P alone does not relieve the RC."""
    _, acc = _demand(ArchitectureConfig.baseline_acc())
    _, p2p = _demand(ArchitectureConfig.baseline_acc_p2p())
    assert p2p.rc_bytes_per_sample() == pytest.approx(
        acc.rc_bytes_per_sample(), rel=1e-6
    )


def test_acc_rc_traffic_doubles_baseline():
    """§IV-D: the datapath SSD→RC→prep→RC→acc doubles RC pressure."""
    _, base = _demand(ArchitectureConfig.baseline())
    _, acc = _demand(ArchitectureConfig.baseline_acc())
    assert acc.rc_bytes_per_sample() == pytest.approx(
        2 * base.rc_bytes_per_sample(), rel=1e-6
    )


def test_clustering_empties_the_rc():
    _, tb = _demand(ArchitectureConfig.trainbox())
    assert tb.rc_bytes_per_sample() == 0.0


def test_trainbox_cpu_nearly_free():
    _, base = _demand(ArchitectureConfig.baseline())
    _, tb = _demand(ArchitectureConfig.trainbox())
    assert tb.total_cpu_cycles < base.total_cpu_cycles / 50


def test_pool_sizing_for_audio():
    server = build_server(ArchitectureConfig.trainbox(), 256)
    demand = build_demand(server, TF_SR)
    assert demand.n_pool_devices > 0
    assert demand.ethernet_flows
    # Pool grant ≈ 54% of the 64 in-box FPGAs (§VI-D).
    assert demand.n_pool_devices / demand.n_prep_devices == pytest.approx(
        0.54, abs=0.05
    )


def test_no_pool_for_image_models():
    server = build_server(ArchitectureConfig.trainbox(), 256)
    demand = build_demand(server, get_workload("Inception-v4"))
    assert demand.n_pool_devices == 0
    assert demand.ethernet_flows == []


def test_categories_complete():
    for arch in ArchitectureConfig.figure19_ladder():
        _, demand = _demand(arch)
        assert set(demand.cpu_cycles) == set(CATEGORIES)
        assert set(demand.mem_bytes) == set(CATEGORIES)


def test_flow_volumes_conserve_payloads():
    """Per-sample flow volumes into the accelerators must sum to the
    prepared batch bytes, and out of SSDs to the compressed bytes."""
    for arch in ArchitectureConfig.figure19_ladder():
        server, demand = _demand(arch)
        acc_set = set(server.acc_ids)
        ssd_set = set(server.ssd_ids)
        to_acc = sum(f.volume for f in demand.pcie_flows if f.dst in acc_set)
        from_ssd = sum(f.volume for f in demand.pcie_flows if f.src in ssd_set)
        assert to_acc == pytest.approx(demand.bytes_to_accelerator, rel=1e-9)
        assert from_ssd == pytest.approx(demand.ssd_read_bytes, rel=1e-9)


def test_prep_rate_cpu_arch_is_infinite():
    """CPU-prep compute is priced through cpu_cycles, not prep devices."""
    _, demand = _demand(ArchitectureConfig.baseline())
    assert math.isinf(demand.prep_device_rate)


def test_gpu_arch_prep_rate_lower_than_fpga():
    _, gpu = _demand(ArchitectureConfig.baseline_acc(PrepDevice.GPU))
    _, fpga = _demand(ArchitectureConfig.baseline_acc())
    assert gpu.prep_device_rate < fpga.prep_device_rate
