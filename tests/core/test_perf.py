"""The repro.perf timing utility and baseline comparison logic."""

import json

import pytest

from repro.errors import ConfigError
from repro import perf


def test_measure_counts_samples():
    m = perf.measure("noop", lambda: None, samples=4, repeats=3)
    assert m.samples == 4
    assert m.best_seconds >= 0
    assert m.samples_per_s > 0


def test_measure_rejects_bad_args():
    with pytest.raises(ConfigError):
        perf.measure("x", lambda: None, samples=0)
    with pytest.raises(ConfigError):
        perf.best_of(lambda: None, repeats=0)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "base.json"
    ms = [perf.Measurement("a", 10, 0.5), perf.Measurement("b", 1, 0.001)]
    perf.save_baseline(path, ms)
    loaded = perf.load_baseline(path)
    assert loaded == {"a": 20.0, "b": 1000.0}
    assert json.loads(path.read_text())["unit"] == "samples_per_s"


def test_load_missing_baseline_is_empty(tmp_path):
    assert perf.load_baseline(tmp_path / "nope.json") == {}


def test_regressions_flag_only_big_drops():
    baseline = {"a": 100.0, "b": 100.0, "c": 100.0}
    ms = [
        perf.Measurement("a", 80, 1.0),   # 20% below: within tolerance
        perf.Measurement("b", 50, 1.0),   # 50% below: regression
        perf.Measurement("d", 1, 1.0),    # not in baseline: ignored
    ]
    failures = perf.regressions(ms, baseline, tol=0.30)
    assert len(failures) == 1
    assert failures[0].startswith("b:")


def test_tolerance_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "0.5")
    assert perf.tolerance() == 0.5
    monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "junk")
    with pytest.raises(ConfigError):
        perf.tolerance()
    monkeypatch.setenv("REPRO_BENCH_TOLERANCE", "1.5")
    with pytest.raises(ConfigError):
        perf.tolerance()


def test_codec_suite_smoke():
    ms = perf.codec_suite(size=32, repeats=1, batch=2)
    names = {m.name for m in ms}
    assert names == {
        "jpeg_encode_32",
        "jpeg_decode_32",
        "jpeg_encode_batch2_32",
        "png_encode_32",
        "png_decode_32",
    }
    assert all(m.samples_per_s > 0 for m in ms)


def test_reference_decode_speedup_positive():
    assert perf.reference_decode_speedup(size=32, repeats=1) > 0
