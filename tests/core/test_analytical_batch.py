"""The vectorized sweep kernel: bit-identity, fallbacks, dispatch.

The golden grid spans every Table I workload × every architecture
family × every sync strategy × scales from 1 to 256 — the batch kernel
must reproduce the scalar engine bit for bit over all of it, and every
inapplicable point must demote to the scalar engine rather than price
wrong.
"""

import dataclasses

import pytest

from repro import obs
from repro.cache import ResultCache, fingerprint
from repro.core import analytical_batch as ab
from repro.core import sweeps as sweeps_mod
from repro.core.config import ArchitectureConfig, SyncStrategy
from repro.core.sweeps import SweepPoint, SweepSpec, evaluate_point, run_sweep
from repro.workloads.registry import TABLE_I, get_workload

RESNET = get_workload("Resnet-50")
TF_AA = get_workload("Transformer-AA")


def _golden_points():
    """Every workload × arch family × sync strategy × 1–256 accels."""
    families = (
        ArchitectureConfig.baseline(),
        ArchitectureConfig.baseline_acc(),
        ArchitectureConfig.baseline_acc_p2p(),
        ArchitectureConfig.baseline_acc_p2p_gen4(),
        ArchitectureConfig.trainbox(),
    )
    archs = tuple(
        dataclasses.replace(arch, name=f"{arch.name}+{sync.value}", sync=sync)
        for arch in families
        for sync in SyncStrategy
    )
    return SweepSpec(
        workloads=tuple(TABLE_I.values()), archs=archs, scales=(1, 2, 16, 256)
    ).points()


def test_golden_grid_is_bit_identical_to_the_scalar_engine():
    points = _golden_points()
    results, reasons = ab.evaluate_grid(points)
    assert reasons == ["batch"] * len(points)
    for point, batched in zip(points, results):
        scalar = evaluate_point(point)
        where = (point.workload.name, point.arch.name, point.scale)
        assert batched == scalar, where
        assert fingerprint(batched.to_dict()) == fingerprint(
            scalar.to_dict()
        ), where


def test_run_sweep_batch_matches_scalar_and_labels_dispatch():
    spec = SweepSpec(
        workloads=(RESNET, TF_AA),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 4, 64),
    )
    batched = run_sweep(spec, batch=True)
    scalar = run_sweep(spec, batch=False)
    assert batched.results == scalar.results
    assert batched.batch_points == len(spec.points())
    assert batched.batch_fallbacks == 0
    assert batched.dispatch == ("batch",) * len(spec.points())
    assert scalar.batch_points == 0
    assert scalar.dispatch == ("scalar (batch disabled)",) * len(spec.points())


def test_mixed_engines_demote_per_point():
    points = [
        SweepPoint(RESNET, ArchitectureConfig.trainbox(), 4),
        SweepPoint(
            RESNET, ArchitectureConfig.trainbox(), 4,
            engine="des", des_iterations=10,
        ),
    ]
    outcome = run_sweep(points)
    assert outcome.dispatch[0] == "batch"
    assert outcome.dispatch[1].startswith("scalar (engine 'des'")
    assert outcome.batch_points == 1
    assert outcome.batch_fallbacks == 1
    assert outcome.results == run_sweep(points, batch=False).results


def test_missing_sync_form_demotes_to_scalar(monkeypatch):
    monkeypatch.delitem(ab._SYNC_FORMS, SyncStrategy.RING)
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(ArchitectureConfig.trainbox(),),  # sync defaults to RING
        scales=(1, 4),
    )
    outcome = run_sweep(spec, batch=True)
    assert outcome.batch_points == 0
    assert outcome.batch_fallbacks == len(spec.points())
    assert all(d.startswith("scalar (no closed form") for d in outcome.dispatch)
    assert outcome.results == run_sweep(spec, batch=False).results


def test_prep_pricing_demotion_falls_back_not_wrong(monkeypatch):
    def refuse(server, workload):
        raise ab.BatchInapplicable("forced demotion")

    monkeypatch.setattr(ab, "prep_rates_batch", refuse)
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(ArchitectureConfig.trainbox(),),
        scales=(1, 4),
    )
    results, reasons = ab.evaluate_grid(spec.points())
    assert results == [None, None]
    assert reasons == ["forced demotion"] * 2
    outcome = run_sweep(spec, batch=True)
    assert outcome.batch_fallbacks == 2
    assert outcome.results == run_sweep(spec, batch=False).results


def test_endpoint_invariant_violation_raises_batch_inapplicable(monkeypatch):
    """A workload whose flow endpoints differ from the server's shared
    sequence must demote, not price against the wrong incidence."""
    from repro.core.server import build_server

    server = build_server(ArchitectureConfig.trainbox(), 8)
    ab.flow_incidence(server, RESNET)  # prime the shared endpoint arrays

    demand, specs = ab.build_demand_lite(server, TF_AA)
    tampered = [(dst, src, vol, label) for src, dst, vol, label in specs]
    monkeypatch.setattr(
        ab, "_lite_demand", lambda srv, wl: (demand, tampered)
    )
    server.derived.pop(("flow_incidence", TF_AA.name), None)
    with pytest.raises(ab.BatchInapplicable):
        ab.flow_incidence(server, TF_AA)


def test_tracing_forces_full_scalar_fallback():
    points = [SweepPoint(RESNET, ArchitectureConfig.trainbox(), 4)]
    with obs.session(tracer=obs.Tracer()):
        results, reasons = ab.evaluate_grid(points)
    assert results == [None]
    assert reasons[0].startswith("tracing active")


def test_batch_results_land_in_the_persistent_cache(tmp_path):
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(ArchitectureConfig.trainbox(),),
        scales=(1, 4),
    )
    first = run_sweep(spec, cache=ResultCache(tmp_path))
    assert first.batch_points == 2
    second = run_sweep(spec, cache=ResultCache(tmp_path))
    assert second.cache_hits == 2
    assert second.batch_points == 0
    assert second.dispatch == ("cache", "cache")
    assert second.results == first.results


def test_batch_metrics_counters():
    spec = SweepSpec(
        workloads=(RESNET, TF_AA),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 4),
    )
    outcome = run_sweep(spec, metrics=True)
    counters = outcome.manifest["counters"]
    assert counters["sweep.points"] == 8
    assert counters["sweep.batch_points"] == 8
    assert counters["sweep.batch_fallbacks"] == 0
    # 2 workloads × 2 distinct (arch, scale) servers... each priced once.
    assert counters["sweep.batch_compile"] == 8


class _ForbiddenPool:
    def __init__(self, *args, **kwargs):
        raise AssertionError("an all-hits sweep must not construct a pool")


def test_all_cache_hit_grid_never_spawns_the_pool(monkeypatch, tmp_path):
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(ArchitectureConfig.baseline(),),
        scales=(1, 2, 4),
    )
    run_sweep(spec, cache=ResultCache(tmp_path))  # populate
    monkeypatch.setattr(sweeps_mod, "ProcessPoolExecutor", _ForbiddenPool)
    outcome = run_sweep(
        spec, n_jobs=4, cache=ResultCache(tmp_path), batch=False
    )
    assert outcome.cache_hits == len(spec.points())
    assert outcome.dispatch == ("cache",) * len(spec.points())


class _RecordingPool:
    """Stands in for ProcessPoolExecutor; runs the map serially and
    records the worker count it was offered."""

    calls = []

    def __init__(self, max_workers=None):
        _RecordingPool.calls.append(max_workers)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, items, chunksize=1):
        return [fn(item) for item in items]


def test_workers_capped_by_chunk_count(monkeypatch):
    monkeypatch.setattr(sweeps_mod, "ProcessPoolExecutor", _RecordingPool)
    monkeypatch.setattr(_RecordingPool, "calls", [])
    spec = SweepSpec(
        workloads=(RESNET,),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 2, 4),
    )
    # 6 points in chunks of 3 → only 2 workers are worth spawning.
    run_sweep(spec, n_jobs=8, chunksize=3, batch=False)
    assert _RecordingPool.calls == [2]


# -- evaluate_points: the ragged, deduplicating, error-isolating entry --------


def test_evaluate_points_dedups_on_cache_key():
    point = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 64)
    other = SweepPoint(RESNET, ArchitectureConfig.baseline(), 4)
    # The same scenario spelled twice via distinct point objects.
    twin = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 64)
    results, reasons, errors = ab.evaluate_points([point, other, twin])
    assert errors == [None, None, None]
    assert reasons == ["batch"] * 3
    assert results[0] is results[2]  # duplicates share the result object
    for p, r in zip((point, other), results):
        scalar = evaluate_point(p)
        assert r == scalar
        assert fingerprint(r.to_dict()) == fingerprint(scalar.to_dict())


def test_evaluate_points_isolates_invalid_scenarios():
    good = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 64)
    bad = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 4, batch_size=-1)
    results, reasons, errors = ab.evaluate_points([good, bad])
    assert errors[0] is None
    assert results[0] == evaluate_point(good)
    assert results[1] is None
    assert isinstance(errors[1], ab.ConfigError)
    # The captured exception is the one the scalar engine raises.
    with pytest.raises(ab.ConfigError) as scalar_exc:
        evaluate_point(bad)
    assert str(errors[1]) == str(scalar_exc.value)
    assert reasons[1].startswith("error:")


def test_evaluate_points_isolates_degenerate_rates(monkeypatch):
    real = ab.prep_rates_batch

    def zeroed(server, workload):
        rates, link = real(server, workload)
        if workload is TF_AA:
            rates = {name: 0.0 for name in rates}
        return rates, link

    monkeypatch.setattr(ab, "prep_rates_batch", zeroed)
    good = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 64)
    bad = SweepPoint(TF_AA, ArchitectureConfig.trainbox(), 64)
    results, reasons, errors = ab.evaluate_points([bad, good])
    assert isinstance(errors[0], ab.SimulationError)
    assert "non-positive prep rate" in str(errors[0])
    assert results[0] is None
    # The batch-mate still priced, bit-identical to the scalar engine.
    assert errors[1] is None
    assert results[1] == evaluate_point(good)

    # The grid entry keeps its raising contract for the same input.
    with pytest.raises(ab.SimulationError):
        ab.evaluate_grid([bad, good])


def test_evaluate_points_reports_fallback_reasons_without_errors():
    des = SweepPoint(
        RESNET, ArchitectureConfig.trainbox(), 4,
        engine="des", des_iterations=10,
    )
    good = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 4)
    results, reasons, errors = ab.evaluate_points([des, good])
    assert results[0] is None and errors[0] is None
    assert reasons[0].startswith("engine 'des'")
    assert results[1] == evaluate_point(good)


def test_evaluate_grid_raises_on_invalid_scenarios():
    bad = SweepPoint(RESNET, ArchitectureConfig.trainbox(), 4, batch_size=-1)
    with pytest.raises(ab.ConfigError):
        ab.evaluate_grid([bad])
