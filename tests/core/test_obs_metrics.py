"""Metrics registry, manifest validation, and worker-merge determinism."""

import json

import pytest

from repro import obs
from repro.core.config import ArchitectureConfig
from repro.core.sweeps import SweepSpec, run_sweep
from repro.errors import ConfigError
from repro.obs.metrics import MANIFEST_SCHEMA, Histogram
from repro.workloads.registry import get_workload


# -- histograms --------------------------------------------------------------


def test_histogram_streaming_stats():
    h = Histogram()
    for v in (3.0, 1.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == pytest.approx(6.0)
    assert h.mean == pytest.approx(2.0)
    assert h.to_dict() == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}


def test_empty_histogram_serializes_null_bounds():
    assert Histogram().to_dict() == {
        "count": 0, "total": 0.0, "min": None, "max": None,
    }


def test_histogram_merge_ignores_empty():
    h = Histogram()
    h.observe(5.0)
    h.merge_dict({"count": 0, "total": 0.0, "min": None, "max": None})
    h.merge_dict({"count": 2, "total": 3.0, "min": 1.0, "max": 2.0})
    assert h.to_dict() == {"count": 3, "total": 8.0, "min": 1.0, "max": 5.0}


# -- registry and manifests --------------------------------------------------


def test_registry_counts_and_bool():
    reg = obs.MetricsRegistry()
    assert not reg
    reg.inc("points")
    reg.inc("points", 4)
    reg.observe("throughput", 10.0)
    assert reg
    assert reg.counters == {"points": 5}
    manifest = reg.to_manifest()
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["counters"] == {"points": 5}
    assert manifest["histograms"]["throughput"]["count"] == 1


def test_manifest_key_order_is_sorted():
    reg = obs.MetricsRegistry()
    reg.inc("zz")
    reg.inc("aa")
    reg.observe("z.h", 1.0)
    reg.observe("a.h", 1.0)
    manifest = reg.to_manifest()
    assert list(manifest["counters"]) == ["aa", "zz"]
    assert list(manifest["histograms"]) == ["a.h", "z.h"]


def test_merged_equals_single_registry():
    parts = []
    for chunk in ((1.0, 2.0), (3.0,)):
        reg = obs.MetricsRegistry()
        for v in chunk:
            reg.inc("n")
            reg.observe("v", v)
        parts.append(reg.to_manifest())
    combined = obs.MetricsRegistry.merged(parts)

    serial = obs.MetricsRegistry()
    for v in (1.0, 2.0, 3.0):
        serial.inc("n")
        serial.observe("v", v)
    assert combined.to_manifest() == serial.to_manifest()


def test_write_and_load_manifest_roundtrip(tmp_path):
    reg = obs.MetricsRegistry()
    reg.inc("points", 3)
    path = reg.write_manifest(tmp_path / "m" / "manifest.json")
    assert obs.load_manifest(path) == reg.to_manifest()
    # File is plain JSON for external tooling.
    assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA


@pytest.mark.parametrize(
    "bad",
    [
        "not a dict",
        {"schema": "wrong/9", "counters": {}, "histograms": {}},
        {"schema": MANIFEST_SCHEMA, "counters": []},
        {"schema": MANIFEST_SCHEMA, "counters": {"x": 1.5}, "histograms": {}},
        {"schema": MANIFEST_SCHEMA, "counters": {}, "histograms": {"h": {"count": -1}}},
        {
            "schema": MANIFEST_SCHEMA,
            "counters": {},
            "histograms": {"h": {"count": 1, "total": 1.0, "min": 2.0, "max": 1.0}},
        },
    ],
)
def test_validate_manifest_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        obs.validate_manifest(bad)


def test_merge_validates_first():
    reg = obs.MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.merge_manifest({"schema": "nope"})
    assert not reg


# -- sweep-worker merge determinism ------------------------------------------


def _spec():
    return SweepSpec(
        workloads=(get_workload("Resnet-50"), get_workload("tf-aa")),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 4, 16),
    )


def test_parallel_and_serial_sweeps_produce_identical_manifests():
    serial = run_sweep(_spec(), n_jobs=1, metrics=True)
    parallel = run_sweep(_spec(), n_jobs=2, metrics=True)
    assert serial.manifest is not None
    assert serial.manifest["counters"]["sweep.points"] == 12
    assert parallel.manifest == serial.manifest


def test_sweep_without_metrics_has_no_manifest():
    outcome = run_sweep(_spec(), n_jobs=1)
    assert outcome.manifest is None


def test_sweep_merges_into_caller_registry():
    reg = obs.MetricsRegistry()
    reg.inc("preexisting")
    outcome = run_sweep(_spec(), n_jobs=1, metrics=reg)
    assert reg.counters["preexisting"] == 1
    assert reg.counters["sweep.points"] == 12
    assert outcome.manifest == reg.to_manifest()
