"""Tests for the analytical throughput solver."""

import pytest

from repro.core.analytical import TrainingScenario, prep_capacity, simulate
from repro.core.config import ArchitectureConfig, SyncStrategy
from repro.core.dataflow import build_demand
from repro.core.server import build_server
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
INCEPTION = get_workload("Inception-v4")


def test_scenario_validation():
    with pytest.raises(ConfigError):
        TrainingScenario(RESNET, ArchitectureConfig.baseline(), 0)
    with pytest.raises(ConfigError):
        TrainingScenario(RESNET, ArchitectureConfig.baseline(), 4, batch_size=0)
    with pytest.raises(ConfigError):
        TrainingScenario(
            RESNET, ArchitectureConfig.baseline(), 4, accelerator="npu"
        )


def test_small_scale_accelerator_bound():
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 1))
    assert result.bottleneck == "accelerator"
    assert result.throughput == pytest.approx(RESNET.sample_rate, rel=0.01)
    assert not result.prep_bound


def test_large_scale_prep_bound():
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 256))
    assert result.prep_bound
    assert result.bottleneck == "host_cpu"


def test_throughput_is_min_law():
    result = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 64))
    assert result.throughput == pytest.approx(
        min(result.prep_rate, result.consume_rate)
    )
    assert result.prep_rate == pytest.approx(min(result.resource_rates.values()))


def test_throughput_monotone_in_scale():
    prev = 0.0
    for n in (1, 2, 4, 8, 16, 32, 64):
        r = simulate(TrainingScenario(INCEPTION, ArchitectureConfig.trainbox(), n))
        assert r.throughput >= prev - 1e-6
        prev = r.throughput


def test_prebuilt_server_reuse():
    server = build_server(ArchitectureConfig.baseline(), 8)
    scenario = TrainingScenario(RESNET, ArchitectureConfig.baseline(), 8)
    a = simulate(scenario)
    b = simulate(scenario, server=server)
    assert a.throughput == pytest.approx(b.throughput)
    with pytest.raises(ConfigError):
        simulate(
            TrainingScenario(RESNET, ArchitectureConfig.baseline(), 16),
            server=server,
        )


def test_batch_size_override_changes_consume_side():
    small = simulate(
        TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 8, batch_size=64)
    )
    big = simulate(
        TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 8, batch_size=8192)
    )
    assert big.consume_rate > small.consume_rate


def test_legacy_gpu_slower():
    tpu = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 8))
    gpu = simulate(
        TrainingScenario(
            RESNET, ArchitectureConfig.baseline(), 8, accelerator="legacy-gpu"
        )
    )
    assert gpu.throughput < tpu.throughput / 10


def test_fabric_bandwidth_override_slows_sync():
    fast = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 64))
    slow = simulate(
        TrainingScenario(
            RESNET,
            ArchitectureConfig.baseline(),
            64,
            fabric_bandwidth=16e9,
        )
    )
    assert slow.sync_time > fast.sync_time


def test_sync_strategy_from_arch():
    import dataclasses

    central = dataclasses.replace(
        ArchitectureConfig.baseline(), sync=SyncStrategy.CENTRAL
    )
    ring = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 64))
    cent = simulate(TrainingScenario(RESNET, central, 64))
    assert cent.sync_time > ring.sync_time


def test_prep_capacity_reports_all_resources():
    server = build_server(ArchitectureConfig.trainbox(), 16)
    demand = build_demand(server, RESNET)
    rate, rates = prep_capacity(server, demand)
    expected_keys = {
        "host_cpu",
        "host_memory",
        "pcie",
        "ssd",
        "prep_compute",
        "prep_network",
        "accelerator_ingest",
    }
    assert set(rates) == expected_keys
    assert rate == min(rates.values())


def test_iteration_time_consistency():
    r = simulate(TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 8))
    assert r.iteration_time == pytest.approx(
        8 * r.batch_size / r.throughput
    )


def test_speedup_over():
    base = simulate(TrainingScenario(RESNET, ArchitectureConfig.baseline(), 256))
    tb = simulate(TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 256))
    assert tb.speedup_over(base) > 10
