"""Tests for the server topology builders."""

import pytest

from repro.core.config import ArchitectureConfig, HardwareConfig, PrepDevice
from repro.core.server import build_server
from repro.devices.base import DeviceKind
from repro.errors import ConfigError
from repro.pcie.link import PcieGen
from repro.pcie.routing import crosses_root_complex


def test_baseline_population():
    server = build_server(ArchitectureConfig.baseline(), 32)
    assert server.n_accelerators == 32
    assert len(server.ssd_ids) == 16  # 2 SSD boxes × 8
    assert server.prep_ids == []
    server.topology.validate()


def test_acc_config_adds_prep_boxes():
    server = build_server(ArchitectureConfig.baseline_acc(), 32)
    assert len(server.prep_ids) == 8  # 1:4 ratio
    kinds = {
        server.topology.node(p).device.kind for p in server.prep_ids
    }
    assert kinds == {DeviceKind.PREP_ACCELERATOR}


def test_gpu_prep_devices():
    server = build_server(
        ArchitectureConfig.baseline_acc(PrepDevice.GPU), 16
    )
    from repro.devices.gpu_prep import GpuPrepDevice

    devices = [server.topology.node(p).device for p in server.prep_ids]
    assert all(isinstance(d, GpuPrepDevice) for d in devices)


def test_trainbox_population_scales_with_boxes():
    server = build_server(ArchitectureConfig.trainbox(), 64)
    assert server.n_accelerators == 64
    boxes = [b for b in server.boxes if b.acc_ids]
    assert len(boxes) == 8
    for box in boxes:
        assert len(box.acc_ids) == 8
        assert len(box.prep_ids) == 2
        assert len(box.ssd_ids) == 2
    # SSDs scale with boxes under clustering.
    assert len(server.ssd_ids) == 16


def test_trainbox_datapath_stays_in_box():
    """The clustering invariant: SSD→FPGA→accelerator never crosses the
    root complex."""
    server = build_server(ArchitectureConfig.trainbox(), 32)
    for box in server.boxes:
        for fpga in box.prep_ids:
            for ssd in box.ssd_ids:
                assert not crosses_root_complex(server.topology, ssd, fpga)
            for acc in box.acc_ids:
                assert not crosses_root_complex(server.topology, fpga, acc)


def test_baseline_datapath_crosses_rc():
    server = build_server(ArchitectureConfig.baseline_acc_p2p(), 32)
    ssd = server.ssd_ids[0]
    prep = server.prep_ids[0]
    acc = server.acc_ids[0]
    assert crosses_root_complex(server.topology, ssd, prep)
    assert crosses_root_complex(server.topology, prep, acc)


def test_gen4_links_applied():
    server = build_server(ArchitectureConfig.baseline_acc_p2p_gen4(), 16)
    gens = {link.gen for link in server.topology.links()}
    assert gens == {PcieGen.GEN4}


def test_trainbox_has_prep_network_and_pool():
    server = build_server(ArchitectureConfig.trainbox(), 32)
    assert server.prep_network is not None
    in_box = len(server.prep_ids)
    assert len(server.pool_fpga_ids) == 2 * in_box
    hosts = set(server.prep_network.hosts())
    assert set(server.prep_ids) <= hosts
    assert set(server.pool_fpga_ids) <= hosts


def test_trainbox_no_pool():
    server = build_server(ArchitectureConfig.trainbox(prep_pool=False), 32)
    assert server.pool_fpga_ids == []
    assert server.prep_network is not None


def test_partial_last_box():
    server = build_server(ArchitectureConfig.trainbox(), 12)
    assert server.n_accelerators == 12
    sizes = sorted(len(b.acc_ids) for b in server.boxes if b.acc_ids)
    assert sizes == [4, 8]


def test_chaining_respects_port_count():
    hw = HardwareConfig()
    server = build_server(ArchitectureConfig.baseline(), 256, hw=hw)
    topo = server.topology
    # At most acc_root_ports box chains attach directly to the RC for
    # accelerator boxes.
    rc_children = topo.children_of("rc")
    acc_chains = [c for c in rc_children if c.startswith("abox")]
    assert len(acc_chains) <= hw.acc_root_ports
    # 32 boxes over 8 ports → chains of 4.
    depth_boxes = [n for n in rc_children if n == "abox0"]
    assert depth_boxes
    assert topo.parent_of("abox8") == "abox0"
    assert topo.parent_of("abox16") == "abox8"


def test_invalid_scale_rejected():
    with pytest.raises(ConfigError):
        build_server(ArchitectureConfig.baseline(), 0)


def test_all_endpoints_enumerated():
    server = build_server(ArchitectureConfig.trainbox(), 16)
    for node in server.topology.endpoints():
        assert node.enumerated


def test_aggregate_ssd_bandwidth():
    server = build_server(ArchitectureConfig.baseline(), 8)
    hw = server.hw
    assert server.aggregate_ssd_bandwidth() == pytest.approx(
        16 * hw.ssd_read_bandwidth
    )


def test_ssd_of_type_checks():
    server = build_server(ArchitectureConfig.baseline(), 8)
    assert server.ssd_of(server.ssd_ids[0]).read_bandwidth > 0
    with pytest.raises(ConfigError):
        server.ssd_of(server.acc_ids[0])


def test_build_server_cached_returns_same_model():
    from repro.core.server import build_server_cached

    arch = ArchitectureConfig.baseline()
    a = build_server_cached(arch, 8)
    b = build_server_cached(arch, 8)
    assert a is b
    assert a.n_accelerators == 8
    assert build_server_cached(arch, 16) is not a
