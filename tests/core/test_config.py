"""Tests for hardware and architecture configurations."""

import pytest

from repro.core.config import (
    Architecture,
    ArchitectureConfig,
    HardwareConfig,
    PrepDevice,
    SyncStrategy,
)
from repro.errors import ConfigError
from repro.pcie.link import PcieGen


def test_default_hardware_is_dgx2_class():
    hw = HardwareConfig()
    assert hw.cpu_cores == 48
    assert hw.memory_bandwidth == pytest.approx(239e9)
    assert hw.accs_per_box == 8
    assert hw.fpgas_per_train_box == 2
    assert hw.ssds_per_train_box == 2


def test_hardware_validation():
    with pytest.raises(ConfigError):
        HardwareConfig(cpu_cores=0)
    with pytest.raises(ConfigError):
        HardwareConfig(prep_per_acc_ratio=0.0)
    with pytest.raises(ConfigError):
        HardwareConfig(max_boxes_per_chain=0)


def test_figure19_ladder_order():
    ladder = ArchitectureConfig.figure19_ladder()
    assert [a.name for a in ladder] == [
        "baseline",
        "baseline+acc",
        "baseline+acc+p2p",
        "baseline+acc+p2p+gen4",
        "trainbox",
    ]


def test_baseline_flags():
    arch = ArchitectureConfig.baseline()
    assert arch.prep_device is PrepDevice.CPU
    assert not arch.p2p and not arch.clustering and not arch.prep_pool
    assert arch.sync is SyncStrategy.RING


def test_trainbox_flags():
    arch = ArchitectureConfig.trainbox()
    assert arch.prep_device is PrepDevice.FPGA
    assert arch.p2p and arch.clustering and arch.prep_pool
    no_pool = ArchitectureConfig.trainbox(prep_pool=False)
    assert no_pool.clustering and not no_pool.prep_pool
    assert no_pool.name == Architecture.TRAINBOX_NO_POOL.value


def test_gen4_config():
    arch = ArchitectureConfig.baseline_acc_p2p_gen4()
    assert arch.pcie_gen is PcieGen.GEN4
    assert arch.p2p


def test_gpu_acc_variant_named_distinctly():
    gpu = ArchitectureConfig.baseline_acc(PrepDevice.GPU)
    fpga = ArchitectureConfig.baseline_acc()
    assert gpu.name != fpga.name
    assert gpu.prep_device is PrepDevice.GPU


def test_invalid_combinations_rejected():
    with pytest.raises(ConfigError):
        # Clustering needs hardware prep.
        ArchitectureConfig(name="x", clustering=True, p2p=True)
    with pytest.raises(ConfigError):
        # The train box is P2P by design.
        ArchitectureConfig(
            name="x", prep_device=PrepDevice.FPGA, clustering=True, p2p=False
        )
    with pytest.raises(ConfigError):
        # Pool without clustering.
        ArchitectureConfig(name="x", prep_device=PrepDevice.FPGA, prep_pool=True)
    with pytest.raises(ConfigError):
        # P2P on the CPU path.
        ArchitectureConfig(name="x", p2p=True)
    with pytest.raises(ConfigError):
        # GPUs cannot run the generic P2P datapath (§V-B).
        ArchitectureConfig(name="x", prep_device=PrepDevice.GPU, p2p=True)
    with pytest.raises(ConfigError):
        ArchitectureConfig.baseline_acc(PrepDevice.CPU)
