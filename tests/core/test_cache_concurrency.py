"""ResultCache under concurrent writers: the service's shared tier.

The contract (:class:`repro.cache.CacheLock` + ``locked=True``):

* many processes hammering the same keys never corrupt an entry — every
  read after the dust settles is a valid payload from *some* writer;
* a lock held by a live process makes contenders wait (and time out
  with :class:`LockTimeout` if the holder never releases);
* a lock orphaned by a killed process is detected (dead pid, or stamp
  age) and reclaimed instead of wedging the store.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.cache import CacheLock, LockTimeout, ResultCache

KEYS = [f"{i:02x}" + "ab" * 31 for i in range(4)]


def _hammer(directory, worker, rounds):
    cache = ResultCache(directory, locked=True)
    for i in range(rounds):
        key = KEYS[(worker + i) % len(KEYS)]
        cache.put(key, {"worker": worker, "round": i, "key": key})


def test_multiprocess_hammer_leaves_no_corrupt_entries(tmp_path):
    directory = tmp_path / "shared"
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_hammer, args=(str(directory), w, 25))
        for w in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    cache = ResultCache(directory, locked=True)
    for key in KEYS:
        payload = cache.get(key)
        assert payload is not None, f"entry {key} lost"
        assert payload["key"] == key
        assert payload["worker"] in range(4)
    assert cache.stats.discards == 0
    # All locks released, no temp files or reclaim debris left behind.
    leftovers = [
        p.name
        for p in directory.rglob("*")
        if ".lock" in p.name or p.name.startswith(".tmp-")
    ]
    assert leftovers == []


def test_lock_contention_waits_then_times_out(tmp_path):
    path = tmp_path / "entry.lock"
    holder = CacheLock(path).acquire()
    contender = CacheLock(path, timeout=0.2, stale_after=60.0)
    t0 = time.monotonic()
    with pytest.raises(LockTimeout, match="live owner"):
        contender.acquire()
    assert time.monotonic() - t0 >= 0.2
    holder.release()
    # Released: the same contender now wins immediately.
    contender.acquire()
    contender.release()
    assert not path.exists()


def test_lock_contention_resolves_when_holder_releases(tmp_path):
    path = tmp_path / "entry.lock"
    holder = CacheLock(path).acquire()
    acquired = threading.Event()

    def contend():
        with CacheLock(path, timeout=10.0, stale_after=60.0):
            acquired.set()

    t = threading.Thread(target=contend, daemon=True)
    t.start()
    time.sleep(0.05)
    assert not acquired.is_set()  # still held
    holder.release()
    t.join(timeout=10)
    assert acquired.is_set()


def _acquire_and_die(directory, key):
    cache = ResultCache(directory, locked=True)
    cache.lock(key).acquire()
    os._exit(0)  # dies without releasing — the orphaned-lock scenario


def test_stale_lock_from_killed_process_is_reclaimed(tmp_path):
    directory = tmp_path / "shared"
    key = KEYS[0]
    ctx = multiprocessing.get_context("fork")
    p = ctx.Process(target=_acquire_and_die, args=(str(directory), key))
    p.start()
    p.join(timeout=30)
    assert p.exitcode == 0
    cache = ResultCache(directory, locked=True, lock_timeout=10.0)
    lock_path = cache.lock(key).path
    assert lock_path.exists()  # orphaned
    # The dead owner's pid is detected and the lock reclaimed well
    # before stale_after; the put then proceeds normally.
    t0 = time.monotonic()
    cache.put(key, {"after": "reclaim"})
    assert time.monotonic() - t0 < 5.0
    assert cache.get(key) == {"after": "reclaim"}
    assert not lock_path.exists()


def test_stale_lock_by_age_is_reclaimed(tmp_path):
    # No owner stamp at all (writer died between mkdir and stamp):
    # age alone must eventually reclaim it.
    path = tmp_path / "entry.lock"
    os.mkdir(path)
    time.sleep(0.15)
    lock = CacheLock(path, timeout=5.0, stale_after=0.1)
    lock.acquire()
    lock.release()


def test_reacquire_after_clean_release_cycles(tmp_path):
    path = tmp_path / "entry.lock"
    for _ in range(20):
        with CacheLock(path, timeout=1.0):
            assert path.exists()
    assert not path.exists()


def test_unlocked_concurrent_puts_still_readable(tmp_path):
    # Even without locking, atomic rename means readers only ever see
    # whole entries (last writer wins).
    directory = tmp_path / "plain"
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_hammer_unlocked, args=(str(directory), w, 25))
        for w in range(4)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    cache = ResultCache(directory)
    for key in KEYS:
        payload = cache.get(key)
        assert payload is not None and payload["key"] == key
    assert cache.stats.discards == 0


def _hammer_unlocked(directory, worker, rounds):
    cache = ResultCache(directory)
    for i in range(rounds):
        key = KEYS[(worker + i) % len(KEYS)]
        cache.put(key, {"worker": worker, "round": i, "key": key})
