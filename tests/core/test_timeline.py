"""Tests for DES trace recording and timeline rendering."""

import pytest

from repro.analysis.timeline import busy_fraction, render_timeline
from repro.core.des import Station, TraceEvent, run_pipeline
from repro.errors import SimulationError


def _traced_run(**kwargs):
    defaults = dict(
        stations=[Station("ssd", 400.0), Station("prep", 300.0)],
        n_accelerators=2,
        batch_size=60,
        iteration_time=0.5,
        iterations=10,
        record_trace=True,
    )
    defaults.update(kwargs)
    return run_pipeline(**defaults)


def test_trace_recorded_when_requested():
    result = _traced_run()
    assert result.trace is not None
    kinds = {e.kind for e in result.trace}
    assert kinds == {"station", "iteration"}
    # One station event per (station, batch) and one per iteration.
    station_events = [e for e in result.trace if e.kind == "station"]
    assert len(station_events) == 2 * 10 * 2  # stations × iterations × accs
    iteration_events = [e for e in result.trace if e.kind == "iteration"]
    assert len(iteration_events) == 10


def test_no_trace_by_default():
    result = run_pipeline(
        [Station("prep", 100.0)], 1, 10, 0.1, iterations=5
    )
    assert result.trace is None
    with pytest.raises(SimulationError):
        result.stall_time("prep")


def test_trace_events_well_formed():
    result = _traced_run()
    for event in result.trace:
        assert event.end >= event.start >= 0
        assert event.duration >= 0
    # Events of one lane never overlap (one batch in service at a time).
    for lane in ("ssd", "prep"):
        spans = sorted(
            (e.start, e.end) for e in result.trace if e.name == lane
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12


def test_stall_time_accounting():
    result = _traced_run()
    stall = result.stall_time("prep")
    busy = sum(e.duration for e in result.trace if e.name == "prep")
    assert stall == pytest.approx(result.makespan - busy)
    assert 0 <= stall <= result.makespan


def test_render_timeline_structure():
    result = _traced_run()
    chart = render_timeline(result.trace, width=60)
    lines = chart.splitlines()
    assert len(lines) == 4  # ruler + 2 stations + iteration lane
    assert "station:ssd" in chart
    assert "iteration:compute+sync" in chart
    for line in lines[1:]:
        body = line.split("|")[1]
        assert len(body) == 60
        assert set(body) <= {"#", "+", "."}


def test_render_window_selection():
    result = _traced_run()
    full = render_timeline(result.trace, width=40)
    tail = render_timeline(
        result.trace, width=40, t_start=result.makespan / 2
    )
    assert full != tail


def test_render_validation():
    with pytest.raises(SimulationError):
        render_timeline([])
    event = TraceEvent("station", "x", 0, 0.0, 1.0)
    with pytest.raises(SimulationError):
        render_timeline([event], width=5)
    with pytest.raises(SimulationError):
        render_timeline([event], t_start=2.0, t_end=1.0)


def test_busy_fraction():
    events = [
        TraceEvent("station", "a", 0, 0.0, 1.0),
        TraceEvent("station", "b", 0, 1.0, 4.0),
    ]
    assert busy_fraction(events, "a") == pytest.approx(0.25)
    assert busy_fraction(events, "b") == pytest.approx(0.75)
    with pytest.raises(SimulationError):
        busy_fraction([], "a")


def test_prep_bound_pipeline_shows_busy_prep_idle_accelerators():
    """The paper's bottleneck, visible in the trace: with slow prep the
    prep lane saturates while the iteration lane has gaps."""
    result = _traced_run(
        stations=[Station("prep", 50.0)],
        iteration_time=0.2,
        iterations=20,
    )
    prep_busy = result.resource_utilization["prep"]
    iteration_busy = sum(
        e.duration for e in result.trace if e.kind == "iteration"
    ) / result.makespan
    assert prep_busy > 0.9
    assert iteration_busy < prep_busy
