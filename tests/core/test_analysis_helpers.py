"""Tests for the analysis helpers (tables, trends) and units."""

import pytest

from repro.analysis.tables import format_series, format_table, geometric_mean
from repro.analysis.trends import asic_trend, interconnect_trend, trend_growth
from repro.errors import ConfigError
from repro import units


def test_format_table_aligns_columns():
    table = format_table(["a", "long_header"], [[1, 2.5], ["xx", 0.001]])
    lines = table.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every row padded to the same width


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ConfigError):
        format_table(["a", "b"], [[1]])


def test_format_table_float_formatting():
    out = format_table(["x"], [[12345.678], [0.0001], [3.14159], [0]])
    assert "1.23e+04" in out
    assert "0.0001" in out
    assert "3.14" in out


def test_format_series():
    out = format_series("s", [1, 2], [1.5, 2.5])
    assert out == "s: 1=1.50, 2=2.50"
    with pytest.raises(ConfigError):
        format_series("s", [1], [1.0, 2.0])


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([5.0]) == pytest.approx(5.0)
    with pytest.raises(ConfigError):
        geometric_mean([])
    with pytest.raises(ConfigError):
        geometric_mean([1.0, -2.0])


def test_trends_monotone_and_huge_gap():
    asic = asic_trend()
    icn = interconnect_trend()
    assert [v for _, v, _ in asic] == sorted(v for _, v, _ in asic)
    assert [v for _, v, _ in icn] == sorted(v for _, v, _ in icn)
    # Figure 2a's story: four orders of magnitude vs roughly one.
    assert trend_growth(asic) > 1000 * trend_growth(icn)


def test_trend_growth_validation():
    with pytest.raises(ConfigError):
        trend_growth([(2012, 1.0, "x")])


def test_unit_conversions():
    assert units.gbps(100) == pytest.approx(12.5e9)
    assert units.gb_s(3.2) == pytest.approx(3.2e9)
    assert units.mb_s(1) == pytest.approx(1e6)
    assert units.to_gb_s(16e9) == pytest.approx(16.0)
    assert units.to_mb(97.5e6) == pytest.approx(97.5)
    assert units.us(5) == pytest.approx(5e-6)
    assert units.ms(3) == pytest.approx(3e-3)
    assert units.KIB == 1024
    assert units.GB == 10**9
