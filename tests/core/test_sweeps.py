"""The sweep engine: ordering, engines, caching, parallel equivalence."""

import pytest

from repro.cache import ResultCache
from repro.core.config import ArchitectureConfig
from repro.core.results import SimulationResult
from repro.core.scaleout import ScaleOutResult
from repro.core.sweeps import (
    SCALE_LADDER,
    SweepPoint,
    SweepSpec,
    cache_key,
    evaluate_point,
    figure21_spec,
    parallel_map,
    run_sweep,
)
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

RESNET = get_workload("Resnet-50")
TF_SR = get_workload("Transformer-SR")


@pytest.fixture
def tiny_spec():
    return SweepSpec(
        workloads=(RESNET, TF_SR),
        archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
        scales=(1, 4),
    )


def test_points_are_workload_major_and_deterministic(tiny_spec):
    points = tiny_spec.points()
    assert len(points) == 8
    assert [p.workload.name for p in points[:4]] == ["Resnet-50"] * 4
    assert [(p.arch.name, p.scale) for p in points[:4]] == [
        ("baseline", 1), ("baseline", 4), ("trainbox", 1), ("trainbox", 4)
    ]
    assert points == tiny_spec.points()


def test_spec_validation():
    with pytest.raises(ConfigError):
        SweepSpec(workloads=(), archs=(ArchitectureConfig.baseline(),))
    with pytest.raises(ConfigError):
        SweepPoint(RESNET, ArchitectureConfig.baseline(), 4, engine="nope")
    with pytest.raises(ConfigError):
        SweepPoint(RESNET, None, 4, engine="analytical")
    with pytest.raises(ConfigError):
        run_sweep([SweepPoint(RESNET, ArchitectureConfig.baseline(), 1)], n_jobs=0)


def test_serial_matches_single_point_evaluation(tiny_spec):
    outcome = run_sweep(tiny_spec)
    for point, result in outcome:
        assert result == evaluate_point(point)


def test_parallel_equals_serial_bit_for_bit(tiny_spec):
    serial = run_sweep(tiny_spec, n_jobs=1)
    parallel = run_sweep(tiny_spec, n_jobs=2)
    assert serial.points == parallel.points
    assert serial.results == parallel.results


def test_cache_roundtrip_is_identical(tiny_spec, tmp_path):
    cache = ResultCache(tmp_path)
    first = run_sweep(tiny_spec, cache=cache)
    assert first.cache_misses == len(first.points)
    assert first.cache_hits == 0
    second = run_sweep(tiny_spec, cache=ResultCache(tmp_path))
    assert second.cache_hits == len(second.points)
    assert second.cache_misses == 0
    assert second.results == first.results


def test_cache_keys_differ_across_axes():
    keys = {
        cache_key(p)
        for p in SweepSpec(
            workloads=(RESNET, TF_SR),
            archs=(ArchitectureConfig.baseline(), ArchitectureConfig.trainbox()),
            scales=(1, 4, 16),
        ).points()
    }
    assert len(keys) == 12


def test_cache_key_normalizes_default_overrides():
    from repro.core.config import HardwareConfig

    a = SweepPoint(RESNET, ArchitectureConfig.baseline(), 4)
    b = SweepPoint(RESNET, ArchitectureConfig.baseline(), 4, hw=HardwareConfig())
    assert cache_key(a) == cache_key(b)
    # ...but engine parameters that matter do change the key.
    c = SweepPoint(RESNET, ArchitectureConfig.baseline(), 4, engine="des")
    d = SweepPoint(
        RESNET, ArchitectureConfig.baseline(), 4, engine="des", des_iterations=10
    )
    assert cache_key(c) != cache_key(d)
    assert cache_key(a) != cache_key(c)


def test_des_engine_roundtrip(tmp_path):
    points = [
        SweepPoint(
            RESNET, ArchitectureConfig.trainbox(), 4,
            engine="des", des_iterations=20,
        )
    ]
    computed = run_sweep(points, cache=ResultCache(tmp_path))
    cached = run_sweep(points, cache=ResultCache(tmp_path))
    assert cached.cache_hits == 1
    a, b = computed.results[0], cached.results[0]
    assert a.throughput == b.throughput
    assert a.makespan == b.makespan
    assert a.resource_utilization == b.resource_utilization
    assert a.stations == b.stations


def test_scaleout_engine(tmp_path):
    spec = SweepSpec(
        workloads=(RESNET,), archs=(None,), scales=(1, 4), engine="scaleout"
    )
    outcome = run_sweep(spec, cache=ResultCache(tmp_path))
    assert all(isinstance(r, ScaleOutResult) for r in outcome.results)
    again = run_sweep(spec, cache=ResultCache(tmp_path))
    assert again.cache_hits == 2
    assert again.results == outcome.results


def test_outcome_lookup_helpers(tiny_spec):
    outcome = run_sweep(tiny_spec)
    keyed = outcome.by_key()
    assert isinstance(keyed[("Resnet-50", "trainbox", 4)], SimulationResult)
    curve = outcome.curve("Resnet-50", "baseline")
    assert [r.n_accelerators for r in curve] == [1, 4]


def test_figure21_spec_shape():
    spec = figure21_spec()
    assert spec.scales == SCALE_LADDER
    assert len(spec.points()) == 2 * 5 * len(SCALE_LADDER)


def _double(x):
    return 2 * x


def test_parallel_map_matches_serial():
    items = list(range(7))
    assert parallel_map(_double, items, n_jobs=1) == [2 * i for i in items]
    assert parallel_map(_double, items, n_jobs=3) == [2 * i for i in items]
    with pytest.raises(ConfigError):
        parallel_map(_double, items, n_jobs=0)
