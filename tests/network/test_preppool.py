"""Tests for the prep-pool allocator."""

import pytest

from repro.errors import CapacityError, ConfigError
from repro.network.preppool import PoolAllocation, PrepPool, pool_fpgas_needed


def test_allocate_and_release():
    pool = PrepPool(["f0", "f1", "f2"])
    grant = pool.allocate("job", 2)
    assert grant.count == 2
    assert pool.available == 1
    pool.release("job")
    assert pool.available == 3


def test_grants_are_disjoint():
    pool = PrepPool(["f0", "f1", "f2", "f3"])
    g1 = pool.allocate("a", 2)
    g2 = pool.allocate("b", 2)
    assert not set(g1.fpga_ids) & set(g2.fpga_ids)


def test_over_allocation_rejected():
    pool = PrepPool(["f0"])
    with pytest.raises(CapacityError):
        pool.allocate("job", 2)


def test_double_grant_rejected():
    pool = PrepPool(["f0", "f1"])
    pool.allocate("job", 1)
    with pytest.raises(ConfigError):
        pool.allocate("job", 1)


def test_release_unknown_job():
    pool = PrepPool(["f0"])
    with pytest.raises(ConfigError):
        pool.release("nope")


def test_zero_allocation_allowed():
    pool = PrepPool(["f0"])
    grant = pool.allocate("job", 0)
    assert grant.count == 0
    assert pool.available == 1


def test_duplicate_ids_rejected():
    with pytest.raises(ConfigError):
        PrepPool(["f0", "f0"])


def test_grant_lookup_and_totals():
    pool = PrepPool(["f0", "f1"])
    grant = pool.allocate("job", 1)
    assert pool.grant_of("job") is grant
    assert pool.grant_of("other") is None
    assert pool.total == 2


def test_pool_sizing_rule():
    """§V-A: shortfall / per-FPGA throughput, rounded up."""
    assert pool_fpgas_needed(100.0, 100.0, 10.0) == 0
    assert pool_fpgas_needed(100.0, 120.0, 10.0) == 0
    assert pool_fpgas_needed(100.0, 95.0, 10.0) == 1
    assert pool_fpgas_needed(100.0, 50.0, 10.0) == 5
    assert pool_fpgas_needed(101.0, 50.0, 10.0) == 6


def test_pool_sizing_validation():
    with pytest.raises(ConfigError):
        pool_fpgas_needed(1.0, 1.0, 0.0)
    with pytest.raises(ConfigError):
        pool_fpgas_needed(-1.0, 1.0, 1.0)


def test_transformer_sr_needs_54_percent_more():
    """The paper's headline prep-pool number (§VI-D): TF-SR at 256
    accelerators needs ≈54% more FPGA resources than the boxes hold."""
    from repro.dataprep.cost import FPGA_PROFILE
    from repro.workloads.registry import get_workload

    workload = get_workload("Transformer-SR")
    cost = workload.prep_pipeline().cost(workload.dataset_sample_spec())
    per_fpga = FPGA_PROFILE.sample_rate(cost)
    in_box = 64 * per_fpga  # 32 train boxes × 2 FPGAs
    required = 256 * workload.sample_rate
    extra = pool_fpgas_needed(required, in_box, per_fpga)
    assert extra / 64 == pytest.approx(0.54, abs=0.05)


# -- failure and failover ---------------------------------------------------


def test_fail_free_fpga_leaves_pool():
    pool = PrepPool(["f0", "f1"])
    assert pool.fail("f0") is None
    assert pool.available == 1
    assert pool.failed == ("f0",)
    assert pool.total == 1


def test_fail_granted_fpga_fails_over_to_spare():
    pool = PrepPool(["f0", "f1", "f2"])
    grant = pool.allocate("job", 2)
    spare = pool.fail(grant.fpga_ids[0])
    assert spare == "f2"
    replaced = pool.grant_of("job")
    assert replaced.count == 2
    assert grant.fpga_ids[0] not in replaced.fpga_ids
    assert spare in replaced.fpga_ids
    assert pool.available == 0


def test_fail_granted_fpga_without_spare_shrinks_grant():
    pool = PrepPool(["f0", "f1"])
    grant = pool.allocate("job", 2)
    assert pool.fail(grant.fpga_ids[1]) is None
    shrunk = pool.grant_of("job")
    assert shrunk.fpga_ids == (grant.fpga_ids[0],)


def test_recover_returns_fpga_to_service():
    pool = PrepPool(["f0", "f1"])
    pool.fail("f0")
    pool.recover("f0")
    assert pool.failed == ()
    assert pool.available == 2
    with pytest.raises(ConfigError):
        pool.recover("f0")


def test_double_fail_and_unknown_fpga_rejected():
    pool = PrepPool(["f0"])
    pool.fail("f0")
    with pytest.raises(ConfigError):
        pool.fail("f0")
    with pytest.raises(ConfigError):
        pool.fail("ghost")


def test_released_failover_grant_returns_current_devices():
    pool = PrepPool(["f0", "f1", "f2"])
    grant = pool.allocate("job", 2)
    pool.fail(grant.fpga_ids[0])
    pool.release("job")
    # f0 is failed; the pool holds the survivor and the spare.
    assert pool.available == 2
    assert pool.total == 2
