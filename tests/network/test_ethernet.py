"""Tests for the Ethernet star network."""

import pytest

from repro.errors import TopologyError
from repro.network.ethernet import (
    EthernetFlow,
    EthernetLink,
    EthernetSwitch,
    StarNetwork,
)
from repro import units

GB = units.GB


def _net(hosts=("a", "b", "c"), bw=12.5 * GB):
    net = StarNetwork()
    for h in hosts:
        net.attach(EthernetLink(h, bandwidth=bw))
    return net


def test_attach_and_lookup():
    net = _net()
    assert net.link_of("a").bandwidth == pytest.approx(12.5 * GB)
    assert sorted(net.hosts()) == ["a", "b", "c"]
    with pytest.raises(TopologyError):
        net.link_of("zz")


def test_duplicate_host_rejected():
    net = _net()
    with pytest.raises(TopologyError):
        net.attach(EthernetLink("a"))


def test_port_budget():
    net = StarNetwork(EthernetSwitch(ports=1))
    net.attach(EthernetLink("a"))
    with pytest.raises(TopologyError):
        net.attach(EthernetLink("b"))
    with pytest.raises(TopologyError):
        StarNetwork(EthernetSwitch(ports=0))


def test_completion_time_single_flow():
    net = _net()
    t = net.completion_time([EthernetFlow("a", "b", 12.5 * GB)])
    assert t == pytest.approx(1.0)


def test_uplink_aggregation():
    """Two flows out of the same host serialize on its uplink."""
    net = _net()
    flows = [
        EthernetFlow("a", "b", 12.5 * GB),
        EthernetFlow("a", "c", 12.5 * GB),
    ]
    assert net.completion_time(flows) == pytest.approx(2.0)


def test_nonblocking_fabric():
    """Disjoint host pairs do not contend (line-rate switch)."""
    net = _net(hosts=("a", "b", "c", "d"))
    flows = [
        EthernetFlow("a", "b", 12.5 * GB),
        EthernetFlow("c", "d", 12.5 * GB),
    ]
    assert net.completion_time(flows) == pytest.approx(1.0)


def test_self_flow_free():
    net = _net()
    assert net.completion_time([EthernetFlow("a", "a", 1e12)]) == 0.0


def test_unknown_endpoint_rejected():
    net = _net()
    with pytest.raises(TopologyError):
        net.completion_time([EthernetFlow("a", "zz", 1.0)])
