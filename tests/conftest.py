"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pcie.address import enumerate_topology
from repro.pcie.topology import Endpoint, PcieTopology, RootComplex, Switch


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_image(rng):
    """A photo-like 48x40 uint8 RGB image (compresses well)."""
    h, w = 48, 40
    x = np.linspace(0, 255, w)[None, :] * np.ones((h, 1))
    img = np.stack([x, x[::-1], np.full((h, w), 128.0)], axis=-1)
    return np.clip(img + rng.normal(0, 8, img.shape), 0, 255).astype(np.uint8)


@pytest.fixture
def small_topology():
    """rc -> {s1 -> (a, b), s2 -> (c)} with default Gen3 x16 links."""
    topo = PcieTopology(RootComplex())
    topo.attach(Switch("s1"), "rc")
    topo.attach(Switch("s2"), "rc")
    topo.attach(Endpoint("a"), "s1")
    topo.attach(Endpoint("b"), "s1")
    topo.attach(Endpoint("c"), "s2")
    enumerate_topology(topo)
    return topo


def build_deep_topology(depth: int = 3, fanout: int = 2) -> PcieTopology:
    """A complete switch tree of the given depth with endpoint leaves."""
    topo = PcieTopology(RootComplex(max_links=fanout + 2))
    frontier = ["rc"]
    for level in range(depth):
        nxt = []
        for parent in frontier:
            for i in range(fanout):
                sid = f"{parent}.{i}" if parent != "rc" else f"n{i}"
                topo.attach(Switch(sid, max_links=fanout + 2), parent)
                nxt.append(sid)
        frontier = nxt
    for parent in frontier:
        for i in range(fanout):
            topo.attach(Endpoint(f"{parent}.e{i}"), parent)
    enumerate_topology(topo)
    return topo
