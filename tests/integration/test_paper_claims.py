"""Integration tests pinning the paper's quantitative claims (in shape).

Each test names the paper statement it checks.  Absolute numbers carry
tolerance bands — the substrate is a calibrated simulator, not the
authors' testbed — but orderings, crossovers and saturation points are
asserted tightly.
"""

import pytest

from repro.analysis.tables import geometric_mean
from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, PrepDevice
from repro.workloads.registry import TABLE_I, get_workload


def _throughput(workload, arch, n, **kwargs):
    return simulate(TrainingScenario(workload, arch, n, **kwargs)).throughput


@pytest.fixture(scope="module")
def figure19():
    """Throughput of every (workload, config) pair at 256 accelerators."""
    ladder = ArchitectureConfig.figure19_ladder()
    table = {}
    for name, workload in TABLE_I.items():
        table[name] = {
            arch.name: _throughput(workload, arch, 256) for arch in ladder
        }
    return table


def test_headline_speedup_band(figure19):
    """§VI-C: TrainBox achieves 44.4× higher throughput on average over
    the baseline with 256 accelerators."""
    speedups = [row["trainbox"] / row["baseline"] for row in figure19.values()]
    mean = sum(speedups) / len(speedups)
    assert 30 < mean < 60, f"mean speedup {mean:.1f} outside the 44.4× band"


def test_tf_aa_is_the_largest_winner(figure19):
    """§VI-C: the improvement is the largest (84.3×) with TF-AA."""
    speedups = {
        name: row["trainbox"] / row["baseline"] for name, row in figure19.items()
    }
    assert max(speedups, key=speedups.get) == "Transformer-AA"
    assert speedups["Transformer-AA"] == pytest.approx(84.3, rel=0.15)


def test_acc_alone_around_3x_for_images(figure19):
    """§VI-C: computation acceleration boosts throughput 3.32× on
    average (image models dominate that average)."""
    image_models = ("VGG-19", "Resnet-50", "Inception-v4", "RNN-S", "RNN-L")
    gains = [
        figure19[m]["baseline+acc"] / figure19[m]["baseline"]
        for m in image_models
    ]
    assert geometric_mean(gains) == pytest.approx(3.3, rel=0.25)


def test_p2p_alone_adds_nothing(figure19):
    """§VI-C: P2P does not increase system throughput (RC-bound)."""
    for name, row in figure19.items():
        assert row["baseline+acc+p2p"] == pytest.approx(
            row["baseline+acc"], rel=1e-6
        ), name


def test_gen4_helps_but_less_than_clustering(figure19):
    """§VI-C: doubling PCIe is beneficial, but TrainBox without Gen4
    shows even higher improvement."""
    for name, row in figure19.items():
        assert row["baseline+acc+p2p+gen4"] > row["baseline+acc+p2p"] * 1.3, name
        assert row["trainbox"] > row["baseline+acc+p2p+gen4"], name


def test_optimizations_monotone(figure19):
    """Each step of the ladder never hurts."""
    order = [
        "baseline",
        "baseline+acc",
        "baseline+acc+p2p",
        "baseline+acc+p2p+gen4",
        "trainbox",
    ]
    for name, row in figure19.items():
        values = [row[k] for k in order]
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:])), name


def test_baseline_saturates_near_18_accelerators():
    """§III-B2 / Figure 8: Inception-v4 saturates at ≈18.3 accelerators
    and no model benefits beyond 18."""
    inception = get_workload("Inception-v4")
    arch = ArchitectureConfig.baseline()
    t18 = _throughput(inception, arch, 18)
    t256 = _throughput(inception, arch, 256)
    assert t256 / t18 < 1.05
    one = _throughput(inception, arch, 1)
    assert t256 / one == pytest.approx(18.3, rel=0.05)
    for name, workload in TABLE_I.items():
        cap = _throughput(workload, arch, 256)
        base = _throughput(workload, arch, 1)
        assert cap / base < 19.0, name


def test_tf_sr_saturates_near_4_accelerators():
    """§VI-D: the CPU baseline saturates at 4.4 accelerators for TF-SR."""
    tf_sr = get_workload("Transformer-SR")
    arch = ArchitectureConfig.baseline()
    cap = _throughput(tf_sr, arch, 256)
    one = _throughput(tf_sr, arch, 1)
    assert cap / one == pytest.approx(4.4, rel=0.05)


def test_prep_share_of_latency_at_scale():
    """§III-B2 / Figure 9: data preparation accounts for ≈98% of the
    per-batch latency at 256 accelerators."""
    from repro.core.dataflow import build_demand
    from repro.core.resources import latency_decomposition
    from repro.core.server import build_server

    fractions = []
    arch = ArchitectureConfig.baseline()
    for workload in TABLE_I.values():
        server = build_server(arch, 256)
        demand = build_demand(server, workload)
        result = simulate(TrainingScenario(workload, arch, 256), server=server)
        decomp = latency_decomposition(
            server, demand, result.compute_time, result.sync_time,
            result.batch_size,
        )
        fractions.append(decomp.prep_fraction)
    assert sum(fractions) / len(fractions) > 0.93


def test_gpu_prep_worse_at_small_scale_better_at_large():
    """§VI-D / Figure 21: GPU-based prep starts below the CPU baseline
    and only wins with enough devices; FPGA acceleration wins
    immediately."""
    tf_sr = get_workload("Transformer-SR")
    base = ArchitectureConfig.baseline()
    gpu = ArchitectureConfig.baseline_acc(PrepDevice.GPU)
    fpga = ArchitectureConfig.baseline_acc()
    assert _throughput(tf_sr, gpu, 16) < _throughput(tf_sr, base, 16)
    assert _throughput(tf_sr, gpu, 128) > _throughput(tf_sr, base, 128)
    assert _throughput(tf_sr, fpga, 16) > _throughput(tf_sr, base, 16)


def test_prep_pool_closes_the_audio_gap():
    """§VI-D / Figure 21: TF-SR without the prep-pool falls short of the
    target; with it the system reaches target throughput."""
    tf_sr = get_workload("Transformer-SR")
    with_pool = _throughput(tf_sr, ArchitectureConfig.trainbox(), 256)
    without = _throughput(tf_sr, ArchitectureConfig.trainbox(prep_pool=False), 256)
    target = 256 * tf_sr.sample_rate
    assert without < 0.8 * target
    assert with_pool > 0.95 * target


def test_inception_needs_no_pool():
    """§VI-D: Inception-v4's TrainBox performance is identical with and
    without the prep-pool."""
    inception = get_workload("Inception-v4")
    with_pool = _throughput(inception, ArchitectureConfig.trainbox(), 256)
    without = _throughput(
        inception, ArchitectureConfig.trainbox(prep_pool=False), 256
    )
    assert with_pool == pytest.approx(without, rel=1e-9)


def test_batch_sweep_speedup_grows_with_batch():
    """Figure 20: TrainBox's advantage grows with batch size."""
    resnet = get_workload("Resnet-50")
    speedups = []
    for batch in (32, 512, 8192):
        base = _throughput(resnet, ArchitectureConfig.baseline(), 256, batch_size=batch)
        tb = _throughput(resnet, ArchitectureConfig.trainbox(), 256, batch_size=batch)
        speedups.append(tb / base)
    assert speedups[0] < speedups[-1]
    assert all(s > 1.0 for s in speedups)


def test_bottleneck_shift_figure3():
    """Figure 3: prep share grows monotonically along the platform
    ladder (Current → +HW → +ICN → +SyncOpt), ending prep-dominated."""
    import dataclasses

    from repro.core.config import SyncStrategy
    from repro.core.dataflow import build_demand
    from repro.core.resources import latency_decomposition
    from repro.core.server import build_server

    resnet = get_workload("Resnet-50")
    base = ArchitectureConfig.baseline()
    central = dataclasses.replace(base, sync=SyncStrategy.CENTRAL)
    steps = [
        # (accelerator, n, arch, fabric override)
        ("legacy-gpu", 8, central, 16e9),
        ("tpu", 256, central, 16e9),
        ("tpu", 256, central, None),
        ("tpu", 256, base, None),
    ]
    fractions = []
    for accel, n, arch, fabric in steps:
        server = build_server(arch, n)
        demand = build_demand(server, resnet)
        result = simulate(
            TrainingScenario(
                resnet, arch, n, accelerator=accel, fabric_bandwidth=fabric
            ),
            server=server,
        )
        decomp = latency_decomposition(
            server, demand, result.compute_time, result.sync_time,
            result.batch_size,
        )
        fractions.append(decomp.prep_fraction)
    assert fractions[0] < 0.5              # Current: others dominate
    assert fractions == sorted(fractions)  # monotone shift
    assert fractions[-1] > 0.9             # prep dominates at the end
