"""Cross-engine validation: the three performance engines agree.

The analytical solver, the batch-level DES, and the fluid flow-level
interconnect simulation are independent implementations over the same
hardware constants; these tests pin their mutual consistency on real
architecture dataflows.
"""

import pytest

from repro.core.analytical import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.dataflow import build_demand
from repro.core.des import run_pipeline, simulate_des, Station
from repro.core.server import build_server
from repro.pcie.flowsim import FlowSimulator, Transfer
from repro.pcie.traffic import completion_time
from repro.workloads.registry import TABLE_I, get_workload

RESNET = get_workload("Resnet-50")


@pytest.mark.parametrize(
    "arch",
    ArchitectureConfig.figure19_ladder(),
    ids=lambda a: a.name,
)
def test_fluid_matches_analytical_on_real_dataflows(arch):
    """Running one batch worth of every PCIe flow through the fluid
    simulator reproduces the analytical pipelined time (equal-progress
    flows drain together)."""
    server = build_server(arch, 16)
    demand = build_demand(server, RESNET)
    batch = 1024  # one batch worth of samples, arbitrary scale factor
    flows = [f for f in demand.pcie_flows if f.volume > 0]
    analytic = completion_time(server.topology, flows) * batch
    transfers = [
        Transfer(f.src, f.dst, f.volume * batch, label=f.label) for f in flows
    ]
    fluid = FlowSimulator(server.topology).makespan(transfers)
    # The fluid makespan can only be <= the pipelined bound when early
    # finishers free bandwidth, and equals it when the bottleneck link
    # is busy throughout.
    assert fluid <= analytic * (1 + 1e-9)
    assert fluid >= analytic * 0.5


def test_des_buffer_depth_sweep_converges():
    """Deeper prefetch buffers help monotonically and saturate fast —
    double buffering (§V-C) already captures nearly all of it."""
    stations = [Station("ssd", 400.0), Station("prep", 350.0), Station("pcie", 500.0)]
    throughputs = []
    for buffers in (1, 2, 4, 8):
        result = run_pipeline(
            stations, 4, 64, iteration_time=0.7, iterations=60,
            buffer_batches=buffers,
        )
        throughputs.append(result.throughput)
    assert all(b >= a - 1e-6 for a, b in zip(throughputs, throughputs[1:]))
    assert throughputs[1] > 0.95 * throughputs[-1]


def test_all_three_engines_on_trainbox():
    scenario = TrainingScenario(RESNET, ArchitectureConfig.trainbox(), 32)
    analytical = simulate(scenario)
    des = simulate_des(scenario, iterations=60)
    assert des.relative_error(analytical.throughput) < 0.02

    server = build_server(ArchitectureConfig.trainbox(), 32)
    demand = build_demand(server, RESNET)
    flows = [f for f in demand.pcie_flows if f.volume > 0]
    per_sample = completion_time(server.topology, flows)
    assert analytical.resource_rates["pcie"] == pytest.approx(1.0 / per_sample)


def test_des_matches_analytical_for_every_workload():
    arch = ArchitectureConfig.trainbox()
    for workload in TABLE_I.values():
        scenario = TrainingScenario(workload, arch, 64)
        analytical = simulate(scenario)
        des = simulate_des(scenario, iterations=50)
        assert des.relative_error(analytical.throughput) < 0.03, workload.name
