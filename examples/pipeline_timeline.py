#!/usr/bin/env python3
"""Visualize the training pipeline: where the time actually goes.

Runs the batch-level discrete-event simulator with trace recording for a
prep-bound baseline and for TrainBox, and renders text Gantt charts —
the overlap of next-batch preparation with compute+synchronization, and
the idle gaps the data-preparation wall opens up.

Run:  python examples/pipeline_timeline.py
"""

from repro.analysis.timeline import render_timeline
from repro.core import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.core.des import simulate_des
from repro.workloads import get_workload


def show(label, scenario):
    analytical = simulate(scenario)
    result = simulate_des(scenario, iterations=12, record_trace=True)
    print(f"--- {label} ---")
    print(f"throughput {result.throughput:,.0f} samples/s "
          f"(analytical {analytical.throughput:,.0f}, "
          f"bottleneck: {analytical.bottleneck})")
    # Render the steady-state middle of the run.
    t_mid = result.makespan * 0.3
    print(render_timeline(result.trace, width=90, t_start=t_mid,
                          t_end=min(result.makespan, t_mid * 2.2)))
    for name, utilization in result.resource_utilization.items():
        print(f"  {name:20s} busy {100 * utilization:5.1f}%")
    print()


def main() -> None:
    workload = get_workload("Resnet-50")
    show(
        "baseline, 64 accelerators (prep-bound: accelerators starve)",
        TrainingScenario(workload, ArchitectureConfig.baseline(), 64),
    )
    show(
        "TrainBox, 64 accelerators (compute-bound: prep hides behind it)",
        TrainingScenario(workload, ArchitectureConfig.trainbox(), 64),
    )


if __name__ == "__main__":
    main()
