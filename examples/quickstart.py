#!/usr/bin/env python3
"""Quickstart: simulate the paper's headline experiment.

Runs ResNet-50 on the naive baseline server and on TrainBox at 256
neural network accelerators, prints throughput, the binding bottleneck
of each design, and the speed-up — the Figure 19 story in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro.core import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("Resnet-50")
    n_accelerators = 256

    baseline = simulate(
        TrainingScenario(workload, ArchitectureConfig.baseline(), n_accelerators)
    )
    trainbox = simulate(
        TrainingScenario(workload, ArchitectureConfig.trainbox(), n_accelerators)
    )

    print(f"workload: {workload.name}  ({n_accelerators} accelerators, "
          f"batch {workload.batch_size}/device)")
    print()
    for label, result in (("baseline", baseline), ("trainbox", trainbox)):
        print(
            f"{label:9s} throughput: {result.throughput:12,.0f} samples/s   "
            f"bottleneck: {result.bottleneck}"
        )
        print(
            f"{'':9s} prep capacity {result.prep_rate:12,.0f} | "
            f"accelerator demand {result.consume_rate:12,.0f}"
        )
    print()
    print(f"TrainBox speed-up: {trainbox.speedup_over(baseline):.1f}x "
          f"(paper reports 44.4x on average across workloads)")

    # Where does the baseline's prep budget go?
    from repro.core.dataflow import build_demand
    from repro.core.resources import resource_breakdown, shares
    from repro.core.server import build_server

    server = build_server(ArchitectureConfig.baseline(), n_accelerators)
    demand = build_demand(server, workload)
    cpu_shares = shares(resource_breakdown(demand)["cpu"])
    print()
    print("baseline host-CPU cycles per sample, by stage:")
    for category, share in sorted(cpu_shares.items(), key=lambda kv: -kv[1]):
        if share > 0:
            print(f"  {category:14s} {100 * share:5.1f}%")


if __name__ == "__main__":
    main()
