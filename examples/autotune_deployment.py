#!/usr/bin/env python3
"""Find the cheapest TrainBox recipe for a workload mix.

The inverse of the paper's fixed recipe: given the models a team plans
to train and the accelerator count, grid-search box geometry (FPGAs and
SSDs per box, PCIe generation) and prep-pool size for the cheapest
design that keeps every workload accelerator-bound.

Run:  python examples/autotune_deployment.py
"""

from repro.core.autotune import autotune
from repro.workloads import get_workload


def show(label, workload_names, n_accelerators=256):
    workloads = [get_workload(name) for name in workload_names]
    result = autotune(workloads, n_accelerators)
    print(f"--- {label} ({n_accelerators} accelerators) ---")
    print(f"  chosen: {result.best.describe()}")
    print(f"  worst-workload attainment: "
          f"{100 * result.best.achieved_fraction:.1f}% of target "
          f"(bottleneck: {result.best.bottleneck})")
    print(f"  capex: ${result.best.capex:,.0f}")
    frontier = sorted(
        (c for c in result.candidates if c.achieved_fraction >= 0.95),
        key=lambda c: c.capex,
    )[:4]
    if frontier:
        print("  cheapest feasible designs:")
        for c in frontier:
            print(f"    ${c.capex:,.0f}  {c.describe():44s} "
                  f"{100 * c.achieved_fraction:.0f}%")
    print()


def main() -> None:
    show("image-only fleet", ["Resnet-50", "Inception-v4", "VGG-19"])
    show("speech fleet", ["Transformer-SR", "Transformer-AA"])
    show("mixed fleet incl. video", ["Resnet-50", "Transformer-SR", "CNN-Video"])
    show("captioning (egress-heavy)", ["RNN-S"])


if __name__ == "__main__":
    main()
