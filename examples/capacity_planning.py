#!/usr/bin/env python3
"""Capacity planning: size a TrainBox deployment for a training job.

The scenario the paper's §V-A automates: a team wants to train a given
model at a target accelerator count.  This script plays the train
initializer's role end to end — it estimates per-batch time from the
accelerator model, derives the required data-preparation throughput via
the ring synchronization model, decides how many prep-pool FPGAs the job
needs, and prints the data distribution across each train box's SSDs.

Run:  python examples/capacity_planning.py [workload] [n_accelerators]
e.g.  python examples/capacity_planning.py Transformer-SR 256
"""

import sys

from repro.core import TrainInitializer, TrainingScenario, build_server, simulate
from repro.core.config import ArchitectureConfig
from repro.datasets import LIBRISPEECH_LIKE, IMAGENET_LIKE
from repro.workloads import InputType, get_workload


def main(workload_name: str = "Transformer-SR", n_accelerators: int = 256) -> None:
    workload = get_workload(workload_name)
    dataset = (
        IMAGENET_LIKE if workload.input_type is InputType.IMAGE else LIBRISPEECH_LIKE
    )

    server = build_server(ArchitectureConfig.trainbox(), n_accelerators)
    initializer = TrainInitializer(server)
    plan = initializer.plan(workload, num_items=dataset.num_items)

    print(f"job: {workload.name} on {n_accelerators} accelerators "
          f"({len([b for b in server.boxes if b.acc_ids])} train boxes)")
    print(f"dataset: {dataset.name}, {dataset.num_items:,} items")
    print()
    print(f"measured per-batch compute time : {plan.per_batch_time * 1e3:8.2f} ms")
    print(f"ring synchronization time       : {plan.sync_time * 1e3:8.2f} ms")
    print(f"required prep throughput        : {plan.required_prep_rate:12,.0f} samples/s")
    print(f"in-box FPGA capacity            : {plan.in_box_prep_rate:12,.0f} samples/s "
          f"({len(server.prep_ids)} FPGAs x {plan.per_fpga_rate:,.0f})")
    print()
    if plan.pool_fpgas_requested:
        print(f"prep-pool request: {plan.pool_fpgas_requested} FPGAs "
              f"(+{100 * plan.extra_resource_fraction:.0f}% over in-box resources)")
        print(f"granted: {plan.pool_fpgas_granted}; "
              f"meets target: {plan.meets_target}")
    else:
        print("prep-pool request: none — in-box FPGAs suffice")
    print()

    # Data distribution: first two boxes as a sample.
    shown = 0
    for box_id, shards in plan.shards.items():
        if shown == 2:
            remaining = len(plan.shards) - shown
            print(f"... and {remaining} more boxes with the same layout")
            break
        print(f"{box_id}:")
        for shard in shards:
            print(f"  {shard.ssd_id}: items [{shard.item_indices.start:,}, "
                  f"{shard.item_indices.stop:,})  ({len(shard):,} items)")
        shown += 1

    # Confirm with the simulator.
    result = simulate(
        TrainingScenario(workload, ArchitectureConfig.trainbox(), n_accelerators),
    )
    target = n_accelerators * workload.sample_rate
    print()
    print(f"simulated throughput: {result.throughput:,.0f} samples/s "
          f"({100 * result.throughput / target:.1f}% of the accelerator target, "
          f"bottleneck: {result.bottleneck})")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "Transformer-SR"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    main(name, count)
