#!/usr/bin/env python3
"""End-to-end functional run of the whole data path.

Everything here executes for real, no performance model involved:

1. synthesize a small ImageNet-like dataset and compress it with the
   package's own JPEG codec (what the SSDs would store);
2. run the Table II preparation pipeline — decode, random crop, mirror,
   Gaussian noise, cast — on every sample (what the FPGA engines do);
3. train a small MLP data-parallel across 4 simulated accelerators,
   synchronizing gradients with the chunked ring all-reduce (what the
   accelerator fabric does);
4. report the accuracy benefit of on-line augmentation (the Figure 5
   claim).

Run:  python examples/end_to_end_data_pipeline.py
"""

import numpy as np

from repro.dataprep import image_pipeline
from repro.dataprep.jpeg import encode
from repro.datasets import SyntheticImageDataset
from repro.training import TrainConfig, augmentation_experiment


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Dataset: real JPEG bytes on the virtual SSDs.
    dataset = SyntheticImageDataset(
        num_items=8, height=48, width=48, num_classes=4, quality=80
    )
    jpeg_bytes, label = dataset[0]
    raw, _ = dataset.raw_item(0)
    print(f"stored item 0: {len(jpeg_bytes):,} JPEG bytes "
          f"({raw.nbytes:,} raw, {raw.nbytes / len(jpeg_bytes):.1f}:1), "
          f"label {label}")

    # 2. The preparation pipeline, exactly as the FPGA engines chain it.
    pipeline = image_pipeline(out_height=32, out_width=32)
    print(f"pipeline: {pipeline.describe()}")
    prepared = pipeline.run(jpeg_bytes, rng)
    print(f"prepared tensor: shape {prepared.shape}, dtype {prepared.dtype}, "
          f"range [{prepared.min():.3f}, {prepared.max():.3f}]")

    # Cost of the same pipeline at the paper's geometry, per device type.
    from repro.dataprep import CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE, SampleSpec

    spec = SampleSpec("jpeg", (256, 256, 3), 45_000)
    cost = pipeline.cost(spec)
    print()
    print(f"per-sample cost at 256x256: {cost.cpu_cycles / 1e6:.2f} M CPU cycles, "
          f"{cost.bytes_out / 1e3:.0f} KB delivered")
    for profile in (CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE):
        print(f"  one {profile.name:8s} sustains {profile.sample_rate(cost):8,.0f} samples/s")

    # 3 + 4. Data-parallel training with the ring all-reduce, with and
    # without augmentation.
    print()
    print("training 4-way data-parallel (ring all-reduce gradients)...")
    curves = augmentation_experiment(
        num_train=96,
        num_test=200,
        image_size=32,
        crop=20,
        num_classes=8,
        hidden=64,
        n_ranks=4,
        config=TrainConfig(epochs=12, lr=0.04, batch_size=32, seed=0),
        top_k=3,
    )
    for key, curve in curves.items():
        print(f"  {key:22s} epoch-by-epoch top-3 accuracy: "
              + " ".join(f"{a:.2f}" for a in curve))
    gap = curves["with_augmentation"][-1] - curves["without_augmentation"][-1]
    print(f"  final augmentation gap: {100 * gap:+.1f} points "
          "(the Figure 5 effect, miniature scale)")


if __name__ == "__main__":
    main()
