#!/usr/bin/env python3
"""Degraded operation: what device failures cost a TrainBox deployment.

Injects SSD, FPGA and accelerator failures into a 64-accelerator
TrainBox and reports how throughput and the binding bottleneck move —
the analysis an operator runs when deciding between hot-sparing and
draining a box.

Run:  python examples/fault_tolerance.py
"""

from repro.core import (
    FaultSet,
    TrainingScenario,
    build_server,
    drain_box,
    inject_faults,
    simulate,
)
from repro.core.config import ArchitectureConfig
from repro.workloads import get_workload


def report(label, server, workload):
    result = simulate(
        TrainingScenario(workload, server.arch, server.n_accelerators, hw=server.hw),
        server=server,
    )
    print(f"  {label:34s} {result.throughput:12,.0f} samples/s  "
          f"({server.n_accelerators} accs, bottleneck: {result.bottleneck})")
    return result


def main() -> None:
    workload = get_workload("Transformer-SR")
    server = build_server(ArchitectureConfig.trainbox(), 64)
    box = server.boxes[0]

    print(f"workload: {workload.name}, 8 train boxes of 8 accelerators\n")
    healthy = report("healthy", server, workload)

    scenarios = [
        ("one SSD failed (box runs on one)", FaultSet.of(box.ssd_ids[0])),
        ("one FPGA failed (box at half prep)", FaultSet.of(box.prep_ids[0])),
        ("one accelerator failed", FaultSet.of(box.acc_ids[0])),
        (
            "an SSD + an FPGA in different boxes",
            FaultSet.of(server.boxes[0].ssd_ids[0], server.boxes[1].prep_ids[0]),
        ),
    ]
    for label, faults in scenarios:
        degraded = inject_faults(server, faults)
        result = report(label, degraded, workload)
        loss = 100 * (1 - result.throughput / healthy.throughput)
        print(f"  {'':34s} -> {loss:.1f}% throughput loss")

    drained = drain_box(server, box.box_id)
    result = report("whole box drained", drained, workload)
    loss = 100 * (1 - result.throughput / healthy.throughput)
    print(f"  {'':34s} -> {loss:.1f}% throughput loss "
          f"(proportional to the 1/8 of accelerators removed)")


if __name__ == "__main__":
    main()
