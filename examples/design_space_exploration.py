#!/usr/bin/env python3
"""Design-space exploration around the TrainBox box geometry.

The paper fixes one train-box recipe (8 accelerators + 2 FPGAs + 2 SSDs
behind PEX8796-class switches).  This script asks what happens when the
knobs move: FPGAs per box, SSDs per box, PCIe generation, Ethernet
speed, and prep-pool size — the sensitivity analysis a deployer would
run before buying hardware.

Run:  python examples/design_space_exploration.py
"""

import dataclasses

from repro.core import TrainingScenario, simulate
from repro.core.config import ArchitectureConfig, HardwareConfig
from repro.pcie.link import PcieGen
from repro.workloads import TABLE_I, get_workload

N = 256


def run(workload, arch, hw, pool_size=None):
    return simulate(
        TrainingScenario(workload, arch, N, hw=hw, pool_size=pool_size)
    )


def sweep(title, workload, variants):
    print(f"\n--- {title} ({workload.name}, {N} accelerators) ---")
    target = N * workload.sample_rate
    for label, arch, hw, pool in variants:
        result = run(workload, arch, hw, pool)
        print(f"  {label:28s} {result.throughput:12,.0f} samples/s "
              f"({100 * result.throughput / target:5.1f}% of target, "
              f"bottleneck: {result.bottleneck})")


def main() -> None:
    trainbox = ArchitectureConfig.trainbox()
    base_hw = HardwareConfig()

    # 1. FPGAs per train box (audio is prep-compute-hungry).
    tf_sr = get_workload("Transformer-SR")
    sweep(
        "FPGAs per train box",
        tf_sr,
        [
            (
                f"{k} FPGA(s)/box",
                ArchitectureConfig.trainbox(prep_pool=False),
                dataclasses.replace(base_hw, fpgas_per_train_box=k),
                None,
            )
            for k in (1, 2)
        ]
        + [
            (
                "2 FPGAs/box + prep-pool",
                trainbox,
                base_hw,
                None,
            )
        ],
    )

    # 2. SSDs per train box (image models read compressed JPEG fast).
    resnet = get_workload("Resnet-50")
    sweep(
        "SSDs per train box",
        resnet,
        [
            (
                f"{k} SSD(s)/box",
                trainbox,
                dataclasses.replace(base_hw, ssds_per_train_box=k),
                None,
            )
            for k in (1, 2, 4)
        ],
    )

    # 3. PCIe generation inside the train box (the FPGA egress link is
    # the residual limit for the highest-rate image models).
    rnn_s = get_workload("RNN-S")
    gen4 = dataclasses.replace(trainbox, pcie_gen=PcieGen.GEN4, name="trainbox-gen4")
    sweep(
        "PCIe generation in the box",
        rnn_s,
        [
            ("Gen3 boxes", trainbox, base_hw, None),
            ("Gen4 boxes", gen4, base_hw, None),
        ],
    )

    # 4. Prep-pool size for the hungriest workload.
    tf_aa = get_workload("Transformer-AA")
    sweep(
        "prep-pool size",
        tf_aa,
        [
            (f"pool = {size} FPGAs", trainbox, base_hw, size)
            for size in (0, 32, 64, 96, 128)
        ],
    )

    # 5. Summary: which knob binds each workload at the paper's recipe.
    print(f"\n--- binding bottleneck per workload (paper recipe) ---")
    for name, workload in TABLE_I.items():
        result = run(workload, trainbox, base_hw)
        target = N * workload.sample_rate
        print(f"  {name:15s} {100 * result.throughput / target:5.1f}% of target, "
              f"bottleneck: {result.bottleneck}")


if __name__ == "__main__":
    main()
