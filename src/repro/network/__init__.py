"""The dedicated data-preparation network (§IV-D).

TrainBox connects every in-box FPGA to a pool of extra preparation
accelerators over Ethernet (100 Gb/s per link, top-of-rack switch) so a
train box deployed for one workload mix can borrow preparation throughput
when a heavier workload (audio) runs.  The network is dedicated —
separate from PCIe — "not to incur contentions on the PCIe".
"""

from repro.network.ethernet import EthernetLink, EthernetSwitch, StarNetwork
from repro.network.preppool import PoolAllocation, PrepPool

__all__ = [
    "EthernetLink",
    "EthernetSwitch",
    "PoolAllocation",
    "PrepPool",
    "StarNetwork",
]
