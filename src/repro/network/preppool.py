"""The prep-pool: shared extra data-preparation accelerators.

The pool is a set of FPGAs reachable over the preparation network.  The
train initializer requests accelerators for a job (through a global
resource manager in the paper — Mesos is cited; here the pool itself
arbitrates), and each train box's FPGA group shares its grant (§V-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.errors import CapacityError, ConfigError


@dataclass(frozen=True)
class PoolAllocation:
    """A grant of pool FPGAs to one training job."""

    job_id: str
    fpga_ids: tuple

    @property
    def count(self) -> int:
        return len(self.fpga_ids)


class PrepPool:
    """Allocates whole pool FPGAs to jobs; release returns them.

    The pool is also the failover domain for preparation compute
    (§V-A): when a granted FPGA dies, :meth:`fail` transparently
    replaces it from the free list so the job keeps its preparation
    rate — the paper's rule that an FPGA loss degrades a box, never
    kills the job.  Only when no spare exists does the grant shrink.
    """

    def __init__(self, fpga_ids: List[str]) -> None:
        if len(set(fpga_ids)) != len(fpga_ids):
            raise ConfigError(f"duplicate pool FPGA ids: {fpga_ids}")
        self._free: List[str] = list(fpga_ids)
        self._grants: Dict[str, PoolAllocation] = {}
        self._failed: List[str] = []

    @property
    def total(self) -> int:
        return len(self._free) + sum(g.count for g in self._grants.values())

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def failed(self) -> tuple:
        """FPGAs currently out of service, in failure order."""
        return tuple(self._failed)

    def allocate(self, job_id: str, count: int) -> PoolAllocation:
        """Grant ``count`` FPGAs to ``job_id`` (at most one grant per job)."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        if job_id in self._grants:
            raise ConfigError(f"job {job_id} already holds a grant")
        if count > len(self._free):
            obs.inc("preppool.rejections")
            raise CapacityError(
                f"job {job_id} requested {count} pool FPGAs, "
                f"only {len(self._free)} available"
            )
        with obs.span("preppool.allocate", cat="pool", job=job_id, count=count):
            granted = tuple(self._free[:count])
            del self._free[:count]
            grant = PoolAllocation(job_id, granted)
            self._grants[job_id] = grant
        obs.inc("preppool.allocations")
        obs.inc("preppool.fpgas_granted", count)
        obs.observe("preppool.grant_size", count)
        return grant

    def release(self, job_id: str) -> None:
        """Return a job's FPGAs to the pool."""
        try:
            grant = self._grants.pop(job_id)
        except KeyError:
            raise ConfigError(f"job {job_id} holds no grant") from None
        self._free.extend(grant.fpga_ids)
        obs.inc("preppool.releases")
        obs.inc("preppool.fpgas_released", grant.count)

    def grant_of(self, job_id: str) -> Optional[PoolAllocation]:
        return self._grants.get(job_id)

    def fail(self, fpga_id: str) -> Optional[str]:
        """Take a pool FPGA out of service.

        A free FPGA just leaves the pool.  A *granted* FPGA fails over:
        it is replaced in its grant by a free spare (returned), keeping
        the job's preparation rate intact; with no spare available the
        grant shrinks by one device (degraded, not dead) and ``None``
        is returned.
        """
        obs.inc("preppool.fpga_failures")
        if fpga_id in self._failed:
            raise ConfigError(f"pool FPGA {fpga_id} already failed")
        if fpga_id in self._free:
            self._free.remove(fpga_id)
            self._failed.append(fpga_id)
            return None
        for job_id, grant in self._grants.items():
            if fpga_id not in grant.fpga_ids:
                continue
            self._failed.append(fpga_id)
            surviving = tuple(f for f in grant.fpga_ids if f != fpga_id)
            if self._free:
                spare = self._free.pop(0)
                self._grants[job_id] = PoolAllocation(
                    job_id, surviving + (spare,)
                )
                obs.inc("preppool.failovers")
                obs.instant(
                    "preppool.failover", cat="pool",
                    job=job_id, lost=fpga_id, spare=spare,
                )
                return spare
            self._grants[job_id] = PoolAllocation(job_id, surviving)
            obs.inc("preppool.degraded_grants")
            return None
        raise ConfigError(f"unknown pool FPGA: {fpga_id}")

    def recover(self, fpga_id: str) -> None:
        """Return a previously failed FPGA to the free list."""
        if fpga_id not in self._failed:
            raise ConfigError(f"pool FPGA {fpga_id} is not failed")
        self._failed.remove(fpga_id)
        self._free.append(fpga_id)
        obs.inc("preppool.recoveries")


def pool_fpgas_needed(
    required_rate: float, in_box_rate: float, per_fpga_rate: float
) -> int:
    """How many pool FPGAs a job needs: the shortfall between required
    preparation throughput and what the boxes' own FPGAs deliver, divided
    by per-FPGA throughput (§V-A's sizing rule)."""
    if per_fpga_rate <= 0:
        raise ConfigError("per_fpga_rate must be positive")
    if required_rate < 0 or in_box_rate < 0:
        raise ConfigError("rates must be >= 0")
    shortfall = required_rate - in_box_rate
    if shortfall <= 0:
        return 0
    return math.ceil(shortfall / per_fpga_rate)
