"""The prep-pool: shared extra data-preparation accelerators.

The pool is a set of FPGAs reachable over the preparation network.  The
train initializer requests accelerators for a job (through a global
resource manager in the paper — Mesos is cited; here the pool itself
arbitrates), and each train box's FPGA group shares its grant (§V-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.errors import CapacityError, ConfigError


@dataclass(frozen=True)
class PoolAllocation:
    """A grant of pool FPGAs to one training job."""

    job_id: str
    fpga_ids: tuple

    @property
    def count(self) -> int:
        return len(self.fpga_ids)


class PrepPool:
    """Allocates whole pool FPGAs to jobs; release returns them."""

    def __init__(self, fpga_ids: List[str]) -> None:
        if len(set(fpga_ids)) != len(fpga_ids):
            raise ConfigError(f"duplicate pool FPGA ids: {fpga_ids}")
        self._free: List[str] = list(fpga_ids)
        self._grants: Dict[str, PoolAllocation] = {}

    @property
    def total(self) -> int:
        return len(self._free) + sum(g.count for g in self._grants.values())

    @property
    def available(self) -> int:
        return len(self._free)

    def allocate(self, job_id: str, count: int) -> PoolAllocation:
        """Grant ``count`` FPGAs to ``job_id`` (at most one grant per job)."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        if job_id in self._grants:
            raise ConfigError(f"job {job_id} already holds a grant")
        if count > len(self._free):
            obs.inc("preppool.rejections")
            raise CapacityError(
                f"job {job_id} requested {count} pool FPGAs, "
                f"only {len(self._free)} available"
            )
        with obs.span("preppool.allocate", cat="pool", job=job_id, count=count):
            granted = tuple(self._free[:count])
            del self._free[:count]
            grant = PoolAllocation(job_id, granted)
            self._grants[job_id] = grant
        obs.inc("preppool.allocations")
        obs.inc("preppool.fpgas_granted", count)
        obs.observe("preppool.grant_size", count)
        return grant

    def release(self, job_id: str) -> None:
        """Return a job's FPGAs to the pool."""
        try:
            grant = self._grants.pop(job_id)
        except KeyError:
            raise ConfigError(f"job {job_id} holds no grant") from None
        self._free.extend(grant.fpga_ids)
        obs.inc("preppool.releases")
        obs.inc("preppool.fpgas_released", grant.count)

    def grant_of(self, job_id: str) -> Optional[PoolAllocation]:
        return self._grants.get(job_id)


def pool_fpgas_needed(
    required_rate: float, in_box_rate: float, per_fpga_rate: float
) -> int:
    """How many pool FPGAs a job needs: the shortfall between required
    preparation throughput and what the boxes' own FPGAs deliver, divided
    by per-FPGA throughput (§V-A's sizing rule)."""
    if per_fpga_rate <= 0:
        raise ConfigError("per_fpga_rate must be positive")
    if required_rate < 0 or in_box_rate < 0:
        raise ConfigError("rates must be >= 0")
    shortfall = required_rate - in_box_rate
    if shortfall <= 0:
        return 0
    return math.ceil(shortfall / per_fpga_rate)
