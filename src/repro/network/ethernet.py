"""A star-topology Ethernet network: hosts, links, a switch.

Modeled the same way as PCIe links: full-duplex capacity per direction.
A transfer between two hosts traverses the sender's uplink (up) and the
receiver's uplink (down); the switch fabric itself is non-blocking
(top-of-rack parts are line-rate across ports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import TopologyError
from repro import units

#: 100 GbE, the class of NIC on current FPGA cards (§IV-D).
DEFAULT_ETHERNET_BANDWIDTH = 12.5 * units.GB


@dataclass(frozen=True)
class EthernetLink:
    """One host's full-duplex uplink to the switch."""

    host_id: str
    bandwidth: float = DEFAULT_ETHERNET_BANDWIDTH


@dataclass(frozen=True)
class EthernetFlow:
    """A unidirectional transfer with a per-iteration byte volume."""

    src: str
    dst: str
    volume: float


class EthernetSwitch:
    """A non-blocking switch with a bounded port count."""

    def __init__(self, switch_id: str = "tor", ports: int = 64) -> None:
        if ports <= 0:
            raise TopologyError("switch needs at least one port")
        self.switch_id = switch_id
        self.ports = ports


class StarNetwork:
    """Hosts attached to one switch; flow time accounting like PCIe."""

    def __init__(self, switch: EthernetSwitch = None) -> None:
        self.switch = switch or EthernetSwitch()
        self._links: Dict[str, EthernetLink] = {}

    def attach(self, link: EthernetLink) -> None:
        if link.host_id in self._links:
            raise TopologyError(f"duplicate host: {link.host_id}")
        if len(self._links) >= self.switch.ports:
            raise TopologyError(
                f"switch {self.switch.switch_id} has no free port "
                f"({self.switch.ports} used)"
            )
        self._links[link.host_id] = link

    def link_of(self, host_id: str) -> EthernetLink:
        try:
            return self._links[host_id]
        except KeyError:
            raise TopologyError(f"unknown host: {host_id}") from None

    def hosts(self) -> List[str]:
        return list(self._links)

    def completion_time(self, flows: Iterable[EthernetFlow]) -> float:
        """Pipelined steady-state time to move every flow's volume once:
        the busiest directed uplink decides."""
        up: Dict[str, float] = {}
        down: Dict[str, float] = {}
        for flow in flows:
            self.link_of(flow.src)
            self.link_of(flow.dst)
            if flow.src == flow.dst:
                continue
            up[flow.src] = up.get(flow.src, 0.0) + flow.volume
            down[flow.dst] = down.get(flow.dst, 0.0) + flow.volume
        worst = 0.0
        for host, volume in up.items():
            worst = max(worst, volume / self._links[host].bandwidth)
        for host, volume in down.items():
            worst = max(worst, volume / self._links[host].bandwidth)
        return worst
