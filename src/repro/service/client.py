"""A small synchronous client for the simulation service.

Blocking sockets on purpose: callers are CLIs, tests and benchmark
workers that want a dead-simple request/response surface.  The client
still exploits the protocol's pipelining — :meth:`ServiceClient.
request_many` writes a whole batch of frames before reading any
responses and correlates the out-of-order replies by ``id``.

Resilience is opt-in via :class:`RetryPolicy`: the server's ``rejected``
envelopes carry ``retry_after`` hints, and requests are idempotent by
content-hash fingerprint, so resending is always safe.  A policy-armed
client retries retryable rejections with jittered, capped exponential
backoff (never fewer seconds than the server's hint), and transparently
reconnects on a broken pipe — both for :meth:`ServiceClient.call` and
mid-pipeline in :meth:`ServiceClient.request_many`, which resends only
the frames that never got an answer.  ``deadline_exceeded`` and
``draining`` rejections are **not** retried by default: the first needs
a bigger budget, not a resend; the second needs a different replica.

Usage::

    from repro import api
    from repro.service import RetryPolicy, ServiceClient

    with ServiceClient(
        "127.0.0.1", 7543, tenant="team-a", retry=RetryPolicy()
    ) as client:
        response = client.call(
            api.SimulationRequest("Resnet-50", "trainbox", 256)
        )
        assert response["status"] == "ok"
        result = response["payload"]["result"]
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.service import protocol

__all__ = ["ConnectionLost", "RetryPolicy", "ServiceClient", "ServiceError"]


class ServiceError(ConfigError):
    """The server answered ``status: error`` to a strict call."""


class ConnectionLost(ConfigError):
    """The connection died mid-conversation (EOF or broken pipe).

    Retryable by resending: the server never saw (or never answered)
    the request, and requests are idempotent by fingerprint.
    """

    retryable = True


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered, server-hint-honoring retry behaviour.

    The delay before attempt *n*'s resend is
    ``max(retry_after, base_backoff * 2**n)`` capped at ``max_backoff``,
    then stretched by up to ``jitter`` (a fraction) of itself so a
    thundering herd of rejected clients decorrelates.  ``seed`` pins the
    jitter stream for deterministic tests and chaos drills.
    """

    max_attempts: int = 4        # total attempts (first try included)
    base_backoff: float = 0.05   # seconds before the first resend
    max_backoff: float = 2.0     # backoff cap (pre-jitter)
    jitter: float = 0.5          # up-to fraction added to each delay
    retry_codes: Tuple[str, ...] = ("backpressure", "quota", "retry")
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigError("backoff seconds must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ConfigError("jitter must be within [0, 1]")

    def delay(
        self, attempt: int, retry_after: float, rng: random.Random
    ) -> float:
        base = min(self.max_backoff, self.base_backoff * (2 ** attempt))
        delay = min(self.max_backoff, max(float(retry_after), base))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class ServiceClient:
    """One TCP connection to a simulation server.

    Not thread-safe: use one client per thread (the benchmark spawns one
    per simulated tenant).  ``timeout`` guards every socket operation so
    a dead server fails the call instead of hanging it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "anon",
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.tenant = tenant
        self.retry = retry
        self._host = host
        self._port = port
        self._timeout = timeout
        self._rng = random.Random(retry.seed if retry is not None else None)
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            raise ConfigError(
                f"cannot reach repro service at {self._host}:{self._port}: "
                f"{exc}"
            ) from None
        self._reader = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        """Drop the dead socket and dial again (ids keep increasing, so
        responses from the old connection can never be confused in)."""
        self.close()
        self._connect()

    def _send(self, envelope: Dict) -> None:
        try:
            self._sock.sendall(protocol.encode_frame(envelope))
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise ConnectionLost(f"send failed: {exc}") from None

    def _recv(self) -> Dict:
        try:
            line = self._reader.readline(protocol.MAX_FRAME_BYTES + 1)
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(f"read failed: {exc}") from None
        if not line:
            raise ConnectionLost("service closed the connection")
        if len(line) > protocol.MAX_FRAME_BYTES:
            raise ConfigError("service response exceeded the frame cap")
        return protocol.decode_frame(line)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _envelope(
        self, request, profile: bool, deadline_ms: Optional[float]
    ) -> Dict:
        envelope: Dict = {
            "id": self._take_id(),
            "tenant": self.tenant,
            "request": request.to_dict(),
        }
        if profile:
            envelope["profile"] = True
        if deadline_ms is not None:
            envelope["deadline_ms"] = deadline_ms
        return envelope

    @staticmethod
    def _retryable_rejection(response: Dict, policy: RetryPolicy) -> bool:
        if response.get("status") != protocol.STATUS_REJECTED:
            return False
        code = (response.get("error") or {}).get("code")
        return code in policy.retry_codes

    # -- the call surface ----------------------------------------------------

    def call(
        self,
        request,
        profile: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> Dict:
        """Send one request, return its response envelope.

        With a :class:`RetryPolicy`, retryable rejections are resent
        after a backoff honoring the server's ``retry_after`` hint, and
        a broken connection is redialed — bounded by ``max_attempts``
        either way.  Safe because requests are idempotent by
        fingerprint: a resend can only hit a cache tier or coalesce.
        """
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(attempts):
            last = attempt == attempts - 1
            envelope = self._envelope(request, profile, deadline_ms)
            try:
                self._send(envelope)
                response = self._recv()
            except ConnectionLost:
                if last:
                    raise
                time.sleep(self._rng.random() * 0.05)
                self._reconnect()
                continue
            if response.get("id") != envelope["id"]:
                raise ConfigError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {envelope['id']} (interleaved use of one "
                    f"client?)"
                )
            if (
                policy is not None
                and not last
                and self._retryable_rejection(response, policy)
            ):
                retry_after = float(
                    (response.get("meta") or {}).get("retry_after", 0.0)
                )
                time.sleep(policy.delay(attempt, retry_after, self._rng))
                continue
            return response
        raise ConfigError("unreachable: retry loop exhausted")  # pragma: no cover

    def call_strict(self, request, profile: bool = False) -> Dict:
        """Like :meth:`call` but raises on non-``ok`` responses and
        returns the payload directly."""
        response = self.call(request, profile=profile)
        if response.get("status") != protocol.STATUS_OK:
            error = response.get("error") or {}
            raise ServiceError(
                f"service answered {response.get('status')}: "
                f"{error.get('code')}: {error.get('message')}"
            )
        return response["payload"]

    def request_many(
        self,
        requests: Sequence,
        latencies: Optional[List[float]] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[Dict]:
        """Pipeline a batch: write every frame, then collect responses.

        Responses arrive in completion order; the returned list is
        re-sorted into *request* order via the echoed ids.  Pass a list
        as ``latencies`` to collect each response's arrival time in
        seconds since the batch started sending (arrival order, one
        entry per response) — the load harness times the batched path
        this way, since pipelined requests have no per-call round
        trip.

        A connection that breaks mid-pipeline is redialed and only the
        *unanswered* requests are resent (under fresh ids) — answers
        already collected are kept.  Redials are bounded by the retry
        policy's ``max_attempts`` (one redial without a policy); safe
        because requests are idempotent by fingerprint.
        """
        redials = (
            self.retry.max_attempts - 1 if self.retry is not None else 1
        )
        # Position-keyed bookkeeping survives id reassignment on resend.
        slot_by_id: Dict[int, int] = {}
        answers: List[Optional[Dict]] = [None] * len(requests)
        unanswered = list(range(len(requests)))
        t0 = time.perf_counter()
        for dial in range(redials + 1):
            try:
                for slot in unanswered:
                    envelope = self._envelope(requests[slot], False, deadline_ms)
                    slot_by_id[envelope["id"]] = slot
                    self._send(envelope)
                while unanswered:
                    response = self._recv()
                    slot = slot_by_id.get(response.get("id"))
                    if slot is None or answers[slot] is not None:
                        continue  # stale answer from a pre-redial send
                    if latencies is not None:
                        latencies.append(time.perf_counter() - t0)
                    answers[slot] = response
                    unanswered.remove(slot)
                break
            except ConnectionLost:
                if dial == redials:
                    raise
                time.sleep(self._rng.random() * 0.05)
                self._reconnect()
        if unanswered:
            raise ConfigError(
                f"service never answered requests at positions {unanswered}"
            )
        return [answer for answer in answers]

    def ping(self) -> Dict:
        rid = self._take_id()
        self._send({"id": rid, "op": "ping"})
        return self._recv()

    def stats(self) -> Dict:
        """The server's live counters/config (the ``stats`` op)."""
        rid = self._take_id()
        self._send({"id": rid, "op": "stats"})
        response = self._recv()
        if response.get("status") != protocol.STATUS_OK:
            raise ServiceError(f"stats failed: {response.get('error')}")
        return response["payload"]

    def raw(self, envelope: Dict) -> Dict:
        """Send an arbitrary envelope (protocol tests, ``repro client``)."""
        self._send(envelope)
        return self._recv()

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
