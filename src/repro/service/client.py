"""A small synchronous client for the simulation service.

Blocking sockets on purpose: callers are CLIs, tests and benchmark
workers that want a dead-simple request/response surface.  The client
still exploits the protocol's pipelining — :meth:`ServiceClient.
request_many` writes a whole batch of frames before reading any
responses and correlates the out-of-order replies by ``id``.

Usage::

    from repro import api
    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1", 7543, tenant="team-a") as client:
        response = client.call(
            api.SimulationRequest("Resnet-50", "trainbox", 256)
        )
        assert response["status"] == "ok"
        result = response["payload"]["result"]
"""

from __future__ import annotations

import socket
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ConfigError):
    """The server answered ``status: error`` to a strict call."""


class ServiceClient:
    """One TCP connection to a simulation server.

    Not thread-safe: use one client per thread (the benchmark spawns one
    per simulated tenant).  ``timeout`` guards every socket operation so
    a dead server fails the call instead of hanging it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "anon",
        timeout: float = 60.0,
    ) -> None:
        self.tenant = tenant
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ConfigError(
                f"cannot reach repro service at {host}:{port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def _send(self, envelope: Dict) -> None:
        self._sock.sendall(protocol.encode_frame(envelope))

    def _recv(self) -> Dict:
        line = self._reader.readline(protocol.MAX_FRAME_BYTES + 1)
        if not line:
            raise ConfigError("service closed the connection")
        if len(line) > protocol.MAX_FRAME_BYTES:
            raise ConfigError("service response exceeded the frame cap")
        return protocol.decode_frame(line)

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- the call surface ----------------------------------------------------

    def call(self, request, profile: bool = False) -> Dict:
        """Send one request, return its response envelope."""
        rid = self._take_id()
        envelope: Dict = {
            "id": rid,
            "tenant": self.tenant,
            "request": request.to_dict(),
        }
        if profile:
            envelope["profile"] = True
        self._send(envelope)
        response = self._recv()
        if response.get("id") != rid:
            raise ConfigError(
                f"response id {response.get('id')!r} does not match "
                f"request id {rid} (interleaved use of one client?)"
            )
        return response

    def call_strict(self, request, profile: bool = False) -> Dict:
        """Like :meth:`call` but raises on non-``ok`` responses and
        returns the payload directly."""
        response = self.call(request, profile=profile)
        if response.get("status") != protocol.STATUS_OK:
            error = response.get("error") or {}
            raise ServiceError(
                f"service answered {response.get('status')}: "
                f"{error.get('code')}: {error.get('message')}"
            )
        return response["payload"]

    def request_many(
        self,
        requests: Sequence,
        latencies: Optional[List[float]] = None,
    ) -> List[Dict]:
        """Pipeline a batch: write every frame, then collect responses.

        Responses arrive in completion order; the returned list is
        re-sorted into *request* order via the echoed ids.  Pass a list
        as ``latencies`` to collect each response's arrival time in
        seconds since the batch started sending (arrival order, one
        entry per response) — the load harness times the batched path
        this way, since pipelined requests have no per-call round
        trip."""
        ids = []
        t0 = time.perf_counter()
        for request in requests:
            rid = self._take_id()
            ids.append(rid)
            self._send(
                {"id": rid, "tenant": self.tenant, "request": request.to_dict()}
            )
        by_id: Dict[int, Dict] = {}
        for _ in ids:
            response = self._recv()
            if latencies is not None:
                latencies.append(time.perf_counter() - t0)
            by_id[response.get("id")] = response
        missing = [rid for rid in ids if rid not in by_id]
        if missing:
            raise ConfigError(f"service never answered requests {missing}")
        return [by_id[rid] for rid in ids]

    def ping(self) -> Dict:
        rid = self._take_id()
        self._send({"id": rid, "op": "ping"})
        return self._recv()

    def stats(self) -> Dict:
        """The server's live counters/config (the ``stats`` op)."""
        rid = self._take_id()
        self._send({"id": rid, "op": "stats"})
        response = self._recv()
        if response.get("status") != protocol.STATUS_OK:
            raise ServiceError(f"stats failed: {response.get('error')}")
        return response["payload"]

    def raw(self, envelope: Dict) -> Dict:
        """Send an arbitrary envelope (protocol tests, ``repro client``)."""
        self._send(envelope)
        return self._recv()

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
