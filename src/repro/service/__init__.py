"""``repro.service`` — simulation-as-a-service.

An asyncio TCP server (:mod:`~repro.service.server`) exposing the
:mod:`repro.api` facade to concurrent multi-tenant clients over a
newline-delimited JSON protocol (:mod:`~repro.service.protocol`), with
single-flight request coalescing, admission control with backpressure,
per-tenant token-bucket quotas, a tiered result lookup (in-process
memo → private disk cache → shared locked cache) and a cross-request
batch scheduler (:mod:`~repro.service.batch`) that stitches *distinct*
analytical requests into shared vectorized kernel dispatches.  The
resilience layer adds per-request deadlines, cancellation propagation,
graceful drain on SIGTERM, a kernel circuit breaker that degrades the
batch path to scalar, and a deterministic chaos drill
(:mod:`~repro.service.chaos`).  A small synchronous client with a
retry policy (:mod:`~repro.service.client`) and a load-test harness
(:mod:`~repro.service.bench`) ride along; ``repro serve`` /
``repro client`` / ``repro bench-service`` are the CLI entries.

See ``docs/service.md`` for the protocol and operational semantics.
"""

from repro.service.batch import BatchScheduler, KernelBreaker, batchable
from repro.service.bench import (
    BatchCompareReport,
    ChaosReport,
    LoadReport,
    distinct_trace,
    mixed_trace,
    run_batch_comparison,
    run_chaos_drill,
    run_load_test,
)
from repro.service.chaos import (
    ChaosError,
    ChaosInjector,
    ChaosResultCache,
    ServiceChaosSpec,
)
from repro.service.client import (
    ConnectionLost,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    DeadlineExceeded,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.service.server import (
    ServerThread,
    ServiceConfig,
    SimulationServer,
    SimulationService,
    TokenBucket,
    default_workers,
    execute_request,
    serve,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL",
    "BatchCompareReport",
    "BatchScheduler",
    "ChaosError",
    "ChaosInjector",
    "ChaosReport",
    "ChaosResultCache",
    "ConnectionLost",
    "DeadlineExceeded",
    "KernelBreaker",
    "LoadReport",
    "ProtocolError",
    "RetryPolicy",
    "ServerThread",
    "ServiceChaosSpec",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SimulationServer",
    "SimulationService",
    "TokenBucket",
    "batchable",
    "decode_frame",
    "default_workers",
    "distinct_trace",
    "encode_frame",
    "execute_request",
    "mixed_trace",
    "run_batch_comparison",
    "run_chaos_drill",
    "run_load_test",
    "serve",
]
