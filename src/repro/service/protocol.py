"""The service wire protocol: newline-delimited JSON frames over TCP.

One frame per line, one JSON object per frame.  A client sends request
envelopes and reads response envelopes; requests may be pipelined on one
connection and responses may arrive **out of order** — the ``id`` field
correlates them (the server echoes it verbatim).

Request envelope::

    {"id": 7, "tenant": "team-a", "request": {<request.to_dict()>}}
    {"id": 8, "op": "stats"}          # admin ops: stats | ping

``request`` is a versioned :mod:`repro.api` request object
(``repro-request/1``): ``simulate``, ``sweep`` or
``price_fault_schedule``.

Response envelope::

    {"id": 7, "status": "ok",       "payload": {...}, "meta": {...}}
    {"id": 7, "status": "rejected", "error": {"code": "backpressure", ...},
     "meta": {"retry_after": 0.05}}
    {"id": 7, "status": "error",    "error": {"code": "bad-request", ...}}

``meta.served_by`` on ok responses names the tier that produced the
payload: ``computed``, ``batched`` (stitched into a shared vectorized
kernel dispatch with other tenants' points — same bits, one engine
pass), ``coalesced`` (attached to an identical in-flight computation),
``memo`` (in-process LRU), ``disk`` or ``shared`` (the on-disk tiers).
``rejected`` means the request was turned away but may
succeed if resent — codes ``backpressure`` (admission control), ``quota``
(tenant over budget), or ``retry`` (the in-flight computation this
request coalesced onto was cancelled) — retry after ``meta.retry_after``
seconds; ``error`` means the request itself is unservable (malformed,
unknown workload, engine failure) and retrying it unchanged cannot help.

Frames are canonical (sorted keys, compact separators), so identical
payloads are byte-identical on the wire.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ConfigError

#: Protocol version, echoed by ``ping`` and stamped into ``stats``.
PROTOCOL = "repro-service/1"

#: Per-frame size cap (a sweep response over a large grid is big, a
#: request should never be).  The server reads lines with this limit.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Response statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"


class ProtocolError(ConfigError):
    """A frame that is not valid protocol (bad JSON, not an object)."""


def encode_frame(obj: Dict) -> bytes:
    """Canonical wire form: compact sorted-key JSON plus newline."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(
    rid: Any, payload: Dict, meta: Optional[Dict] = None
) -> Dict:
    return {
        "id": rid,
        "status": STATUS_OK,
        "payload": payload,
        "meta": meta or {},
    }


def rejected_response(
    rid: Any, code: str, message: str, retry_after: float
) -> Dict:
    return {
        "id": rid,
        "status": STATUS_REJECTED,
        "error": {"code": code, "message": message},
        "meta": {"retry_after": retry_after},
    }


def error_response(rid: Any, code: str, message: str) -> Dict:
    return {
        "id": rid,
        "status": STATUS_ERROR,
        "error": {"code": code, "message": message},
    }
