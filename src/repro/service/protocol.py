"""The service wire protocol: newline-delimited JSON frames over TCP.

One frame per line, one JSON object per frame.  A client sends request
envelopes and reads response envelopes; requests may be pipelined on one
connection and responses may arrive **out of order** — the ``id`` field
correlates them (the server echoes it verbatim).

Request envelope::

    {"id": 7, "tenant": "team-a", "request": {<request.to_dict()>}}
    {"id": 9, "tenant": "team-a", "deadline_ms": 250.0, "request": {...}}
    {"id": 8, "op": "stats"}          # admin ops: stats | ping

``request`` is a versioned :mod:`repro.api` request object
(``repro-request/1``): ``simulate``, ``sweep`` or
``price_fault_schedule``.  ``deadline_ms`` is an optional per-request
latency budget (a positive finite number of milliseconds, measured from
the moment the server admits the frame): a request the server cannot
answer within its budget is answered with a ``deadline_exceeded``
rejection instead of a late result.  Requests without a deadline are
never timed out by the server.

Response envelope::

    {"id": 7, "status": "ok",       "payload": {...}, "meta": {...}}
    {"id": 7, "status": "rejected", "error": {"code": "backpressure", ...},
     "meta": {"retry_after": 0.05}}
    {"id": 7, "status": "error",    "error": {"code": "bad-request", ...}}

``meta.served_by`` on ok responses names the tier that produced the
payload: ``computed``, ``batched`` (stitched into a shared vectorized
kernel dispatch with other tenants' points — same bits, one engine
pass), ``coalesced`` (attached to an identical in-flight computation),
``memo`` (in-process LRU), ``disk`` or ``shared`` (the on-disk tiers).
``rejected`` means the request was turned away but may
succeed if resent — codes ``backpressure`` (admission control), ``quota``
(tenant over budget), ``retry`` (the in-flight computation this
request coalesced onto was cancelled), ``deadline_exceeded`` (the
request's ``deadline_ms`` budget ran out first; resend with a larger
budget), or ``draining`` (the server is shutting down gracefully and no
longer admits new work) — retry after ``meta.retry_after`` seconds;
``error`` means the request itself is unservable (malformed, unknown
workload, engine failure) and retrying it unchanged cannot help.

Frames are canonical (sorted keys, compact separators), so identical
payloads are byte-identical on the wire.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional

from repro.errors import ConfigError

#: Protocol version, echoed by ``ping`` and stamped into ``stats``.
PROTOCOL = "repro-service/1"

#: Per-frame size cap (a sweep response over a large grid is big, a
#: request should never be).  The server reads lines with this limit.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Response statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"


class ProtocolError(ConfigError):
    """A frame that is not valid protocol (bad JSON, not an object)."""


class DeadlineExceeded(ConfigError):
    """A request's ``deadline_ms`` budget ran out before its answer.

    Raised internally by the broker and batch scheduler; on the wire it
    becomes a ``rejected`` envelope with code ``deadline_exceeded``.
    Shared work the request was attached to keeps running for its other
    waiters — only this request's answer is given up on.
    """

    retryable = True


def parse_deadline_ms(value) -> Optional[float]:
    """Validate an envelope's ``deadline_ms`` field.

    Returns the budget in milliseconds, or ``None`` when absent.
    Raises :class:`ProtocolError` on anything that is not a positive
    finite real number — a garbage deadline is a malformed request, not
    an instantly-expired one.
    """
    if value is None:
        return None
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or value <= 0
    ):
        raise ProtocolError(
            f"deadline_ms must be a positive finite number of "
            f"milliseconds, got {value!r}"
        )
    return float(value)


def encode_frame(obj: Dict) -> bytes:
    """Canonical wire form: compact sorted-key JSON plus newline."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(
    rid: Any, payload: Dict, meta: Optional[Dict] = None
) -> Dict:
    return {
        "id": rid,
        "status": STATUS_OK,
        "payload": payload,
        "meta": meta or {},
    }


def rejected_response(
    rid: Any, code: str, message: str, retry_after: float
) -> Dict:
    return {
        "id": rid,
        "status": STATUS_REJECTED,
        "error": {"code": code, "message": message},
        "meta": {"retry_after": retry_after},
    }


def error_response(rid: Any, code: str, message: str) -> Dict:
    return {
        "id": rid,
        "status": STATUS_ERROR,
        "error": {"code": code, "message": message},
    }
