"""Deterministic fault injection for the simulation service.

Sibling of :mod:`repro.dataprep.chaos`, which proved the prep engine's
retry/quarantine machinery against seeded faults; this module does the
same for the serving stack.  A frozen :class:`ServiceChaosSpec` decides
every fault as a **pure function of (seed, fault kind, token)** — the
token is a content hash (request fingerprint, sweep-point cache key) or
a stable ordinal, never arrival order — so two runs with the same seed
inject the same faults into the same work no matter how threads
interleave, and a drill failure replays exactly.

Fault kinds and where they bite:

* ``compute_error`` — :class:`ChaosError` raised at the top of the
  scalar compute path on an executor thread (an "executor task
  exception"); the broker's never-raises hardening must turn it into an
  ``internal`` error envelope, and a resend heals it
  (``first_attempt_only``).
* ``compute_delay`` — added latency before the engine runs; answers
  stay bit-identical, deadlines and drains must still hold.
* ``point_error`` — one sweep point inside a batch dispatch fails; per
  point error isolation means only requests containing that point see
  an error.
* ``dispatch_error`` — a whole kernel dispatch dies before computing
  (the breaker's food).  Driven by an explicit ordinal list, not a
  rate, so a drill trips the :class:`~repro.service.batch.KernelBreaker`
  deterministically.
* ``disk_error`` — :class:`ChaosResultCache` raises ``OSError`` from a
  cache tier operation; tiers degrade (``service.cache_errors``), the
  request is still answered bit-identically.
* ``drop_connection`` — decided for the drill's client loop, which
  slams the socket mid-request to exercise EOF cancellation.

The injector is the small stateful wrapper around the spec: it tracks
per-token attempt counts (so ``first_attempt_only`` faults heal on
resend — the heal path is the point of the drill) and tallies injected
faults per kind.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "FAULT_KINDS",
    "ChaosError",
    "ChaosInjector",
    "ChaosResultCache",
    "ServiceChaosSpec",
]

#: Every fault kind an injector can fire, in documentation order.
FAULT_KINDS = (
    "compute_error",
    "compute_delay",
    "point_error",
    "dispatch_error",
    "disk_error",
    "drop_connection",
)


class ChaosError(RuntimeError):
    """An injected fault (never raised by real engine code).

    Deliberately *not* a :class:`~repro.errors.ReproError`: it must
    exercise the broker's unexpected-exception hardening and surface as
    an ``internal`` error envelope, exactly like a genuine engine bug.
    """


def _rates_valid(*rates: float) -> bool:
    return all(0.0 <= rate <= 1.0 for rate in rates)


@dataclass(frozen=True)
class ServiceChaosSpec:
    """The frozen fault plan: seed + per-kind rates.

    ``decide(kind, token)`` maps into ``[0, 1)`` via a keyed hash; a
    fault fires when that value falls under the kind's rate.  Content
    tokens make decisions timing-independent; ``first_attempt_only``
    (handled by the injector) makes them heal on resend, which is what
    lets a drill assert eventual bit-identical recovery.
    """

    seed: int = 0
    compute_error_rate: float = 0.0
    compute_delay_rate: float = 0.0
    compute_delay_ms: float = 2.0
    point_error_rate: float = 0.0
    dispatch_fault_ordinals: Tuple[int, ...] = ()
    disk_error_rate: float = 0.0
    drop_rate: float = 0.0
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        if not _rates_valid(
            self.compute_error_rate,
            self.compute_delay_rate,
            self.point_error_rate,
            self.disk_error_rate,
            self.drop_rate,
        ):
            raise ConfigError("chaos rates must be within [0, 1]")
        if self.compute_delay_ms < 0:
            raise ConfigError("compute_delay_ms must be >= 0")
        if any(o < 0 for o in self.dispatch_fault_ordinals):
            raise ConfigError("dispatch_fault_ordinals must be >= 0")

    def decide(self, kind: str, token: str) -> float:
        """The fault coin for ``(seed, kind, token)`` in ``[0, 1)``."""
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{token}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class ChaosInjector:
    """Stateful fault driver shared by the service and the drill.

    Thread-safe: compute and dispatch hooks run on executor threads,
    connection-drop decisions on client threads.  ``counts`` (via
    :meth:`snapshot`) tallies the faults actually injected.
    """

    def __init__(self, spec: ServiceChaosSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._attempts: Dict[Tuple[str, str], int] = {}
        self._dispatch_ordinals = itertools.count()
        self._counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _fires(self, kind: str, rate: float, token: str) -> bool:
        """One fault decision; counts the attempt either way."""
        with self._lock:
            attempt = self._attempts.get((kind, token), 0)
            self._attempts[(kind, token)] = attempt + 1
        if rate <= 0.0:
            return False
        if self.spec.first_attempt_only and attempt > 0:
            return False
        if self.spec.decide(kind, token) >= rate:
            return False
        with self._lock:
            self._counts[kind] += 1
        return True

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    # -- hooks the service calls ---------------------------------------------

    def before_compute(self, fp: str) -> None:
        """Scalar compute path, executor thread: maybe delay, maybe die."""
        spec = self.spec
        if self._fires("compute_delay", spec.compute_delay_rate, fp):
            time.sleep(spec.compute_delay_ms / 1000.0)
        if self._fires("compute_error", spec.compute_error_rate, fp):
            raise ChaosError(f"chaos: injected compute fault ({fp[:12]})")

    def before_dispatch(self) -> None:
        """Batch dispatch, executor thread: ordinal-listed dispatches die
        wholesale.  Ordinals, not hashes: a drill lists consecutive
        ordinals to trip the kernel breaker deterministically."""
        with self._lock:
            ordinal = next(self._dispatch_ordinals)
        if ordinal in self.spec.dispatch_fault_ordinals:
            with self._lock:
                self._counts["dispatch_error"] += 1
            raise ChaosError(
                f"chaos: injected dispatch fault (ordinal {ordinal})"
            )

    def point_error(self, key: str) -> Optional[BaseException]:
        """Batch kernel scatter: the exception to poison ``key`` with."""
        if self._fires("point_error", self.spec.point_error_rate, key):
            return ChaosError(f"chaos: injected point fault ({key[:12]})")
        return None

    def maybe_disk_fault(self, op: str, key: str) -> None:
        if self._fires("disk_error", self.spec.disk_error_rate, f"{op}:{key}"):
            raise OSError(f"chaos: injected disk fault ({op} {key[:12]})")

    def drop_connection(self, token: str) -> bool:
        """Client-side: whether the drill should slam this connection."""
        return self._fires("drop_connection", self.spec.drop_rate, token)

    def wrap_cache(self, cache) -> Optional["ChaosResultCache"]:
        """Fault-wrap one cache tier (identity for an absent tier)."""
        if cache is None:
            return None
        return ChaosResultCache(cache, self)


class ChaosResultCache:
    """A :class:`~repro.cache.ResultCache` proxy that injects OSErrors.

    Every service-side tier access is already guarded with ``except
    OSError`` (counted as ``service.cache_errors``), so injected disk
    faults degrade the tier without failing the request — which is
    exactly the claim the drill verifies.
    """

    def __init__(self, inner, injector: ChaosInjector) -> None:
        self._inner = inner
        self._injector = injector

    def get(self, key: str):
        self._injector.maybe_disk_fault("get", key)
        return self._inner.get(key)

    def put(self, key: str, payload) -> None:
        self._injector.maybe_disk_fault("put", key)
        self._inner.put(key, payload)

    def get_many(self, keys):
        keys = list(keys)
        for key in keys:
            self._injector.maybe_disk_fault("get", key)
        return self._inner.get_many(keys)

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)
