"""Service load harness: N concurrent clients replaying a mixed trace.

The gate behind ``repro bench-service`` and
``benchmarks/bench_service.py``.  A :class:`~repro.service.server.
ServerThread` is started fresh (empty memo, optional empty disk tier), a
deterministic trace of unique requests is inflated with duplicates and
dealt round-robin to ``n_clients`` threads, and every response is
checked **bit-identical** against a direct :func:`~repro.service.server.
execute_request` evaluation of the same request object — the service
may change *when* a result is computed, never *what*.

Because the server starts cold, the accounting is deterministic whatever
the interleaving: every unique request is served by exactly one engine
pass (``computed + batched == unique``) and every duplicate is served
without engine work — ``coalesced`` when it overlapped the computation
in flight, ``memo`` when it arrived after — so ``coalesced + memo ==
duplicates``.  Latency lands in the committed baseline as rates (1/p50,
1/p99) so the existing :mod:`repro.perf` regression machinery gates it
unchanged.

A second harness, :func:`run_batch_comparison`, targets the
cross-request batch scheduler specifically: an **all-distinct**
analytical trace (0% duplicates, so coalescing and the memo can do
nothing) is pipelined from N clients against the same server config
with batching on and off, and the batched run must beat the unbatched
one by a committed p99 floor while every response stays bit-identical
to :func:`~repro.service.server.execute_request`.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.errors import ConfigError
from repro.perf import Measurement
from repro.service.chaos import ChaosInjector, ServiceChaosSpec
from repro.service.client import ConnectionLost, RetryPolicy, ServiceClient
from repro.service.server import (
    ServerThread,
    ServiceConfig,
    execute_request,
)

__all__ = [
    "BASELINE_PATH",
    "BATCH_BASELINE_PATH",
    "BatchCompareReport",
    "ChaosReport",
    "LoadReport",
    "distinct_trace",
    "mixed_trace",
    "run_batch_comparison",
    "run_chaos_drill",
    "run_load_test",
]

#: Where the committed service latency baseline lives.
BASELINE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "baselines"
    / "service_latency.json"
)

#: The committed cross-request batching baseline (distinct-point trace).
BATCH_BASELINE_PATH = BASELINE_PATH.with_name("service_batch.json")


def mixed_trace() -> List:
    """The deterministic unique-request trace the load test replays.

    A realistic mix: mostly cheap analytical simulates across several
    workloads/architectures/scales, a couple of DES runs (the expensive
    tail that makes coalescing visible), one small sweep and one
    fault-schedule pricing.
    """
    requests: List = []
    for workload in ("Resnet-50", "VGG-19", "RNN-S", "Transformer-SR"):
        for arch in ("baseline", "trainbox"):
            for scale in (16, 64, 256):
                requests.append(
                    api.SimulationRequest(workload, arch, scale)
                )
    requests.append(
        api.SimulationRequest(
            "Resnet-50", "trainbox", 16, engine="des", des_iterations=12
        )
    )
    requests.append(
        api.SimulationRequest(
            "Inception-v4", "trainbox", 32, engine="des", des_iterations=12
        )
    )
    requests.append(
        api.SweepRequest(
            workloads=("Resnet-50", "RNN-L"),
            archs=("baseline", "trainbox"),
            scales=(16, 64),
        )
    )
    from repro.core.server import build_server

    server = build_server(api.resolve_arch("trainbox"), 16)
    fpga = server.boxes[0].prep_ids[0]
    requests.append(
        api.FaultScheduleRequest(
            "Resnet-50",
            "trainbox",
            16,
            events=((fpga, 10.0, 40.0),),
            horizon=60.0,
        )
    )
    return requests


def distinct_trace() -> List:
    """An all-distinct analytical trace: every Table I workload crossed
    with four architectures and the full scale ladder (252 requests, no
    two sharing a fingerprint).  Coalescing and the request memo cannot
    help here — only cross-request batching can collapse the work.
    """
    from repro.core.sweeps import SCALE_LADDER
    from repro.workloads.registry import workload_names

    return [
        api.SimulationRequest(workload, arch, scale)
        for workload in workload_names()
        for arch in ("baseline", "acc", "trainbox", "gen4")
        for scale in SCALE_LADDER
    ]


def _shuffled(items: List, seed: int) -> List:
    """Deterministic shuffle (LCG Fisher–Yates, independent of the
    global RNG state)."""
    out = list(items)
    state = seed & 0xFFFFFFFF
    for i in range(len(out) - 1, 0, -1):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        j = state % (i + 1)
        out[i], out[j] = out[j], out[i]
    return out


@dataclass
class LoadReport:
    """What one load-test run measured."""

    n_clients: int
    total: int
    unique: int
    duplicates: int
    computed: int
    batched: int
    coalesced: int
    memo_hits: int
    disk_hits: int
    errors: int
    rejected: int
    wall_seconds: float
    latencies: List[float] = field(repr=False)

    @property
    def p50_seconds(self) -> float:
        return self._quantile(0.50)

    @property
    def p99_seconds(self) -> float:
        return self._quantile(0.99)

    def _quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of duplicate requests served by single-flight."""
        if self.duplicates <= 0:
            return 0.0
        return self.coalesced / self.duplicates

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of all requests served without an engine run."""
        if self.total <= 0:
            return 0.0
        return (
            self.coalesced + self.memo_hits + self.disk_hits
        ) / self.total

    @property
    def requests_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.total / self.wall_seconds

    def measurements(self) -> List[Measurement]:
        """The latency figures as :mod:`repro.perf` rate measurements
        (1/latency, so 'samples per second' still means faster=bigger
        and the standard regression tolerance applies unchanged)."""
        return [
            Measurement("service_p50_rate", 1, self.p50_seconds),
            Measurement("service_p99_rate", 1, self.p99_seconds),
            Measurement("service_throughput", self.total, self.wall_seconds),
        ]

    def summary(self) -> str:
        return (
            f"{self.total} requests ({self.unique} unique, "
            f"{self.duplicates} duplicates) over {self.n_clients} clients "
            f"in {self.wall_seconds:.2f}s — "
            f"p50 {self.p50_seconds * 1e3:.1f} ms, "
            f"p99 {self.p99_seconds * 1e3:.1f} ms, "
            f"computed {self.computed}, batched {self.batched}, "
            f"coalesced {self.coalesced}, "
            f"memo {self.memo_hits}, "
            f"coalesce ratio {self.coalesce_ratio:.0%}, "
            f"cache-hit ratio {self.cache_hit_ratio:.0%}"
        )


def run_load_test(
    n_clients: int = 16,
    dup_factor: int = 2,
    config: Optional[ServiceConfig] = None,
    seed: int = 17,
    check_identity: bool = True,
) -> LoadReport:
    """Replay the mixed trace from ``n_clients`` concurrent clients.

    ``dup_factor`` copies of every unique request are interleaved
    (``dup_factor=2`` → 50% duplicates), so both the coalescing path
    and the memo path are exercised.  With ``check_identity`` every
    response payload is compared — canonical JSON, hence bit-for-bit —
    against a direct in-process :func:`execute_request` evaluation, and
    the cold-start accounting invariants are asserted:
    ``computed + batched == unique`` and ``coalesced + memo ==
    duplicates``.
    """
    if n_clients < 1:
        raise ConfigError("n_clients must be >= 1")
    if dup_factor < 1:
        raise ConfigError("dup_factor must be >= 1")
    unique = mixed_trace()
    trace = _shuffled(unique * dup_factor, seed)
    config = config or ServiceConfig(
        max_workers=4, max_pending=max(64, len(trace))
    )

    expected: Dict[str, str] = {}
    if check_identity:
        for request in unique:
            expected[request.fingerprint()] = json.dumps(
                execute_request(request), sort_keys=True
            )

    shards: List[List] = [trace[i::n_clients] for i in range(n_clients)]
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    failures: List[str] = []
    barrier = threading.Barrier(n_clients + 1)

    with ServerThread(config) as srv:
        host, port = srv.address

        def worker(idx: int) -> None:
            try:
                with ServiceClient(
                    host, port, tenant=f"tenant-{idx % 4}"
                ) as client:
                    barrier.wait()
                    for request in shards[idx]:
                        t0 = time.perf_counter()
                        response = client.call(request)
                        latencies[idx].append(time.perf_counter() - t0)
                        if response.get("status") != "ok":
                            failures.append(
                                f"client {idx}: {response.get('error')}"
                            )
                            continue
                        if check_identity:
                            got = json.dumps(
                                response["payload"], sort_keys=True
                            )
                            want = expected[request.fingerprint()]
                            if got != want:
                                failures.append(
                                    f"client {idx}: response for "
                                    f"{request.kind} diverged from the "
                                    f"direct api call"
                                )
            except Exception as exc:  # surfaced after join
                failures.append(f"client {idx}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - t0
        counters = srv.service.registry.to_manifest()["counters"]

    if failures:
        raise ConfigError(
            f"service load test failed ({len(failures)} failures): "
            + "; ".join(failures[:5])
        )

    report = LoadReport(
        n_clients=n_clients,
        total=len(trace),
        unique=len(unique),
        duplicates=len(trace) - len(unique),
        computed=counters.get("service.computed", 0),
        batched=counters.get("service.batched", 0),
        coalesced=counters.get("service.coalesced", 0),
        memo_hits=counters.get("service.memo_hits", 0),
        disk_hits=counters.get("service.disk_hits", 0)
        + counters.get("service.shared_hits", 0),
        errors=counters.get("service.errors", 0),
        rejected=counters.get("service.rejected_backpressure", 0)
        + counters.get("service.rejected_quota", 0),
        wall_seconds=wall,
        latencies=[lat for per_client in latencies for lat in per_client],
    )

    if check_identity:
        # Cold server: every unique request is served by exactly one
        # engine pass (direct or stitched into a batch dispatch), every
        # duplicate is served without engine work — whatever the timing.
        if report.computed + report.batched != report.unique:
            raise ConfigError(
                f"dedup broke: {report.computed} computed + "
                f"{report.batched} batched for "
                f"{report.unique} unique requests"
            )
        if report.coalesced + report.memo_hits != report.duplicates:
            raise ConfigError(
                f"dedup accounting broke: {report.coalesced} coalesced + "
                f"{report.memo_hits} memo != {report.duplicates} duplicates"
            )
    return report


# -- cross-request batching comparison ---------------------------------------


@dataclass
class BatchCompareReport:
    """Batched vs unbatched runs of the same distinct-point trace."""

    batched: LoadReport
    unbatched: LoadReport
    batch_points: int
    batch_dispatches: int
    batch_kernel: int

    @property
    def points_per_dispatch(self) -> float:
        """Mean stitched points per kernel dispatch — the batching
        efficiency the acceptance gate reads off the counters."""
        if self.batch_dispatches <= 0:
            return 0.0
        return self.batch_points / self.batch_dispatches

    @property
    def p99_speedup(self) -> float:
        if self.batched.p99_seconds <= 0:
            return float("inf")
        return self.unbatched.p99_seconds / self.batched.p99_seconds

    @property
    def p50_speedup(self) -> float:
        if self.batched.p50_seconds <= 0:
            return float("inf")
        return self.unbatched.p50_seconds / self.batched.p50_seconds

    def measurements(self) -> List[Measurement]:
        """Rate measurements for the committed batching baseline."""
        return [
            Measurement(
                "service_batch_p50_rate", 1, self.batched.p50_seconds
            ),
            Measurement(
                "service_batch_p99_rate", 1, self.batched.p99_seconds
            ),
            Measurement(
                "service_batch_throughput",
                self.batched.total,
                self.batched.wall_seconds,
            ),
        ]

    def summary(self) -> str:
        b, u = self.batched, self.unbatched
        return (
            f"{b.total} distinct requests over {b.n_clients} clients — "
            f"batched p99 {b.p99_seconds * 1e3:.1f} ms vs unbatched "
            f"{u.p99_seconds * 1e3:.1f} ms ({self.p99_speedup:.1f}x), "
            f"{self.batch_points} points in {self.batch_dispatches} "
            f"dispatches ({self.points_per_dispatch:.1f} points/dispatch, "
            f"{self.batch_kernel} kernel-priced)"
        )


def _pipelined_phase(
    trace: List,
    n_clients: int,
    config: ServiceConfig,
    expected: Dict[str, str],
) -> Tuple[LoadReport, Dict[str, int]]:
    """One cold-server phase: shard the trace, pipeline every shard.

    Each client writes its whole shard before reading any response, so
    the server sees the concurrent burst a batching window needs; the
    identical harness times the unbatched config, which keeps the
    comparison apples-to-apples.  Returns the phase's
    :class:`LoadReport` and the server's raw counters.
    """
    shards = [trace[i::n_clients] for i in range(n_clients)]
    shards = [s for s in shards if s]
    n_live = len(shards)
    latencies: List[List[float]] = [[] for _ in range(n_live)]
    failures: List[str] = []
    barrier = threading.Barrier(n_live + 1)

    with ServerThread(config) as srv:
        host, port = srv.address

        def worker(idx: int) -> None:
            try:
                with ServiceClient(
                    host, port, tenant=f"tenant-{idx % 4}"
                ) as client:
                    barrier.wait()
                    responses = client.request_many(
                        shards[idx], latencies=latencies[idx]
                    )
                    for request, response in zip(shards[idx], responses):
                        if response.get("status") != "ok":
                            failures.append(
                                f"client {idx}: {response.get('error')}"
                            )
                            continue
                        if expected:
                            got = json.dumps(
                                response["payload"], sort_keys=True
                            )
                            if got != expected[request.fingerprint()]:
                                failures.append(
                                    f"client {idx}: response for "
                                    f"{request.kind} diverged from the "
                                    f"direct api call"
                                )
            except Exception as exc:  # surfaced after join
                failures.append(f"client {idx}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_live)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - t0
        counters = srv.service.registry.to_manifest()["counters"]

    if failures:
        raise ConfigError(
            f"service batch phase failed ({len(failures)} failures): "
            + "; ".join(failures[:5])
        )

    report = LoadReport(
        n_clients=n_clients,
        total=len(trace),
        unique=len(trace),
        duplicates=0,
        computed=counters.get("service.computed", 0),
        batched=counters.get("service.batched", 0),
        coalesced=counters.get("service.coalesced", 0),
        memo_hits=counters.get("service.memo_hits", 0),
        disk_hits=counters.get("service.disk_hits", 0)
        + counters.get("service.shared_hits", 0),
        errors=counters.get("service.errors", 0),
        rejected=counters.get("service.rejected_backpressure", 0)
        + counters.get("service.rejected_quota", 0),
        wall_seconds=wall,
        latencies=[lat for per_client in latencies for lat in per_client],
    )
    return report, counters


def run_batch_comparison(
    n_clients: int = 16,
    config: Optional[ServiceConfig] = None,
    seed: int = 23,
    check_identity: bool = True,
    speedup_floor: float = 0.0,
    min_points_per_dispatch: float = 4.0,
) -> BatchCompareReport:
    """Pipeline the all-distinct trace with batching on, then off.

    Both phases run the same cold server config (only ``batch_enabled``
    differs), the same shards, the same pipelined clients.  With
    ``check_identity`` every response from *both* phases is compared
    bit-for-bit against a direct :func:`execute_request` evaluation
    **before** any timing is read, and the cold-server accounting is
    asserted: the batched phase serves every request from the batch path
    (``batched == unique``), the unbatched phase computes each one
    (``computed == unique``), and the stitch counters must show real
    multi-point dispatches (``points/dispatch >
    min_points_per_dispatch``).

    ``speedup_floor`` > 0 turns the p99 comparison into a hard gate:
    the batched phase must be at least that many times faster or the
    run raises (the CI smoke passes 2.0).
    """
    if n_clients < 1:
        raise ConfigError("n_clients must be >= 1")
    trace = _shuffled(distinct_trace(), seed)
    config = config or ServiceConfig(max_pending=max(64, len(trace)))
    if config.max_pending < len(trace):
        config = dataclasses.replace(config, max_pending=len(trace))

    expected: Dict[str, str] = {}
    if check_identity:
        # Also warms the process-global model/demand memos, so neither
        # phase pays first-touch compilation inside its timed window.
        for request in trace:
            expected[request.fingerprint()] = json.dumps(
                execute_request(request), sort_keys=True
            )

    on = dataclasses.replace(config, batch_enabled=True)
    off = dataclasses.replace(config, batch_enabled=False)
    unbatched, _ = _pipelined_phase(trace, n_clients, off, expected)
    batched, counters = _pipelined_phase(trace, n_clients, on, expected)

    report = BatchCompareReport(
        batched=batched,
        unbatched=unbatched,
        batch_points=counters.get("service.batch_points", 0),
        batch_dispatches=counters.get("service.batch_dispatches", 0),
        batch_kernel=counters.get("service.batch_point_kernel", 0),
    )

    if check_identity:
        if batched.batched != batched.unique:
            raise ConfigError(
                f"batch routing broke: {batched.batched} batched of "
                f"{batched.unique} distinct requests"
            )
        if unbatched.computed != unbatched.unique:
            raise ConfigError(
                f"unbatched phase broke: {unbatched.computed} computed of "
                f"{unbatched.unique} distinct requests"
            )
        if report.points_per_dispatch <= min_points_per_dispatch:
            raise ConfigError(
                f"batching degenerated: {report.batch_points} points over "
                f"{report.batch_dispatches} dispatches "
                f"({report.points_per_dispatch:.1f} <= "
                f"{min_points_per_dispatch} points/dispatch)"
            )
    if speedup_floor > 0 and report.p99_speedup < speedup_floor:
        raise ConfigError(
            f"batched p99 {batched.p99_seconds * 1e3:.1f} ms is only "
            f"{report.p99_speedup:.2f}x faster than unbatched "
            f"{unbatched.p99_seconds * 1e3:.1f} ms "
            f"(floor {speedup_floor}x)"
        )
    return report


# -- the service chaos drill --------------------------------------------------


@dataclass
class ChaosReport:
    """What one chaos drill run observed and proved."""

    seed: int
    n_clients: int
    total: int
    ok: int
    healed: int           # requests that needed >= 1 resend to get ok
    drops: int            # connections slammed mid-request
    deadline_probes: int  # tiny-budget requests sent
    faults: Dict[str, int]       # injector tallies per fault kind
    counters: Dict[str, int]     # final server counters
    drain: Dict                  # the server's drain report

    def summary(self) -> str:
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.faults.items())
            if count
        )
        return (
            f"seed {self.seed}: {self.total} requests over "
            f"{self.n_clients} clients — {self.ok} ok "
            f"({self.healed} healed by resend), {self.drops} connections "
            f"dropped, {self.deadline_probes} deadline probes; injected "
            f"[{injected or 'nothing'}]; drained "
            f"{'clean' if self.drain.get('drained') else 'DIRTY'} "
            f"(stranded {self.drain.get('stranded')}, "
            f"{self.drain.get('writebacks_flushed')} write-backs flushed)"
        )


#: Terminal outcome counters: every request the broker admits lands in
#: exactly one of these, so their sum must equal ``service.requests``.
_OUTCOME_COUNTERS = (
    "service.memo_hits",
    "service.coalesced",
    "service.computed",
    "service.batched",
    "service.disk_hits",
    "service.shared_hits",
    "service.rejected_quota",
    "service.rejected_backpressure",
    "service.rejected_draining",
    "service.coalesce_aborted",
    "service.deadline_exceeded",
    "service.errors",
    "service.cancelled",
)


def run_chaos_drill(
    n_clients: int = 3,
    dup_factor: int = 2,
    seed: int = 5,
    config: Optional[ServiceConfig] = None,
    max_attempts: int = 8,
) -> ChaosReport:
    """The service chaos drill: seeded faults, provable recovery.

    A server is started with a :class:`~repro.service.chaos.
    ChaosInjector` wired through every layer — executor-task exceptions
    and added latency in the scalar path, point- and dispatch-level
    faults in the batch path (the dispatch faults trip the kernel
    breaker), OSErrors from both disk tiers, and client connections
    slammed mid-request.  Every client resends failed requests (safe:
    idempotent by fingerprint; injected faults heal on resend) until it
    holds an ``ok`` answer for each, then the drill asserts:

    * **bit-identity** — every ``ok`` payload equals a direct
      :func:`execute_request` evaluation, canonical JSON, byte for byte;
      faults may delay or reroute an answer, never change it;
    * **accounting balance** — the terminal-outcome counters partition
      ``service.requests`` exactly (nothing double-counted, nothing
      lost), with cancellations and deadline rejections included;
    * **clean drain** — stopping the server completes in-flight work,
      reports zero stranded futures, and leaves the deferred shared-tier
      write-back queue empty.

    Deterministic per seed in every *decision* (which fingerprint
    faults, which dispatch ordinals die, which connections drop);
    assertions are invariants, so thread interleaving cannot flake them.
    """
    if n_clients < 1:
        raise ConfigError("n_clients must be >= 1")
    if dup_factor < 1:
        raise ConfigError("dup_factor must be >= 1")
    spec = ServiceChaosSpec(
        seed=seed,
        compute_error_rate=0.25,
        compute_delay_rate=0.25,
        compute_delay_ms=2.0,
        point_error_rate=0.10,
        dispatch_fault_ordinals=(0, 1, 2),
        disk_error_rate=0.30,
        drop_rate=0.25,
    )
    injector = ChaosInjector(spec)
    unique = mixed_trace()
    expected = {
        request.fingerprint(): json.dumps(
            execute_request(request), sort_keys=True
        )
        for request in unique
    }

    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    config = config or ServiceConfig(
        max_workers=2,
        max_pending=4 * len(unique) * dup_factor,
        breaker_threshold=3,
        breaker_probe_after=4,
        batch_window_ms=1.0,
    )
    config = dataclasses.replace(
        config, cache_dir=tmp / "disk", shared_dir=tmp / "shared"
    )

    failures: List[str] = []
    ok = [0] * n_clients
    healed = [0] * n_clients
    drops = [0] * n_clients
    deadline_probes = [0] * n_clients
    barrier = threading.Barrier(n_clients + 1)

    try:
        with ServerThread(config, chaos=injector) as srv:
            host, port = srv.address

            def worker(idx: int) -> None:
                policy = RetryPolicy(
                    seed=seed * 1000 + idx,
                    base_backoff=0.002,
                    max_backoff=0.05,
                )
                trace = _shuffled(unique * dup_factor, seed * 101 + idx)
                try:
                    with ServiceClient(
                        host, port, tenant=f"tenant-{idx}", retry=policy
                    ) as client:
                        barrier.wait()
                        for n, request in enumerate(trace):
                            token = f"client{idx}:req{n}"
                            if injector.drop_connection(token):
                                # Slam the connection mid-request: write
                                # the frame, close without reading, and
                                # redial.  The server must cancel the
                                # orphaned work and keep every other
                                # waiter healthy.
                                drops[idx] += 1
                                try:
                                    client._send(
                                        client._envelope(request, False, None)
                                    )
                                except ConnectionLost:
                                    pass
                                client._reconnect()
                            for attempt in range(max_attempts):
                                response = client.call(request)
                                status = response.get("status")
                                if status == "ok":
                                    got = json.dumps(
                                        response["payload"], sort_keys=True
                                    )
                                    want = expected[request.fingerprint()]
                                    if got != want:
                                        failures.append(
                                            f"client {idx}: {request.kind} "
                                            f"response diverged from "
                                            f"execute_request"
                                        )
                                    else:
                                        ok[idx] += 1
                                        if attempt > 0:
                                            healed[idx] += 1
                                    break
                                # Injected faults answer as error or
                                # retryable rejection; resend — it must
                                # heal (first_attempt_only) or be served
                                # by a cache tier.
                            else:
                                failures.append(
                                    f"client {idx}: {request.kind} never "
                                    f"recovered after {max_attempts} "
                                    f"attempts: {response.get('error')}"
                                )
                        # A couple of vanishingly small budgets: the
                        # answer is either a fast ok or an honest
                        # deadline_exceeded — never a hang, never a
                        # broken invariant.
                        for request in unique[:2]:
                            deadline_probes[idx] += 1
                            response = client.call(
                                request, deadline_ms=0.01
                            )
                            status = response.get("status")
                            code = (response.get("error") or {}).get("code")
                            if status == "ok":
                                continue
                            if not (
                                status == "rejected"
                                and code == "deadline_exceeded"
                            ):
                                failures.append(
                                    f"client {idx}: deadline probe got "
                                    f"{status}/{code}"
                                )
                except Exception as exc:  # surfaced after join
                    failures.append(
                        f"client {idx}: {type(exc).__name__}: {exc}"
                    )

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            for t in threads:
                t.join(timeout=600)
            alive = [t for t in threads if t.is_alive()]
            if alive:
                failures.append(f"{len(alive)} client threads hung")

        service = srv.service
        drain = srv.drain_report or {}
        counters = service.registry.to_manifest()["counters"]
        faults = injector.snapshot()

        if failures:
            raise ConfigError(
                f"chaos drill (seed {seed}) failed "
                f"({len(failures)} failures): " + "; ".join(failures[:5])
            )

        # Accounting balance: outcomes partition the admitted requests.
        outcomes = sum(
            counters.get(name, 0) for name in _OUTCOME_COUNTERS
        )
        requests = counters.get("service.requests", 0)
        if outcomes != requests:
            raise ConfigError(
                f"chaos drill (seed {seed}): accounting does not balance "
                f"— {requests} requests vs {outcomes} summed outcomes"
            )

        # The listed dispatch ordinals each faulted exactly once, and
        # the drill generated enough dispatches to consume them all.
        n_dispatch_faults = len(spec.dispatch_fault_ordinals)
        if counters.get("service.batch_dispatches", 0) < n_dispatch_faults:
            raise ConfigError(
                f"chaos drill (seed {seed}): too few batch dispatches to "
                f"exercise the dispatch faults"
            )
        if counters.get("service.batch_dispatch_errors", 0) != n_dispatch_faults:
            raise ConfigError(
                f"chaos drill (seed {seed}): expected "
                f"{n_dispatch_faults} dispatch errors, saw "
                f"{counters.get('service.batch_dispatch_errors', 0)}"
            )

        # Clean drain: everything scattered, nothing stranded, the
        # write-back queue flushed to the shared tier.
        if not drain.get("drained") or drain.get("stranded", 1) != 0:
            raise ConfigError(
                f"chaos drill (seed {seed}): dirty drain: {drain}"
            )
        if len(service._writeback) != 0:
            raise ConfigError(
                f"chaos drill (seed {seed}): "
                f"{len(service._writeback)} write-backs stranded"
            )

        return ChaosReport(
            seed=seed,
            n_clients=n_clients,
            total=n_clients * len(unique) * dup_factor,
            ok=sum(ok),
            healed=sum(healed),
            drops=sum(drops),
            deadline_probes=sum(deadline_probes),
            faults=faults,
            counters=dict(counters),
            drain=dict(drain),
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
