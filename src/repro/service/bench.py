"""Service load harness: N concurrent clients replaying a mixed trace.

The gate behind ``repro bench-service`` and
``benchmarks/bench_service.py``.  A :class:`~repro.service.server.
ServerThread` is started fresh (empty memo, optional empty disk tier), a
deterministic trace of unique requests is inflated with duplicates and
dealt round-robin to ``n_clients`` threads, and every response is
checked **bit-identical** against a direct :func:`~repro.service.server.
execute_request` evaluation of the same request object — the service
may change *when* a result is computed, never *what*.

Because the server starts cold, the accounting is deterministic whatever
the interleaving: every unique request is computed exactly once
(``computed == unique``) and every duplicate is served without engine
work — ``coalesced`` when it overlapped the computation in flight,
``memo`` when it arrived after — so ``coalesced + memo == duplicates``.
Latency lands in the committed baseline as rates (1/p50, 1/p99) so the
existing :mod:`repro.perf` regression machinery gates it unchanged.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro import api
from repro.errors import ConfigError
from repro.perf import Measurement
from repro.service.client import ServiceClient
from repro.service.server import (
    ServerThread,
    ServiceConfig,
    execute_request,
)

__all__ = [
    "BASELINE_PATH",
    "LoadReport",
    "mixed_trace",
    "run_load_test",
]

#: Where the committed service latency baseline lives.
BASELINE_PATH = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "baselines"
    / "service_latency.json"
)


def mixed_trace() -> List:
    """The deterministic unique-request trace the load test replays.

    A realistic mix: mostly cheap analytical simulates across several
    workloads/architectures/scales, a couple of DES runs (the expensive
    tail that makes coalescing visible), one small sweep and one
    fault-schedule pricing.
    """
    requests: List = []
    for workload in ("Resnet-50", "VGG-19", "RNN-S", "Transformer-SR"):
        for arch in ("baseline", "trainbox"):
            for scale in (16, 64, 256):
                requests.append(
                    api.SimulationRequest(workload, arch, scale)
                )
    requests.append(
        api.SimulationRequest(
            "Resnet-50", "trainbox", 16, engine="des", des_iterations=12
        )
    )
    requests.append(
        api.SimulationRequest(
            "Inception-v4", "trainbox", 32, engine="des", des_iterations=12
        )
    )
    requests.append(
        api.SweepRequest(
            workloads=("Resnet-50", "RNN-L"),
            archs=("baseline", "trainbox"),
            scales=(16, 64),
        )
    )
    from repro.core.server import build_server

    server = build_server(api.resolve_arch("trainbox"), 16)
    fpga = server.boxes[0].prep_ids[0]
    requests.append(
        api.FaultScheduleRequest(
            "Resnet-50",
            "trainbox",
            16,
            events=((fpga, 10.0, 40.0),),
            horizon=60.0,
        )
    )
    return requests


def _shuffled(items: List, seed: int) -> List:
    """Deterministic shuffle (LCG Fisher–Yates, independent of the
    global RNG state)."""
    out = list(items)
    state = seed & 0xFFFFFFFF
    for i in range(len(out) - 1, 0, -1):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        j = state % (i + 1)
        out[i], out[j] = out[j], out[i]
    return out


@dataclass
class LoadReport:
    """What one load-test run measured."""

    n_clients: int
    total: int
    unique: int
    duplicates: int
    computed: int
    coalesced: int
    memo_hits: int
    disk_hits: int
    errors: int
    rejected: int
    wall_seconds: float
    latencies: List[float] = field(repr=False)

    @property
    def p50_seconds(self) -> float:
        return self._quantile(0.50)

    @property
    def p99_seconds(self) -> float:
        return self._quantile(0.99)

    def _quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of duplicate requests served by single-flight."""
        if self.duplicates <= 0:
            return 0.0
        return self.coalesced / self.duplicates

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of all requests served without an engine run."""
        if self.total <= 0:
            return 0.0
        return (
            self.coalesced + self.memo_hits + self.disk_hits
        ) / self.total

    @property
    def requests_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.total / self.wall_seconds

    def measurements(self) -> List[Measurement]:
        """The latency figures as :mod:`repro.perf` rate measurements
        (1/latency, so 'samples per second' still means faster=bigger
        and the standard regression tolerance applies unchanged)."""
        return [
            Measurement("service_p50_rate", 1, self.p50_seconds),
            Measurement("service_p99_rate", 1, self.p99_seconds),
            Measurement("service_throughput", self.total, self.wall_seconds),
        ]

    def summary(self) -> str:
        return (
            f"{self.total} requests ({self.unique} unique, "
            f"{self.duplicates} duplicates) over {self.n_clients} clients "
            f"in {self.wall_seconds:.2f}s — "
            f"p50 {self.p50_seconds * 1e3:.1f} ms, "
            f"p99 {self.p99_seconds * 1e3:.1f} ms, "
            f"computed {self.computed}, coalesced {self.coalesced}, "
            f"memo {self.memo_hits}, "
            f"coalesce ratio {self.coalesce_ratio:.0%}, "
            f"cache-hit ratio {self.cache_hit_ratio:.0%}"
        )


def run_load_test(
    n_clients: int = 16,
    dup_factor: int = 2,
    config: Optional[ServiceConfig] = None,
    seed: int = 17,
    check_identity: bool = True,
) -> LoadReport:
    """Replay the mixed trace from ``n_clients`` concurrent clients.

    ``dup_factor`` copies of every unique request are interleaved
    (``dup_factor=2`` → 50% duplicates), so both the coalescing path
    and the memo path are exercised.  With ``check_identity`` every
    response payload is compared — canonical JSON, hence bit-for-bit —
    against a direct in-process :func:`execute_request` evaluation, and
    the cold-start accounting invariants are asserted:
    ``computed == unique`` and ``coalesced + memo == duplicates``.
    """
    if n_clients < 1:
        raise ConfigError("n_clients must be >= 1")
    if dup_factor < 1:
        raise ConfigError("dup_factor must be >= 1")
    unique = mixed_trace()
    trace = _shuffled(unique * dup_factor, seed)
    config = config or ServiceConfig(
        max_workers=4, max_pending=max(64, len(trace))
    )

    expected: Dict[str, str] = {}
    if check_identity:
        for request in unique:
            expected[request.fingerprint()] = json.dumps(
                execute_request(request), sort_keys=True
            )

    shards: List[List] = [trace[i::n_clients] for i in range(n_clients)]
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    failures: List[str] = []
    barrier = threading.Barrier(n_clients + 1)

    with ServerThread(config) as srv:
        host, port = srv.address

        def worker(idx: int) -> None:
            try:
                with ServiceClient(
                    host, port, tenant=f"tenant-{idx % 4}"
                ) as client:
                    barrier.wait()
                    for request in shards[idx]:
                        t0 = time.perf_counter()
                        response = client.call(request)
                        latencies[idx].append(time.perf_counter() - t0)
                        if response.get("status") != "ok":
                            failures.append(
                                f"client {idx}: {response.get('error')}"
                            )
                            continue
                        if check_identity:
                            got = json.dumps(
                                response["payload"], sort_keys=True
                            )
                            want = expected[request.fingerprint()]
                            if got != want:
                                failures.append(
                                    f"client {idx}: response for "
                                    f"{request.kind} diverged from the "
                                    f"direct api call"
                                )
            except Exception as exc:  # surfaced after join
                failures.append(f"client {idx}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=600)
        wall = time.perf_counter() - t0
        counters = srv.service.registry.to_manifest()["counters"]

    if failures:
        raise ConfigError(
            f"service load test failed ({len(failures)} failures): "
            + "; ".join(failures[:5])
        )

    report = LoadReport(
        n_clients=n_clients,
        total=len(trace),
        unique=len(unique),
        duplicates=len(trace) - len(unique),
        computed=counters.get("service.computed", 0),
        coalesced=counters.get("service.coalesced", 0),
        memo_hits=counters.get("service.memo_hits", 0),
        disk_hits=counters.get("service.disk_hits", 0)
        + counters.get("service.shared_hits", 0),
        errors=counters.get("service.errors", 0),
        rejected=counters.get("service.rejected_backpressure", 0)
        + counters.get("service.rejected_quota", 0),
        wall_seconds=wall,
        latencies=[lat for per_client in latencies for lat in per_client],
    )

    if check_identity:
        # Cold server: every unique request computes exactly once, every
        # duplicate is served without engine work — whatever the timing.
        if report.computed != report.unique:
            raise ConfigError(
                f"dedup broke: {report.computed} computations for "
                f"{report.unique} unique requests"
            )
        if report.coalesced + report.memo_hits != report.duplicates:
            raise ConfigError(
                f"dedup accounting broke: {report.coalesced} coalesced + "
                f"{report.memo_hits} memo != {report.duplicates} duplicates"
            )
    return report
