"""Cross-request batch scheduler: stitch distinct requests onto the
vectorized kernel.

The broker (:mod:`repro.service.server`) deduplicates *identical*
requests; this module goes after the remaining cost — N tenants asking
for N **different** analytical points still paid N engine runs.  The
TrainBox thesis is that throughput comes from batching work until the
hardware is saturated, and PR 7's structure-of-arrays kernel
(:func:`repro.core.analytical_batch.evaluate_points`) prices hundreds of
points per pass; what was missing is the stitching layer between them.

The scheduler decomposes every batchable request into canonical
evaluation points (:meth:`repro.api.SimulationRequest.points` /
:meth:`~repro.api.SweepRequest.points`), accumulates them in a
micro-batching queue, and flushes on whichever trigger fires first:

* **size** — the queue reached ``max_batch_points``;
* **window** — ``batch_window_ms`` elapsed since the first point was
  queued (an ``asyncio`` timer, so an isolated request pays at most one
  window of extra latency).

One flush is one kernel dispatch on the service executor: a point-level
cache-tier scan (``disk`` → ``shared``, the same ``sweep-point`` keys
:func:`repro.core.sweeps.run_sweep` reads and writes, so sweeps and the
service share warm entries), then a single ragged
:func:`~repro.core.analytical_batch.evaluate_points` pass, scalar
fallback for the points the kernel declines, and per-point write-back
into both disk tiers.  Results scatter to per-point futures; requests
assemble their payloads from those futures — bit-identical to a direct
:func:`~repro.service.server.execute_request` evaluation, which the
bench asserts before any timing.

Points get the same single-flight treatment requests do: a point that is
already queued or in flight (under any tenant's request) hands back the
existing future instead of a second queue slot, and a small point-level
LRU memo serves repeat points without touching the queue at all.  Per
point **error isolation** is a hard requirement — one poisoned point
(invalid scenario, degenerate rates) fails only the requests that
contain it, never its batch-mates; the captured exception is the very
object the scalar engine would have raised, so the error envelope is
identical to the unbatched path's.

Everything except the kernel dispatch runs on the event-loop thread, so
the queue, the point table and the memo need no locks; counters accrue
in the service registry (``service.batch_*``) and each dispatch's
hermetic engine manifest is merged in exactly once.
"""

from __future__ import annotations

import asyncio
import collections
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.sweeps import cache_key, evaluate_point
from repro.errors import ConfigError, SimulationError

__all__ = ["BatchScheduler", "batchable"]

#: Request kinds the scheduler can decompose into evaluation points.
BATCHABLE_KINDS = ("simulate", "sweep")


def batchable(request, profile: bool = False) -> bool:
    """Whether the cross-request batcher may serve this request.

    Only analytical ``simulate``/``sweep`` requests decompose into
    points the vectorized kernel understands; profiled requests want the
    scalar engine's per-request trace spans, so they always take the
    unbatched path.
    """
    if profile:
        return False
    kind = getattr(request, "kind", None)
    if kind not in BATCHABLE_KINDS:
        return False
    return request.engine == "analytical"


class _ShuttingDown(ConfigError):
    """Queued points abandoned because the service is closing."""


class BatchScheduler:
    """The micro-batching queue between the broker and the kernel.

    Owned by one :class:`~repro.service.server.SimulationService`; all
    state is touched only on its event-loop thread.  ``run_request`` is
    the sole entry: it enqueues the request's unresolved points, arms
    the window timer, awaits the point futures and assembles the
    response payload.
    """

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        self.window = config.batch_window_ms / 1000.0
        self.max_points = config.max_batch_points
        self._memo: "collections.OrderedDict[str, Dict]" = (
            collections.OrderedDict()
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._queue: List[Tuple[str, Any, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatches: set = set()
        self._closed = False

    # -- point memo (event-loop thread only) ---------------------------------

    def _memo_get(self, key: str) -> Optional[Dict]:
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
        return payload

    def _memo_put(self, key: str, payload: Dict) -> None:
        limit = self.service.config.point_memo_entries
        if limit <= 0:
            return
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > limit:
            self._memo.popitem(last=False)

    def __len__(self) -> int:
        """Points currently queued (not yet dispatched)."""
        return len(self._queue)

    # -- the request path (event-loop thread) --------------------------------

    async def run_request(self, request) -> Dict:
        """Serve one batchable request; raises what the scalar path
        would raise for the first failing point (in point order)."""
        if self._closed:
            raise _ShuttingDown("service shutting down")
        self._loop = asyncio.get_running_loop()
        points = request.points()
        inc = self.service._inc
        slots: List[Tuple[Optional[asyncio.Future], Optional[Dict]]] = []
        for point in points:
            key = cache_key(point)
            payload = self._memo_get(key)
            if payload is not None:
                inc("service.batch_point_hits")
                slots.append((None, payload))
                continue
            future = self._inflight.get(key)
            if future is not None:
                # Point-level single-flight: some other request already
                # queued or dispatched this point.
                inc("service.batch_point_stitched")
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                self._queue.append((key, point, future))
                inc("service.batch_point_queued")
                # Arm per point so ``max_batch_points`` caps the size of
                # every dispatch — an oversize request flushes in chunks.
                self._arm()
            slots.append((future, None))

        # Shield every await: cancelling this request (its connection
        # died) must not cancel a point future other requests share.
        waits = [
            asyncio.shield(future)
            for future, _payload in slots
            if future is not None
        ]
        outcomes = (
            await asyncio.gather(*waits, return_exceptions=True)
            if waits
            else []
        )
        payloads: List[Optional[Dict]] = []
        first_error: Optional[BaseException] = None
        pos = 0
        for future, payload in slots:
            if future is None:
                payloads.append(payload)
                continue
            outcome = outcomes[pos]
            pos += 1
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
                payloads.append(None)
            else:
                payloads.append(outcome)
        if first_error is not None:
            # Every outcome was gathered (consumed), so raising the
            # first cannot leave an un-retrieved exception behind.
            raise first_error
        return self._assemble(request, points, payloads)

    @staticmethod
    def _assemble(request, points, payloads: List[Dict]) -> Dict:
        """The response payload, shaped exactly like ``execute_request``."""
        if request.kind == "simulate":
            return {
                "kind": request.kind,
                "engine": request.engine,
                "result": payloads[0],
            }
        return {
            "kind": request.kind,
            "engine": request.engine,
            "points": [
                [p.workload.name, p.arch.name, p.scale] for p in points
            ],
            "results": payloads,
        }

    # -- flushing ------------------------------------------------------------

    def _arm(self) -> None:
        if not self._queue or self._loop is None:
            return
        if len(self._queue) >= self.max_points:
            self._flush("size")
        elif self._timer is None:
            self._timer = self._loop.call_later(
                self.window, self._flush, "window"
            )

    def _flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue or self._loop is None:
            return
        entries, self._queue = self._queue, []
        self.service._inc(f"service.batch_flush_{trigger}")
        task = self._loop.create_task(self._dispatch(entries))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    async def _dispatch(
        self, entries: List[Tuple[str, Any, asyncio.Future]]
    ) -> None:
        """One kernel dispatch: compute off-loop, scatter on-loop."""
        svc = self.service
        svc._inc("service.batch_dispatches")
        svc._inc("service.batch_points", len(entries))
        svc.registry.observe("service.batch_occupancy", float(len(entries)))
        try:
            out, manifest, tally = await self._loop.run_in_executor(
                svc._executor, self._compute_batch, entries
            )
        except Exception as exc:  # defensive: fail the points, not the loop
            failure = ConfigError(
                f"internal error: {type(exc).__name__}: {exc}"
            )
            out = {key: failure for key, _point, _future in entries}
            manifest, tally = None, {}
        for name, value in tally.items():
            svc._inc(name, value)
        if manifest is not None:
            # One hermetic engine manifest per dispatch, merged exactly
            # once — same discipline as the unbatched compute path.
            svc.registry.merge_manifest(manifest)
        for key, _point, future in entries:
            self._inflight.pop(key, None)
            value = out.get(key)
            if isinstance(value, BaseException):
                if not future.done():
                    future.set_exception(value)
                    future.exception()  # consumed if every waiter left
            else:
                if value is not None:
                    self._memo_put(key, value)
                if not future.done():
                    future.set_result(value)

    def _compute_batch(
        self, entries: List[Tuple[str, Any, asyncio.Future]]
    ) -> Tuple[Dict[str, Any], Optional[Dict], Dict[str, int]]:
        """Executor-thread body: tiers, kernel pass, scalar fallback.

        Returns ``(per-key payload-or-exception, engine manifest,
        counter tally)`` — pure data; all bookkeeping happens back on
        the loop.
        """
        from repro.core.analytical_batch import evaluate_points

        disk, shared = self.service._disk, self.service._shared
        tally: Dict[str, int] = collections.defaultdict(int)
        out: Dict[str, Any] = {}
        registry = obs.MetricsRegistry()
        with obs.session(metrics=registry):
            with obs.span(
                "service.batch_dispatch", cat="service", points=len(entries)
            ):
                remaining: List[Tuple[str, Any]] = []
                disk_hits: Dict[str, Dict] = (
                    disk.get_many(key for key, _p, _f in entries)
                    if disk is not None
                    else {}
                )
                for key, point, _future in entries:
                    payload = disk_hits.get(key)
                    if payload is None and shared is not None:
                        payload = shared.get(key)
                        if payload is not None and disk is not None:
                            disk.put(key, payload)
                    if payload is not None:
                        out[key] = payload
                        tally["service.batch_point_disk"] += 1
                    else:
                        remaining.append((key, point))
                if remaining:
                    results, _reasons, errors = evaluate_points(
                        [point for _key, point in remaining]
                    )
                    for (key, point), result, error in zip(
                        remaining, results, errors
                    ):
                        if error is not None:
                            out[key] = error
                            tally["service.batch_point_errors"] += 1
                            continue
                        if result is not None:
                            payload = result.to_dict()
                            tally["service.batch_point_kernel"] += 1
                        else:
                            # The kernel declined this point (other
                            # sync strategy, unknown accelerator, ...):
                            # price it scalar, isolating its errors too.
                            try:
                                payload = evaluate_point(point).to_dict()
                            except (ConfigError, SimulationError) as exc:
                                out[key] = exc
                                tally["service.batch_point_errors"] += 1
                                continue
                            tally["service.batch_point_scalar"] += 1
                        out[key] = payload
                        if disk is not None:
                            disk.put(key, payload)
                        if shared is not None:
                            shared.put(key, payload)
        return out, registry.to_manifest(), dict(tally)

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Stop the timer and fail every still-queued point fast."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries, self._queue = self._queue, []
        for key, _point, future in entries:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(
                    _ShuttingDown("service shutting down")
                )
                future.exception()

    async def aclose(self) -> None:
        """Close, then let in-flight dispatches scatter their results."""
        self.close()
        if self._dispatches:
            await asyncio.gather(
                *list(self._dispatches), return_exceptions=True
            )
