"""Cross-request batch scheduler: stitch distinct requests onto the
vectorized kernel.

The broker (:mod:`repro.service.server`) deduplicates *identical*
requests; this module goes after the remaining cost — N tenants asking
for N **different** analytical points still paid N engine runs.  The
TrainBox thesis is that throughput comes from batching work until the
hardware is saturated, and PR 7's structure-of-arrays kernel
(:func:`repro.core.analytical_batch.evaluate_points`) prices hundreds of
points per pass; what was missing is the stitching layer between them.

The scheduler decomposes every batchable request into canonical
evaluation points (:meth:`repro.api.SimulationRequest.points` /
:meth:`~repro.api.SweepRequest.points`), accumulates them in a
micro-batching queue, and flushes on whichever trigger fires first:

* **size** — the queue reached ``max_batch_points``;
* **window** — ``batch_window_ms`` elapsed since the first point was
  queued (an ``asyncio`` timer, so an isolated request pays at most one
  window of extra latency).

One flush is one kernel dispatch on the service executor: a point-level
cache-tier scan (``disk`` → ``shared``, the same ``sweep-point`` keys
:func:`repro.core.sweeps.run_sweep` reads and writes, so sweeps and the
service share warm entries), then a single ragged
:func:`~repro.core.analytical_batch.evaluate_points` pass, scalar
fallback for the points the kernel declines, and per-point write-back
into both disk tiers.  Results scatter to per-point futures; requests
assemble their payloads from those futures — bit-identical to a direct
:func:`~repro.service.server.execute_request` evaluation, which the
bench asserts before any timing.

Points get the same single-flight treatment requests do: a point that is
already queued or in flight (under any tenant's request) hands back the
existing future instead of a second queue slot, and a small point-level
LRU memo serves repeat points without touching the queue at all.  Per
point **error isolation** is a hard requirement — one poisoned point
(invalid scenario, degenerate rates) fails only the requests that
contain it, never its batch-mates; the captured exception is the very
object the scalar engine would have raised, so the error envelope is
identical to the unbatched path's.

Everything except the kernel dispatch runs on the event-loop thread, so
the queue, the point table and the memo need no locks; counters accrue
in the service registry (``service.batch_*``) and each dispatch's
hermetic engine manifest is merged in exactly once.

Resilience (PR 10) adds three mechanisms on top:

* **waiter accounting** — every request holds a reference on each point
  future it awaits; a cancelled request (its connection died) or one
  whose ``deadline_ms`` budget expires releases its references, and a
  point still *queued* whose last waiter left is abandoned before it
  ever reaches the kernel (``service.batch_point_abandoned``) — nobody
  wants the answer, so nobody pays for it.  Points already dispatched
  run to completion for the cache tiers.
* **deadline enforcement at scatter time** — ``run_request`` waits for
  its point futures at most until the request's deadline; past it the
  request answers ``deadline_exceeded`` while the shared futures keep
  serving other waiters.
* **a kernel breaker** — repeated *dispatch-level* failures (the whole
  kernel pass dying, as opposed to per-point isolated errors) trip a
  counter-gated circuit breaker; while open, the broker routes batchable
  requests down the scalar compute path (``served_by: computed``), so a
  poisoned kernel degrades throughput instead of availability.  After a
  configured number of bypassed requests one probe is let through; a
  clean probe dispatch closes the breaker again.
"""

from __future__ import annotations

import asyncio
import collections
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.sweeps import cache_key, evaluate_point
from repro.errors import ConfigError, SimulationError
from repro.service.protocol import DeadlineExceeded

__all__ = ["BatchScheduler", "KernelBreaker", "batchable"]

#: Request kinds the scheduler can decompose into evaluation points.
BATCHABLE_KINDS = ("simulate", "sweep")


def batchable(request, profile: bool = False) -> bool:
    """Whether the cross-request batcher may serve this request.

    Only analytical ``simulate``/``sweep`` requests decompose into
    points the vectorized kernel understands; profiled requests want the
    scalar engine's per-request trace spans, so they always take the
    unbatched path.
    """
    if profile:
        return False
    kind = getattr(request, "kind", None)
    if kind not in BATCHABLE_KINDS:
        return False
    return request.engine == "analytical"


class _ShuttingDown(ConfigError):
    """Queued points abandoned because the service is closing."""


class KernelBreaker:
    """A counter-gated circuit breaker over one batch kernel.

    ``record_failure`` counts *consecutive* dispatch-level failures;
    at ``threshold`` the breaker opens and :meth:`allow` starts
    answering False, sending batchable requests down the scalar path.
    Every ``probe_after``-th bypassed request is let through as a probe;
    a successful dispatch (``record_success``) closes the breaker and
    zeroes the failure count.  Purely counter-driven — no clocks — so
    breaker behaviour is deterministic under test and chaos drills.
    """

    __slots__ = ("threshold", "probe_after", "failures", "open", "bypassed")

    def __init__(self, threshold: int = 3, probe_after: int = 16) -> None:
        if threshold < 1:
            raise ConfigError("breaker threshold must be >= 1")
        if probe_after < 1:
            raise ConfigError("breaker probe_after must be >= 1")
        self.threshold = threshold
        self.probe_after = probe_after
        self.failures = 0
        self.open = False
        self.bypassed = 0

    def allow(self) -> bool:
        """Whether the next batchable request may enter the batch path.

        While open, counts bypassed requests and admits one probe per
        ``probe_after`` bypasses (the probe's dispatch outcome decides
        whether the breaker closes or stays open)."""
        if not self.open:
            return True
        self.bypassed += 1
        if self.bypassed >= self.probe_after:
            self.bypassed = 0
            return True
        return False

    def record_success(self) -> bool:
        """A dispatch completed; returns True when this *reset* an open
        breaker (the caller counts resets)."""
        reset = self.open
        self.failures = 0
        self.open = False
        self.bypassed = 0
        return reset

    def record_failure(self) -> bool:
        """A dispatch died wholesale; returns True when this *tripped*
        the breaker open."""
        self.failures += 1
        if self.failures >= self.threshold and not self.open:
            self.open = True
            self.bypassed = 0
            return True
        return False

    def state(self) -> Dict:
        return {
            "open": self.open,
            "consecutive_failures": self.failures,
            "threshold": self.threshold,
            "probe_after": self.probe_after,
        }


class BatchScheduler:
    """The micro-batching queue between the broker and the kernel.

    Owned by one :class:`~repro.service.server.SimulationService`; all
    state is touched only on its event-loop thread.  ``run_request`` is
    the sole entry: it enqueues the request's unresolved points, arms
    the window timer, awaits the point futures and assembles the
    response payload.
    """

    def __init__(self, service) -> None:
        self.service = service
        config = service.config
        self.window = config.batch_window_ms / 1000.0
        self.max_points = config.max_batch_points
        self.breaker = KernelBreaker(
            config.breaker_threshold, config.breaker_probe_after
        )
        self._memo: "collections.OrderedDict[str, Dict]" = (
            collections.OrderedDict()
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._waiters: Dict[str, int] = {}
        self._queue: List[Tuple[str, Any, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatches: set = set()
        self._closed = False

    # -- point memo (event-loop thread only) ---------------------------------

    def _memo_get(self, key: str) -> Optional[Dict]:
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
        return payload

    def _memo_put(self, key: str, payload: Dict) -> None:
        limit = self.service.config.point_memo_entries
        if limit <= 0:
            return
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > limit:
            self._memo.popitem(last=False)

    def __len__(self) -> int:
        """Points currently queued (not yet dispatched)."""
        return len(self._queue)

    def busy(self) -> bool:
        """Whether any points are queued or any dispatch is in flight."""
        return bool(self._queue or self._dispatches)

    def admit(self) -> bool:
        """Breaker-gated admission into the batch path.

        False sends the request down the scalar compute path; the
        breaker's trip/probe/reset transitions accrue as counters."""
        if not self.breaker.open:
            return True
        if self.breaker.allow():
            self.service._inc("service.breaker_probes")
            return True
        self.service._inc("service.breaker_bypassed")
        return False

    # -- waiter accounting (event-loop thread only) ---------------------------

    def _acquire(self, key: str) -> None:
        self._waiters[key] = self._waiters.get(key, 0) + 1

    def _release(self, key: str) -> None:
        """Drop one waiter reference; abandon a still-queued point whose
        last waiter left (cancelled connection, expired deadline) — it
        would compute an answer nobody reads."""
        count = self._waiters.get(key, 0) - 1
        if count > 0:
            self._waiters[key] = count
            return
        self._waiters.pop(key, None)
        for i, (queued_key, _point, future) in enumerate(self._queue):
            if queued_key == key:
                del self._queue[i]
                self._inflight.pop(key, None)
                future.cancel()
                self.service._inc("service.batch_point_abandoned")
                break

    # -- the request path (event-loop thread) --------------------------------

    async def run_request(self, request, deadline: Optional[float] = None) -> Dict:
        """Serve one batchable request; raises what the scalar path
        would raise for the first failing point (in point order), or
        :class:`~repro.service.protocol.DeadlineExceeded` when the
        request's budget runs out before its points scatter."""
        if self._closed:
            raise _ShuttingDown("service shutting down")
        self._loop = asyncio.get_running_loop()
        points = request.points()
        inc = self.service._inc
        slots: List[Tuple[Optional[asyncio.Future], Optional[Dict]]] = []
        acquired: List[str] = []
        for point in points:
            key = cache_key(point)
            payload = self._memo_get(key)
            if payload is not None:
                inc("service.batch_point_hits")
                slots.append((None, payload))
                continue
            future = self._inflight.get(key)
            if future is not None:
                # Point-level single-flight: some other request already
                # queued or dispatched this point.
                inc("service.batch_point_stitched")
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                self._queue.append((key, point, future))
                inc("service.batch_point_queued")
                # Arm per point so ``max_batch_points`` caps the size of
                # every dispatch — an oversize request flushes in chunks.
                self._arm()
            self._acquire(key)
            acquired.append(key)
            slots.append((future, None))

        try:
            # Shield every await: cancelling this request (its
            # connection died) must not cancel a point future other
            # requests share — the waiter refcount decides whether the
            # point itself is abandoned.
            waits = [
                asyncio.shield(future)
                for future, _payload in slots
                if future is not None
            ]
            if waits:
                gathered = asyncio.gather(*waits, return_exceptions=True)
                if deadline is None:
                    outcomes = await gathered
                else:
                    remaining = deadline - time.monotonic()
                    try:
                        outcomes = await asyncio.wait_for(
                            gathered, max(0.0, remaining)
                        )
                    except asyncio.TimeoutError:
                        raise DeadlineExceeded(
                            "deadline_ms expired before the batched "
                            "points scattered"
                        ) from None
            else:
                outcomes = []
        finally:
            for key in acquired:
                self._release(key)
        payloads: List[Optional[Dict]] = []
        first_error: Optional[BaseException] = None
        pos = 0
        for future, payload in slots:
            if future is None:
                payloads.append(payload)
                continue
            outcome = outcomes[pos]
            pos += 1
            if isinstance(outcome, BaseException):
                if first_error is None:
                    first_error = outcome
                payloads.append(None)
            else:
                payloads.append(outcome)
        if first_error is not None:
            # Every outcome was gathered (consumed), so raising the
            # first cannot leave an un-retrieved exception behind.
            raise first_error
        return self._assemble(request, points, payloads)

    @staticmethod
    def _assemble(request, points, payloads: List[Dict]) -> Dict:
        """The response payload, shaped exactly like ``execute_request``."""
        if request.kind == "simulate":
            return {
                "kind": request.kind,
                "engine": request.engine,
                "result": payloads[0],
            }
        return {
            "kind": request.kind,
            "engine": request.engine,
            "points": [
                [p.workload.name, p.arch.name, p.scale] for p in points
            ],
            "results": payloads,
        }

    # -- flushing ------------------------------------------------------------

    def _arm(self) -> None:
        if not self._queue or self._loop is None:
            return
        if len(self._queue) >= self.max_points:
            self._flush("size")
        elif self._timer is None:
            self._timer = self._loop.call_later(
                self.window, self._flush, "window"
            )

    def _flush(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue or self._loop is None:
            return
        entries, self._queue = self._queue, []
        self.service._inc(f"service.batch_flush_{trigger}")
        task = self._loop.create_task(self._dispatch(entries))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    async def _dispatch(
        self, entries: List[Tuple[str, Any, asyncio.Future]]
    ) -> None:
        """One kernel dispatch: compute off-loop, scatter on-loop."""
        svc = self.service
        svc._inc("service.batch_dispatches")
        svc._inc("service.batch_points", len(entries))
        svc.registry.observe("service.batch_occupancy", float(len(entries)))
        try:
            out, manifest, tally = await self._loop.run_in_executor(
                svc._executor, self._compute_batch, entries
            )
            if self.breaker.record_success():
                svc._inc("service.breaker_reset")
        except Exception as exc:  # defensive: fail the points, not the loop
            failure = ConfigError(
                f"internal error: {type(exc).__name__}: {exc}"
            )
            out = {key: failure for key, _point, _future in entries}
            manifest, tally = None, {}
            svc._inc("service.batch_dispatch_errors")
            if self.breaker.record_failure():
                svc._inc("service.breaker_tripped")
        for name, value in tally.items():
            svc._inc(name, value)
        svc._kick_writeback()
        if manifest is not None:
            # One hermetic engine manifest per dispatch, merged exactly
            # once — same discipline as the unbatched compute path.
            svc.registry.merge_manifest(manifest)
        for key, _point, future in entries:
            self._inflight.pop(key, None)
            value = out.get(key)
            if isinstance(value, BaseException):
                if not future.done():
                    future.set_exception(value)
                    future.exception()  # consumed if every waiter left
            else:
                if value is not None:
                    self._memo_put(key, value)
                if not future.done():
                    future.set_result(value)

    def _compute_batch(
        self, entries: List[Tuple[str, Any, asyncio.Future]]
    ) -> Tuple[Dict[str, Any], Optional[Dict], Dict[str, int]]:
        """Executor-thread body: tiers, kernel pass, scalar fallback.

        Returns ``(per-key payload-or-exception, engine manifest,
        counter tally)`` — pure data; all bookkeeping happens back on
        the loop.
        """
        from repro.core.analytical_batch import evaluate_points

        svc = self.service
        disk, shared = svc._disk, svc._shared
        chaos = svc._chaos
        tally: Dict[str, int] = collections.defaultdict(int)
        out: Dict[str, Any] = {}
        if chaos is not None:
            # A dispatch-level chaos fault poisons the whole kernel pass
            # (the breaker's food); per-point faults are injected below.
            chaos.before_dispatch()
        registry = obs.MetricsRegistry()
        with obs.session(metrics=registry):
            with obs.span(
                "service.batch_dispatch", cat="service", points=len(entries)
            ):
                remaining: List[Tuple[str, Any]] = []
                disk_hits: Dict[str, Dict] = {}
                if disk is not None:
                    try:
                        disk_hits = disk.get_many(
                            key for key, _p, _f in entries
                        )
                    except OSError:
                        tally["service.cache_errors"] += 1
                for key, point, _future in entries:
                    payload = disk_hits.get(key)
                    if payload is None and shared is not None:
                        try:
                            payload = shared.get(key)
                        except OSError:
                            payload = None
                            tally["service.cache_errors"] += 1
                        if payload is not None and disk is not None:
                            try:
                                disk.put(key, payload)
                            except OSError:
                                tally["service.cache_errors"] += 1
                    if payload is not None:
                        out[key] = payload
                        tally["service.batch_point_disk"] += 1
                    else:
                        remaining.append((key, point))
                if remaining:
                    results, _reasons, errors = evaluate_points(
                        [point for _key, point in remaining]
                    )
                    for (key, point), result, error in zip(
                        remaining, results, errors
                    ):
                        if error is not None:
                            out[key] = error
                            tally["service.batch_point_errors"] += 1
                            continue
                        if chaos is not None:
                            injected = chaos.point_error(key)
                            if injected is not None:
                                out[key] = injected
                                tally["service.batch_point_errors"] += 1
                                continue
                        if result is not None:
                            payload = result.to_dict()
                            tally["service.batch_point_kernel"] += 1
                        else:
                            # The kernel declined this point (other
                            # sync strategy, unknown accelerator, ...):
                            # price it scalar, isolating its errors too.
                            try:
                                payload = evaluate_point(point).to_dict()
                            except (ConfigError, SimulationError) as exc:
                                out[key] = exc
                                tally["service.batch_point_errors"] += 1
                                continue
                            tally["service.batch_point_scalar"] += 1
                        out[key] = payload
                        if disk is not None:
                            try:
                                disk.put(key, payload)
                            except OSError:
                                tally["service.cache_errors"] += 1
                        if shared is not None:
                            # Shared-tier writes take a cross-process
                            # lock; defer them off the request path (the
                            # drain/flush machinery guarantees delivery).
                            svc._defer_writeback(key, payload)
        return out, registry.to_manifest(), dict(tally)

    # -- shutdown ------------------------------------------------------------

    def begin_drain(self) -> None:
        """Graceful-drain entry: flush whatever is queued *now* instead
        of waiting out the batching window.  The broker has already
        stopped admitting requests, so no new points will arrive; the
        in-flight dispatches finish on the executor and scatter
        normally."""
        if self._queue:
            self._flush("drain")

    def close(self) -> None:
        """Stop the timer and fail every still-queued point fast."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        entries, self._queue = self._queue, []
        self._waiters.clear()
        for key, _point, future in entries:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(
                    _ShuttingDown("service shutting down")
                )
                future.exception()

    async def aclose(self, timeout: Optional[float] = None) -> None:
        """Close, then let in-flight dispatches scatter their results
        (bounded by ``timeout`` when the caller's drain already gave up
        — a wedged kernel must not wedge shutdown too)."""
        self.close()
        if self._dispatches:
            await asyncio.wait(list(self._dispatches), timeout=timeout)
