"""Simulation-as-a-service: the asyncio front end over :mod:`repro.api`.

The engines price a scenario in microseconds-to-milliseconds; what a
fleet of callers needs on top is *multiplexing*: many tenants, bursty
duplicate-heavy traffic, and strict bounds on concurrent work.  This
module provides that layer with three mechanisms, all keyed by the
content-hash fingerprint of the versioned request objects
(:mod:`repro.api`, schema ``repro-request/1``):

* **single-flight coalescing** — identical requests arriving while one
  is being computed attach to the in-flight future instead of entering
  the queue; one engine run serves them all, bit-identically.
* **admission control** — at most ``max_pending`` unique computations
  may be queued or running; beyond that the server answers ``rejected``
  with ``retry_after`` (backpressure) instead of building an unbounded
  queue.  Coalesced and cache-served requests never consume a slot.
* **tiered result lookup** — in-process LRU memo → the server's private
  on-disk :class:`~repro.cache.ResultCache` → an optional *shared*
  cache directory where writes take the per-entry cross-process
  :class:`~repro.cache.CacheLock` (single writer; stale locks from
  killed servers are reclaimed).  Shared hits are backfilled down.
* **cross-request batching** — *distinct* analytical requests are
  decomposed into evaluation points, micro-batched for up to
  ``batch_window_ms`` (or ``max_batch_points``), and priced in one
  vectorized kernel dispatch (:mod:`repro.service.batch`); responses
  carry ``served_by: "batched"`` and stay bit-identical to
  :func:`execute_request`.

Per-tenant token buckets bound each tenant's request rate; counters for
every tier and outcome accrue in a :class:`~repro.obs.MetricsRegistry`
manifest (the ``stats`` op), and engine-internal counters from each
computation are merged in hermetically.  Engine execution happens on a
thread pool — the refactor making the engines stateless/reentrant
(thread-local :mod:`repro.obs` sessions, canonical shared memo objects)
is what makes that safe.
"""

from __future__ import annotations

import asyncio
import collections
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro import api, obs
from repro.cache import ResultCache
from repro.errors import ConfigError
from repro.service import protocol
from repro.service.batch import BatchScheduler, batchable

__all__ = [
    "ServiceConfig",
    "SimulationServer",
    "SimulationService",
    "ServerThread",
    "TokenBucket",
    "default_workers",
    "execute_request",
    "serve",
]


def execute_request(request) -> Dict:
    """Run one request through the facade; the response ``payload``.

    Module-level and engine-pure so tests and the CI smoke can compare a
    served response bit-for-bit against this direct evaluation.
    """
    if isinstance(request, api.SimulationRequest):
        result = api.simulate(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "result": result.to_dict(),
        }
    if isinstance(request, api.SweepRequest):
        outcome = api.sweep(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "points": [
                [p.workload.name, p.arch.name, p.scale]
                for p in outcome.points
            ],
            "results": [r.to_dict() for r in outcome.results],
        }
    if isinstance(request, api.FaultScheduleRequest):
        timeline = api.price_fault_schedule(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "result": timeline.to_dict(),
        }
    raise ConfigError(f"unservable request type {type(request).__name__}")


class _OwnerCancelled(ConfigError):
    """The task owning an in-flight computation was cancelled.

    Set on the shared future so coalesced waiters fail fast (and get a
    retryable ``rejected`` answer) instead of hanging on a future nobody
    will ever resolve.
    """


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic()

    def take(self, n: float = 1.0) -> bool:
        if math.isinf(self.rate):
            return True
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        if math.isinf(self.rate) or self.rate <= 0:
            return 0.0
        return max(0.0, (n - self.tokens) / self.rate)

    def idle(self) -> bool:
        """True when the bucket has refilled to capacity — dropping it
        loses no state, since a lazily recreated bucket starts full."""
        if math.isinf(self.rate):
            return True
        refill = (time.monotonic() - self.updated) * self.rate
        return self.tokens + refill >= self.burst


def default_workers() -> int:
    """Engine threads sized from the host: one per core, floored at 2
    (compute overlaps disk I/O even on tiny hosts), capped at 32 (the
    engines are GIL-bound Python; more threads only add contention)."""
    return min(32, max(2, os.cpu_count() or 2))


@dataclass(frozen=True)
class ServiceConfig:
    """Service policy: concurrency bounds, quotas, cache tiers, batching."""

    max_workers: Optional[int] = None  # engine threads (None: per host cores)
    max_pending: int = 64        # unique computations queued + running
    memo_entries: int = 512      # in-process LRU payloads
    quota_rate: float = math.inf  # tokens/s granted per tenant
    quota_burst: float = 256.0   # tenant burst capacity
    max_tenants: int = 1024      # live token buckets (LRU-evicted beyond)
    cache_dir: Optional[Path] = None    # private on-disk tier
    shared_dir: Optional[Path] = None   # cross-process tier (locked writes)
    batch_enabled: bool = True   # cross-request batch scheduler
    batch_window_ms: float = 2.0  # micro-batch accumulation window
    max_batch_points: int = 256  # size trigger: flush at this many points
    point_memo_entries: int = 4096  # point-level LRU result payloads

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if self.memo_entries < 0:
            raise ConfigError("memo_entries must be >= 0")
        if self.quota_rate <= 0:
            raise ConfigError("quota_rate must be positive")
        if self.quota_burst < 1:
            raise ConfigError("quota_burst must be >= 1")
        if self.max_tenants < 1:
            raise ConfigError("max_tenants must be >= 1")
        if not (
            isinstance(self.batch_window_ms, (int, float))
            and not isinstance(self.batch_window_ms, bool)
            and math.isfinite(self.batch_window_ms)
            and self.batch_window_ms >= 0
        ):
            raise ConfigError("batch_window_ms must be >= 0 and finite")
        if self.max_batch_points < 1:
            raise ConfigError("max_batch_points must be >= 1")
        if self.point_memo_entries < 0:
            raise ConfigError("point_memo_entries must be >= 0")

    @property
    def workers(self) -> int:
        """The resolved engine-thread count (override or host-sized)."""
        if self.max_workers is not None:
            return self.max_workers
        return default_workers()


class SimulationService:
    """The request broker: coalescing, admission, quotas, cache tiers.

    All bookkeeping (memo, in-flight table, counters, buckets) is
    touched only on the event-loop thread; engine execution and disk
    I/O run on the executor.  ``handle`` maps one request envelope to
    one response envelope and never raises.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = obs.MetricsRegistry()
        self._memo: "collections.OrderedDict[str, Dict]" = (
            collections.OrderedDict()
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending = 0
        self._buckets: "collections.OrderedDict[str, TokenBucket]" = (
            collections.OrderedDict()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-engine",
        )
        self._disk = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._shared = (
            ResultCache(self.config.shared_dir, locked=True)
            if self.config.shared_dir is not None
            else None
        )
        self._batch = (
            BatchScheduler(self) if self.config.batch_enabled else None
        )

    # -- bookkeeping (event-loop thread only) --------------------------------

    def _inc(self, name: str, value: int = 1) -> None:
        self.registry.inc(name, value)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if len(self._buckets) >= self.config.max_tenants:
                self._evict_bucket()
            bucket = TokenBucket(
                self.config.quota_rate, self.config.quota_burst
            )
            self._buckets[tenant] = bucket
        else:
            self._buckets.move_to_end(tenant)
        return bucket

    def _evict_bucket(self) -> None:
        """Drop one tenant bucket so the table stays bounded.

        Tenant names are client-supplied strings, so the table must not
        grow with the name space.  Prefers an :meth:`~TokenBucket.idle`
        (fully refilled) bucket — dropping one loses no quota state —
        scanning from the least-recently-used end; if every tenant is
        mid-burst, the LRU one goes anyway (it regains its burst on
        return, a bounded generosity that beats unbounded memory)."""
        for tenant, bucket in self._buckets.items():  # LRU order
            if bucket.idle():
                del self._buckets[tenant]
                self._inc("service.tenants_evicted")
                return
        self._buckets.popitem(last=False)
        self._inc("service.tenants_evicted")

    def _memo_get(self, fp: str) -> Optional[Dict]:
        payload = self._memo.get(fp)
        if payload is not None:
            self._memo.move_to_end(fp)
        return payload

    def _memo_put(self, fp: str, payload: Dict) -> None:
        if self.config.memo_entries <= 0:
            return
        self._memo[fp] = payload
        self._memo.move_to_end(fp)
        while len(self._memo) > self.config.memo_entries:
            self._memo.popitem(last=False)

    def stats(self) -> Dict:
        """The ``stats`` op payload: counters + live state snapshot."""
        manifest = self.registry.to_manifest()
        return {
            "kind": "stats",
            "protocol": protocol.PROTOCOL,
            "counters": manifest["counters"],
            "batch": self.registry.scoped("service.batch_"),
            "inflight": len(self._inflight),
            "pending": self._pending,
            "memo_entries": len(self._memo),
            "batch_queued": (
                len(self._batch) if self._batch is not None else 0
            ),
            "tenants": len(self._buckets),
            "config": {
                "max_workers": self.config.workers,
                "max_pending": self.config.max_pending,
                "memo_entries": self.config.memo_entries,
                "max_tenants": self.config.max_tenants,
                "batch_enabled": self.config.batch_enabled,
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch_points": self.config.max_batch_points,
                "point_memo_entries": self.config.point_memo_entries,
                "quota_rate": (
                    None
                    if math.isinf(self.config.quota_rate)
                    else self.config.quota_rate
                ),
                "quota_burst": self.config.quota_burst,
                "cache_dir": (
                    str(self.config.cache_dir)
                    if self.config.cache_dir
                    else None
                ),
                "shared_dir": (
                    str(self.config.shared_dir)
                    if self.config.shared_dir
                    else None
                ),
            },
        }

    # -- execution (executor threads) ----------------------------------------

    def _compute(
        self, request, fp: str, profile: bool
    ) -> Tuple[Dict, str, Optional[Dict], Optional[list]]:
        """Tiered lookup then engine run; returns ``(payload, tier,
        engine_manifest, span_rows)``.  Runs on an executor thread under
        its own hermetic obs session (sessions are thread-local)."""
        if self._disk is not None:
            payload = self._disk.get(fp)
            if payload is not None and payload.get("kind") == request.kind:
                return payload, "disk", None, None
        if self._shared is not None:
            payload = self._shared.get(fp)
            if payload is not None and payload.get("kind") == request.kind:
                if self._disk is not None:
                    self._disk.put(fp, payload)
                return payload, "shared", None, None
        registry = obs.MetricsRegistry()
        tracer = obs.Tracer() if profile else None
        with obs.session(tracer=tracer, metrics=registry):
            with obs.span("service.compute", cat="service", kind=request.kind):
                payload = execute_request(request)
        if self._disk is not None:
            self._disk.put(fp, payload)
        if self._shared is not None:
            self._shared.put(fp, payload)  # single-writer CacheLock inside
        spans = None
        if tracer is not None:
            spans = [
                [s.name, s.count, round(s.total * 1e3, 6)]
                for s in tracer.summarize(top=10)
            ]
        return payload, "computed", registry.to_manifest(), spans

    # -- the request path (event-loop thread) --------------------------------

    async def handle(self, envelope: Any) -> Dict:
        """One envelope in, one envelope out; never raises."""
        rid = envelope.get("id") if isinstance(envelope, dict) else None
        try:
            if not isinstance(envelope, dict):
                raise protocol.ProtocolError("envelope must be a JSON object")
            op = envelope.get("op", "request")
            if op == "ping":
                return protocol.ok_response(
                    rid, {"kind": "pong", "protocol": protocol.PROTOCOL}
                )
            if op == "stats":
                return protocol.ok_response(rid, self.stats())
            if op != "request":
                raise protocol.ProtocolError(f"unknown op {op!r}")
            tenant = str(envelope.get("tenant") or "anon")
            request = api.request_from_dict(envelope.get("request"))
            profile = bool(envelope.get("profile", False))
            # fingerprint() fully resolves the request, so malformed
            # field values that slipped past construction surface here —
            # still inside the bad-request envelope, never as a raise.
            fp = request.fingerprint()
        except ConfigError as exc:
            self._inc("service.bad_requests")
            return protocol.error_response(rid, "bad-request", str(exc))
        except (TypeError, ValueError) as exc:
            self._inc("service.bad_requests")
            return protocol.error_response(
                rid, "bad-request", f"{type(exc).__name__}: {exc}"
            )

        self._inc("service.requests")
        self._inc(f"service.requests.{request.kind}")

        bucket = self._bucket(tenant)
        if not bucket.take():
            self._inc("service.rejected_quota")
            return protocol.rejected_response(
                rid,
                "quota",
                f"tenant {tenant!r} exceeded its request quota",
                round(bucket.retry_after(), 4),
            )

        meta: Dict[str, Any] = {"fingerprint": fp, "kind": request.kind}

        payload = self._memo_get(fp)
        if payload is not None:
            self._inc("service.memo_hits")
            meta["served_by"] = "memo"
            return protocol.ok_response(rid, payload, meta)

        shared_future = self._inflight.get(fp)
        if shared_future is not None:
            # Single-flight: ride the identical in-flight computation.
            self._inc("service.coalesced")
            try:
                payload = await asyncio.shield(shared_future)
            except _OwnerCancelled as exc:
                self._inc("service.coalesce_aborted")
                return protocol.rejected_response(rid, "retry", str(exc), 0.0)
            except ConfigError as exc:
                return protocol.error_response(rid, "compute", str(exc))
            meta["served_by"] = "coalesced"
            return protocol.ok_response(rid, payload, meta)

        if self._pending >= self.config.max_pending:
            self._inc("service.rejected_backpressure")
            retry = 0.05 * (1 + self._pending / self.config.workers)
            return protocol.rejected_response(
                rid,
                "backpressure",
                f"{self._pending} computations pending "
                f"(limit {self.config.max_pending}); retry later",
                round(retry, 4),
            )

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[fp] = future
        self._pending += 1
        try:
            if self._batch is not None and batchable(request, profile):
                # Cross-request batching: the request's points join the
                # micro-batch queue and ride a shared kernel dispatch.
                payload = await self._batch.run_request(request)
                tier, manifest, spans = "batched", None, None
            else:
                payload, tier, manifest, spans = await loop.run_in_executor(
                    self._executor, self._compute, request, fp, profile
                )
            if not future.done():
                future.set_result(payload)
        except ConfigError as exc:
            future.set_exception(exc)
            future.exception()  # consumed: no "never retrieved" warning
            self._inc("service.errors")
            return protocol.error_response(rid, "compute", str(exc))
        except Exception as exc:  # engine bug: report, don't kill the server
            future.set_exception(
                ConfigError(f"internal error: {type(exc).__name__}: {exc}")
            )
            future.exception()
            self._inc("service.errors")
            return protocol.error_response(
                rid, "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            if not future.done():
                # This task was cancelled mid-computation (e.g. its
                # connection died).  Resolve the shared future so
                # coalesced waiters from other connections fail fast
                # and retry, instead of hanging until their timeout.
                future.set_exception(
                    _OwnerCancelled(
                        "the computation this request coalesced onto was "
                        "cancelled; retry"
                    )
                )
                future.exception()
            self._inflight.pop(fp, None)
            self._pending -= 1

        self._memo_put(fp, payload)
        if tier == "computed":
            self._inc("service.computed")
        elif tier == "batched":
            self._inc("service.batched")
        else:
            self._inc(f"service.{tier}_hits")
        if manifest is not None:
            self.registry.merge_manifest(manifest)
        meta["served_by"] = tier
        if spans is not None:
            meta["spans"] = spans
        return protocol.ok_response(rid, payload, meta)

    def close(self) -> None:
        if self._batch is not None:
            self._batch.close()
        self._executor.shutdown(wait=False)

    async def aclose(self) -> None:
        """Async shutdown: lets in-flight batch dispatches scatter their
        results before the executor goes away."""
        if self._batch is not None:
            await self._batch.aclose()
        self._executor.shutdown(wait=False)


class SimulationServer:
    """The TCP front end: newline-delimited JSON over asyncio streams.

    Each connection may pipeline requests; every frame is handled as its
    own task, so responses interleave by completion order and slow
    computations never head-of-line-block cached ones.
    """

    def __init__(
        self,
        service: Optional[SimulationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service or SimulationService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ConfigError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        return self.address

    async def _serve_connection(self, reader, writer) -> None:
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(response: Dict) -> None:
            data = protocol.encode_frame(response)
            async with write_lock:
                writer.write(data)
                await writer.drain()

        async def one(line: bytes) -> None:
            try:
                envelope = protocol.decode_frame(line)
            except protocol.ProtocolError as exc:
                await respond(
                    protocol.error_response(None, "bad-frame", str(exc))
                )
                return
            try:
                response = await self.service.handle(envelope)
            except Exception as exc:
                # handle() promises never to raise; if a hole slips
                # through anyway the client must still get an answer for
                # this id — silence here means a blocked client (the
                # gather() below swallows task exceptions).
                response = protocol.error_response(
                    envelope.get("id"),
                    "internal",
                    f"{type(exc).__name__}: {exc}",
                )
            await respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    await respond(
                        protocol.error_response(
                            None,
                            "frame-too-large",
                            f"frames are capped at "
                            f"{protocol.MAX_FRAME_BYTES} bytes",
                        )
                    )
                    break
                if not line:
                    break
                task = asyncio.create_task(one(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionError, asyncio.CancelledError):
            # Cancelled = server shutdown with the connection open; close
            # the stream and let the task end quietly.
            for task in tasks:
                task.cancel()
        finally:
            # Swallowing CancelledError here ends the task *normally*
            # when shutdown cancels it mid-close, so the streams
            # machinery's done-callback (which calls task.exception())
            # does not spray a traceback on the loop.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        await self.service.aclose()


async def _run_server(
    config: Optional[ServiceConfig],
    host: str,
    port: int,
    ready=None,
    stop: Optional[asyncio.Event] = None,
    announce=None,
) -> None:
    server = SimulationServer(SimulationService(config), host, port)
    address = await server.start()
    if announce is not None:
        announce(address)
    if ready is not None:
        ready.server = server
        ready.address = address
        ready.event.set()
    try:
        if stop is None:
            stop = asyncio.Event()
        await stop.wait()
    finally:
        await server.close()


def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 7543,
    announce=print,
) -> None:
    """Run a server until interrupted (the ``repro serve`` entry)."""
    try:
        asyncio.run(
            _run_server(
                config,
                host,
                port,
                announce=lambda addr: announce(
                    f"repro service listening on {addr[0]}:{addr[1]} "
                    f"({protocol.PROTOCOL})"
                ),
            )
        )
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A live server on a background thread (tests, benchmarks, CLI).

    Usage::

        with ServerThread(ServiceConfig(max_workers=2)) as srv:
            client = ServiceClient(*srv.address)
            ...

    The service object is reachable as ``srv.service`` for stats
    inspection after the run.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None
        self.service: Optional[SimulationService] = None

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()

        class _Ready:
            pass

        ready = _Ready()
        ready.event = threading.Event()

        async def main():
            await _run_server(
                self._config, self._host, self._port, ready=ready,
                stop=self._stop,
            )

        def _announce_started():
            self.address = ready.address
            self.service = ready.server.service
            self._ready.set()

        watcher = threading.Thread(
            target=lambda: (ready.event.wait(), _announce_started()),
            daemon=True,
        )
        watcher.start()
        try:
            loop.run_until_complete(main())
        except BaseException as exc:  # startup failure: surface in __enter__
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ConfigError("service did not start within 30s")
        if self._startup_error is not None:
            raise ConfigError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
