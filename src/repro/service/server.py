"""Simulation-as-a-service: the asyncio front end over :mod:`repro.api`.

The engines price a scenario in microseconds-to-milliseconds; what a
fleet of callers needs on top is *multiplexing*: many tenants, bursty
duplicate-heavy traffic, and strict bounds on concurrent work.  This
module provides that layer with three mechanisms, all keyed by the
content-hash fingerprint of the versioned request objects
(:mod:`repro.api`, schema ``repro-request/1``):

* **single-flight coalescing** — identical requests arriving while one
  is being computed attach to the in-flight future instead of entering
  the queue; one engine run serves them all, bit-identically.
* **admission control** — at most ``max_pending`` unique computations
  may be queued or running; beyond that the server answers ``rejected``
  with ``retry_after`` (backpressure) instead of building an unbounded
  queue.  Coalesced and cache-served requests never consume a slot.
* **tiered result lookup** — in-process LRU memo → the server's private
  on-disk :class:`~repro.cache.ResultCache` → an optional *shared*
  cache directory where writes take the per-entry cross-process
  :class:`~repro.cache.CacheLock` (single writer; stale locks from
  killed servers are reclaimed).  Shared hits are backfilled down.
* **cross-request batching** — *distinct* analytical requests are
  decomposed into evaluation points, micro-batched for up to
  ``batch_window_ms`` (or ``max_batch_points``), and priced in one
  vectorized kernel dispatch (:mod:`repro.service.batch`); responses
  carry ``served_by: "batched"`` and stay bit-identical to
  :func:`execute_request`.

Per-tenant token buckets bound each tenant's request rate; counters for
every tier and outcome accrue in a :class:`~repro.obs.MetricsRegistry`
manifest (the ``stats`` op), and engine-internal counters from each
computation are merged in hermetically.  Engine execution happens on a
thread pool — the refactor making the engines stateless/reentrant
(thread-local :mod:`repro.obs` sessions, canonical shared memo objects)
is what makes that safe.

The resilience layer (PR 10) adds, on top of the throughput machinery:

* **deadlines** — an optional ``deadline_ms`` envelope budget, enforced
  at admission, at executor pickup, and at scatter time; a request the
  server cannot answer in budget gets a ``deadline_exceeded`` rejection
  while shared work keeps serving its other waiters;
* **disconnect cancellation** — a connection that reaches EOF with
  requests still in flight has those tasks cancelled; coalesced waiters
  on other connections are resolved retryable, and sole-waiter batch
  points are abandoned before they reach the kernel;
* **graceful drain** — SIGTERM (or :meth:`SimulationServer.close`)
  stops admitting work (``rejected/draining``), completes in-flight
  requests under ``drain_timeout``, flushes the deferred shared-tier
  write-back queue, and reports drained stats (zero stranded futures on
  a clean drain);
* **degrade-to-scalar** — the batch scheduler's kernel breaker
  (:class:`~repro.service.batch.KernelBreaker`) routes batchable
  requests down the scalar compute path after repeated dispatch-level
  failures, trading throughput for availability;
* **chaos hooks** — a :class:`~repro.service.chaos.ChaosInjector` can
  be threaded through the service to inject executor-task exceptions,
  compute latency, and disk-tier I/O faults deterministically
  (``repro bench-service --chaos`` drives the drill).
"""

from __future__ import annotations

import asyncio
import collections
import math
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro import api, obs
from repro.cache import ResultCache
from repro.errors import ConfigError
from repro.service import protocol
from repro.service.batch import BatchScheduler, batchable

__all__ = [
    "ServiceConfig",
    "SimulationServer",
    "SimulationService",
    "ServerThread",
    "TokenBucket",
    "default_workers",
    "execute_request",
    "serve",
]


def execute_request(request) -> Dict:
    """Run one request through the facade; the response ``payload``.

    Module-level and engine-pure so tests and the CI smoke can compare a
    served response bit-for-bit against this direct evaluation.
    """
    if isinstance(request, api.SimulationRequest):
        result = api.simulate(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "result": result.to_dict(),
        }
    if isinstance(request, api.SweepRequest):
        outcome = api.sweep(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "points": [
                [p.workload.name, p.arch.name, p.scale]
                for p in outcome.points
            ],
            "results": [r.to_dict() for r in outcome.results],
        }
    if isinstance(request, api.FaultScheduleRequest):
        timeline = api.price_fault_schedule(request)
        return {
            "kind": request.kind,
            "engine": request.engine,
            "result": timeline.to_dict(),
        }
    raise ConfigError(f"unservable request type {type(request).__name__}")


class _OwnerCancelled(ConfigError):
    """The task owning an in-flight computation was cancelled.

    Set on the shared future so coalesced waiters fail fast (and get a
    retryable ``rejected`` answer) instead of hanging on a future nobody
    will ever resolve.
    """


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic()

    def take(self, n: float = 1.0) -> bool:
        if math.isinf(self.rate):
            return True
        now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        if math.isinf(self.rate) or self.rate <= 0:
            return 0.0
        return max(0.0, (n - self.tokens) / self.rate)

    def idle(self) -> bool:
        """True when the bucket has refilled to capacity — dropping it
        loses no state, since a lazily recreated bucket starts full."""
        if math.isinf(self.rate):
            return True
        refill = (time.monotonic() - self.updated) * self.rate
        return self.tokens + refill >= self.burst


def default_workers() -> int:
    """Engine threads sized from the host: one per core, floored at 2
    (compute overlaps disk I/O even on tiny hosts), capped at 32 (the
    engines are GIL-bound Python; more threads only add contention)."""
    return min(32, max(2, os.cpu_count() or 2))


@dataclass(frozen=True)
class ServiceConfig:
    """Service policy: concurrency bounds, quotas, cache tiers, batching."""

    max_workers: Optional[int] = None  # engine threads (None: per host cores)
    max_pending: int = 64        # unique computations queued + running
    memo_entries: int = 512      # in-process LRU payloads
    quota_rate: float = math.inf  # tokens/s granted per tenant
    quota_burst: float = 256.0   # tenant burst capacity
    max_tenants: int = 1024      # live token buckets (LRU-evicted beyond)
    cache_dir: Optional[Path] = None    # private on-disk tier
    shared_dir: Optional[Path] = None   # cross-process tier (locked writes)
    batch_enabled: bool = True   # cross-request batch scheduler
    batch_window_ms: float = 2.0  # micro-batch accumulation window
    max_batch_points: int = 256  # size trigger: flush at this many points
    point_memo_entries: int = 4096  # point-level LRU result payloads
    drain_timeout: float = 10.0  # graceful-drain budget (seconds)
    breaker_threshold: int = 3   # consecutive dispatch failures to trip
    breaker_probe_after: int = 16  # bypassed requests per breaker probe

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if self.memo_entries < 0:
            raise ConfigError("memo_entries must be >= 0")
        if self.quota_rate <= 0:
            raise ConfigError("quota_rate must be positive")
        if self.quota_burst < 1:
            raise ConfigError("quota_burst must be >= 1")
        if self.max_tenants < 1:
            raise ConfigError("max_tenants must be >= 1")
        if not (
            isinstance(self.batch_window_ms, (int, float))
            and not isinstance(self.batch_window_ms, bool)
            and math.isfinite(self.batch_window_ms)
            and self.batch_window_ms >= 0
        ):
            raise ConfigError("batch_window_ms must be >= 0 and finite")
        if self.max_batch_points < 1:
            raise ConfigError("max_batch_points must be >= 1")
        if self.point_memo_entries < 0:
            raise ConfigError("point_memo_entries must be >= 0")
        if not (
            isinstance(self.drain_timeout, (int, float))
            and not isinstance(self.drain_timeout, bool)
            and math.isfinite(self.drain_timeout)
            and self.drain_timeout >= 0
        ):
            raise ConfigError("drain_timeout must be >= 0 and finite")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_probe_after < 1:
            raise ConfigError("breaker_probe_after must be >= 1")

    @property
    def workers(self) -> int:
        """The resolved engine-thread count (override or host-sized)."""
        if self.max_workers is not None:
            return self.max_workers
        return default_workers()


class SimulationService:
    """The request broker: coalescing, admission, quotas, cache tiers.

    All bookkeeping (memo, in-flight table, counters, buckets) is
    touched only on the event-loop thread; engine execution and disk
    I/O run on the executor.  ``handle`` maps one request envelope to
    one response envelope and never raises.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        chaos=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = obs.MetricsRegistry()
        self._memo: "collections.OrderedDict[str, Dict]" = (
            collections.OrderedDict()
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending = 0
        self._buckets: "collections.OrderedDict[str, TokenBucket]" = (
            collections.OrderedDict()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-engine",
        )
        self._disk = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self._shared = (
            ResultCache(self.config.shared_dir, locked=True)
            if self.config.shared_dir is not None
            else None
        )
        self._chaos = chaos
        if chaos is not None:
            # Fault-wrap the disk tiers: chaos decides per-operation
            # whether a deterministic OSError fires before the real I/O.
            self._disk = chaos.wrap_cache(self._disk)
            self._shared = chaos.wrap_cache(self._shared)
        self._batch = (
            BatchScheduler(self) if self.config.batch_enabled else None
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._writeback: "collections.deque" = collections.deque()
        self._writeback_task: Optional[asyncio.Future] = None
        self.last_drain: Optional[Dict] = None

    # -- bookkeeping (event-loop thread only) --------------------------------

    def _inc(self, name: str, value: int = 1) -> None:
        self.registry.inc(name, value)

    def _inc_threadsafe(self, name: str, value: int = 1) -> None:
        """Counter bump from an executor thread: hop to the loop so the
        registry stays single-threaded.  Dropped if the loop is gone
        (shutdown races) — counters are telemetry, not ledgers."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._inc, name, value)
        except RuntimeError:
            pass

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if len(self._buckets) >= self.config.max_tenants:
                self._evict_bucket()
            bucket = TokenBucket(
                self.config.quota_rate, self.config.quota_burst
            )
            self._buckets[tenant] = bucket
        else:
            self._buckets.move_to_end(tenant)
        return bucket

    def _evict_bucket(self) -> None:
        """Drop one tenant bucket so the table stays bounded.

        Tenant names are client-supplied strings, so the table must not
        grow with the name space.  Prefers an :meth:`~TokenBucket.idle`
        (fully refilled) bucket — dropping one loses no quota state —
        scanning from the least-recently-used end; if every tenant is
        mid-burst, the LRU one goes anyway (it regains its burst on
        return, a bounded generosity that beats unbounded memory)."""
        for tenant, bucket in self._buckets.items():  # LRU order
            if bucket.idle():
                del self._buckets[tenant]
                self._inc("service.tenants_evicted")
                return
        self._buckets.popitem(last=False)
        self._inc("service.tenants_evicted")

    def _memo_get(self, fp: str) -> Optional[Dict]:
        payload = self._memo.get(fp)
        if payload is not None:
            self._memo.move_to_end(fp)
        return payload

    def _memo_put(self, fp: str, payload: Dict) -> None:
        if self.config.memo_entries <= 0:
            return
        self._memo[fp] = payload
        self._memo.move_to_end(fp)
        while len(self._memo) > self.config.memo_entries:
            self._memo.popitem(last=False)

    # -- deferred shared-tier write-backs ------------------------------------

    def _defer_writeback(self, key: str, payload: Dict) -> None:
        """Queue a shared-tier put (thread-safe: called from executor
        threads).  Shared writes take a cross-process lock, so they are
        taken off the request path; the drain/close machinery guarantees
        every queued entry is flushed before the server exits."""
        if self._shared is None:
            return
        self._writeback.append((key, payload))

    def _kick_writeback(self) -> None:
        """Loop thread: start a background flush unless one is running."""
        if not self._writeback or self._shared is None:
            return
        if self._writeback_task is not None and not self._writeback_task.done():
            return
        loop = asyncio.get_running_loop()
        try:
            task = loop.run_in_executor(self._executor, self._flush_writebacks)
        except RuntimeError:
            return  # executor already shut down; the final flush covers it
        self._writeback_task = task
        task.add_done_callback(self._writeback_done)

    def _writeback_done(self, task) -> None:
        try:
            flushed, errors = task.result()
        except Exception:
            return
        if flushed:
            self._inc("service.writebacks_flushed", flushed)
        if errors:
            self._inc("service.cache_errors", errors)

    def _flush_writebacks(self) -> Tuple[int, int]:
        """Drain the write-back queue; returns ``(flushed, errors)``.
        Runs on an executor thread (or synchronously at shutdown); the
        deque is thread-safe, so a concurrent flush just finds it empty.
        """
        flushed = errors = 0
        while True:
            try:
                key, payload = self._writeback.popleft()
            except IndexError:
                break
            try:
                self._shared.put(key, payload)
                flushed += 1
            except (OSError, ConfigError):
                errors += 1
        return flushed, errors

    def stats(self) -> Dict:
        """The ``stats`` op payload: counters + live state snapshot."""
        manifest = self.registry.to_manifest()
        return {
            "kind": "stats",
            "protocol": protocol.PROTOCOL,
            "counters": manifest["counters"],
            "batch": self.registry.scoped("service.batch_"),
            "inflight": len(self._inflight),
            "pending": self._pending,
            "memo_entries": len(self._memo),
            "batch_queued": (
                len(self._batch) if self._batch is not None else 0
            ),
            "tenants": len(self._buckets),
            "draining": self._draining,
            "writeback_queued": len(self._writeback),
            "breaker": (
                self._batch.breaker.state()
                if self._batch is not None
                else None
            ),
            "config": {
                "max_workers": self.config.workers,
                "max_pending": self.config.max_pending,
                "memo_entries": self.config.memo_entries,
                "max_tenants": self.config.max_tenants,
                "batch_enabled": self.config.batch_enabled,
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch_points": self.config.max_batch_points,
                "point_memo_entries": self.config.point_memo_entries,
                "drain_timeout": self.config.drain_timeout,
                "breaker_threshold": self.config.breaker_threshold,
                "breaker_probe_after": self.config.breaker_probe_after,
                "quota_rate": (
                    None
                    if math.isinf(self.config.quota_rate)
                    else self.config.quota_rate
                ),
                "quota_burst": self.config.quota_burst,
                "cache_dir": (
                    str(self.config.cache_dir)
                    if self.config.cache_dir
                    else None
                ),
                "shared_dir": (
                    str(self.config.shared_dir)
                    if self.config.shared_dir
                    else None
                ),
            },
        }

    # -- execution (executor threads) ----------------------------------------

    def _compute(
        self, request, fp: str, profile: bool, deadline: Optional[float] = None
    ) -> Tuple[Dict, str, Optional[Dict], Optional[list]]:
        """Tiered lookup then engine run; returns ``(payload, tier,
        engine_manifest, span_rows)``.  Runs on an executor thread under
        its own hermetic obs session (sessions are thread-local)."""
        if deadline is not None and time.monotonic() >= deadline:
            # The budget burned up while this request sat in the
            # executor queue; don't spend an engine pass on an answer
            # nobody will accept.
            raise protocol.DeadlineExceeded(
                "deadline_ms expired before an engine thread picked "
                "the request up"
            )
        if self._chaos is not None:
            # Deterministic chaos: may sleep (compute latency) or raise
            # (executor-task exception) for this fingerprint.
            self._chaos.before_compute(fp)
        if self._disk is not None:
            try:
                payload = self._disk.get(fp)
            except OSError:
                payload = None
                self._inc_threadsafe("service.cache_errors")
            if payload is not None and payload.get("kind") == request.kind:
                return payload, "disk", None, None
        if self._shared is not None:
            try:
                payload = self._shared.get(fp)
            except OSError:
                payload = None
                self._inc_threadsafe("service.cache_errors")
            if payload is not None and payload.get("kind") == request.kind:
                if self._disk is not None:
                    try:
                        self._disk.put(fp, payload)
                    except OSError:
                        self._inc_threadsafe("service.cache_errors")
                return payload, "shared", None, None
        registry = obs.MetricsRegistry()
        tracer = obs.Tracer() if profile else None
        with obs.session(tracer=tracer, metrics=registry):
            with obs.span("service.compute", cat="service", kind=request.kind):
                payload = execute_request(request)
        if self._disk is not None:
            try:
                self._disk.put(fp, payload)
            except OSError:
                self._inc_threadsafe("service.cache_errors")
        if self._shared is not None:
            # Shared-tier writes take a cross-process lock; defer them
            # off the request path (the drain/flush machinery guarantees
            # delivery before the server exits).
            self._defer_writeback(fp, payload)
        spans = None
        if tracer is not None:
            spans = [
                [s.name, s.count, round(s.total * 1e3, 6)]
                for s in tracer.summarize(top=10)
            ]
        return payload, "computed", registry.to_manifest(), spans

    # -- the request path (event-loop thread) --------------------------------

    async def handle(self, envelope: Any) -> Dict:
        """One envelope in, one envelope out; never raises."""
        rid = envelope.get("id") if isinstance(envelope, dict) else None
        try:
            if not isinstance(envelope, dict):
                raise protocol.ProtocolError("envelope must be a JSON object")
            op = envelope.get("op", "request")
            if op == "ping":
                return protocol.ok_response(
                    rid, {"kind": "pong", "protocol": protocol.PROTOCOL}
                )
            if op == "stats":
                return protocol.ok_response(rid, self.stats())
            if op != "request":
                raise protocol.ProtocolError(f"unknown op {op!r}")
            tenant = str(envelope.get("tenant") or "anon")
            budget_ms = protocol.parse_deadline_ms(envelope.get("deadline_ms"))
            request = api.request_from_dict(envelope.get("request"))
            profile = bool(envelope.get("profile", False))
            # fingerprint() fully resolves the request, so malformed
            # field values that slipped past construction surface here —
            # still inside the bad-request envelope, never as a raise.
            fp = request.fingerprint()
        except ConfigError as exc:
            self._inc("service.bad_requests")
            return protocol.error_response(rid, "bad-request", str(exc))
        except (TypeError, ValueError) as exc:
            self._inc("service.bad_requests")
            return protocol.error_response(
                rid, "bad-request", f"{type(exc).__name__}: {exc}"
            )

        self._loop = asyncio.get_running_loop()
        deadline = (
            None if budget_ms is None else time.monotonic() + budget_ms / 1000.0
        )
        try:
            return await self._admit(rid, tenant, request, profile, fp, deadline)
        except asyncio.CancelledError:
            # The connection died mid-request (or shutdown cancelled the
            # frame task).  Counted so the accounting invariant —
            # requests == answered tiers + rejections + errors +
            # cancellations — still balances.
            self._inc("service.cancelled")
            raise

    def _deadline_reject(self, rid, where: str) -> Dict:
        self._inc("service.deadline_exceeded")
        return protocol.rejected_response(
            rid,
            "deadline_exceeded",
            f"deadline_ms expired {where}",
            0.0,
        )

    async def _admit(
        self, rid, tenant, request, profile: bool, fp: str,
        deadline: Optional[float],
    ) -> Dict:
        self._inc("service.requests")
        self._inc(f"service.requests.{request.kind}")

        if self._draining:
            self._inc("service.rejected_draining")
            return protocol.rejected_response(
                rid,
                "draining",
                "server is draining; resend to another replica",
                1.0,
            )

        bucket = self._bucket(tenant)
        if not bucket.take():
            self._inc("service.rejected_quota")
            return protocol.rejected_response(
                rid,
                "quota",
                f"tenant {tenant!r} exceeded its request quota",
                round(bucket.retry_after(), 4),
            )

        meta: Dict[str, Any] = {"fingerprint": fp, "kind": request.kind}

        payload = self._memo_get(fp)
        if payload is not None:
            self._inc("service.memo_hits")
            meta["served_by"] = "memo"
            return protocol.ok_response(rid, payload, meta)

        shared_future = self._inflight.get(fp)
        if shared_future is not None:
            # Single-flight: ride the identical in-flight computation.
            # ``service.coalesced`` counts only the requests a coalesced
            # wait *answered* — aborted/expired/failed waiters land in
            # their own outcome counters instead, so every request falls
            # in exactly one bucket and the accounting invariant
            # (requests == tiers + rejections + errors + cancellations)
            # balances.  ``coalesce_attached`` counts entries (tests and
            # dashboards watch attachment, not outcome).
            self._inc("service.coalesce_attached")
            try:
                if deadline is None:
                    payload = await asyncio.shield(shared_future)
                else:
                    payload = await asyncio.wait_for(
                        asyncio.shield(shared_future),
                        max(0.0, deadline - time.monotonic()),
                    )
            except asyncio.TimeoutError:
                return self._deadline_reject(
                    rid, "while waiting on the coalesced computation"
                )
            except _OwnerCancelled as exc:
                self._inc("service.coalesce_aborted")
                return protocol.rejected_response(rid, "retry", str(exc), 0.0)
            except ConfigError as exc:
                self._inc("service.errors")
                return protocol.error_response(rid, "compute", str(exc))
            self._inc("service.coalesced")
            meta["served_by"] = "coalesced"
            return protocol.ok_response(rid, payload, meta)

        if self._pending >= self.config.max_pending:
            self._inc("service.rejected_backpressure")
            retry = 0.05 * (1 + self._pending / self.config.workers)
            return protocol.rejected_response(
                rid,
                "backpressure",
                f"{self._pending} computations pending "
                f"(limit {self.config.max_pending}); retry later",
                round(retry, 4),
            )

        if deadline is not None and time.monotonic() >= deadline:
            # Admission-time enforcement: the budget burned up in parse
            # and queueing before any engine dispatch.
            return self._deadline_reject(rid, "before dispatch")

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[fp] = future
        self._pending += 1
        try:
            if (
                self._batch is not None
                and batchable(request, profile)
                and self._batch.admit()
            ):
                # Cross-request batching: the request's points join the
                # micro-batch queue and ride a shared kernel dispatch.
                # admit() is the kernel breaker: while open, batchable
                # requests degrade to the scalar path below instead.
                payload = await self._batch.run_request(
                    request, deadline=deadline
                )
                tier, manifest, spans = "batched", None, None
            else:
                payload, tier, manifest, spans = await loop.run_in_executor(
                    self._executor, self._compute, request, fp, profile,
                    deadline,
                )
            if not future.done():
                future.set_result(payload)
        except protocol.DeadlineExceeded as exc:
            # This request owned the computation but its budget ran out.
            # Waiters retry rather than inherit this owner's deadline.
            future.set_exception(
                _OwnerCancelled(
                    "the computation this request coalesced onto exceeded "
                    "its owner's deadline; retry"
                )
            )
            future.exception()
            self._inc("service.deadline_exceeded")
            return protocol.rejected_response(
                rid, "deadline_exceeded", str(exc), 0.0
            )
        except ConfigError as exc:
            future.set_exception(exc)
            future.exception()  # consumed: no "never retrieved" warning
            self._inc("service.errors")
            return protocol.error_response(rid, "compute", str(exc))
        except Exception as exc:  # engine bug: report, don't kill the server
            future.set_exception(
                ConfigError(f"internal error: {type(exc).__name__}: {exc}")
            )
            future.exception()
            self._inc("service.errors")
            return protocol.error_response(
                rid, "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            if not future.done():
                # This task was cancelled mid-computation (e.g. its
                # connection died).  Resolve the shared future so
                # coalesced waiters from other connections fail fast
                # and retry, instead of hanging until their timeout.
                future.set_exception(
                    _OwnerCancelled(
                        "the computation this request coalesced onto was "
                        "cancelled; retry"
                    )
                )
                future.exception()
            self._inflight.pop(fp, None)
            self._pending -= 1

        self._memo_put(fp, payload)
        if manifest is not None:
            self.registry.merge_manifest(manifest)
        self._kick_writeback()
        if deadline is not None and time.monotonic() >= deadline:
            # Scatter-time enforcement: the work finished, its result is
            # memoized and feeding every other waiter — but past the
            # budget the honest answer to THIS request is a rejection.
            # No tier counter: the accounting partition counts this
            # request under deadline_exceeded, not under a served tier.
            return self._deadline_reject(rid, "before the result scattered")
        if tier == "computed":
            self._inc("service.computed")
        elif tier == "batched":
            self._inc("service.batched")
        else:
            self._inc(f"service.{tier}_hits")
        meta["served_by"] = tier
        if spans is not None:
            meta["spans"] = spans
        return protocol.ok_response(rid, payload, meta)

    # -- drain & shutdown ----------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting work; flush the batch queue immediately.

        New requests get ``rejected`` with code ``draining`` (admin ops
        still answer); everything already admitted runs to completion.
        """
        if self._draining:
            return
        self._draining = True
        self._inc("service.drain_started")
        if self._batch is not None:
            self._batch.begin_drain()

    async def drain(self, timeout: Optional[float] = None) -> Dict:
        """Drain in-flight work under a deadline; returns drain stats.

        ``drained`` is True when every admitted request scattered and
        every batch dispatch finished within ``timeout`` (default
        ``config.drain_timeout``).
        """
        budget = self.config.drain_timeout if timeout is None else timeout
        self.begin_drain()
        deadline = time.monotonic() + budget
        while self._pending > 0 or (
            self._batch is not None and self._batch.busy()
        ):
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.005)
        drained = self._pending == 0 and (
            self._batch is None or not self._batch.busy()
        )
        return {
            "drained": drained,
            "timeout": budget,
            "pending": self._pending,
        }

    def close(self) -> None:
        """Synchronous shutdown (tests, abrupt paths): flush write-backs
        and wait for in-flight engine work so nothing is abandoned."""
        if self._batch is not None:
            self._batch.close()
        self._executor.shutdown(wait=True)
        flushed, errors = self._flush_writebacks()
        if flushed:
            self._inc("service.writebacks_flushed", flushed)
        if errors:
            self._inc("service.cache_errors", errors)

    async def aclose(self, drain_timeout: Optional[float] = None) -> Dict:
        """Graceful shutdown: drain, scatter batch dispatches, flush the
        write-back queue, stop the executor; returns the drain report
        (also kept as ``last_drain``)."""
        report = await self.drain(drain_timeout)
        if self._batch is not None:
            # Fails any leftover queued points fast and waits (bounded
            # when the drain already timed out) for in-flight dispatches
            # to scatter their results.
            await self._batch.aclose(
                timeout=None if report["drained"] else 1.0
            )
        loop = asyncio.get_running_loop()
        # Stop the engine pool BEFORE the final write-back flush: an
        # abandoned compute still running on the pool could otherwise
        # defer a write-back after the flush and strand it.  The flush
        # itself runs on the loop's default executor (ours is gone).
        await loop.run_in_executor(
            None, self._executor.shutdown, report["drained"]
        )
        flushed, errors = await loop.run_in_executor(
            None, self._flush_writebacks
        )
        if flushed:
            self._inc("service.writebacks_flushed", flushed)
        if errors:
            self._inc("service.cache_errors", errors)
        stranded = len(self._inflight) + (
            len(self._batch._inflight) if self._batch is not None else 0
        )
        report["stranded"] = stranded
        report["writebacks_flushed"] = flushed
        if report["drained"] and stranded == 0:
            self._inc("service.drained_clean")
        self.last_drain = report
        return report


class SimulationServer:
    """The TCP front end: newline-delimited JSON over asyncio streams.

    Each connection may pipeline requests; every frame is handled as its
    own task, so responses interleave by completion order and slow
    computations never head-of-line-block cached ones.
    """

    def __init__(
        self,
        service: Optional[SimulationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service or SimulationService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ConfigError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        return self.address

    async def _serve_connection(self, reader, writer) -> None:
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        tasks = set()

        async def respond(response: Dict) -> None:
            data = protocol.encode_frame(response)
            async with write_lock:
                writer.write(data)
                await writer.drain()

        async def one(line: bytes) -> None:
            try:
                envelope = protocol.decode_frame(line)
            except protocol.ProtocolError as exc:
                await respond(
                    protocol.error_response(None, "bad-frame", str(exc))
                )
                return
            try:
                response = await self.service.handle(envelope)
            except Exception as exc:
                # handle() promises never to raise; if a hole slips
                # through anyway the client must still get an answer for
                # this id — silence here means a blocked client (the
                # gather() below swallows task exceptions).
                response = protocol.error_response(
                    envelope.get("id"),
                    "internal",
                    f"{type(exc).__name__}: {exc}",
                )
            await respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    await respond(
                        protocol.error_response(
                            None,
                            "frame-too-large",
                            f"frames are capped at "
                            f"{protocol.MAX_FRAME_BYTES} bytes",
                        )
                    )
                    break
                if not line:
                    break
                task = asyncio.create_task(one(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                # EOF with frames still in flight: the client went away,
                # nobody will read these answers.  Cancel them so the
                # broker's owner-cancellation path resolves coalesced
                # waiters retryable and sole-waiter batch points are
                # abandoned, instead of computing into the void.  (A
                # client that read all its responses before closing has
                # no live tasks here — cancel() on done tasks is a
                # no-op.)
                for task in list(tasks):
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionError, asyncio.CancelledError):
            # Cancelled = server shutdown with the connection open; close
            # the stream and let the task end quietly.
            for task in tasks:
                task.cancel()
        finally:
            # Swallowing CancelledError here ends the task *normally*
            # when shutdown cancels it mid-close, so the streams
            # machinery's done-callback (which calls task.exception())
            # does not spray a traceback on the loop.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def close(self, drain_timeout: Optional[float] = None) -> Dict:
        """Graceful stop: close the listener, drain the service (new
        frames on live connections get ``rejected/draining``, admitted
        work completes and is answered), then tear down idle
        connections.  Returns the service's drain report."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        report = await self.service.aclose(drain_timeout)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        return report


async def _run_server(
    config: Optional[ServiceConfig],
    host: str,
    port: int,
    ready=None,
    stop: Optional[asyncio.Event] = None,
    announce=None,
    chaos=None,
    drain_timeout: Optional[float] = None,
    install_signals: bool = False,
) -> None:
    server = SimulationServer(SimulationService(config, chaos=chaos), host, port)
    address = await server.start()
    if announce is not None:
        announce(address)
    if stop is None:
        stop = asyncio.Event()
    if install_signals:
        # SIGTERM/SIGINT trigger a graceful drain instead of an abrupt
        # exit.  Signal handlers only install on the main thread of the
        # main interpreter (the ``repro serve`` path); ServerThread uses
        # its stop event instead.
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError, RuntimeError):
                pass
    if ready is not None:
        ready.server = server
        ready.address = address
        ready.event.set()
    try:
        await stop.wait()
    finally:
        await server.close(drain_timeout)


def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 7543,
    announce=print,
    drain_timeout: Optional[float] = None,
) -> None:
    """Run a server until interrupted (the ``repro serve`` entry).

    SIGTERM (and Ctrl-C) drain gracefully: the listener closes, admitted
    work completes under the drain budget, deferred shared-tier
    write-backs flush, and only then does the process exit.
    """
    try:
        asyncio.run(
            _run_server(
                config,
                host,
                port,
                announce=lambda addr: announce(
                    f"repro service listening on {addr[0]}:{addr[1]} "
                    f"({protocol.PROTOCOL})"
                ),
                drain_timeout=drain_timeout,
                install_signals=True,
            )
        )
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A live server on a background thread (tests, benchmarks, CLI).

    Usage::

        with ServerThread(ServiceConfig(max_workers=2)) as srv:
            client = ServiceClient(*srv.address)
            ...

    The service object is reachable as ``srv.service`` for stats
    inspection after the run.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos=None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._chaos = chaos
        self._drain_timeout = drain_timeout
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None
        self.service: Optional[SimulationService] = None

    @property
    def drain_report(self) -> Optional[Dict]:
        """The last drain's stats (available after :meth:`stop`)."""
        return self.service.last_drain if self.service is not None else None

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()

        class _Ready:
            pass

        ready = _Ready()
        ready.event = threading.Event()

        async def main():
            await _run_server(
                self._config, self._host, self._port, ready=ready,
                stop=self._stop, chaos=self._chaos,
                drain_timeout=self._drain_timeout,
            )

        def _announce_started():
            self.address = ready.address
            self.service = ready.server.service
            self._ready.set()

        watcher = threading.Thread(
            target=lambda: (ready.event.wait(), _announce_started()),
            daemon=True,
        )
        watcher.start()
        try:
            loop.run_until_complete(main())
        except BaseException as exc:  # startup failure: surface in __enter__
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ConfigError("service did not start within 30s")
        if self._startup_error is not None:
            raise ConfigError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A hung shutdown must surface — but not by masking an exception
        # already unwinding through the ``with`` block.
        self.stop(raise_on_hang=exc_type is None)

    def stop(self, raise_on_hang: bool = True) -> None:
        """Signal the server to drain and wait for the thread to exit.

        A thread that fails to join within 30s is a hung shutdown — a
        real bug (wedged executor work, a drain that never completes)
        that used to leak silently and deadlock *later* suites.  Now it
        raises (or, with ``raise_on_hang=False``, logs loudly to
        stderr so an in-flight exception is not masked)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        thread = self._thread
        if thread is None:
            return
        thread.join(timeout=30)
        if thread.is_alive():
            message = (
                "ServerThread failed to shut down within 30s; the "
                "server thread is leaked (hung drain or wedged engine "
                "work)"
            )
            if raise_on_hang:
                raise ConfigError(message)
            print(f"ERROR: {message}", file=sys.stderr)
            return
        self._thread = None
