"""RGB ↔ YCbCr conversion and chroma subsampling (JPEG / BT.601 style)."""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

# BT.601 full-range coefficients, as used by JFIF.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr_planes(rgb: np.ndarray):
    """Split an H×W×3 uint8 RGB image into float64 Y, Cb, Cr planes
    (Y in 0..255, Cb/Cr centered on 128).

    Channel-at-a-time linear combinations instead of a pixel×matrix
    product: same math, no (H·W, 3)-shaped temporaries.
    """
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise CodecError(f"expected HxWx3 RGB, got shape {rgb.shape}")
    r = rgb[..., 0].astype(np.float64)
    g = rgb[..., 1].astype(np.float64)
    b = rgb[..., 2].astype(np.float64)
    m = _RGB_TO_YCBCR
    y = m[0, 0] * r + m[0, 1] * g + m[0, 2] * b
    cb = m[1, 0] * r + m[1, 1] * g + m[1, 2] * b
    cb += 128.0
    cr = m[2, 0] * r + m[2, 1] * g + m[2, 2] * b
    cr += 128.0
    return y, cb, cr


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert H×W×3 uint8 RGB to float64 YCbCr (Y in 0..255, Cb/Cr centered
    on 128)."""
    y, cb, cr = rgb_to_ycbcr_planes(rgb)
    out = np.empty(rgb.shape, dtype=np.float64)
    out[..., 0] = y
    out[..., 1] = cb
    out[..., 2] = cr
    return out


def ycbcr_planes_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """Convert float Y/Cb/Cr planes back to uint8 RGB with clipping."""
    if not (y.shape == cb.shape == cr.shape):
        raise CodecError("Y, Cb, Cr planes must share a shape")
    cb = cb - 128.0
    cr = cr - 128.0
    m = _YCBCR_TO_RGB
    out = np.empty(y.shape + (3,), dtype=np.uint8)
    buf = np.empty_like(y)
    tmp = np.empty_like(y)
    for i in range(3):
        np.multiply(y, m[i, 0], out=buf)
        np.multiply(cb, m[i, 1], out=tmp)
        buf += tmp
        np.multiply(cr, m[i, 2], out=tmp)
        buf += tmp
        np.rint(buf, out=buf)
        np.clip(buf, 0, 255, out=buf)
        out[..., i] = buf
    return out


def ycbcr_planes_420_to_rgb(
    y: np.ndarray, cb: np.ndarray, cr: np.ndarray
) -> np.ndarray:
    """4:2:0-aware variant: ``cb``/``cr`` are half-resolution planes.

    The chroma terms of the color matrix are computed at quarter area and
    then nearest-neighbour upsampled — elementwise multiplication commutes
    with sample replication, so the result is bit-identical to upsampling
    first, at a fraction of the arithmetic.
    """
    h, w = y.shape
    hh, hw = cb.shape
    if (2 * hh, 2 * hw) != (h, w):
        raise CodecError("chroma planes must be half the luma resolution")
    cb = cb - 128.0
    cr = cr - 128.0
    m = _YCBCR_TO_RGB
    out = np.empty((h, w, 3), dtype=np.uint8)
    buf = np.empty_like(y)
    ctmp = np.empty_like(cb)
    for i in range(3):
        np.multiply(cb, m[i, 1], out=ctmp)
        chroma = m[i, 2] * cr
        chroma += ctmp
        np.multiply(y, m[i, 0], out=buf)
        buf.reshape(hh, 2, hw, 2)[...] += chroma[:, None, :, None]
        np.rint(buf, out=buf)
        np.clip(buf, 0, 255, out=buf)
        out[..., i] = buf
    return out


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert float YCbCr back to uint8 RGB with clipping."""
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise CodecError(f"expected HxWx3 YCbCr, got shape {ycc.shape}")
    return ycbcr_planes_to_rgb(ycc[..., 0], ycc[..., 1], ycc[..., 2])


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """2×2 average-pool a chroma plane (4:2:0).  Requires even dims."""
    h, w = channel.shape
    if h % 2 or w % 2:
        raise CodecError(f"4:2:0 subsampling needs even dimensions, got {h}x{w}")
    return channel.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_420(channel: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2× upsample of a chroma plane."""
    h, w = channel.shape
    return np.broadcast_to(
        channel[:, None, :, None], (h, 2, w, 2)
    ).reshape(2 * h, 2 * w)
