"""RGB ↔ YCbCr conversion and chroma subsampling (JPEG / BT.601 style)."""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

# BT.601 full-range coefficients, as used by JFIF.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert H×W×3 uint8 RGB to float64 YCbCr (Y in 0..255, Cb/Cr centered
    on 128)."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise CodecError(f"expected HxWx3 RGB, got shape {rgb.shape}")
    pixels = rgb.astype(np.float64)
    ycc = pixels @ _RGB_TO_YCBCR.T
    ycc[..., 1:] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert float YCbCr back to uint8 RGB with clipping."""
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise CodecError(f"expected HxWx3 YCbCr, got shape {ycc.shape}")
    shifted = ycc.astype(np.float64).copy()
    shifted[..., 1:] -= 128.0
    rgb = shifted @ _YCBCR_TO_RGB.T
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """2×2 average-pool a chroma plane (4:2:0).  Requires even dims."""
    h, w = channel.shape
    if h % 2 or w % 2:
        raise CodecError(f"4:2:0 subsampling needs even dimensions, got {h}x{w}")
    return channel.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_420(channel: np.ndarray) -> np.ndarray:
    """Nearest-neighbour 2× upsample of a chroma plane."""
    return np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
