"""Entropy coding for the JPEG codec: zig-zag scan, run-length coding of
AC coefficients, differential DC coding, and canonical Huffman codes.

Like libjpeg's ``-optimize`` mode, the encoder builds Huffman tables from
the actual symbol statistics of the image (with the JPEG 16-bit code
length limit enforced by the Annex-K style adjustment) and ships the
table spec — (BITS, HUFFVAL), i.e. code-length counts plus symbol order —
in the stream header.  The decoder rebuilds the canonical code and walks
the bitstream symbol by symbol.  This is the serial, branchy phase that
makes JPEG decode a poor fit for GPUs (§V-B of the paper).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import CodecError

MAX_CODE_LENGTH = 16

_U64_MASK = (1 << 64) - 1

# -- zig-zag scan -----------------------------------------------------------


def _zigzag_order(n: int = 8) -> np.ndarray:
    """Index order of the zig-zag scan of an n×n block (flat indices)."""
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        # Odd anti-diagonals run top-right → bottom-left (ascending i),
        # even ones the other way (ascending j).
        key=lambda ij: (ij[0] + ij[1], ij[0] if (ij[0] + ij[1]) % 2 else ij[1]),
    )
    return np.array([i * n + j for i, j in order])


ZIGZAG = _zigzag_order()
UNZIGZAG = np.argsort(ZIGZAG)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an 8×8 block in zig-zag order."""
    return block.reshape(-1)[ZIGZAG]


def zigzag_unscan(flat: np.ndarray) -> np.ndarray:
    """Rebuild an 8×8 block from a zig-zag ordered vector."""
    return flat[UNZIGZAG].reshape(8, 8)


# -- magnitude categories ---------------------------------------------------


def magnitude_category(value: int) -> int:
    """JPEG size category: number of bits needed for |value|."""
    return int(abs(int(value))).bit_length()


def encode_amplitude(value: int) -> Tuple[int, int]:
    """(size, amplitude-bits) for a coefficient, JPEG style: negative
    values are stored in one's complement of their magnitude."""
    value = int(value)
    size = magnitude_category(value)
    if size == 0:
        return 0, 0
    if value > 0:
        return size, value
    return size, value + (1 << size) - 1


def decode_amplitude(size: int, bits: int) -> int:
    """Inverse of :func:`encode_amplitude`."""
    if size == 0:
        return 0
    if bits >> (size - 1):  # top bit set → positive
        return bits
    return bits - (1 << size) + 1


# -- bit I/O -----------------------------------------------------------------


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._chunks: List[int] = []
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        if nbits < 0 or (nbits and value >> nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._chunks.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        """Finish the stream, padding the last byte with 1-bits (JPEG
        pads with 1s so a truncated EOB can't be forged from padding)."""
        out = list(self._chunks)
        if self._nbits:
            pad = 8 - self._nbits
            out.append(((self._acc << pad) | ((1 << pad) - 1)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read(self, nbits: int) -> int:
        if nbits == 0:
            return 0
        end = self._pos + nbits
        if end > len(self._data) * 8:
            raise CodecError("bitstream underrun")
        value = 0
        pos = self._pos
        while nbits:
            byte = self._data[pos >> 3]
            avail = 8 - (pos & 7)
            take = min(avail, nbits)
            shift = avail - take
            value = (value << take) | ((byte >> shift) & ((1 << take) - 1))
            pos += take
            nbits -= take
        self._pos = pos
        return value

    @property
    def bits_left(self) -> int:
        return len(self._data) * 8 - self._pos


# -- vectorized bit I/O ------------------------------------------------------


def pack_bits(values: np.ndarray, nbits: np.ndarray) -> bytes:
    """Vectorized :class:`BitWriter`: MSB-first packing of ``(value, nbits)``
    pairs, final byte padded with 1-bits.  Byte-identical to feeding the
    pairs to ``BitWriter.write`` one at a time."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    nbits = np.ascontiguousarray(nbits, dtype=np.int64)
    if values.shape != nbits.shape or values.ndim != 1:
        raise CodecError("values and nbits must be equal-length 1-D arrays")
    if values.size == 0:
        return b""
    if np.any(nbits < 0) or np.any(nbits > 63):
        raise CodecError("bit widths must be in 0..63")
    if np.any(values >> nbits):
        raise CodecError("value does not fit in its bit width")
    total = int(nbits.sum())
    if total == 0:
        return b""
    ends = np.cumsum(nbits)
    elem = np.repeat(np.arange(values.size), nbits)
    # Bit p of the stream is bit (ends[elem]-1-p) of its element, i.e.
    # each element is emitted MSB first.
    shift = ends[elem] - 1 - np.arange(total)
    bits = ((values[elem] >> shift) & 1).astype(np.uint8)
    pad = (-total) % 8
    if pad:
        bits = np.concatenate([bits, np.ones(pad, dtype=np.uint8)])
    return np.packbits(bits).tobytes()


def bit_windows_array(data: bytes) -> np.ndarray:
    """64-bit big-endian windows of ``data`` at every byte offset, padded
    with 1-bits past the end (JPEG pads with 1s, so trailing peeks are
    harmless).  ``windows[i]`` holds bytes ``i..i+7`` MSB-first; together
    with a bit cursor this supports O(1) peeks of up to 57 bits."""
    padded = data + b"\xff" * 8
    raw = np.frombuffer(padded, dtype=np.uint8).astype(np.uint64)
    n = len(data) + 1
    win = np.zeros(n, dtype=np.uint64)
    for k in range(8):
        win = (win << np.uint64(8)) | raw[k : k + n]
    return win


def bit_windows(data: bytes) -> List[int]:
    """:func:`bit_windows_array` as a list of Python ints (the form the
    symbol-at-a-time decode loop indexes fastest)."""
    return bit_windows_array(data).tolist()


# -- canonical Huffman -------------------------------------------------------


@dataclass(frozen=True)
class TableSpec:
    """Serializable Huffman table: JPEG's (BITS, HUFFVAL) pair.

    ``counts[i]`` is the number of codes of length ``i+1``;
    ``symbols`` lists symbols in canonical order.
    """

    counts: Tuple[int, ...]
    symbols: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.counts) != MAX_CODE_LENGTH:
            raise CodecError(f"expected {MAX_CODE_LENGTH} length counts")
        if sum(self.counts) != len(self.symbols):
            raise CodecError("counts and symbol list disagree")


def _code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length per symbol, limited to MAX_CODE_LENGTH.

    Standard heap construction followed by the classic length-limiting
    adjustment (JPEG Annex K.3 flavor): overlong leaves are raised by
    moving a sibling pair one level down.
    """
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {next(iter(frequencies)): 1}
    heap: List[Tuple[int, int, object]] = []
    for i, (sym, freq) in enumerate(sorted(frequencies.items())):
        heap.append((freq, i, sym))
    heapq.heapify(heap)
    counter = len(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (n1, n2)))
        counter += 1
    lengths: Dict[int, int] = {}

    def walk(node, depth):
        if isinstance(node, tuple):
            walk(node[0], depth + 1)
            walk(node[1], depth + 1)
        else:
            lengths[node] = max(depth, 1)

    walk(heap[0][2], 0)

    # Limit code lengths to MAX_CODE_LENGTH.
    by_length: Dict[int, int] = {}
    for length in lengths.values():
        by_length[length] = by_length.get(length, 0) + 1
    max_len = max(by_length)
    while max_len > MAX_CODE_LENGTH:
        # Take two leaves at max_len: one becomes a child of a leaf raised
        # from the deepest shorter level, net effect: counts[max_len] -= 2,
        # counts[max_len-1] += 1, counts[shorter] -= 1, counts[shorter+1] += 2.
        by_length[max_len] -= 2
        by_length[max_len - 1] = by_length.get(max_len - 1, 0) + 1
        shorter = max_len - 2
        while by_length.get(shorter, 0) == 0:
            shorter -= 1
        by_length[shorter] -= 1
        by_length[shorter + 1] = by_length.get(shorter + 1, 0) + 2
        while by_length.get(max_len, 0) == 0:
            max_len -= 1
    # Reassign lengths to symbols: shortest codes to most frequent symbols.
    ordered = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
    new_lengths: Dict[int, int] = {}
    idx = 0
    for length in sorted(k for k, v in by_length.items() if v > 0):
        for _ in range(by_length[length]):
            sym = ordered[idx][0]
            new_lengths[sym] = length
            idx += 1
    assert idx == len(ordered)
    return new_lengths


class HuffmanTable:
    """A canonical Huffman code usable for both encoding and decoding."""

    def __init__(self, spec: TableSpec) -> None:
        self.spec = spec
        self._encode: Dict[int, Tuple[int, int]] = {}
        self._decode: Dict[Tuple[int, int], int] = {}
        code = 0
        idx = 0
        for length_minus_1, count in enumerate(spec.counts):
            length = length_minus_1 + 1
            for _ in range(count):
                symbol = spec.symbols[idx]
                if symbol in self._encode:
                    raise CodecError(f"duplicate symbol {symbol} in table")
                self._encode[symbol] = (code, length)
                self._decode[(length, code)] = symbol
                code += 1
                idx += 1
            code <<= 1

    @classmethod
    def from_frequencies(cls, frequencies: Dict[int, int]) -> "HuffmanTable":
        lengths = _code_lengths(frequencies)
        counts = [0] * MAX_CODE_LENGTH
        for length in lengths.values():
            counts[length - 1] += 1
        symbols: List[int] = []
        for target in range(1, MAX_CODE_LENGTH + 1):
            # Canonical symbol order: by length, then by symbol value.
            symbols.extend(
                sorted(s for s, l in lengths.items() if l == target)
            )
        return cls(TableSpec(tuple(counts), tuple(symbols)))

    def write_symbol(self, writer: BitWriter, symbol: int) -> None:
        try:
            code, length = self._encode[symbol]
        except KeyError:
            raise CodecError(f"symbol {symbol} not in Huffman table") from None
        writer.write(code, length)

    def read_symbol(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read(1)
            symbol = self._decode.get((length, code))
            if symbol is not None:
                return symbol
        raise CodecError("invalid Huffman code in bitstream")

    @property
    def runtime(self) -> "TableRuntime":
        """Memoized vectorized encode arrays + decode LUT for this code."""
        return table_runtime(self.spec)


@dataclass(frozen=True)
class TableRuntime:
    """Precomputed fast-path artifacts for one canonical code.

    ``enc_code``/``enc_len`` map a symbol to its (code, length); a length
    of 0 marks a symbol absent from the table.  ``lut`` is the classic
    full-width decode table sized to the longest code actually present:
    indexing with the next ``lut_bits`` bits of the stream yields
    ``(symbol << 5) | code_length`` (0 for invalid prefixes), so one
    list lookup replaces a bit-by-bit tree walk.
    """

    enc_code: np.ndarray
    enc_len: np.ndarray
    lut: List[int]
    lut_bits: int


@lru_cache(maxsize=512)
def table_runtime(spec: TableSpec) -> TableRuntime:
    table = table_from_spec(spec)
    max_symbol = max(spec.symbols, default=0)
    enc_code = np.zeros(max_symbol + 1, dtype=np.int64)
    enc_len = np.zeros(max_symbol + 1, dtype=np.int64)
    # Size the LUT to the longest code present (tables are optimized per
    # image, so construction cost is paid per image, not once).
    lut_bits = max(
        (i + 1 for i, c in enumerate(spec.counts) if c), default=1
    )
    lut = np.zeros(1 << lut_bits, dtype=np.int64)
    for symbol, (code, length) in table._encode.items():
        enc_code[symbol] = code
        enc_len[symbol] = length
        # Every lut_bits-wide word starting with this code decodes to
        # it; the code is prefix-free so the slices never overlap.
        start = code << (lut_bits - length)
        span = 1 << (lut_bits - length)
        lut[start : start + span] = (symbol << 5) | length
    enc_code.setflags(write=False)
    enc_len.setflags(write=False)
    return TableRuntime(enc_code, enc_len, lut.tolist(), lut_bits)


@lru_cache(maxsize=512)
def table_from_spec(spec: TableSpec) -> HuffmanTable:
    """Memoized canonical-code construction (decoders see the same spec
    for every block of a plane, and across images with common tables)."""
    return HuffmanTable(spec)


# -- block-level RLE + Huffman ----------------------------------------------

EOB = 0x00
ZRL = 0xF0


def block_symbols(
    quantized: np.ndarray, prev_dc: int
) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]], int]:
    """Symbol streams for one quantized 8×8 block.

    Returns ``(dc_events, ac_events, dc_value)`` where each event is
    ``(symbol, amplitude_bits, amplitude_size)``.
    """
    flat = zigzag_scan(quantized)
    dc = int(flat[0])
    size, amp = encode_amplitude(dc - prev_dc)
    dc_events = [(size, amp, size)]
    ac_events: List[Tuple[int, int, int]] = []
    run = 0
    coeffs = flat[1:]
    last_nonzero = np.nonzero(coeffs)[0]
    limit = int(last_nonzero[-1]) + 1 if last_nonzero.size else 0
    for value in coeffs[:limit]:
        value = int(value)
        if value == 0:
            run += 1
            if run == 16:
                ac_events.append((ZRL, 0, 0))
                run = 0
            continue
        size, amp = encode_amplitude(value)
        ac_events.append(((run << 4) | size, amp, size))
        run = 0
    if limit < coeffs.size:
        ac_events.append((EOB, 0, 0))
    return dc_events, ac_events, dc


def decode_block(
    reader: BitReader,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    prev_dc: int,
) -> Tuple[np.ndarray, int]:
    """Decode one block; returns the quantized 8×8 block and its DC value."""
    flat = np.zeros(64, dtype=np.int32)
    size = dc_table.read_symbol(reader)
    diff = decode_amplitude(size, reader.read(size))
    dc = prev_dc + diff
    flat[0] = dc
    pos = 1
    while pos < 64:
        symbol = ac_table.read_symbol(reader)
        if symbol == EOB:
            break
        if symbol == ZRL:
            pos += 16
            continue
        run, size = symbol >> 4, symbol & 0x0F
        pos += run
        if pos >= 64 or size == 0:
            raise CodecError("corrupt AC coefficient stream")
        flat[pos] = decode_amplitude(size, reader.read(size))
        pos += 1
    return zigzag_unscan(flat), dc
