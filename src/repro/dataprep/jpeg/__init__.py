"""A functional baseline-JPEG-equivalent codec.

The paper's imaging workloads store ImageNet as 256×256 JPEG files and the
dominant formatting cost is JPEG decoding — in particular the inherently
serial Huffman phase (§V-B).  To ground the cost model in a real
implementation, this package provides a complete codec with the same
algorithmic structure as baseline JPEG:

* RGB ↔ YCbCr color conversion with optional 4:2:0 chroma subsampling
  (:mod:`repro.dataprep.jpeg.color`);
* 8×8 block type-II DCT and inverse (:mod:`repro.dataprep.jpeg.dct`);
* quantization with the standard Annex-K tables and quality scaling
  (:mod:`repro.dataprep.jpeg.quant`);
* zig-zag scan, DC differential + AC run-length coding, and canonical
  Huffman coding with the standard baseline tables
  (:mod:`repro.dataprep.jpeg.huffman`);
* an encoder/decoder pair over a small container format
  (:mod:`repro.dataprep.jpeg.codec`).

The container framing differs from JFIF (no marker segments), but every
compute stage — the part that costs cycles — is the real algorithm, so
compression ratios and decode cost scale exactly like baseline JPEG.
"""

from repro.dataprep.jpeg.codec import (
    JpegCodec,
    decode,
    decode_batch,
    encode,
    encode_batch,
)

__all__ = ["JpegCodec", "decode", "decode_batch", "encode", "encode_batch"]
