"""The JPEG encoder/decoder pair over a small binary container.

Pipeline (per ITU-T T.81 baseline):

encode: RGB → YCbCr → (4:2:0 chroma subsample) → level shift → 8×8 DCT →
quantize → zig-zag + RLE → canonical Huffman → bitstream.

decode is the exact reverse.  Tables are optimized per image and shipped
in the header (see :mod:`repro.dataprep.jpeg.huffman`).

Two entropy paths produce *byte-identical* streams: the reference
symbol-at-a-time path (``fast=False``, the executable spec) and the
vectorized path in :mod:`repro.dataprep.jpeg.entropy_fast` (default).
:func:`encode_batch` additionally runs the DCT/quantize stage over a
whole stack of same-shape images at once, the layout the synthetic
dataset generators feed it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg import color, dct, entropy_fast, quant
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
    block_symbols,
    decode_block,
    table_from_spec,
)

_MAGIC = b"RJPG"
_VERSION = 1


def _component_planes(
    rgb: np.ndarray, subsample: bool
) -> Tuple[List[np.ndarray], Tuple[int, int]]:
    """YCbCr planes ready for blocking; returns planes and padded luma shape."""
    h, w = rgb.shape[:2]
    # 4:2:0 needs even dims before halving; pad once here.
    pad_h = (-h) % (16 if subsample else 8)
    pad_w = (-w) % (16 if subsample else 8)
    if pad_h or pad_w:
        rgb = np.pad(rgb, ((0, pad_h), (0, pad_w), (0, 0)), mode="edge")
    y, cb, cr = color.rgb_to_ycbcr_planes(rgb)
    if subsample:
        cb = color.subsample_420(cb)
        cr = color.subsample_420(cr)
    return [y, cb, cr], y.shape


def _quantized_blocks(plane: np.ndarray, table: np.ndarray) -> np.ndarray:
    blocks = dct.blockify(plane - 128.0)
    coeffs = dct.dct2(blocks)
    return quant.quantize(coeffs, table)


def _encode_plane(
    plane: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, List, List]:
    """Quantized blocks plus DC/AC symbol event streams for one plane."""
    quantized = _quantized_blocks(plane, table)
    dc_events: List = []
    ac_events: List = []
    prev_dc = 0
    for block in quantized:
        dc_ev, ac_ev, prev_dc = block_symbols(block, prev_dc)
        dc_events.append(dc_ev)
        ac_events.append(ac_ev)
    return quantized, dc_events, ac_events


def _collect_frequencies(event_lists: List[List]) -> Dict[int, int]:
    freqs: Dict[int, int] = {}
    for events in event_lists:
        for symbol, _amp, _size in events:
            freqs[symbol] = freqs.get(symbol, 0) + 1
    return freqs


def _merge_frequencies(*freq_dicts: Dict[int, int]) -> Dict[int, int]:
    merged: Dict[int, int] = {}
    for freqs in freq_dicts:
        for symbol, count in freqs.items():
            merged[symbol] = merged.get(symbol, 0) + count
    return merged


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


def _entropy_encode_planes(
    plane_symbols: Sequence[entropy_fast.PlaneSymbols],
) -> Tuple[List[bytes], List[HuffmanTable]]:
    """Huffman tables (optimized per image) + per-plane bitstreams for
    one image's three planes of symbols."""
    y, cb, cr = plane_symbols
    dc_luma = HuffmanTable.from_frequencies(
        entropy_fast.symbol_frequencies(y.dc_syms)
    )
    ac_luma = HuffmanTable.from_frequencies(
        entropy_fast.symbol_frequencies(y.ac_syms)
    )
    dc_chroma = HuffmanTable.from_frequencies(
        _merge_frequencies(
            entropy_fast.symbol_frequencies(cb.dc_syms),
            entropy_fast.symbol_frequencies(cr.dc_syms),
        )
    )
    ac_chroma = HuffmanTable.from_frequencies(
        _merge_frequencies(
            entropy_fast.symbol_frequencies(cb.ac_syms),
            entropy_fast.symbol_frequencies(cr.ac_syms),
        )
    )
    streams = [
        entropy_fast.plane_bitstream(y, dc_luma, ac_luma),
        entropy_fast.plane_bitstream(cb, dc_chroma, ac_chroma),
        entropy_fast.plane_bitstream(cr, dc_chroma, ac_chroma),
    ]
    return streams, [dc_luma, ac_luma, dc_chroma, ac_chroma]


def _frame(
    quality: int,
    subsample: bool,
    shape: Tuple[int, int],
    tables: Sequence[HuffmanTable],
    streams: Sequence[bytes],
) -> bytes:
    h, w = shape
    out = bytearray()
    out.extend(_MAGIC)
    out.extend(
        struct.pack("<BBBHH", _VERSION, quality, int(subsample), h, w)
    )
    for table in tables:
        _write_table(table.spec, out)
    out.extend(struct.pack("<3I", *(len(s) for s in streams)))
    for stream in streams:
        out.extend(stream)
    return bytes(out)


def _check_image(rgb: np.ndarray) -> None:
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise CodecError(f"expected HxWx3 RGB, got {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise CodecError(f"expected uint8 input, got {rgb.dtype}")
    if rgb.shape[0] < 1 or rgb.shape[1] < 1:
        raise CodecError("image must be non-empty")


@dataclass
class JpegCodec:
    """Configurable codec instance.

    ``fast`` selects the vectorized entropy path (byte-identical output;
    the reference path survives as the executable specification and as
    the baseline for the codec-throughput benchmark).
    """

    quality: int = 75
    subsample: bool = True
    fast: bool = True

    def encode(self, rgb: np.ndarray) -> bytes:
        """Compress an H×W×3 uint8 RGB image."""
        _check_image(rgb)
        h, w = rgb.shape[:2]
        luma_q = quant.scaled_table(quant.LUMA_BASE, self.quality)
        chroma_q = quant.scaled_table(quant.CHROMA_BASE, self.quality)
        planes, _ = _component_planes(rgb, self.subsample)

        if self.fast:
            symbols = [
                entropy_fast.plane_symbols(
                    _quantized_blocks(
                        dct.pad_to_blocks(plane),
                        luma_q if i == 0 else chroma_q,
                    )
                )
                for i, plane in enumerate(planes)
            ]
            streams, tables = _entropy_encode_planes(symbols)
            return _frame(self.quality, self.subsample, (h, w), tables, streams)

        encoded = []
        for i, plane in enumerate(planes):
            table = luma_q if i == 0 else chroma_q
            encoded.append(_encode_plane(dct.pad_to_blocks(plane), table))

        dc_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][1]))
        ac_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][2]))
        dc_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][1] + encoded[2][1])
        )
        ac_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][2] + encoded[2][2])
        )

        streams = []
        for i, (_q, dc_events, ac_events) in enumerate(encoded):
            dc_table = dc_luma if i == 0 else dc_chroma
            ac_table = ac_luma if i == 0 else ac_chroma
            writer = BitWriter()
            for dc_ev, ac_ev in zip(dc_events, ac_events):
                for symbol, amp, size in dc_ev:
                    dc_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
                for symbol, amp, size in ac_ev:
                    ac_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
            streams.append(writer.getvalue())
        return _frame(
            self.quality,
            self.subsample,
            (h, w),
            [dc_luma, ac_luma, dc_chroma, ac_chroma],
            streams,
        )

    @staticmethod
    def decode(data: bytes, fast: bool = True) -> np.ndarray:
        """Decompress back to H×W×3 uint8 RGB."""
        if data[:4] != _MAGIC:
            raise CodecError("not an RJPG stream")
        try:
            return JpegCodec._decode_checked(data, fast)
        except CodecError:
            raise
        except (struct.error, IndexError, ValueError, KeyError) as exc:
            raise CodecError(f"malformed RJPG stream: {exc}") from exc

    @staticmethod
    def _decode_checked(data: bytes, fast: bool = True) -> np.ndarray:
        version, quality, subsample_flag, h, w = struct.unpack_from(
            "<BBBHH", data, 4
        )
        if version != _VERSION:
            raise CodecError(f"unsupported RJPG version {version}")
        subsample = bool(subsample_flag)
        offset = 4 + struct.calcsize("<BBBHH")
        specs: List[TableSpec] = []
        for _ in range(4):
            spec, offset = _read_table(data, offset)
            specs.append(spec)
        dc_luma, ac_luma, dc_chroma, ac_chroma = (
            table_from_spec(s) for s in specs
        )
        lengths = struct.unpack_from("<3I", data, offset)
        offset += 12
        streams = []
        for length in lengths:
            streams.append(data[offset : offset + length])
            offset += length

        # Reconstruct padded plane geometry the encoder used.
        align = 16 if subsample else 8
        ph = h + ((-h) % align)
        pw = w + ((-w) % align)
        luma_shape = (ph, pw)
        chroma_shape = (ph // 2, pw // 2) if subsample else (ph, pw)
        chroma_padded = (
            chroma_shape[0] + ((-chroma_shape[0]) % 8),
            chroma_shape[1] + ((-chroma_shape[1]) % 8),
        )
        luma_q = quant.scaled_table(quant.LUMA_BASE, quality)
        chroma_q = quant.scaled_table(quant.CHROMA_BASE, quality)

        planes: List[np.ndarray] = []
        shapes = [luma_shape, chroma_padded, chroma_padded]
        tables = [
            (dc_luma, ac_luma, luma_q),
            (dc_chroma, ac_chroma, chroma_q),
            (dc_chroma, ac_chroma, chroma_q),
        ]
        for stream, shape, (dc_t, ac_t, qtable) in zip(streams, shapes, tables):
            nblocks = (shape[0] // 8) * (shape[1] // 8)
            if fast:
                blocks = entropy_fast.decode_plane(stream, dc_t, ac_t, nblocks)
            else:
                reader = BitReader(stream)
                blocks = np.empty((nblocks, 8, 8), dtype=np.int32)
                prev_dc = 0
                for b in range(nblocks):
                    blocks[b], prev_dc = decode_block(reader, dc_t, ac_t, prev_dc)
            coeffs = quant.dequantize(blocks, qtable)
            plane = dct.unblockify(dct.idct2(coeffs), shape) + 128.0
            planes.append(plane)

        y = planes[0]
        cb = planes[1][: chroma_shape[0], : chroma_shape[1]]
        cr = planes[2][: chroma_shape[0], : chroma_shape[1]]
        if subsample:
            rgb = color.ycbcr_planes_420_to_rgb(y, cb, cr)
        else:
            rgb = color.ycbcr_planes_to_rgb(y, cb, cr)
        return rgb[:h, :w]


def encode(rgb: np.ndarray, quality: int = 75, subsample: bool = True) -> bytes:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec(quality=quality, subsample=subsample).encode(rgb)


def decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec.decode(data)


def encode_batch(
    images: Sequence[np.ndarray],
    quality: int = 75,
    subsample: bool = True,
) -> List[bytes]:
    """Compress a stack of same-shape images, batching the transform.

    Color conversion, padding, blockify, DCT and quantization run once
    over the whole stack (images are stacked into one tall plane per
    component, so the 8×8 matmuls amortize across the batch); the
    per-image entropy stage then slices out each image's blocks.  Output
    is byte-for-byte what :func:`encode` produces per image.
    """
    images = list(images)
    if not images:
        return []
    first = images[0]
    _check_image(first)
    if any(im.shape != first.shape or im.dtype != first.dtype for im in images):
        # Mixed shapes: no batching win to be had, encode one by one.
        return [encode(im, quality=quality, subsample=subsample) for im in images]

    h, w = first.shape[:2]
    batch = len(images)
    luma_q = quant.scaled_table(quant.LUMA_BASE, quality)
    chroma_q = quant.scaled_table(quant.CHROMA_BASE, quality)

    # Stack images vertically: every per-plane op below (color matrix,
    # 2×2 pooling, 8×8 blocking) is local to row groups whose heights
    # are multiples of the padded image height, so images never mix.
    pad_h = (-h) % (16 if subsample else 8)
    pad_w = (-w) % (16 if subsample else 8)
    stacked = np.stack(images)
    if pad_h or pad_w:
        stacked = np.pad(
            stacked, ((0, 0), (0, pad_h), (0, pad_w), (0, 0)), mode="edge"
        )
    ph, pw = h + pad_h, w + pad_w
    tall = stacked.reshape(batch * ph, pw, 3)
    planes = list(color.rgb_to_ycbcr_planes(tall))
    if subsample:
        planes = [planes[0]] + [color.subsample_420(p) for p in planes[1:]]

    results: List[List[entropy_fast.PlaneSymbols]] = [[] for _ in range(batch)]
    for i, plane in enumerate(planes):
        table = luma_q if i == 0 else chroma_q
        plane = dct.pad_to_blocks(plane)
        quantized = _quantized_blocks(plane, table)
        per_image = quantized.shape[0] // batch
        for j in range(batch):
            results[j].append(
                entropy_fast.plane_symbols(
                    quantized[j * per_image : (j + 1) * per_image]
                )
            )

    out: List[bytes] = []
    for symbols in results:
        streams, tables = _entropy_encode_planes(symbols)
        out.append(_frame(quality, subsample, (h, w), tables, streams))
    return out


def decode_batch(datas: Sequence[bytes]) -> List[np.ndarray]:
    """Decode a batch of streams (shares memoized tables across items)."""
    return [JpegCodec.decode(data) for data in datas]
