"""The JPEG encoder/decoder pair over a small binary container.

Pipeline (per ITU-T T.81 baseline):

encode: RGB → YCbCr → (4:2:0 chroma subsample) → level shift → 8×8 DCT →
quantize → zig-zag + RLE → canonical Huffman → bitstream.

decode is the exact reverse.  Tables are optimized per image and shipped
in the header (see :mod:`repro.dataprep.jpeg.huffman`).

Two entropy paths produce *byte-identical* streams: the reference
symbol-at-a-time path (``fast=False``, the executable spec) and the
vectorized path in :mod:`repro.dataprep.jpeg.entropy_fast` (default).
:func:`encode_batch` additionally runs the DCT/quantize stage over a
whole stack of same-shape images at once, the layout the synthetic
dataset generators feed it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg import color, dct, entropy_fast, quant
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
    block_symbols,
    decode_block,
    table_from_spec,
)

_MAGIC = b"RJPG"
_VERSION = 1


def _component_planes(
    rgb: np.ndarray, subsample: bool
) -> Tuple[List[np.ndarray], Tuple[int, int]]:
    """YCbCr planes ready for blocking; returns planes and padded luma shape."""
    h, w = rgb.shape[:2]
    # 4:2:0 needs even dims before halving; pad once here.
    pad_h = (-h) % (16 if subsample else 8)
    pad_w = (-w) % (16 if subsample else 8)
    if pad_h or pad_w:
        rgb = np.pad(rgb, ((0, pad_h), (0, pad_w), (0, 0)), mode="edge")
    y, cb, cr = color.rgb_to_ycbcr_planes(rgb)
    if subsample:
        cb = color.subsample_420(cb)
        cr = color.subsample_420(cr)
    return [y, cb, cr], y.shape


def _quantized_blocks(plane: np.ndarray, table: np.ndarray) -> np.ndarray:
    blocks = dct.blockify(plane - 128.0)
    coeffs = dct.dct2(blocks)
    return quant.quantize(coeffs, table)


def _encode_plane(
    plane: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, List, List]:
    """Quantized blocks plus DC/AC symbol event streams for one plane."""
    quantized = _quantized_blocks(plane, table)
    dc_events: List = []
    ac_events: List = []
    prev_dc = 0
    for block in quantized:
        dc_ev, ac_ev, prev_dc = block_symbols(block, prev_dc)
        dc_events.append(dc_ev)
        ac_events.append(ac_ev)
    return quantized, dc_events, ac_events


def _collect_frequencies(event_lists: List[List]) -> Dict[int, int]:
    freqs: Dict[int, int] = {}
    for events in event_lists:
        for symbol, _amp, _size in events:
            freqs[symbol] = freqs.get(symbol, 0) + 1
    return freqs


def _merge_frequencies(*freq_dicts: Dict[int, int]) -> Dict[int, int]:
    merged: Dict[int, int] = {}
    for freqs in freq_dicts:
        for symbol, count in freqs.items():
            merged[symbol] = merged.get(symbol, 0) + count
    return merged


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


def _entropy_encode_planes(
    plane_symbols: Sequence[entropy_fast.PlaneSymbols],
) -> Tuple[List[bytes], List[HuffmanTable]]:
    """Huffman tables (optimized per image) + per-plane bitstreams for
    one image's three planes of symbols."""
    y, cb, cr = plane_symbols
    dc_luma = HuffmanTable.from_frequencies(
        entropy_fast.symbol_frequencies(y.dc_syms)
    )
    ac_luma = HuffmanTable.from_frequencies(
        entropy_fast.symbol_frequencies(y.ac_syms)
    )
    dc_chroma = HuffmanTable.from_frequencies(
        _merge_frequencies(
            entropy_fast.symbol_frequencies(cb.dc_syms),
            entropy_fast.symbol_frequencies(cr.dc_syms),
        )
    )
    ac_chroma = HuffmanTable.from_frequencies(
        _merge_frequencies(
            entropy_fast.symbol_frequencies(cb.ac_syms),
            entropy_fast.symbol_frequencies(cr.ac_syms),
        )
    )
    streams = [
        entropy_fast.plane_bitstream(y, dc_luma, ac_luma),
        entropy_fast.plane_bitstream(cb, dc_chroma, ac_chroma),
        entropy_fast.plane_bitstream(cr, dc_chroma, ac_chroma),
    ]
    return streams, [dc_luma, ac_luma, dc_chroma, ac_chroma]


def _frame(
    quality: int,
    subsample: bool,
    shape: Tuple[int, int],
    tables: Sequence[HuffmanTable],
    streams: Sequence[bytes],
) -> bytes:
    h, w = shape
    out = bytearray()
    out.extend(_MAGIC)
    out.extend(
        struct.pack("<BBBHH", _VERSION, quality, int(subsample), h, w)
    )
    for table in tables:
        _write_table(table.spec, out)
    out.extend(struct.pack("<3I", *(len(s) for s in streams)))
    for stream in streams:
        out.extend(stream)
    return bytes(out)


def _check_image(rgb: np.ndarray) -> None:
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise CodecError(f"expected HxWx3 RGB, got {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise CodecError(f"expected uint8 input, got {rgb.dtype}")
    if rgb.shape[0] < 1 or rgb.shape[1] < 1:
        raise CodecError("image must be non-empty")


@dataclass(frozen=True)
class _Frame:
    """A parsed RJPG container: header fields, Huffman table specs, and
    the three per-plane entropy streams."""

    quality: int
    subsample: bool
    h: int
    w: int
    specs: Tuple[TableSpec, ...]
    streams: Tuple[bytes, ...]

    @property
    def geometry_key(self) -> Tuple[int, bool, int, int]:
        """Frames sharing this key can share one batched transform."""
        return (self.quality, self.subsample, self.h, self.w)


@dataclass(frozen=True)
class _PlaneGeometry:
    """Padded plane shapes the encoder used for one image geometry."""

    luma_shape: Tuple[int, int]
    chroma_shape: Tuple[int, int]
    chroma_padded: Tuple[int, int]

    @property
    def plane_shapes(self) -> Tuple[Tuple[int, int], ...]:
        return (self.luma_shape, self.chroma_padded, self.chroma_padded)


def _plane_geometry(subsample: bool, h: int, w: int) -> _PlaneGeometry:
    align = 16 if subsample else 8
    ph = h + ((-h) % align)
    pw = w + ((-w) % align)
    luma_shape = (ph, pw)
    chroma_shape = (ph // 2, pw // 2) if subsample else (ph, pw)
    chroma_padded = (
        chroma_shape[0] + ((-chroma_shape[0]) % 8),
        chroma_shape[1] + ((-chroma_shape[1]) % 8),
    )
    return _PlaneGeometry(luma_shape, chroma_shape, chroma_padded)


def _parse_frame(data: bytes) -> _Frame:
    if data[:4] != _MAGIC:
        raise CodecError("not an RJPG stream")
    try:
        version, quality, subsample_flag, h, w = struct.unpack_from(
            "<BBBHH", data, 4
        )
        if version != _VERSION:
            raise CodecError(f"unsupported RJPG version {version}")
        offset = 4 + struct.calcsize("<BBBHH")
        specs: List[TableSpec] = []
        for _ in range(4):
            spec, offset = _read_table(data, offset)
            specs.append(spec)
        lengths = struct.unpack_from("<3I", data, offset)
        offset += 12
        streams: List[bytes] = []
        for length in lengths:
            streams.append(data[offset : offset + length])
            offset += length
        return _Frame(
            quality, bool(subsample_flag), h, w, tuple(specs), tuple(streams)
        )
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed RJPG stream: {exc}") from exc


def _entropy_decode_planes(
    frame: _Frame, geometry: _PlaneGeometry, fast: bool
) -> List[np.ndarray]:
    """The serial stage: Huffman-decode each plane's stream to quantized
    8×8 blocks (the transform stage can then run batched)."""
    dc_luma, ac_luma, dc_chroma, ac_chroma = (
        table_from_spec(s) for s in frame.specs
    )
    tables = [(dc_luma, ac_luma), (dc_chroma, ac_chroma), (dc_chroma, ac_chroma)]
    planes: List[np.ndarray] = []
    for stream, shape, (dc_t, ac_t) in zip(
        frame.streams, geometry.plane_shapes, tables
    ):
        nblocks = (shape[0] // 8) * (shape[1] // 8)
        if fast:
            blocks = entropy_fast.decode_plane(stream, dc_t, ac_t, nblocks)
        else:
            reader = BitReader(stream)
            blocks = np.empty((nblocks, 8, 8), dtype=np.int32)
            prev_dc = 0
            for b in range(nblocks):
                blocks[b], prev_dc = decode_block(reader, dc_t, ac_t, prev_dc)
        planes.append(blocks)
    return planes


def _transform_planes(
    blocks: Sequence[np.ndarray], frame: _Frame, geometry: _PlaneGeometry
) -> np.ndarray:
    """Dequantize → IDCT → reassemble planes → color for one image; the
    padded RGB (crop to h×w is the caller's job)."""
    luma_q = quant.scaled_table(quant.LUMA_BASE, frame.quality)
    chroma_q = quant.scaled_table(quant.CHROMA_BASE, frame.quality)
    planes: List[np.ndarray] = []
    for plane_blocks, shape, qtable in zip(
        blocks, geometry.plane_shapes, [luma_q, chroma_q, chroma_q]
    ):
        coeffs = quant.dequantize(plane_blocks, qtable)
        planes.append(dct.unblockify(dct.idct2(coeffs), shape) + 128.0)
    y = planes[0]
    ch, cw = geometry.chroma_shape
    cb = planes[1][:ch, :cw]
    cr = planes[2][:ch, :cw]
    if frame.subsample:
        return color.ycbcr_planes_420_to_rgb(y, cb, cr)
    return color.ycbcr_planes_to_rgb(y, cb, cr)


@dataclass
class JpegCodec:
    """Configurable codec instance.

    ``fast`` selects the vectorized entropy path (byte-identical output;
    the reference path survives as the executable specification and as
    the baseline for the codec-throughput benchmark).
    """

    quality: int = 75
    subsample: bool = True
    fast: bool = True

    def encode(self, rgb: np.ndarray) -> bytes:
        """Compress an H×W×3 uint8 RGB image."""
        _check_image(rgb)
        h, w = rgb.shape[:2]
        luma_q = quant.scaled_table(quant.LUMA_BASE, self.quality)
        chroma_q = quant.scaled_table(quant.CHROMA_BASE, self.quality)
        planes, _ = _component_planes(rgb, self.subsample)

        if self.fast:
            symbols = [
                entropy_fast.plane_symbols(
                    _quantized_blocks(
                        dct.pad_to_blocks(plane),
                        luma_q if i == 0 else chroma_q,
                    )
                )
                for i, plane in enumerate(planes)
            ]
            streams, tables = _entropy_encode_planes(symbols)
            return _frame(self.quality, self.subsample, (h, w), tables, streams)

        encoded = []
        for i, plane in enumerate(planes):
            table = luma_q if i == 0 else chroma_q
            encoded.append(_encode_plane(dct.pad_to_blocks(plane), table))

        dc_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][1]))
        ac_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][2]))
        dc_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][1] + encoded[2][1])
        )
        ac_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][2] + encoded[2][2])
        )

        streams = []
        for i, (_q, dc_events, ac_events) in enumerate(encoded):
            dc_table = dc_luma if i == 0 else dc_chroma
            ac_table = ac_luma if i == 0 else ac_chroma
            writer = BitWriter()
            for dc_ev, ac_ev in zip(dc_events, ac_events):
                for symbol, amp, size in dc_ev:
                    dc_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
                for symbol, amp, size in ac_ev:
                    ac_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
            streams.append(writer.getvalue())
        return _frame(
            self.quality,
            self.subsample,
            (h, w),
            [dc_luma, ac_luma, dc_chroma, ac_chroma],
            streams,
        )

    @staticmethod
    def decode(data: bytes, fast: bool = True) -> np.ndarray:
        """Decompress back to H×W×3 uint8 RGB."""
        if data[:4] != _MAGIC:
            raise CodecError("not an RJPG stream")
        try:
            return JpegCodec._decode_checked(data, fast)
        except CodecError:
            raise
        except (struct.error, IndexError, ValueError, KeyError) as exc:
            raise CodecError(f"malformed RJPG stream: {exc}") from exc

    @staticmethod
    def _decode_checked(data: bytes, fast: bool = True) -> np.ndarray:
        frame = _parse_frame(data)
        geometry = _plane_geometry(frame.subsample, frame.h, frame.w)
        blocks = _entropy_decode_planes(frame, geometry, fast)
        return _transform_planes(blocks, frame, geometry)[: frame.h, : frame.w]


def encode(rgb: np.ndarray, quality: int = 75, subsample: bool = True) -> bytes:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec(quality=quality, subsample=subsample).encode(rgb)


def decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec.decode(data)


def encode_batch(
    images: Sequence[np.ndarray],
    quality: int = 75,
    subsample: bool = True,
) -> List[bytes]:
    """Compress a stack of same-shape images, batching the transform.

    Color conversion, padding, blockify, DCT and quantization run once
    over the whole stack (images are stacked into one tall plane per
    component, so the 8×8 matmuls amortize across the batch); the
    per-image entropy stage then slices out each image's blocks.  Output
    is byte-for-byte what :func:`encode` produces per image.
    """
    images = list(images)
    if not images:
        return []
    first = images[0]
    _check_image(first)
    if any(im.shape != first.shape or im.dtype != first.dtype for im in images):
        # Mixed shapes: no batching win to be had, encode one by one.
        return [encode(im, quality=quality, subsample=subsample) for im in images]

    h, w = first.shape[:2]
    batch = len(images)
    luma_q = quant.scaled_table(quant.LUMA_BASE, quality)
    chroma_q = quant.scaled_table(quant.CHROMA_BASE, quality)

    # Stack images vertically: every per-plane op below (color matrix,
    # 2×2 pooling, 8×8 blocking) is local to row groups whose heights
    # are multiples of the padded image height, so images never mix.
    pad_h = (-h) % (16 if subsample else 8)
    pad_w = (-w) % (16 if subsample else 8)
    stacked = np.stack(images)
    if pad_h or pad_w:
        stacked = np.pad(
            stacked, ((0, 0), (0, pad_h), (0, pad_w), (0, 0)), mode="edge"
        )
    ph, pw = h + pad_h, w + pad_w
    tall = stacked.reshape(batch * ph, pw, 3)
    planes = list(color.rgb_to_ycbcr_planes(tall))
    if subsample:
        planes = [planes[0]] + [color.subsample_420(p) for p in planes[1:]]

    results: List[List[entropy_fast.PlaneSymbols]] = [[] for _ in range(batch)]
    for i, plane in enumerate(planes):
        table = luma_q if i == 0 else chroma_q
        plane = dct.pad_to_blocks(plane)
        quantized = _quantized_blocks(plane, table)
        per_image = quantized.shape[0] // batch
        for j in range(batch):
            results[j].append(
                entropy_fast.plane_symbols(
                    quantized[j * per_image : (j + 1) * per_image]
                )
            )

    out: List[bytes] = []
    for symbols in results:
        streams, tables = _entropy_encode_planes(symbols)
        out.append(_frame(quality, subsample, (h, w), tables, streams))
    return out


# The batched transform pays off by amortizing numpy dispatch across
# small frames; past ~2 luma planes' worth of pixels the float64
# working set falls out of cache and batching turns memory-bound (a
# 64×256×256 chunk measured ~3× slower than per-image on 1 core), so
# the chunk size adapts to keep roughly this many pixels in flight.
_TRANSFORM_PIXEL_BUDGET = 131_072

# Transform chunk compiled prep plans pin for arena decodes: with the
# entropy stage batched and delivery going straight into a pooled slot,
# slightly larger chunks than the pixel-budget heuristic picks measured
# fastest (4 images/chunk beat 2 by ~6% on 256x256 batches).
PLANNED_TRANSFORM_CHUNK = 4


# Lock-step entropy decode beats the per-stream walk only once its
# fixed numpy-dispatch cost per symbol row is spread over enough
# streams (measured crossover ~100 luma streams on 1 core for 256x256
# planes — the calibration point for :func:`lockstep_min_images`).
_LOCKSTEP_MIN_IMAGES = 96

# The walk also pays a fixed per-chunk setup (event matrices, flat-LUT
# assembly) that is amortized over a plane's blocks; planes much
# smaller than the 1024-block calibration plane need proportionally
# more streams before lock-step wins.  Measured with
# ``perf.measure_lockstep_crossover`` (64x64 planes crossed over ~1.5x
# later than 256x256 ones on the calibration host).
_LOCKSTEP_REF_BLOCKS = 1024


def lockstep_min_images(luma_blocks: int) -> int:
    """The measured lock-step crossover (in streams) for planes of
    ``luma_blocks`` 8x8 blocks.

    Derived from the calibrated 256x256 crossover: the per-iteration
    dispatch cost is geometry-independent, but the fixed per-stream
    setup is amortized over fewer symbols on small planes, pushing the
    crossover up roughly with the square root of the block deficit.
    Compiled prep plans record this value per geometry instead of
    hard-coding :data:`_LOCKSTEP_MIN_IMAGES`.
    """
    if luma_blocks <= 0:
        return _LOCKSTEP_MIN_IMAGES
    scale = max(1.0, _LOCKSTEP_REF_BLOCKS / luma_blocks) ** 0.5
    return max(2, int(round(_LOCKSTEP_MIN_IMAGES * scale)))


def _entropy_decode_group(
    frames: Sequence[_Frame], geometry: _PlaneGeometry
) -> List[List[np.ndarray]]:
    """Per-image quantized blocks for a geometry group, Huffman-decoded
    in two lock-step walks (:func:`entropy_fast.decode_planes_batch`):
    one over every luma stream, one over every chroma stream, so each
    walk's streams have similar symbol counts and nobody spins on junk
    waiting for a stream 30× its length."""
    luma_tasks = []
    chroma_tasks = []
    shapes = geometry.plane_shapes
    nb = [(s[0] // 8) * (s[1] // 8) for s in shapes]
    for f in frames:
        dc_luma, ac_luma, dc_chroma, ac_chroma = (
            table_from_spec(s) for s in f.specs
        )
        luma_tasks.append((f.streams[0], dc_luma, ac_luma, nb[0]))
        chroma_tasks.append((f.streams[1], dc_chroma, ac_chroma, nb[1]))
        chroma_tasks.append((f.streams[2], dc_chroma, ac_chroma, nb[2]))
    luma = entropy_fast.decode_planes_batch(luma_tasks)
    chroma = entropy_fast.decode_planes_batch(chroma_tasks)
    return [
        [luma[i], chroma[2 * i], chroma[2 * i + 1]]
        for i in range(len(frames))
    ]


def _decode_group(
    frames: Sequence[_Frame],
    fast: bool,
    blocks: Optional[List[List[np.ndarray]]] = None,
) -> np.ndarray:
    """Decode frames that share one geometry key as a single stack.

    The entropy stage (``blocks``, precomputed by the caller when it
    already batch-decoded the whole geometry group) feeds one
    dequantize/IDCT/color pass: every image's blocks are concatenated
    into tall stacked planes (the mirror image of :func:`encode_batch`'s
    layout — per-plane ops are local to row groups, so images never
    mix), transformed at once, and sliced back apart.  Pixel-identical
    to :func:`JpegCodec.decode` per image.
    """
    first = frames[0]
    geometry = _plane_geometry(first.subsample, first.h, first.w)
    per_image = blocks if blocks is not None else [
        _entropy_decode_planes(f, geometry, fast) for f in frames
    ]
    n = len(frames)
    luma_q = quant.scaled_table(quant.LUMA_BASE, first.quality)
    chroma_q = quant.scaled_table(quant.CHROMA_BASE, first.quality)
    tall_planes: List[np.ndarray] = []
    for p, (shape, qtable) in enumerate(
        zip(geometry.plane_shapes, [luma_q, chroma_q, chroma_q])
    ):
        blocks = np.concatenate([image_blocks[p] for image_blocks in per_image])
        coeffs = quant.dequantize(blocks, qtable)
        tall_shape = (n * shape[0], shape[1])
        tall_planes.append(dct.unblockify(dct.idct2(coeffs), tall_shape) + 128.0)

    ch, cw = geometry.chroma_shape
    cph, cpw = geometry.chroma_padded

    def crop_chroma(tall: np.ndarray) -> np.ndarray:
        if (cph, cpw) == (ch, cw):
            return tall
        return tall.reshape(n, cph, cpw)[:, :ch, :cw].reshape(n * ch, cw)

    y = tall_planes[0]
    cb = crop_chroma(tall_planes[1])
    cr = crop_chroma(tall_planes[2])
    if first.subsample:
        rgb = color.ycbcr_planes_420_to_rgb(y, cb, cr)
    else:
        rgb = color.ycbcr_planes_to_rgb(y, cb, cr)
    ph, pw = geometry.luma_shape
    return rgb.reshape(n, ph, pw, 3)[:, : first.h, : first.w]


def decode_batch(
    datas: Sequence[bytes],
    fast: bool = True,
    *,
    lockstep_min: Optional[int] = None,
    transform_chunk: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Decode a batch of streams, batching the transform stage.

    Frames are grouped by (quality, subsample, h, w); each group shares a
    single dequantize/IDCT/color pass over vertically stacked planes (see
    :func:`_decode_group`).  Entropy decoding is per image below the
    lock-step crossover for the group's geometry (every frame carries
    its own optimized Huffman tables, so nothing is shared there) and
    switches to the lock-step batch walk above it.  Output is
    pixel-identical to :func:`decode` per item, in input order.

    ``lockstep_min`` overrides the measured per-geometry crossover
    (:func:`lockstep_min_images`) and ``transform_chunk`` the
    pixel-budget-derived transform chunk size — compiled prep plans
    record both per geometry.  ``out`` (an ``N×h×w×3`` uint8 stack)
    receives the decoded images in place — the arena path: nothing is
    stacked and no per-image result arrays outlive the call.  With
    ``out`` every frame must match the stack's geometry.
    """
    datas = list(datas)
    if out is not None and len(out) != len(datas):
        raise CodecError(
            f"out= holds {len(out)} slots for {len(datas)} streams"
        )
    if len(datas) <= 1:
        decoded = [JpegCodec.decode(data, fast=fast) for data in datas]
        if out is None:
            return decoded
        _deliver(decoded, list(range(len(datas))), out, decoded)
        return out  # type: ignore[return-value]
    frames = [_parse_frame(bytes(data)) for data in datas]
    groups: Dict[Tuple[int, bool, int, int], List[int]] = {}
    for i, frame in enumerate(frames):
        groups.setdefault(frame.geometry_key, []).append(i)
    results: List[Optional[np.ndarray]] = [None] * len(datas)
    for indices in groups.values():
        first = frames[indices[0]]
        geometry = _plane_geometry(first.subsample, first.h, first.w)
        nb_luma = (geometry.luma_shape[0] // 8) * (geometry.luma_shape[1] // 8)
        threshold = (
            lockstep_min if lockstep_min is not None
            else lockstep_min_images(nb_luma)
        )
        group_blocks: Optional[List[List[np.ndarray]]] = None
        if fast and len(indices) >= threshold:
            group_blocks = _entropy_decode_group(
                [frames[i] for i in indices], geometry
            )
        pixels = first.h * first.w
        chunk_size = (
            max(1, int(transform_chunk)) if transform_chunk is not None
            else max(1, _TRANSFORM_PIXEL_BUDGET // max(1, pixels))
        )
        for start in range(0, len(indices), chunk_size):
            chunk = indices[start : start + chunk_size]
            chunk_blocks = (
                group_blocks[start : start + chunk_size]
                if group_blocks is not None
                else None
            )
            if len(chunk) == 1:
                i = chunk[0]
                if chunk_blocks is None:
                    decoded = JpegCodec.decode(datas[i], fast=fast)
                else:
                    decoded = _transform_planes(
                        chunk_blocks[0], frames[i], geometry
                    )[: frames[i].h, : frames[i].w]
                _deliver([decoded], [i], out, results)
                continue
            rgb = _decode_group([frames[i] for i in chunk], fast, chunk_blocks)
            _deliver([rgb[j] for j in range(len(chunk))], chunk, out, results)
    if out is not None:
        return out  # type: ignore[return-value]
    return results  # type: ignore[return-value]


def _deliver(
    decoded: Sequence[np.ndarray],
    indices: Sequence[int],
    out: Optional[np.ndarray],
    results: List[Optional[np.ndarray]],
) -> List[np.ndarray]:
    """Route per-image decode results to ``out`` slots (arena path) or
    the collected-results list."""
    if out is None:
        for img, i in zip(decoded, indices):
            results[i] = img
        return results  # type: ignore[return-value]
    for img, i in zip(decoded, indices):
        if img.shape != out.shape[1:]:
            raise CodecError(
                f"decode out= expects uniform {out.shape[1:]} images, "
                f"got {img.shape}"
            )
        out[i, ...] = img
    return results  # type: ignore[return-value]
