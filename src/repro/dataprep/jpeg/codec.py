"""The JPEG encoder/decoder pair over a small binary container.

Pipeline (per ITU-T T.81 baseline):

encode: RGB → YCbCr → (4:2:0 chroma subsample) → level shift → 8×8 DCT →
quantize → zig-zag + RLE → canonical Huffman → bitstream.

decode is the exact reverse.  Tables are optimized per image and shipped
in the header (see :mod:`repro.dataprep.jpeg.huffman`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg import color, dct, quant
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
    block_symbols,
    decode_block,
)

_MAGIC = b"RJPG"
_VERSION = 1


def _component_planes(
    rgb: np.ndarray, subsample: bool
) -> Tuple[List[np.ndarray], Tuple[int, int]]:
    """YCbCr planes ready for blocking; returns planes and padded luma shape."""
    h, w = rgb.shape[:2]
    # 4:2:0 needs even dims before halving; pad once here.
    pad_h = (-h) % (16 if subsample else 8)
    pad_w = (-w) % (16 if subsample else 8)
    if pad_h or pad_w:
        rgb = np.pad(rgb, ((0, pad_h), (0, pad_w), (0, 0)), mode="edge")
    ycc = color.rgb_to_ycbcr(rgb)
    y = ycc[..., 0]
    cb = ycc[..., 1]
    cr = ycc[..., 2]
    if subsample:
        cb = color.subsample_420(cb)
        cr = color.subsample_420(cr)
    return [y, cb, cr], y.shape


def _encode_plane(
    plane: np.ndarray, table: np.ndarray
) -> Tuple[np.ndarray, List, List]:
    """Quantized blocks plus DC/AC symbol event streams for one plane."""
    blocks = dct.blockify(plane - 128.0)
    coeffs = dct.dct2(blocks)
    quantized = quant.quantize(coeffs, table)
    dc_events: List = []
    ac_events: List = []
    prev_dc = 0
    for block in quantized:
        dc_ev, ac_ev, prev_dc = block_symbols(block, prev_dc)
        dc_events.append(dc_ev)
        ac_events.append(ac_ev)
    return quantized, dc_events, ac_events


def _collect_frequencies(event_lists: List[List]) -> Dict[int, int]:
    freqs: Dict[int, int] = {}
    for events in event_lists:
        for symbol, _amp, _size in events:
            freqs[symbol] = freqs.get(symbol, 0) + 1
    return freqs


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


@dataclass
class JpegCodec:
    """Configurable codec instance."""

    quality: int = 75
    subsample: bool = True

    def encode(self, rgb: np.ndarray) -> bytes:
        """Compress an H×W×3 uint8 RGB image."""
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise CodecError(f"expected HxWx3 RGB, got {rgb.shape}")
        if rgb.dtype != np.uint8:
            raise CodecError(f"expected uint8 input, got {rgb.dtype}")
        h, w = rgb.shape[:2]
        if h < 1 or w < 1:
            raise CodecError("image must be non-empty")
        luma_q = quant.scaled_table(quant.LUMA_BASE, self.quality)
        chroma_q = quant.scaled_table(quant.CHROMA_BASE, self.quality)
        planes, _ = _component_planes(rgb, self.subsample)

        encoded = []
        for i, plane in enumerate(planes):
            table = luma_q if i == 0 else chroma_q
            encoded.append(_encode_plane(dct.pad_to_blocks(plane), table))

        dc_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][1]))
        ac_luma = HuffmanTable.from_frequencies(_collect_frequencies(encoded[0][2]))
        dc_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][1] + encoded[2][1])
        )
        ac_chroma = HuffmanTable.from_frequencies(
            _collect_frequencies(encoded[1][2] + encoded[2][2])
        )

        streams: List[bytes] = []
        for i, (_q, dc_events, ac_events) in enumerate(encoded):
            dc_table = dc_luma if i == 0 else dc_chroma
            ac_table = ac_luma if i == 0 else ac_chroma
            writer = BitWriter()
            for dc_ev, ac_ev in zip(dc_events, ac_events):
                for symbol, amp, size in dc_ev:
                    dc_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
                for symbol, amp, size in ac_ev:
                    ac_table.write_symbol(writer, symbol)
                    writer.write(amp, size)
            streams.append(writer.getvalue())

        out = bytearray()
        out.extend(_MAGIC)
        out.extend(
            struct.pack(
                "<BBBHH", _VERSION, self.quality, int(self.subsample), h, w
            )
        )
        for table in (dc_luma, ac_luma, dc_chroma, ac_chroma):
            _write_table(table.spec, out)
        out.extend(struct.pack("<3I", *(len(s) for s in streams)))
        for stream in streams:
            out.extend(stream)
        return bytes(out)

    @staticmethod
    def decode(data: bytes) -> np.ndarray:
        """Decompress back to H×W×3 uint8 RGB."""
        if data[:4] != _MAGIC:
            raise CodecError("not an RJPG stream")
        try:
            return JpegCodec._decode_checked(data)
        except CodecError:
            raise
        except (struct.error, IndexError, ValueError, KeyError) as exc:
            raise CodecError(f"malformed RJPG stream: {exc}") from exc

    @staticmethod
    def _decode_checked(data: bytes) -> np.ndarray:
        version, quality, subsample_flag, h, w = struct.unpack_from(
            "<BBBHH", data, 4
        )
        if version != _VERSION:
            raise CodecError(f"unsupported RJPG version {version}")
        subsample = bool(subsample_flag)
        offset = 4 + struct.calcsize("<BBBHH")
        specs: List[TableSpec] = []
        for _ in range(4):
            spec, offset = _read_table(data, offset)
            specs.append(spec)
        dc_luma, ac_luma, dc_chroma, ac_chroma = (HuffmanTable(s) for s in specs)
        lengths = struct.unpack_from("<3I", data, offset)
        offset += 12
        streams = []
        for length in lengths:
            streams.append(data[offset : offset + length])
            offset += length

        # Reconstruct padded plane geometry the encoder used.
        align = 16 if subsample else 8
        ph = h + ((-h) % align)
        pw = w + ((-w) % align)
        luma_shape = (ph, pw)
        chroma_shape = (ph // 2, pw // 2) if subsample else (ph, pw)
        chroma_padded = (
            chroma_shape[0] + ((-chroma_shape[0]) % 8),
            chroma_shape[1] + ((-chroma_shape[1]) % 8),
        )
        luma_q = quant.scaled_table(quant.LUMA_BASE, quality)
        chroma_q = quant.scaled_table(quant.CHROMA_BASE, quality)

        planes: List[np.ndarray] = []
        shapes = [luma_shape, chroma_padded, chroma_padded]
        tables = [
            (dc_luma, ac_luma, luma_q),
            (dc_chroma, ac_chroma, chroma_q),
            (dc_chroma, ac_chroma, chroma_q),
        ]
        for stream, shape, (dc_t, ac_t, qtable) in zip(streams, shapes, tables):
            nblocks = (shape[0] // 8) * (shape[1] // 8)
            reader = BitReader(stream)
            blocks = np.empty((nblocks, 8, 8), dtype=np.int32)
            prev_dc = 0
            for b in range(nblocks):
                blocks[b], prev_dc = decode_block(reader, dc_t, ac_t, prev_dc)
            coeffs = quant.dequantize(blocks, qtable)
            plane = dct.unblockify(dct.idct2(coeffs), shape) + 128.0
            planes.append(plane)

        y = planes[0]
        cb = planes[1][: chroma_shape[0], : chroma_shape[1]]
        cr = planes[2][: chroma_shape[0], : chroma_shape[1]]
        if subsample:
            cb = color.upsample_420(cb)
            cr = color.upsample_420(cr)
        ycc = np.stack([y, cb, cr], axis=-1)
        rgb = color.ycbcr_to_rgb(ycc)
        return rgb[:h, :w]


def encode(rgb: np.ndarray, quality: int = 75, subsample: bool = True) -> bytes:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec(quality=quality, subsample=subsample).encode(rgb)


def decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`JpegCodec`."""
    return JpegCodec.decode(data)
