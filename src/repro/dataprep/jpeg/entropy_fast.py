"""Vectorized JPEG entropy stage: numpy RLE + table-driven decode.

The reference path in :mod:`repro.dataprep.jpeg.huffman` walks every
block symbol by symbol through ``BitWriter``/``BitReader``.  This module
produces *byte-identical* bitstreams an order of magnitude faster:

* encode: zig-zag, DC differencing, run-length coding and amplitude
  categories are computed for a whole plane of blocks with numpy; the
  resulting ``(code, nbits)`` arrays are packed in one shot with
  :func:`repro.dataprep.jpeg.huffman.pack_bits` (``np.packbits`` under
  the hood) instead of one ``BitWriter.write`` call per symbol.
* decode: a 16-bit lookup table (memoized per table spec) resolves each
  Huffman code with a single list index, and a precomputed 64-bit window
  array makes every peek O(1); the sequential walk that remains is the
  irreducible part of JPEG entropy decode (§V-B of the paper).

The symbol *semantics* — including ZRL runs, EOB placement and the JPEG
one's-complement amplitude convention — exactly mirror
``block_symbols``/``decode_block``, which the golden tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg.huffman import (
    EOB,
    ZIGZAG,
    UNZIGZAG,
    ZRL,
    HuffmanTable,
    TableSpec,
    bit_windows_array,
    pack_bits,
    table_runtime,
)

_POW2 = 1 << np.arange(17, dtype=np.int64)


def _bit_sizes(values: np.ndarray) -> np.ndarray:
    """JPEG size category (``int.bit_length`` of \\|v\\|), vectorized."""
    return np.searchsorted(_POW2, np.abs(values), side="right").astype(np.int64)


@dataclass(frozen=True)
class PlaneSymbols:
    """Stream-ordered symbol arrays for one plane of quantized blocks.

    DC events (one per block) and AC events are kept separate so the
    encoder can build per-class frequency tables; ``ac_block`` maps each
    AC event back to its block and ``block_start`` gives each block's
    offset into the AC event arrays, which together pin down the exact
    interleaving of the final bitstream.
    """

    n_blocks: int
    dc_syms: np.ndarray  # (N,)  DC size-category symbols
    dc_amps: np.ndarray  # (N,)  DC amplitude bits
    ac_syms: np.ndarray  # (M,)  AC (run, size) symbols incl. ZRL/EOB
    ac_amps: np.ndarray  # (M,)  AC amplitude bits
    ac_sizes: np.ndarray  # (M,) AC amplitude bit counts
    ac_block: np.ndarray  # (M,) owning block of each AC event
    block_start: np.ndarray  # (N,) AC-array offset of each block


def plane_symbols(quantized: np.ndarray) -> PlaneSymbols:
    """Vectorized equivalent of running ``block_symbols`` over a plane."""
    q = np.asarray(quantized)
    if q.ndim != 3 or q.shape[1:] != (8, 8):
        raise CodecError(f"expected (N, 8, 8) blocks, got {q.shape}")
    n = q.shape[0]
    flat = q.reshape(n, 64)[:, ZIGZAG].astype(np.int64)

    # DC: differential coding against the previous block's DC.
    dc = flat[:, 0]
    diff = dc - np.concatenate(([0], dc[:-1]))
    dc_syms = _bit_sizes(diff)
    dc_amps = np.where(diff > 0, diff, diff + (1 << dc_syms) - 1)
    dc_amps = np.where(dc_syms == 0, 0, dc_amps)

    # AC: run-length coding of the 63 remaining coefficients per block.
    ac = flat[:, 1:]
    nz_blk, nz_pos = np.nonzero(ac)
    has_nz = np.zeros(n, dtype=bool)
    last_pos = np.zeros(n, dtype=np.int64)
    if nz_blk.size:
        has_nz[nz_blk] = True
        last_pos[nz_blk] = nz_pos  # row-major order: later wins
        first = np.empty(nz_blk.size, dtype=bool)
        first[0] = True
        first[1:] = nz_blk[1:] != nz_blk[:-1]
        prev_pos = np.where(first, -1, np.concatenate(([0], nz_pos[:-1])))
        gap = nz_pos - prev_pos - 1
        zrl_runs = gap >> 4  # each full run of 16 zeros emits a ZRL
        values = ac[nz_blk, nz_pos]
        sizes = _bit_sizes(values)
        amps = np.where(values > 0, values, values + (1 << sizes) - 1)
        syms = ((gap & 15) << 4) | sizes
        per_nz = zrl_runs + 1
        ac_count = np.bincount(
            nz_blk, weights=per_nz, minlength=n
        ).astype(np.int64)
    else:
        per_nz = np.zeros(0, dtype=np.int64)
        ac_count = np.zeros(n, dtype=np.int64)

    eob = (~has_nz) | (last_pos < 62)
    total = ac_count + eob
    block_start = np.concatenate(([0], np.cumsum(total)[:-1]))
    m = int(total.sum())
    # Unassigned slots inside a block's nonzero segment are ZRLs by
    # construction (each nonzero occupies zrl_runs slots + 1 symbol slot).
    ac_syms = np.full(m, ZRL, dtype=np.int64)
    ac_amps = np.zeros(m, dtype=np.int64)
    ac_sizes = np.zeros(m, dtype=np.int64)
    if nz_blk.size:
        before = np.concatenate(([0], np.cumsum(per_nz)[:-1]))
        # AC-event offset of each nonzero within its own block.
        within = before - np.maximum.accumulate(np.where(first, before, 0))
        sym_pos = block_start[nz_blk] + within + zrl_runs
        ac_syms[sym_pos] = syms
        ac_amps[sym_pos] = amps
        ac_sizes[sym_pos] = sizes
    eob_pos = (block_start + total - 1)[eob]
    ac_syms[eob_pos] = EOB
    ac_block = np.repeat(np.arange(n), total)
    return PlaneSymbols(
        n_blocks=n,
        dc_syms=dc_syms,
        dc_amps=dc_amps,
        ac_syms=ac_syms,
        ac_amps=ac_amps,
        ac_sizes=ac_sizes,
        ac_block=ac_block,
        block_start=block_start,
    )


def symbol_frequencies(symbols: np.ndarray) -> Dict[int, int]:
    """Frequency dict of a symbol array (for ``from_frequencies``)."""
    counts = np.bincount(symbols.astype(np.int64))
    return {int(s): int(c) for s, c in enumerate(counts) if c}


def plane_bitstream(
    ps: PlaneSymbols, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Pack a plane's symbols into the JPEG bitstream in one shot."""
    rt_dc = dc_table.runtime
    rt_ac = ac_table.runtime
    n, m = ps.n_blocks, ps.ac_syms.size
    if np.any(ps.dc_syms >= rt_dc.enc_len.size) or np.any(
        ps.ac_syms >= rt_ac.enc_len.size
    ):
        raise CodecError("symbol not in Huffman table")
    dc_lens = rt_dc.enc_len[ps.dc_syms]
    ac_lens = rt_ac.enc_len[ps.ac_syms]
    if np.any(dc_lens == 0) or np.any(ac_lens == 0):
        raise CodecError("symbol not in Huffman table")
    # Stream slot of each event: block b's DC sits before its AC events,
    # and b earlier DC events precede every AC event of block b.
    dc_slot = ps.block_start + np.arange(n)
    ac_slot = np.arange(m) + ps.ac_block + 1
    values = np.zeros(2 * (n + m), dtype=np.int64)
    widths = np.zeros(2 * (n + m), dtype=np.int64)
    values[2 * dc_slot] = rt_dc.enc_code[ps.dc_syms]
    widths[2 * dc_slot] = dc_lens
    values[2 * dc_slot + 1] = ps.dc_amps
    widths[2 * dc_slot + 1] = ps.dc_syms  # DC symbol == amplitude size
    values[2 * ac_slot] = rt_ac.enc_code[ps.ac_syms]
    widths[2 * ac_slot] = ac_lens
    values[2 * ac_slot + 1] = ps.ac_amps
    widths[2 * ac_slot + 1] = ps.ac_sizes
    return pack_bits(values, widths)


@lru_cache(maxsize=512)
def _ac_lut(spec: TableSpec) -> Tuple[List[int], int]:
    """Repack a table's decode LUT for the JPEG AC role.

    Entry layout: ``(run << 11) | (amplitude_size << 6) | advance`` with
    ``advance = code_length + amplitude_size`` — the total cursor move,
    so the amplitude field ends exactly at the advanced cursor and is a
    plain ``(win >> s) & mask``.  EOB is stored with run 63 (it pushes
    the coefficient cursor past the end of the block), ZRL with run 16;
    both have size 0.  0 marks an invalid prefix, -1 a symbol that is
    corrupt in AC position (zero size that is neither EOB nor ZRL).
    One list index then yields everything the decode loop needs.
    """
    rt = table_runtime(spec)
    entries = np.asarray(rt.lut, dtype=np.int64)
    sym = entries >> 5
    length = entries & 31
    run = sym >> 4
    size = sym & 15
    packed = (run << 11) | (size << 6) | (length + size)
    packed = np.where(sym == EOB, (63 << 11) | length, packed)
    packed = np.where(sym == ZRL, (16 << 11) | length, packed)
    packed = np.where(
        (size == 0) & (sym != EOB) & (sym != ZRL) & (length > 0), -1, packed
    )
    packed = np.where(length == 0, 0, packed)
    return packed.tolist(), rt.lut_bits


@lru_cache(maxsize=512)
def _dc_lut(spec: TableSpec) -> Tuple[List[int], int]:
    """Packed decode LUT for the JPEG DC role.

    Entry layout: ``(amplitude_size << 6) | advance`` with
    ``advance = code_length + amplitude_size`` (the DC symbol *is* the
    amplitude size).  0 marks an invalid prefix, -1 a symbol that is
    corrupt in DC position (a size category beyond JPEG's 16).
    """
    rt = table_runtime(spec)
    entries = np.asarray(rt.lut, dtype=np.int64)
    size = entries >> 5
    length = entries & 31
    packed = (size << 6) | (length + size)
    packed = np.where(size > 16, -1, packed)
    packed = np.where(length == 0, 0, packed)
    return packed.tolist(), rt.lut_bits


def decode_plane(
    stream: bytes,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    n_blocks: int,
) -> np.ndarray:
    """LUT-driven decode of ``n_blocks`` quantized blocks from ``stream``.

    Exactly inverts :func:`plane_bitstream` (and the reference
    ``decode_block`` loop); returns an (N, 8, 8) int32 stack.
    """
    warr = bit_windows_array(stream)
    windows = warr.tolist()
    total_bits = len(stream) * 8
    dc_lut, dc_bits = _dc_lut(dc_table.spec)
    dc_mask = (1 << dc_bits) - 1
    ac_lut, ac_bits = _ac_lut(ac_table.spec)
    ac_mask = (1 << ac_bits) - 1
    # The hot loop never touches amplitudes: each nonzero coefficient
    # (DC diffs included, at in-block index 0) is recorded as one packed
    # int — (flat index << 39) | (size << 34) | end-bit-position — and
    # the amplitude bits are gathered, sign-extended and scattered with
    # numpy after the walk; DC prediction becomes a cumulative sum.
    events: List[int] = []
    append = events.append
    pos = 0
    # One fetched 64-bit window serves several symbols: ``s`` is the
    # number of window bits still ahead of the cursor, so the next
    # n-bit field is ``(win >> (s - n)) & mask_n`` and a refill is only
    # needed when fewer than 32 bits remain (a symbol plus its
    # amplitude never exceeds 32 bits).  ``pos`` is re-synced from the
    # consumed count ``s0 - s`` at refills and block ends.
    win = windows[0]
    s0 = s = 64
    try:
        for b in range(n_blocks):
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = dc_lut[(win >> (s - dc_bits)) & dc_mask]
            if entry <= 0:
                if entry:
                    raise CodecError("corrupt DC coefficient stream")
                raise CodecError("invalid Huffman code in bitstream")
            base = b << 45  # (b << 6) ready-shifted into the index field
            s -= entry & 63
            if entry > 63:
                append(base | (entry >> 6 << 34) | (pos + s0 - s))
            k = 1
            while k < 64:
                if s < 32:
                    pos += s0 - s
                    win = windows[pos >> 3]
                    s0 = s = 64 - (pos & 7)
                entry = ac_lut[(win >> (s - ac_bits)) & ac_mask]
                if entry <= 0:
                    if entry:
                        raise CodecError("corrupt AC coefficient stream")
                    raise CodecError("invalid Huffman code in bitstream")
                k += entry >> 11
                size = (entry >> 6) & 31
                if size:
                    if k >= 64:
                        raise CodecError("corrupt AC coefficient stream")
                    s -= entry & 63
                    append(
                        base | (k << 39) | (size << 34) | (pos + s0 - s)
                    )
                    k += 1
                else:
                    s -= entry & 63
            # One bounds check per block: the windows are padded with
            # 1-bits, so an overrunning block decodes junk harmlessly
            # and is rejected here before anything is returned.
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
    except IndexError:
        raise CodecError("bitstream underrun") from None
    except ValueError:
        # Defensive: any negative-shift style arithmetic fault from a
        # corrupt stream is the same condition as running out of bits.
        raise CodecError("bitstream underrun") from None
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    if events:
        ev = np.array(events, dtype=np.int64)
        idx = ev >> 39
        size = (ev >> 34) & 31
        start = (ev & ((1 << 34) - 1)) - size
        r = (start & 7).astype(np.uint64)
        amp = (
            (warr[start >> 3] << r) >> (np.uint64(64) - size.astype(np.uint64))
        ).astype(np.int64)
        vals = np.where(amp >> (size - 1) != 0, amp, amp - (1 << size) + 1)
        out.reshape(-1)[idx] = vals
    # DC differential coding inverts to a running sum down the plane.
    np.cumsum(out[:, 0], out=out[:, 0])
    return out[:, UNZIGZAG].reshape(n_blocks, 8, 8)


# Sized for batch decode: a 256-image group touches 1024 distinct
# optimized tables (4 per frame); anything smaller thrashes and
# rebuilds every LUT on every call.  Entries are ``uint32`` (a packed
# entry needs 17 bits, the -1 corrupt marker wraps to all-ones): the
# batch walk gathers from every live LUT each iteration, so halving
# entry bytes halves its cache-miss working set.
#
# The batch variants additionally fold the "+1 past a decoded nonzero"
# coefficient-cursor bump into the run field of every *valid* entry
# with a nonzero amplitude size (markers, whose run field must stay
# huge, are left alone).  The lock-step loop's k update then collapses
# to ``k + (entry >> 11)`` with no size test, and the epilogue recovers
# the coefficient index of a recorded event as ``kn - 1``.
def _fold_nonzero_step(packed: np.ndarray) -> np.ndarray:
    size = (packed >> 6) & 31
    return packed + (((size > 0) & (packed > 0)) << 11)


@lru_cache(maxsize=2048)
def _dc_lut_arr(spec: TableSpec) -> Tuple[np.ndarray, int]:
    lut, bits = _dc_lut(spec)
    packed = _fold_nonzero_step(np.asarray(lut, dtype=np.int64))
    return packed.astype(np.uint32), bits


@lru_cache(maxsize=2048)
def _ac_lut_arr(spec: TableSpec) -> Tuple[np.ndarray, int]:
    lut, bits = _ac_lut(spec)
    packed = _fold_nonzero_step(np.asarray(lut, dtype=np.int64))
    return packed.astype(np.uint32), bits




# Event rows are recorded into preallocated chunk matrices of this many
# iterations (a multiple of the 128-iteration check window), so the
# epilogue's per-chunk working set — four ~n-wide rows times _CHUNK —
# stays cache-resident and no list-of-rows is ever re-copied through
# ``np.array``.
_CHUNK = 512


def decode_planes_batch(
    tasks: Sequence[Tuple[bytes, HuffmanTable, HuffmanTable, int]],
) -> List[np.ndarray]:
    """Lock-step Huffman decode of many plane streams at once.

    Every stream advances one symbol per iteration under vectorized
    numpy ops, so the per-symbol interpreter overhead — the whole cost
    of :func:`decode_plane` — is amortized over the batch.  Each stream
    indexes its own packed LUTs through per-stream offsets into one flat
    buffer, so streams with different Huffman tables (the normal case:
    tables are optimized per image) batch together.

    The loop body is numpy-dispatch bound, so every iteration is a
    fixed sequence of ufunc calls on preallocated temporaries: the peek
    is two shifts (left to drop consumed bits, right by the per-stream
    ``64 - lut_bits``, no mask), the coefficient-cursor bump for decoded
    nonzeros is pre-folded into the LUT run field (see
    :func:`_fold_nonzero_step`), and symbols are recorded
    *unconditionally* as four per-iteration rows (DC flag, advanced
    coefficient cursor, raw LUT entry, end bit) written straight into
    chunked event matrices.  Block numbering, event filtering, the
    per-block bounds check and the corrupt-coefficient check are all
    reconstructed vectorized over the recorded chunks in the epilogue.
    Finished streams are not compacted away either: they decode junk —
    their cursor reads the next stream's bytes or parks in an all-zero
    trap region at the end of the buffer (index 0 of a canonical-Huffman
    LUT is always a valid code, so a parked stream keeps making
    progress, and the region is wide enough that the cursor only needs
    clamping at the periodic check, not every symbol) — and every junk
    symbol is dropped in the epilogue
    because its reconstructed block index is past the stream's last
    block.  Corrupt streams stall at an invalid prefix or trip one of
    the epilogue checks; either way a :class:`CodecError` raises before
    anything is returned.

    Output ``i`` is bit-identical to ``decode_plane(*tasks[i])``:
    streams are concatenated with the same 8-byte 1-bit spacer padding
    :func:`~repro.dataprep.jpeg.huffman.bit_windows_array` applies, so
    even trailing peeks past a stream's end see the same bits, and the
    amplitude-gather epilogue is the same code on a shared window array.

    Working memory is four narrow matrices of (symbols of the longest
    stream) × (number of streams) — callers should group streams of
    similar length (e.g. luma planes apart from chroma planes) so the
    matrix is dense and short streams don't spin on junk for the whole
    walk.
    """
    if not tasks:
        return []
    n = len(tasks)
    streams = [bytes(t[0]) for t in tasks]
    # One window array over all streams.  Per-stream 1-bit spacers keep
    # end-of-stream peeks identical to the single-stream decoder; the
    # final zero word is the parking trap for finished streams.
    # The zero tail is wide enough that a parked cursor advancing at
    # most 63 bits per iteration cannot escape it between the
    # every-128-iteration clamps below (128 * 63 bits < 1024 bytes), so
    # the hot loop carries no bounds clamp at all.
    payload = b"".join(s + b"\xff" * 8 for s in streams) + b"\x00" * 1024
    warr = bit_windows_array(payload)
    trap = np.uint64((len(payload) - 1024) * 8)
    base_bit = np.zeros(n, dtype=np.int64)
    total_bits = np.empty(n, dtype=np.int64)
    offset = 0
    for i, s in enumerate(streams):
        base_bit[i] = offset * 8
        total_bits[i] = len(s) * 8
        offset += len(s) + 8
    # Each stream's DC and AC LUTs are widened to one shared peek width
    # (the prefix property makes a ``repeat`` expansion exact), so the
    # peek shift is a per-stream constant in the hot loop and only the
    # LUT base offset still selects DC vs AC.
    parts = []
    dc_off = np.empty(n, dtype=np.int64)
    ac_off = np.empty(n, dtype=np.int64)
    lut_bits = np.empty(n, dtype=np.int64)
    lut_off = 0
    for i, (_, dc_t, ac_t, _nb) in enumerate(tasks):
        dc_arr, dc_b = _dc_lut_arr(dc_t.spec)
        ac_arr, ac_b = _ac_lut_arr(ac_t.spec)
        bits = max(dc_b, ac_b)
        if dc_b < bits:
            dc_arr = np.repeat(dc_arr, 1 << (bits - dc_b))
        if ac_b < bits:
            ac_arr = np.repeat(ac_arr, 1 << (bits - ac_b))
        parts.append(dc_arr)
        parts.append(ac_arr)
        dc_off[i], ac_off[i] = lut_off, lut_off + dc_arr.shape[0]
        lut_bits[i] = bits
        lut_off += dc_arr.shape[0] + ac_arr.shape[0]
    flat_lut = np.concatenate(parts)
    n_blocks = np.array([t[3] for t in tasks], dtype=np.int64)
    if np.any(n_blocks <= 0):
        raise CodecError("plane must have at least one block")
    block_base = np.zeros(n, dtype=np.int64)
    np.cumsum(n_blocks[:-1], out=block_base[1:])
    out = np.zeros((int(n_blocks.sum()), 64), dtype=np.int32)

    # Everything the hot loop touches is uint64: cursors are absolute
    # bit positions and LUT entries keep their packed layout (a -1
    # corrupt marker becomes a huge unsigned run that ends the block and
    # is caught by the epilogue's coefficient check).  Event rows store
    # narrower: kn and entries fit uint32, and so do bit cursors unless
    # the payload is gigantic.
    u = np.uint64
    pos = base_bit.astype(np.uint64)
    k = np.zeros(n, dtype=np.uint64)
    blk = np.zeros(n, dtype=np.int64)
    sbm = u(64) - lut_bits.astype(np.uint64)
    dc_off_u, ac_off_u = dc_off.astype(np.uint64), ac_off.astype(np.uint64)
    pos_dtype = np.uint32 if len(payload) * 8 < 1 << 32 else np.uint64
    # Preallocated hot-loop temporaries — the loop allocates nothing but
    # the two ``np.where`` results per iteration.
    t0 = np.empty(n, dtype=np.uint64)
    win = np.empty(n, dtype=np.uint64)
    sh = np.empty(n, dtype=np.uint64)
    run = np.empty(n, dtype=np.uint32)
    adv = np.empty(n, dtype=np.uint32)
    lt = np.empty(n, dtype=bool)
    ZERO, ONE, THREE, SEVEN, K64 = u(0), u(1), u(3), u(7), u(64)
    ELEVEN, LOW6 = np.uint32(11), np.uint32(63)
    # A valid block is at most 65 symbols (DC + 63 coefficients + EOB),
    # finished streams need one junk DC start to be counted done, and
    # the done/progress checks run every 128 iterations: an unfinished
    # stream that starts no new block across a whole window is stalled
    # on an invalid prefix (a valid or junk-decoding stream starts one
    # at least every 65 symbols), so corrupt input raises promptly
    # instead of recording events until the cap.
    cap = 65 * int(n_blocks.max()) + 256
    done = False
    prev_blk = blk.copy()
    chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    c_dc = c_kn = c_en = c_po = None
    r = _CHUNK
    T = 0
    for t in range(cap):
        if not (t & 127):
            np.minimum(pos, trap, out=pos)
            if bool((blk > n_blocks).all()):
                done = True
                break
            if t and bool(((blk == prev_blk) & (blk <= n_blocks)).any()):
                raise CodecError("invalid Huffman code in bitstream")
            np.copyto(prev_blk, blk)
        if r == _CHUNK:
            c_dc = np.empty((_CHUNK, n), dtype=bool)
            c_kn = np.empty((_CHUNK, n), dtype=np.uint32)
            c_en = np.empty((_CHUNK, n), dtype=np.uint32)
            c_po = np.empty((_CHUNK, n), dtype=pos_dtype)
            chunks.append((c_dc, c_kn, c_en, c_po))
            r = 0
        is_dc = c_dc[r]
        np.equal(k, ZERO, out=is_dc)
        np.right_shift(pos, THREE, out=t0)
        # Bound-method take skips the np.take dispatch wrapper — it is
        # measurably cheaper at hot-loop call counts.
        warr.take(t0, out=win)
        np.bitwise_and(pos, SEVEN, out=sh)
        np.left_shift(win, sh, out=win)
        np.right_shift(win, sbm, out=win)  # the peek, mask-free
        off = np.where(is_dc, dc_off_u, ac_off_u)
        np.add(off, win, out=off)
        entry = c_en[r]
        flat_lut.take(off, out=entry)
        np.right_shift(entry, ELEVEN, out=run)
        np.add(k, run, out=c_kn[r], casting="same_kind")
        np.bitwise_and(entry, LOW6, out=adv)
        np.add(pos, adv, out=pos)
        c_po[r] = pos
        k = np.where(is_dc, ONE, c_kn[r])
        np.less(k, K64, out=lt)
        np.multiply(k, lt, out=k)
        np.add(blk, is_dc, out=blk)
        r += 1
        T += 1
    if not done and not bool((blk > n_blocks).all()):
        raise CodecError("invalid Huffman code in bitstream")

    # Epilogue: reconstruct block numbering from the recorded walk, drop
    # junk symbols, run the deferred checks, then gather amplitudes and
    # scatter — the same closing moves as decode_plane, batched.  The
    # reconstruction runs chunk by chunk (each chunk's matrices fit in
    # cache) with the cumulative block count carried across chunks; the
    # surviving events — a small fraction of the recorded rows — are
    # then concatenated once for the shared amplitude gather.
    nb32 = n_blocks.astype(np.int32)
    carry = np.zeros(n, dtype=np.int32)
    cols = np.arange(n)
    last_pos = np.zeros(n, dtype=np.int64)
    sel_kn: List[np.ndarray] = []
    sel_en: List[np.ndarray] = []
    sel_po: List[np.ndarray] = []
    sel_bi: List[np.ndarray] = []
    sel_col: List[np.ndarray] = []
    remaining = T
    for c_dc, c_kn, c_en, c_po in chunks:
        rows = min(_CHUNK, remaining)
        remaining -= rows
        if not rows:
            break
        d = c_dc[:rows]
        blkm = np.cumsum(d, axis=0, dtype=np.int32)
        blkm += carry[None, :]
        carry = blkm[-1].copy()
        np.subtract(blkm, 1, out=blkm)  # now the block index per row
        real = blkm < nb32[None, :]
        # ``blk`` is nondecreasing, so each column's real rows are a
        # prefix: the column's last real row this chunk (if any) carries
        # its final cursor position.
        cnt = real.sum(axis=0)
        has = cnt > 0
        if has.any():
            last_pos[has] = c_po[cnt[has] - 1, cols[has]]
        en = c_en[:rows]
        ev = (en & np.uint32(0x1F << 6)) != 0  # nonzero amplitude size
        np.logical_and(ev, real, out=ev)
        sel = np.flatnonzero(ev.ravel())
        if sel.size:
            sel_kn.append(np.take(c_kn[:rows].ravel(), sel))
            sel_en.append(np.take(en.ravel(), sel))
            sel_po.append(np.take(c_po[:rows].ravel(), sel))
            sel_bi.append(np.take(blkm.ravel(), sel))
            sel_col.append(sel % n)
    if np.any(last_pos - base_bit > total_bits):
        raise CodecError("bitstream underrun")
    if sel_kn:
        kn = np.concatenate(sel_kn).astype(np.int64)
        kcv = kn - 1  # undo the folded nonzero step: the coefficient index
        if np.any(kcv >= 64):
            raise CodecError("corrupt AC coefficient stream")
        en = np.concatenate(sel_en)
        size = ((en >> np.uint32(6)) & np.uint32(31)).astype(np.int64)
        end = np.concatenate(sel_po).astype(np.int64)
        blkv = np.concatenate(sel_bi).astype(np.int64)
        col = np.concatenate(sel_col)
        idx = ((blkv + block_base[col]) << 6) | kcv
        start = end - size
        rs = (start & 7).astype(np.uint64)
        amp = (
            (warr[start >> 3] << rs)
            >> (np.uint64(64) - size.astype(np.uint64))
        ).astype(np.int64)
        vals = np.where(amp >> (size - 1) != 0, amp, amp - (1 << size) + 1)
        out.reshape(-1)[idx] = vals
    results: List[np.ndarray] = []
    for i in range(n):
        plane = out[block_base[i] : block_base[i] + n_blocks[i]]
        np.cumsum(plane[:, 0], out=plane[:, 0])
        results.append(plane[:, UNZIGZAG].reshape(int(n_blocks[i]), 8, 8))
    return results
