"""Vectorized JPEG entropy stage: numpy RLE + table-driven decode.

The reference path in :mod:`repro.dataprep.jpeg.huffman` walks every
block symbol by symbol through ``BitWriter``/``BitReader``.  This module
produces *byte-identical* bitstreams an order of magnitude faster:

* encode: zig-zag, DC differencing, run-length coding and amplitude
  categories are computed for a whole plane of blocks with numpy; the
  resulting ``(code, nbits)`` arrays are packed in one shot with
  :func:`repro.dataprep.jpeg.huffman.pack_bits` (``np.packbits`` under
  the hood) instead of one ``BitWriter.write`` call per symbol.
* decode: a 16-bit lookup table (memoized per table spec) resolves each
  Huffman code with a single list index, and a precomputed 64-bit window
  array makes every peek O(1); the sequential walk that remains is the
  irreducible part of JPEG entropy decode (§V-B of the paper).

The symbol *semantics* — including ZRL runs, EOB placement and the JPEG
one's-complement amplitude convention — exactly mirror
``block_symbols``/``decode_block``, which the golden tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg.huffman import (
    EOB,
    ZIGZAG,
    UNZIGZAG,
    ZRL,
    HuffmanTable,
    TableSpec,
    bit_windows_array,
    pack_bits,
    table_runtime,
)

_POW2 = 1 << np.arange(17, dtype=np.int64)


def _bit_sizes(values: np.ndarray) -> np.ndarray:
    """JPEG size category (``int.bit_length`` of \\|v\\|), vectorized."""
    return np.searchsorted(_POW2, np.abs(values), side="right").astype(np.int64)


@dataclass(frozen=True)
class PlaneSymbols:
    """Stream-ordered symbol arrays for one plane of quantized blocks.

    DC events (one per block) and AC events are kept separate so the
    encoder can build per-class frequency tables; ``ac_block`` maps each
    AC event back to its block and ``block_start`` gives each block's
    offset into the AC event arrays, which together pin down the exact
    interleaving of the final bitstream.
    """

    n_blocks: int
    dc_syms: np.ndarray  # (N,)  DC size-category symbols
    dc_amps: np.ndarray  # (N,)  DC amplitude bits
    ac_syms: np.ndarray  # (M,)  AC (run, size) symbols incl. ZRL/EOB
    ac_amps: np.ndarray  # (M,)  AC amplitude bits
    ac_sizes: np.ndarray  # (M,) AC amplitude bit counts
    ac_block: np.ndarray  # (M,) owning block of each AC event
    block_start: np.ndarray  # (N,) AC-array offset of each block


def plane_symbols(quantized: np.ndarray) -> PlaneSymbols:
    """Vectorized equivalent of running ``block_symbols`` over a plane."""
    q = np.asarray(quantized)
    if q.ndim != 3 or q.shape[1:] != (8, 8):
        raise CodecError(f"expected (N, 8, 8) blocks, got {q.shape}")
    n = q.shape[0]
    flat = q.reshape(n, 64)[:, ZIGZAG].astype(np.int64)

    # DC: differential coding against the previous block's DC.
    dc = flat[:, 0]
    diff = dc - np.concatenate(([0], dc[:-1]))
    dc_syms = _bit_sizes(diff)
    dc_amps = np.where(diff > 0, diff, diff + (1 << dc_syms) - 1)
    dc_amps = np.where(dc_syms == 0, 0, dc_amps)

    # AC: run-length coding of the 63 remaining coefficients per block.
    ac = flat[:, 1:]
    nz_blk, nz_pos = np.nonzero(ac)
    has_nz = np.zeros(n, dtype=bool)
    last_pos = np.zeros(n, dtype=np.int64)
    if nz_blk.size:
        has_nz[nz_blk] = True
        last_pos[nz_blk] = nz_pos  # row-major order: later wins
        first = np.empty(nz_blk.size, dtype=bool)
        first[0] = True
        first[1:] = nz_blk[1:] != nz_blk[:-1]
        prev_pos = np.where(first, -1, np.concatenate(([0], nz_pos[:-1])))
        gap = nz_pos - prev_pos - 1
        zrl_runs = gap >> 4  # each full run of 16 zeros emits a ZRL
        values = ac[nz_blk, nz_pos]
        sizes = _bit_sizes(values)
        amps = np.where(values > 0, values, values + (1 << sizes) - 1)
        syms = ((gap & 15) << 4) | sizes
        per_nz = zrl_runs + 1
        ac_count = np.bincount(
            nz_blk, weights=per_nz, minlength=n
        ).astype(np.int64)
    else:
        per_nz = np.zeros(0, dtype=np.int64)
        ac_count = np.zeros(n, dtype=np.int64)

    eob = (~has_nz) | (last_pos < 62)
    total = ac_count + eob
    block_start = np.concatenate(([0], np.cumsum(total)[:-1]))
    m = int(total.sum())
    # Unassigned slots inside a block's nonzero segment are ZRLs by
    # construction (each nonzero occupies zrl_runs slots + 1 symbol slot).
    ac_syms = np.full(m, ZRL, dtype=np.int64)
    ac_amps = np.zeros(m, dtype=np.int64)
    ac_sizes = np.zeros(m, dtype=np.int64)
    if nz_blk.size:
        before = np.concatenate(([0], np.cumsum(per_nz)[:-1]))
        # AC-event offset of each nonzero within its own block.
        within = before - np.maximum.accumulate(np.where(first, before, 0))
        sym_pos = block_start[nz_blk] + within + zrl_runs
        ac_syms[sym_pos] = syms
        ac_amps[sym_pos] = amps
        ac_sizes[sym_pos] = sizes
    eob_pos = (block_start + total - 1)[eob]
    ac_syms[eob_pos] = EOB
    ac_block = np.repeat(np.arange(n), total)
    return PlaneSymbols(
        n_blocks=n,
        dc_syms=dc_syms,
        dc_amps=dc_amps,
        ac_syms=ac_syms,
        ac_amps=ac_amps,
        ac_sizes=ac_sizes,
        ac_block=ac_block,
        block_start=block_start,
    )


def symbol_frequencies(symbols: np.ndarray) -> Dict[int, int]:
    """Frequency dict of a symbol array (for ``from_frequencies``)."""
    counts = np.bincount(symbols.astype(np.int64))
    return {int(s): int(c) for s, c in enumerate(counts) if c}


def plane_bitstream(
    ps: PlaneSymbols, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Pack a plane's symbols into the JPEG bitstream in one shot."""
    rt_dc = dc_table.runtime
    rt_ac = ac_table.runtime
    n, m = ps.n_blocks, ps.ac_syms.size
    if np.any(ps.dc_syms >= rt_dc.enc_len.size) or np.any(
        ps.ac_syms >= rt_ac.enc_len.size
    ):
        raise CodecError("symbol not in Huffman table")
    dc_lens = rt_dc.enc_len[ps.dc_syms]
    ac_lens = rt_ac.enc_len[ps.ac_syms]
    if np.any(dc_lens == 0) or np.any(ac_lens == 0):
        raise CodecError("symbol not in Huffman table")
    # Stream slot of each event: block b's DC sits before its AC events,
    # and b earlier DC events precede every AC event of block b.
    dc_slot = ps.block_start + np.arange(n)
    ac_slot = np.arange(m) + ps.ac_block + 1
    values = np.zeros(2 * (n + m), dtype=np.int64)
    widths = np.zeros(2 * (n + m), dtype=np.int64)
    values[2 * dc_slot] = rt_dc.enc_code[ps.dc_syms]
    widths[2 * dc_slot] = dc_lens
    values[2 * dc_slot + 1] = ps.dc_amps
    widths[2 * dc_slot + 1] = ps.dc_syms  # DC symbol == amplitude size
    values[2 * ac_slot] = rt_ac.enc_code[ps.ac_syms]
    widths[2 * ac_slot] = ac_lens
    values[2 * ac_slot + 1] = ps.ac_amps
    widths[2 * ac_slot + 1] = ps.ac_sizes
    return pack_bits(values, widths)


@lru_cache(maxsize=512)
def _ac_lut(spec: TableSpec) -> Tuple[List[int], int]:
    """Repack a table's decode LUT for the JPEG AC role.

    Entry layout: ``(run << 11) | (amplitude_size << 6) | advance`` with
    ``advance = code_length + amplitude_size`` — the total cursor move,
    so the amplitude field ends exactly at the advanced cursor and is a
    plain ``(win >> s) & mask``.  EOB is stored with run 63 (it pushes
    the coefficient cursor past the end of the block), ZRL with run 16;
    both have size 0.  0 marks an invalid prefix, -1 a symbol that is
    corrupt in AC position (zero size that is neither EOB nor ZRL).
    One list index then yields everything the decode loop needs.
    """
    rt = table_runtime(spec)
    entries = np.asarray(rt.lut, dtype=np.int64)
    sym = entries >> 5
    length = entries & 31
    run = sym >> 4
    size = sym & 15
    packed = (run << 11) | (size << 6) | (length + size)
    packed = np.where(sym == EOB, (63 << 11) | length, packed)
    packed = np.where(sym == ZRL, (16 << 11) | length, packed)
    packed = np.where(
        (size == 0) & (sym != EOB) & (sym != ZRL) & (length > 0), -1, packed
    )
    packed = np.where(length == 0, 0, packed)
    return packed.tolist(), rt.lut_bits


@lru_cache(maxsize=512)
def _dc_lut(spec: TableSpec) -> Tuple[List[int], int]:
    """Packed decode LUT for the JPEG DC role.

    Entry layout: ``(amplitude_size << 6) | advance`` with
    ``advance = code_length + amplitude_size`` (the DC symbol *is* the
    amplitude size).  0 marks an invalid prefix, -1 a symbol that is
    corrupt in DC position (a size category beyond JPEG's 16).
    """
    rt = table_runtime(spec)
    entries = np.asarray(rt.lut, dtype=np.int64)
    size = entries >> 5
    length = entries & 31
    packed = (size << 6) | (length + size)
    packed = np.where(size > 16, -1, packed)
    packed = np.where(length == 0, 0, packed)
    return packed.tolist(), rt.lut_bits


def decode_plane(
    stream: bytes,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    n_blocks: int,
) -> np.ndarray:
    """LUT-driven decode of ``n_blocks`` quantized blocks from ``stream``.

    Exactly inverts :func:`plane_bitstream` (and the reference
    ``decode_block`` loop); returns an (N, 8, 8) int32 stack.
    """
    warr = bit_windows_array(stream)
    windows = warr.tolist()
    total_bits = len(stream) * 8
    dc_lut, dc_bits = _dc_lut(dc_table.spec)
    dc_mask = (1 << dc_bits) - 1
    ac_lut, ac_bits = _ac_lut(ac_table.spec)
    ac_mask = (1 << ac_bits) - 1
    # The hot loop never touches amplitudes: each nonzero coefficient
    # (DC diffs included, at in-block index 0) is recorded as one packed
    # int — (flat index << 39) | (size << 34) | end-bit-position — and
    # the amplitude bits are gathered, sign-extended and scattered with
    # numpy after the walk; DC prediction becomes a cumulative sum.
    events: List[int] = []
    append = events.append
    pos = 0
    # One fetched 64-bit window serves several symbols: ``s`` is the
    # number of window bits still ahead of the cursor, so the next
    # n-bit field is ``(win >> (s - n)) & mask_n`` and a refill is only
    # needed when fewer than 32 bits remain (a symbol plus its
    # amplitude never exceeds 32 bits).  ``pos`` is re-synced from the
    # consumed count ``s0 - s`` at refills and block ends.
    win = windows[0]
    s0 = s = 64
    try:
        for b in range(n_blocks):
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = dc_lut[(win >> (s - dc_bits)) & dc_mask]
            if entry <= 0:
                if entry:
                    raise CodecError("corrupt DC coefficient stream")
                raise CodecError("invalid Huffman code in bitstream")
            base = b << 45  # (b << 6) ready-shifted into the index field
            s -= entry & 63
            if entry > 63:
                append(base | (entry >> 6 << 34) | (pos + s0 - s))
            k = 1
            while k < 64:
                if s < 32:
                    pos += s0 - s
                    win = windows[pos >> 3]
                    s0 = s = 64 - (pos & 7)
                entry = ac_lut[(win >> (s - ac_bits)) & ac_mask]
                if entry <= 0:
                    if entry:
                        raise CodecError("corrupt AC coefficient stream")
                    raise CodecError("invalid Huffman code in bitstream")
                k += entry >> 11
                size = (entry >> 6) & 31
                if size:
                    if k >= 64:
                        raise CodecError("corrupt AC coefficient stream")
                    s -= entry & 63
                    append(
                        base | (k << 39) | (size << 34) | (pos + s0 - s)
                    )
                    k += 1
                else:
                    s -= entry & 63
            # One bounds check per block: the windows are padded with
            # 1-bits, so an overrunning block decodes junk harmlessly
            # and is rejected here before anything is returned.
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
    except IndexError:
        raise CodecError("bitstream underrun") from None
    except ValueError:
        # Defensive: any negative-shift style arithmetic fault from a
        # corrupt stream is the same condition as running out of bits.
        raise CodecError("bitstream underrun") from None
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    if events:
        ev = np.array(events, dtype=np.int64)
        idx = ev >> 39
        size = (ev >> 34) & 31
        start = (ev & ((1 << 34) - 1)) - size
        r = (start & 7).astype(np.uint64)
        amp = (
            (warr[start >> 3] << r) >> (np.uint64(64) - size.astype(np.uint64))
        ).astype(np.int64)
        vals = np.where(amp >> (size - 1) != 0, amp, amp - (1 << size) + 1)
        out.reshape(-1)[idx] = vals
    # DC differential coding inverts to a running sum down the plane.
    np.cumsum(out[:, 0], out=out[:, 0])
    return out[:, UNZIGZAG].reshape(n_blocks, 8, 8)
