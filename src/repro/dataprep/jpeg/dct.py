"""8×8 block type-II DCT, the transform at the heart of JPEG.

Implemented as a matrix product with the orthonormal DCT-II basis, applied
to all blocks of a plane at once.  The inverse is the transpose product,
so ``idct2(dct2(x)) == x`` up to float error — a property the tests pin
down.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodecError

BLOCK = 8


@lru_cache(maxsize=16)
def _dct_matrix(n: int = BLOCK) -> np.ndarray:
    k = np.arange(n)
    basis = np.cos(np.pi * (2 * k[None, :] + 1) * k[:, None] / (2 * n))
    scale = np.full((n, 1), np.sqrt(2.0 / n))
    scale[0, 0] = np.sqrt(1.0 / n)
    matrix = scale * basis
    matrix.setflags(write=False)  # shared via the cache
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def blockify(plane: np.ndarray) -> np.ndarray:
    """Split an H×W plane into an (H/8 · W/8, 8, 8) stack of blocks."""
    h, w = plane.shape
    if h % BLOCK or w % BLOCK:
        raise CodecError(f"plane dims must be multiples of {BLOCK}, got {h}x{w}")
    blocks = plane.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
    return blocks.transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK)


def unblockify(blocks: np.ndarray, shape: tuple) -> np.ndarray:
    """Inverse of :func:`blockify` for a plane of the given shape."""
    h, w = shape
    if h % BLOCK or w % BLOCK:
        raise CodecError(f"plane dims must be multiples of {BLOCK}, got {h}x{w}")
    expected = (h // BLOCK) * (w // BLOCK)
    if blocks.shape != (expected, BLOCK, BLOCK):
        raise CodecError(
            f"expected {expected} blocks of {BLOCK}x{BLOCK}, got {blocks.shape}"
        )
    grid = blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
    return grid.transpose(0, 2, 1, 3).reshape(h, w)


def dct2(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of a (..., 8, 8) block stack."""
    return _DCT @ blocks @ _DCT.T


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of a (..., 8, 8) coefficient stack."""
    return _IDCT @ coeffs @ _IDCT.T


def pad_to_blocks(plane: np.ndarray) -> np.ndarray:
    """Edge-pad a plane so both dims are multiples of the block size."""
    h, w = plane.shape
    ph = (-h) % BLOCK
    pw = (-w) % BLOCK
    if not ph and not pw:
        return plane
    return np.pad(plane, ((0, ph), (0, pw)), mode="edge")
