"""Quantization tables (ITU-T T.81 Annex K) and quality scaling.

Quality scaling follows the libjpeg convention: quality 50 uses the
standard tables verbatim, 1 is the coarsest, 100 disables quantization
(all ones).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CodecError

# Annex K, Table K.1 (luminance) and K.2 (chrominance).
LUMA_BASE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int32,
)

CHROMA_BASE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int32,
)


def _scale(base: np.ndarray, quality: int) -> np.ndarray:
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    table = (base * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


@lru_cache(maxsize=256)
def _scaled_standard_table(kind: str, quality: int) -> np.ndarray:
    table = _scale(LUMA_BASE if kind == "luma" else CHROMA_BASE, quality)
    table.setflags(write=False)  # shared across callers
    return table


def scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base table for the requested quality (libjpeg formula).

    Calls with the standard Annex-K tables (the codec hot path) are
    memoized per quality and return shared read-only arrays.
    """
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in 1..100, got {quality}")
    if base is LUMA_BASE:
        return _scaled_standard_table("luma", quality)
    if base is CHROMA_BASE:
        return _scaled_standard_table("chroma", quality)
    return _scale(base, quality)


def quantize(coeffs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficients to integers."""
    return np.round(coeffs / table).astype(np.int32)


def dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruct (approximate) DCT coefficients."""
    return quantized.astype(np.float64) * table
