"""Deterministic chaos injection for the prep engine.

At TrainBox scale (256 accelerators plus racks of SSDs and prep
devices) failures are routine, so recovery code is load-bearing — and
recovery code that is only exercised by real outages is recovery code
that does not work.  This module turns every failure mode the resilient
:class:`~repro.dataprep.engine.PrepEngine` handles into a *reproducible
test case*: worker crashes, worker hangs, lost completion messages
(which strand their shared-memory slot), and corrupt payload bytes are
injected at well-defined points, with every decision a pure function of
``(seed, shard_index)``.  Re-running a chaos scenario replays the exact
same fault sequence; no flaky tests, no Heisenbugs.

Fault kinds
-----------

``crash``
    The worker process hard-exits (``os._exit``) while preparing the
    shard — the supervisor sees a dead worker with an in-flight shard.
``hang``
    The worker sleeps past any reasonable deadline — the supervisor's
    per-shard deadline must fire and the worker be replaced.
``lose_result``
    The shard is prepared and written to its ring slot, but the
    completion message is dropped — from the supervisor's side the slot
    is lost until the deadline reclaims it.
``corrupt``
    The shard's payload bytes are corrupted (truncated) on the *first*
    load only — a transient bad read; the engine's reload-retry path
    must heal it, so delivered bits still match the fault-free run.
``poison``
    The chosen sample's payload is corrupted on *every* load — bad
    bytes at rest; the engine must quarantine that single sample with a
    deterministic fill instead of failing the batch.

Crash/hang/lose_result fire on the shard's **first attempt only** by
default (``first_attempt_only=True``), so the retry path succeeds;
setting it ``False`` makes the fault persistent, which drives the
shard-quarantine path (prepare in-process after the retry budget).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError

#: Fault kinds a :class:`ChaosSpec` can inject, in documentation order.
FAULT_KINDS = ("crash", "hang", "lose_result", "corrupt", "poison")


def _chaos_rng(seed: int, shard_index: int) -> np.random.Generator:
    """The decision stream for one shard: a pure function of
    ``(seed, shard_index)``, independent of every other shard."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(shard_index,))
    )


@dataclass(frozen=True)
class ChaosSpec:
    """Which shards suffer which faults, deterministically.

    Shard index sets are explicit so tests read as scenarios; use
    :meth:`sample` to draw them from fault rates instead (still a pure
    function of the seed).  ``seed`` additionally keys the in-shard
    decisions (which sample a ``poison`` fault corrupts).
    """

    seed: int = 0
    crash: frozenset = frozenset()
    hang: frozenset = frozenset()
    lose_result: frozenset = frozenset()
    corrupt: frozenset = frozenset()
    poison: frozenset = frozenset()
    #: crash/hang/lose_result/corrupt fire on attempt 0 only (recoverable
    #: by retry) when True; on every attempt (driving quarantine) when
    #: False.  ``poison`` is persistent by definition.
    first_attempt_only: bool = True
    #: how long an injected hang sleeps; anything far past the engine's
    #: per-shard deadline (the worker is terminated long before waking).
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "lose_result", "corrupt", "poison"):
            object.__setattr__(self, name, frozenset(getattr(self, name)))
        if self.hang_seconds <= 0:
            raise DataprepError("hang_seconds must be positive")

    @staticmethod
    def sample(
        seed: int,
        num_shards: int,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        lose_result_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        poison_rate: float = 0.0,
        **kwargs: Any,
    ) -> "ChaosSpec":
        """Draw a spec from per-shard fault rates.

        Each shard draws one uniform variate from its own
        ``(seed, shard_index)`` stream and the cumulative rate bands
        decide its (single) fault, so a shard's fate never depends on
        the other shards or on the order of evaluation.
        """
        rates = (crash_rate, hang_rate, lose_result_rate, corrupt_rate,
                 poison_rate)
        if any(r < 0 for r in rates) or sum(rates) > 1.0:
            raise DataprepError(
                f"fault rates must be >= 0 and sum to <= 1: {rates}"
            )
        sets: Tuple[List[int], ...] = ([], [], [], [], [])
        for shard in range(num_shards):
            u = float(_chaos_rng(seed, shard).uniform())
            edge = 0.0
            for band, rate in zip(sets, rates):
                edge += rate
                if u < edge:
                    band.append(shard)
                    break
        crash, hang, lose, corrupt, poison = (frozenset(s) for s in sets)
        return ChaosSpec(
            seed=seed, crash=crash, hang=hang, lose_result=lose,
            corrupt=corrupt, poison=poison, **kwargs,
        )

    @property
    def faulted_shards(self) -> frozenset:
        return self.crash | self.hang | self.lose_result | self.corrupt | self.poison

    def _fires(self, shards: frozenset, index: int, attempt: int) -> bool:
        if index not in shards:
            return False
        return attempt == 0 or not self.first_attempt_only

    # -- worker-side injection points ---------------------------------

    def before_prepare(self, shard_index: int, attempt: int) -> None:
        """Called by the worker before preparing a shard: injects the
        process-level faults (hard crash, hang)."""
        if self._fires(self.crash, shard_index, attempt):
            os._exit(87)  # hard crash: no cleanup, no exception
        if self._fires(self.hang, shard_index, attempt):
            time.sleep(self.hang_seconds)

    def drops_result(self, shard_index: int, attempt: int) -> bool:
        """Whether the worker should silently drop this shard's
        completion message (stranding its ring slot)."""
        return self._fires(self.lose_result, shard_index, attempt)

    def poisoned_sample(self, shard_index: int, count: int) -> int:
        """Which sample of a poisoned shard carries the bad bytes —
        deterministic in ``(seed, shard_index)``."""
        return int(_chaos_rng(self.seed, shard_index).integers(count))


def corrupt_payload(blob: bytes) -> bytes:
    """A deterministically corrupted copy of one payload: truncated to
    half length, which every codec in the tree rejects with
    :class:`~repro.errors.CodecError` (bitstream underrun)."""
    if not isinstance(blob, (bytes, bytearray)):
        raise DataprepError(
            "chaos payload corruption supports bytes payloads only, "
            f"got {type(blob).__name__}"
        )
    return bytes(blob[: max(2, len(blob) // 2)])


class ChaosLoader:
    """A shard loader wrapper that injects payload corruption.

    Wraps the user's ``loader(start, count)``; when the chaos spec marks
    the enclosing shard ``corrupt`` (transient — first load in this
    process only) or ``poison`` (every load), one deterministic sample
    of the returned payload list is replaced with corrupted bytes.

    The wrapper is picklable as long as the wrapped loader is, so it
    crosses the worker-process boundary exactly like a plain loader.
    Load-attempt counting is per-process state, which is the semantics a
    transient bad read has: each process's *first* read of the shard
    glitches, its retry reads clean bytes.
    """

    def __init__(self, loader: Callable[[int, int], Any], spec: ChaosSpec,
                 batch_size: int) -> None:
        if batch_size <= 0:
            raise DataprepError("batch_size must be positive")
        self._loader = loader
        self._spec = spec
        self._batch_size = batch_size
        self._loads: dict = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_loads"] = {}  # attempt counts are per-process
        return state

    def __call__(self, start: int, count: int) -> Any:
        raw = self._loader(start, count)
        shard = start // self._batch_size
        spec = self._spec
        loads = self._loads.get(shard, 0)
        self._loads[shard] = loads + 1
        transient = spec._fires(spec.corrupt, shard, loads)
        persistent = shard in spec.poison
        if not (transient or persistent):
            return raw
        payloads = list(raw)
        victim = spec.poisoned_sample(shard, count)
        payloads[victim] = corrupt_payload(payloads[victim])
        return payloads


def wrap_loader(loader: Callable[[int, int], Any], spec: ChaosSpec,
                batch_size: int) -> Callable[[int, int], Any]:
    """The chaos-instrumented view of ``loader`` (identity when the spec
    corrupts nothing)."""
    if not spec.corrupt and not spec.poison:
        return loader
    return ChaosLoader(loader, spec, batch_size)
