"""Composable data-preparation pipelines.

A :class:`PrepPipeline` is an ordered list of operations, each of which
can both **execute** on a real payload (``run``) and **price itself**
(``cost``) for a :class:`SampleSpec` describing the payload's geometry.
The simulator uses the costs; the tests and the Figure 5 accuracy
experiment use execution — on the same objects, so the two can never
drift apart.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.cost import OpCost, PipelineCost


@dataclass(frozen=True)
class SampleSpec:
    """Geometry of a sample at some point in a pipeline.

    ``kind`` tracks the representation so that specs thread through ops:
    ``jpeg`` → ``image_u8`` → ``image_f32`` for the image pipeline,
    ``audio_pcm`` → ``spectrogram`` → ``mel`` for audio.
    ``shape`` is the logical array shape and ``nbytes`` the payload size
    (for ``jpeg`` the *compressed* size, which depends on content, so the
    dataset supplies it).
    """

    kind: str
    shape: Tuple[int, ...]
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise DataprepError(f"nbytes must be >= 0: {self.nbytes}")
        if any(dim <= 0 for dim in self.shape):
            raise DataprepError(f"shape dims must be positive: {self.shape}")

    def expect(self, kind: str, op_name: str) -> None:
        if self.kind != kind:
            raise DataprepError(
                f"{op_name} expects a {kind!r} input, got {self.kind!r}"
            )


class PrepOp(abc.ABC):
    """One data-preparation operation."""

    #: instance label, unique within a pipeline.
    name: str = "op"
    #: one of :data:`repro.dataprep.cost.OP_KINDS`.
    kind: str = "load"

    @abc.abstractmethod
    def apply(self, data: Any, rng: np.random.Generator) -> Any:
        """Transform a real payload."""

    @abc.abstractmethod
    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        """Price the op for a payload described by ``spec`` and return the
        spec of the op's output."""


class PrepPipeline:
    """An ordered sequence of :class:`PrepOp`."""

    def __init__(self, ops: Sequence[PrepOp], name: str = "pipeline") -> None:
        self.ops: List[PrepOp] = list(ops)
        self.name = name
        if not self.ops:
            raise DataprepError("a pipeline needs at least one op")
        labels = [op.name for op in self.ops]
        if len(labels) != len(set(labels)):
            raise DataprepError(f"duplicate op names in pipeline: {labels}")

    def run(self, data: Any, rng: Optional[np.random.Generator] = None) -> Any:
        """Execute the pipeline on one real sample."""
        if rng is None:
            rng = np.random.default_rng()
        for op in self.ops:
            data = op.apply(data, rng)
        return data

    def run_batch(
        self, batch: Iterable[Any], rng: Optional[np.random.Generator] = None
    ) -> List[Any]:
        """Execute the pipeline on an iterable of samples."""
        if rng is None:
            rng = np.random.default_rng()
        return [self.run(sample, rng) for sample in batch]

    def cost(self, spec: SampleSpec) -> PipelineCost:
        """Per-sample cost of the whole pipeline for input ``spec``."""
        costs: List[OpCost] = []
        for op in self.ops:
            op_cost, spec = op.cost(spec)
            costs.append(op_cost)
        return PipelineCost(tuple(costs))

    def output_spec(self, spec: SampleSpec) -> SampleSpec:
        """Spec of the pipeline's output for input ``spec``."""
        for op in self.ops:
            _, spec = op.cost(spec)
        return spec

    def describe(self) -> str:
        return f"{self.name}: " + " -> ".join(op.name for op in self.ops)

    def __len__(self) -> int:
        return len(self.ops)
