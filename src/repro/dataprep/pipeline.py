"""Composable data-preparation pipelines.

A :class:`PrepPipeline` is an ordered list of operations, each of which
can both **execute** on a real payload (``run``) and **price itself**
(``cost``) for a :class:`SampleSpec` describing the payload's geometry.
The simulator uses the costs; the tests and the Figure 5 accuracy
experiment use execution — on the same objects, so the two can never
drift apart.

Batch execution and the determinism contract
--------------------------------------------

Every op exposes two execution faces:

* ``apply(sample, rng)`` — the per-sample path, the executable spec;
* ``apply_batch(batch, rngs)`` — the vectorized path, operating on a
  whole ``N×…`` stack (or a list, for ragged payloads) with **one
  independent RNG stream per sample**.

The contract that makes the batched engine trustworthy: for every op,
``apply_batch(batch, rngs)[i]`` is **bit-identical** to
``apply(batch[i], rngs[i])``.  Randomness is therefore keyed to the
sample, never to the batch: an op draws from ``rngs[i]`` exactly the
values, in exactly the order, that the per-sample path would draw, so a
sample's prepared output does not depend on where it lands in a batch,
which worker prepared it, or what other samples rode along.  That is
what lets the multi-process engine in :mod:`repro.dataprep.engine`
promise parallel == serial bit-for-bit.

``PrepPipeline.run_batch`` spawns the per-sample streams from one parent
generator with :func:`spawn_rngs` (``SeedSequence`` spawning, so child
streams are independent and reproducible), then executes either the
vectorized path (default) or the kept per-sample reference loop — a
golden-pinned pair, same discipline as the codec fast paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep.cost import OpCost, PipelineCost


@dataclass(frozen=True)
class SampleSpec:
    """Geometry of a sample at some point in a pipeline.

    ``kind`` tracks the representation so that specs thread through ops:
    ``jpeg`` → ``image_u8`` → ``image_f32`` for the image pipeline,
    ``audio_pcm`` → ``spectrogram`` → ``mel`` for audio.
    ``shape`` is the logical array shape and ``nbytes`` the payload size
    (for ``jpeg`` the *compressed* size, which depends on content, so the
    dataset supplies it).
    """

    kind: str
    shape: Tuple[int, ...]
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise DataprepError(f"nbytes must be >= 0: {self.nbytes}")
        if any(dim <= 0 for dim in self.shape):
            raise DataprepError(f"shape dims must be positive: {self.shape}")

    def expect(self, kind: str, op_name: str) -> None:
        if self.kind != kind:
            raise DataprepError(
                f"{op_name} expects a {kind!r} input, got {self.kind!r}"
            )


def spawn_rngs(
    rng: np.random.Generator, n: int
) -> List[np.random.Generator]:
    """``n`` independent child generators spawned from ``rng``.

    Spawning is deterministic in the parent's ``SeedSequence`` alone:
    child ``i`` depends only on the parent seed and on ``i``, never on
    how many values were drawn from the parent or siblings, so per-sample
    streams survive any re-batching of the same sample order.
    """
    if n < 0:
        raise DataprepError(f"cannot spawn {n} streams")
    return list(rng.spawn(n)) if n else []


def sample_rng(seed: int, index: int) -> np.random.Generator:
    """The canonical per-sample stream for global sample ``index``.

    Identical to ``np.random.default_rng(seed).spawn(index + 1)[index]``
    but O(1): the ``i``-th spawned child of a ``SeedSequence`` is the
    sequence with ``spawn_key=(i,)``.  The prep engine keys streams this
    way so that sharding, worker count and batch boundaries can never
    change a sample's prepared bits.
    """
    if index < 0:
        raise DataprepError(f"sample index must be >= 0: {index}")
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def _iter_samples(batch: Any) -> Iterable[Any]:
    """Iterate a batch's samples (leading axis of a stack, else items)."""
    if isinstance(batch, np.ndarray):
        return (batch[i] for i in range(batch.shape[0]))
    return iter(batch)


def _batch_len(batch: Any) -> int:
    if isinstance(batch, np.ndarray):
        return int(batch.shape[0])
    return len(batch)


def stack_samples(outputs: Sequence[Any]) -> Any:
    """Stack per-sample outputs into one ``N×…`` array when they agree in
    shape and dtype; otherwise return them as a list (ragged batch)."""
    outputs = list(outputs)
    if outputs and all(isinstance(o, np.ndarray) for o in outputs):
        first = outputs[0]
        if all(
            o.shape == first.shape and o.dtype == first.dtype
            for o in outputs[1:]
        ):
            return np.stack(outputs)
    return outputs


class PrepOp(abc.ABC):
    """One data-preparation operation."""

    #: instance label, unique within a pipeline.
    name: str = "op"
    #: one of :data:`repro.dataprep.cost.OP_KINDS`.
    kind: str = "load"

    @abc.abstractmethod
    def apply(self, data: Any, rng: np.random.Generator) -> Any:
        """Transform a real payload."""

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        """Transform a whole batch, one RNG stream per sample.

        ``batch`` is either an ``N×…`` ndarray stack or a list of ragged
        payloads; the result follows the same convention (stacked when
        shapes agree).  Subclasses override this with a vectorized kernel
        but must keep the contract: element ``i`` of the result is
        bit-identical to ``apply(batch[i], rngs[i])``, and an ndarray
        ``batch`` may be mutated in place (the pipeline's vectorized
        runner always hands ops an owned stack).  This default is the
        per-sample reference loop.
        """
        if _batch_len(batch) != len(rngs):
            raise DataprepError(
                f"{self.name}: got {_batch_len(batch)} samples "
                f"but {len(rngs)} rng streams"
            )
        return stack_samples(
            [
                self.apply(sample, rng)
                for sample, rng in zip(_iter_samples(batch), rngs)
            ]
        )


class PrepPipeline:
    """An ordered sequence of :class:`PrepOp`."""

    def __init__(self, ops: Sequence[PrepOp], name: str = "pipeline") -> None:
        self.ops: List[PrepOp] = list(ops)
        self.name = name
        if not self.ops:
            raise DataprepError("a pipeline needs at least one op")
        labels = [op.name for op in self.ops]
        if len(labels) != len(set(labels)):
            raise DataprepError(f"duplicate op names in pipeline: {labels}")

    def run(self, data: Any, rng: Optional[np.random.Generator] = None) -> Any:
        """Execute the pipeline on one real sample."""
        if rng is None:
            rng = np.random.default_rng()
        for op in self.ops:
            data = op.apply(data, rng)
        return data

    def run_batch(
        self,
        batch: Iterable[Any],
        rng: Optional[np.random.Generator] = None,
        vectorized: bool = True,
    ) -> List[Any]:
        """Execute the pipeline on a batch of samples.

        One child stream is spawned per sample from ``rng`` (see
        :func:`spawn_rngs`), so sample ``i``'s output depends only on
        ``rng``'s seed state and ``i`` — never on the other samples or on
        the execution strategy.  ``vectorized`` selects the batched
        ``apply_batch`` path (default) or the kept per-sample reference
        loop; the two are bit-identical (golden-pinned).
        """
        batch = batch if isinstance(batch, np.ndarray) else list(batch)
        if rng is None:
            rng = np.random.default_rng()
        rngs = spawn_rngs(rng, _batch_len(batch))
        if not vectorized:
            return self.run_batch_reference(batch, rngs)
        out = self.run_batch_vectorized(batch, rngs)
        if isinstance(out, np.ndarray):
            return [out[i] for i in range(out.shape[0])]
        return list(out)

    def run_batch_reference(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> List[Any]:
        """The kept per-sample execution path: one ``run`` per sample on
        its own stream.  The executable spec ``run_batch_vectorized`` is
        pinned to."""
        if _batch_len(batch) != len(rngs):
            raise DataprepError(
                f"batch of {_batch_len(batch)} needs {len(rngs)} rng streams"
            )
        return [
            self.run(sample, rng)
            for sample, rng in zip(_iter_samples(batch), rngs)
        ]

    def run_batch_vectorized(
        self,
        batch: Any,
        rngs: Sequence[np.random.Generator],
        plan: bool = True,
    ) -> Any:
        """Execute the pipeline through the ops' ``apply_batch`` kernels.

        Returns the final stacked ``N×…`` array (or a list when the
        output is ragged).  Bit-identical to ``run_batch_reference`` on
        the same streams.

        When ``plan`` is true (the default) the batch runs through the
        compiled-plan path (:mod:`repro.dataprep.plan`): the pipeline is
        compiled once per (fingerprint, geometry) into fused stages over
        a pooled arena, and the arena output is copied out (the caller
        owns its result).  Batches a plan cannot specialize to — ragged
        geometry, unknown payloads — fall back to the per-op path below;
        ``plan=False`` pins that per-op path (the benchmark baseline).
        """
        if _batch_len(batch) != len(rngs):
            raise DataprepError(
                f"batch of {_batch_len(batch)} needs {len(rngs)} rng streams"
            )
        if _batch_len(batch) == 0:
            return []
        if plan:
            from repro.dataprep.plan import PlanInapplicable, try_plan

            compiled = try_plan(self, batch)
            if compiled is not None:
                try:
                    return compiled.execute(batch, rngs).copy()
                except PlanInapplicable:
                    pass
        data = batch
        if isinstance(data, np.ndarray):
            # Ops may mutate their input stack; never a caller's array.
            data = data.copy()
        elif all(isinstance(s, np.ndarray) for s in data):
            data = stack_samples(data)
        for op in self.ops:
            data = op.apply_batch(data, rngs)
        return data

    def cost(self, spec: SampleSpec) -> PipelineCost:
        """Per-sample cost of the whole pipeline for input ``spec``."""
        costs: List[OpCost] = []
        for op in self.ops:
            op_cost, spec = op.cost(spec)
            costs.append(op_cost)
        return PipelineCost(tuple(costs))

    def output_spec(self, spec: SampleSpec) -> SampleSpec:
        """Spec of the pipeline's output for input ``spec``."""
        for op in self.ops:
            _, spec = op.cost(spec)
        return spec

    def describe(self) -> str:
        return f"{self.name}: " + " -> ".join(op.name for op in self.ops)

    def __len__(self) -> int:
        return len(self.ops)
