"""Image data-preparation operations (the Table II engine set).

Pipeline order follows Figure 17: the *formatting engine* (JPEG decode,
crop) feeds the *augmentation engine* (mirror, Gaussian noise, cast).
Each op executes on real numpy payloads and prices itself with the
calibrated constants from :mod:`repro.dataprep.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep import cost as costmod
from repro.dataprep.cost import OpCost, cpu_mem_traffic
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.pipeline import PrepOp, SampleSpec, stack_samples


class DecodePng(PrepOp):
    """PNG → uint8 RGB, for datasets stored losslessly (§VII-A lists PNG
    among the decoder engines TrainBox can host)."""

    name = "decode_png"
    kind = "decode"

    def apply(self, data: Any, rng: np.random.Generator) -> np.ndarray:
        from repro.dataprep.png import codec as png_codec

        if not isinstance(data, (bytes, bytearray)):
            raise DataprepError("decode_png expects compressed bytes")
        return png_codec.decode(bytes(data))

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        from repro.dataprep.png import codec as png_codec

        for blob in batch:
            if not isinstance(blob, (bytes, bytearray)):
                raise DataprepError("decode_png expects compressed bytes")
        return stack_samples(png_codec.decode_batch(batch))

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("png", self.name)
        height, width = spec.shape[:2]
        pixels = height * width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.PNG_DECODE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (height, width, 3), out_bytes)


@dataclass
class DecodeJpeg(PrepOp):
    """JPEG → uint8 RGB (the dominant formatting cost, §III-C).

    ``fast=False`` selects the symbol-at-a-time reference entropy
    decoder — the executable spec, and the baseline the prep-throughput
    benchmark measures its speedup against."""

    fast: bool = True
    name: str = "decode_jpeg"
    kind: str = "decode"

    def apply(self, data: Any, rng: np.random.Generator) -> np.ndarray:
        if not isinstance(data, (bytes, bytearray)):
            raise DataprepError("decode_jpeg expects compressed bytes")
        return jpeg_codec.JpegCodec.decode(bytes(data), fast=self.fast)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        """Batched decode: the per-image entropy stage feeds one shared
        dequantize/IDCT/color pass over the whole stack (see
        :func:`repro.dataprep.jpeg.codec.decode_batch`)."""
        for blob in batch:
            if not isinstance(blob, (bytes, bytearray)):
                raise DataprepError("decode_jpeg expects compressed bytes")
        return stack_samples(
            jpeg_codec.decode_batch(
                [bytes(b) for b in batch], fast=self.fast
            )
        )

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("jpeg", self.name)
        height, width = spec.shape[:2]
        pixels = height * width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.DECODE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (height, width, 3), out_bytes)


@dataclass
class RandomCrop(PrepOp):
    """Random crop to the model's input size, the augmentation the paper
    uses to motivate on-line preparation (§III-D: a 256×256 image yields
    32×32 distinct 224×224 crops)."""

    out_height: int = 224
    out_width: int = 224
    name: str = "random_crop"
    kind: str = "crop"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 3:
            raise DataprepError("random_crop expects an HxWxC image")
        h, w = data.shape[:2]
        if h < self.out_height or w < self.out_width:
            raise DataprepError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        top = int(rng.integers(0, h - self.out_height + 1))
        left = int(rng.integers(0, w - self.out_width + 1))
        return data[top : top + self.out_height, left : left + self.out_width]

    def offsets(
        self, shape: Tuple[int, ...], rngs: Sequence[np.random.Generator]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample (top, left) crop origins, one draw pair per stream
        — exactly the draws ``apply`` makes, so batched == scalar."""
        h, w = shape[:2]
        tops = np.empty(len(rngs), dtype=np.intp)
        lefts = np.empty(len(rngs), dtype=np.intp)
        for i, rng in enumerate(rngs):
            tops[i] = int(rng.integers(0, h - self.out_height + 1))
            lefts[i] = int(rng.integers(0, w - self.out_width + 1))
        return tops, lefts

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 4:
            raise DataprepError("random_crop expects an NxHxWxC stack")
        n, h, w = batch.shape[:3]
        if h < self.out_height or w < self.out_width:
            raise DataprepError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        tops, lefts = self.offsets(batch.shape[1:], rngs)
        # One gather over per-sample window indices: advanced indexing
        # assembles all N crops in a single contiguous copy.
        rows = tops[:, None] + np.arange(self.out_height, dtype=np.intp)
        cols = lefts[:, None] + np.arange(self.out_width, dtype=np.intp)
        return batch[
            np.arange(n, dtype=np.intp)[:, None, None],
            rows[:, :, None],
            cols[:, None, :],
        ]

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        if spec.shape[0] < self.out_height or spec.shape[1] < self.out_width:
            raise DataprepError(
                f"cannot crop {spec.shape} to {self.out_height}x{self.out_width}"
            )
        pixels = self.out_height * self.out_width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CROP_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (self.out_height, self.out_width, 3), out_bytes)


@dataclass
class Mirror(PrepOp):
    """Random horizontal flip."""

    probability: float = 0.5
    name: str = "mirror"
    kind: str = "mirror"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise DataprepError(f"probability must be in [0,1]: {self.probability}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 3:
            raise DataprepError("mirror expects an HxWxC image")
        if rng.random() < self.probability:
            return data[:, ::-1]
        return data

    def coin_flips(self, rngs: Sequence[np.random.Generator]) -> np.ndarray:
        """Per-sample flip decisions, one uniform draw per stream — the
        same draw ``apply`` makes."""
        return np.array(
            [rng.random() < self.probability for rng in rngs], dtype=bool
        )

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 4:
            raise DataprepError("mirror expects an NxHxWxC stack")
        flips = self.coin_flips(rngs)
        if flips.any():
            # One boolean-mask gather + reversed writeback flips every
            # selected image along W without touching the others.
            batch[flips] = batch[flips][:, :, ::-1]
        return batch

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.MIRROR_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class GaussianNoise(PrepOp):
    """Additive Gaussian noise on uint8 pixels, clipped to range."""

    sigma: float = 4.0
    name: str = "gaussian_noise"
    kind: str = "noise"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DataprepError(f"sigma must be >= 0: {self.sigma}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        noise = rng.standard_normal(data.shape, dtype=np.float32)
        return self._finish(noise, data)

    def apply_reference_f64(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The original float64 implementation, kept as the numerical
        reference the float32 path's goldens were re-pinned against."""
        if data.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        noisy = data.astype(np.float32) + rng.normal(0.0, self.sigma, data.shape)
        return np.clip(np.round(noisy), 0, 255).astype(np.uint8)

    def _finish(self, noise: np.ndarray, data: np.ndarray) -> np.ndarray:
        # In-place scale/add/round/clip on the float32 noise buffer: no
        # float64 temporary is ever materialized.  The op sequence is
        # shared between the scalar and batched paths so their math is
        # bit-identical by construction.
        noise *= np.float32(self.sigma)
        noise += data
        np.round(noise, out=noise)
        np.clip(noise, 0.0, 255.0, out=noise)
        return noise.astype(np.uint8)

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        noise = np.empty(batch.shape, dtype=np.float32)
        for row, rng in zip(noise, rngs):
            # Same per-sample draw as ``apply``, written straight into
            # the batch-wide buffer; the fused arithmetic below then runs
            # once over the whole stack.
            rng.standard_normal(row.shape, dtype=np.float32, out=row)
        return self._finish(noise, batch)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.NOISE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class CastToFloat(PrepOp):
    """uint8 → float32 with 1/255 normalization (the char→float widening
    the paper blames for the amplified data-load traffic, §III-C)."""

    scale: float = 1.0 / 255.0
    name: str = "cast"
    kind: str = "cast"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.dtype != np.uint8:
            raise DataprepError("cast expects uint8 pixels")
        return data.astype(np.float32) * self.scale

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.dtype != np.uint8:
            raise DataprepError("cast expects uint8 pixels")
        # float32 * python-float stays float32 (NEP 50 weak scalars), so
        # the single batch cast matches the per-sample path bit-for-bit.
        return batch.astype(np.float32) * self.scale

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        out_bytes = spec.nbytes * 4.0
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CAST_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_f32", spec.shape, out_bytes)


def image_pipeline(
    out_height: int = 224,
    out_width: int = 224,
    noise_sigma: float = 4.0,
    mirror_probability: float = 0.5,
    source_format: str = "jpeg",
    fast_decode: bool = True,
) -> "PrepPipeline":
    """The full Table II image pipeline: decode → crop → mirror → noise →
    cast.  ``source_format`` selects the decoder ("jpeg" or "png");
    ``fast_decode=False`` pins the JPEG decoder to its reference entropy
    path (the prep benchmark's baseline)."""
    from repro.dataprep.pipeline import PrepPipeline

    if source_format == "jpeg":
        decoder = DecodeJpeg(fast=fast_decode)
    elif source_format == "png":
        decoder = DecodePng()
    else:
        raise DataprepError(f"unknown source format {source_format!r}")
    return PrepPipeline(
        [
            decoder,
            RandomCrop(out_height, out_width),
            Mirror(mirror_probability),
            GaussianNoise(noise_sigma),
            CastToFloat(),
        ],
        name=f"image-prep[{source_format}]" if source_format != "jpeg" else "image-prep",
    )
