"""Image data-preparation operations (the Table II engine set).

Pipeline order follows Figure 17: the *formatting engine* (JPEG decode,
crop) feeds the *augmentation engine* (mirror, Gaussian noise, cast).
Each op executes on real numpy payloads and prices itself with the
calibrated constants from :mod:`repro.dataprep.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.errors import DataprepError
from repro.dataprep import cost as costmod
from repro.dataprep.cost import OpCost, cpu_mem_traffic
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.pipeline import PrepOp, SampleSpec


class DecodePng(PrepOp):
    """PNG → uint8 RGB, for datasets stored losslessly (§VII-A lists PNG
    among the decoder engines TrainBox can host)."""

    name = "decode_png"
    kind = "decode"

    def apply(self, data: Any, rng: np.random.Generator) -> np.ndarray:
        from repro.dataprep.png import codec as png_codec

        if not isinstance(data, (bytes, bytearray)):
            raise DataprepError("decode_png expects compressed bytes")
        return png_codec.decode(bytes(data))

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("png", self.name)
        height, width = spec.shape[:2]
        pixels = height * width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.PNG_DECODE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (height, width, 3), out_bytes)


class DecodeJpeg(PrepOp):
    """JPEG → uint8 RGB (the dominant formatting cost, §III-C)."""

    name = "decode_jpeg"
    kind = "decode"

    def apply(self, data: Any, rng: np.random.Generator) -> np.ndarray:
        if not isinstance(data, (bytes, bytearray)):
            raise DataprepError("decode_jpeg expects compressed bytes")
        return jpeg_codec.decode(bytes(data))

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("jpeg", self.name)
        height, width = spec.shape[:2]
        pixels = height * width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.DECODE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (height, width, 3), out_bytes)


@dataclass
class RandomCrop(PrepOp):
    """Random crop to the model's input size, the augmentation the paper
    uses to motivate on-line preparation (§III-D: a 256×256 image yields
    32×32 distinct 224×224 crops)."""

    out_height: int = 224
    out_width: int = 224
    name: str = "random_crop"
    kind: str = "crop"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 3:
            raise DataprepError("random_crop expects an HxWxC image")
        h, w = data.shape[:2]
        if h < self.out_height or w < self.out_width:
            raise DataprepError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        top = int(rng.integers(0, h - self.out_height + 1))
        left = int(rng.integers(0, w - self.out_width + 1))
        return data[top : top + self.out_height, left : left + self.out_width]

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        if spec.shape[0] < self.out_height or spec.shape[1] < self.out_width:
            raise DataprepError(
                f"cannot crop {spec.shape} to {self.out_height}x{self.out_width}"
            )
        pixels = self.out_height * self.out_width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CROP_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_u8", (self.out_height, self.out_width, 3), out_bytes)


@dataclass
class Mirror(PrepOp):
    """Random horizontal flip."""

    probability: float = 0.5
    name: str = "mirror"
    kind: str = "mirror"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise DataprepError(f"probability must be in [0,1]: {self.probability}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 3:
            raise DataprepError("mirror expects an HxWxC image")
        if rng.random() < self.probability:
            return data[:, ::-1]
        return data

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.MIRROR_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class GaussianNoise(PrepOp):
    """Additive Gaussian noise on uint8 pixels, clipped to range."""

    sigma: float = 4.0
    name: str = "gaussian_noise"
    kind: str = "noise"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DataprepError(f"sigma must be >= 0: {self.sigma}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        noisy = data.astype(np.float32) + rng.normal(0.0, self.sigma, data.shape)
        return np.clip(np.round(noisy), 0, 255).astype(np.uint8)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.NOISE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=spec.nbytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, spec.nbytes),
        )
        return op, spec


@dataclass
class CastToFloat(PrepOp):
    """uint8 → float32 with 1/255 normalization (the char→float widening
    the paper blames for the amplified data-load traffic, §III-C)."""

    scale: float = 1.0 / 255.0
    name: str = "cast"
    kind: str = "cast"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.dtype != np.uint8:
            raise DataprepError("cast expects uint8 pixels")
        return data.astype(np.float32) * self.scale

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("image_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1]
        out_bytes = spec.nbytes * 4.0
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CAST_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("image_f32", spec.shape, out_bytes)


def image_pipeline(
    out_height: int = 224,
    out_width: int = 224,
    noise_sigma: float = 4.0,
    mirror_probability: float = 0.5,
    source_format: str = "jpeg",
) -> "PrepPipeline":
    """The full Table II image pipeline: decode → crop → mirror → noise →
    cast.  ``source_format`` selects the decoder ("jpeg" or "png")."""
    from repro.dataprep.pipeline import PrepPipeline

    if source_format == "jpeg":
        decoder = DecodeJpeg()
    elif source_format == "png":
        decoder = DecodePng()
    else:
        raise DataprepError(f"unknown source format {source_format!r}")
    return PrepPipeline(
        [
            decoder,
            RandomCrop(out_height, out_width),
            Mirror(mirror_probability),
            GaussianNoise(noise_sigma),
            CastToFloat(),
        ],
        name=f"image-prep[{source_format}]" if source_format != "jpeg" else "image-prep",
    )
