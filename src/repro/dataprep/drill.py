"""The chaos drill: every prep-engine failure mode, one command.

``repro chaos`` runs this drill.  Each scenario injects one fault kind
from :mod:`repro.dataprep.chaos` into a small synthetic JPEG pipeline,
runs the resilient :class:`~repro.dataprep.engine.PrepEngine`, and
checks the delivered batches bit-for-bit against the fault-free serial
run (for ``poison`` — a persistent corruption the engine must
quarantine — the reference is the *serial run under the same chaos*,
since the fill is deterministic by contract).  The drill is the
executable form of the resilience claims in ``docs/robustness.md``; CI
runs it under a hard wall-clock timeout so a recovery regression shows
up as a hang budget violation, not a green build.

Everything here is module-level and picklable so the drill works under
any multiprocessing start method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dataprep.chaos import ChaosSpec
from repro.dataprep.engine import PrepEngine, ResilienceConfig, ResilienceReport
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.ops_image import image_pipeline

_SIZE = 24
_CROP = 16
#: engine ring-slot size for the drill pipeline's f32 output pixels
DRILL_SAMPLE_NBYTES = _CROP * _CROP * 3 * 4


def drill_blob(index: int) -> bytes:
    """One deterministic synthetic JPEG payload."""
    rng = np.random.default_rng(4000 + index)
    img = rng.integers(0, 256, (_SIZE, _SIZE, 3), dtype=np.uint8)
    return jpeg_codec.encode(img, quality=80)


def drill_loader(start: int, count: int) -> List[bytes]:
    return [drill_blob(start + i) for i in range(count)]


def drill_pipeline():
    return image_pipeline(out_height=_CROP, out_width=_CROP)


@dataclass(frozen=True)
class DrillResult:
    """One scenario's outcome."""

    name: str
    identical: bool
    seconds: float
    report: ResilienceReport
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.identical and self.error is None


def _scenarios(seed: int) -> List[Tuple[str, ChaosSpec]]:
    # One faulted shard each; shard 1 so the fault lands mid-stream.
    return [
        ("crash", ChaosSpec(seed=seed, crash={1})),
        ("hang", ChaosSpec(seed=seed, hang={1}, hang_seconds=3600.0)),
        ("lost-result", ChaosSpec(seed=seed, lose_result={1})),
        ("corrupt-transient", ChaosSpec(seed=seed, corrupt={1})),
        ("poison", ChaosSpec(seed=seed, poison={1})),
        # Persistent crash: retries keep dying, the shard must be
        # quarantined and prepared in-process.
        ("crash-persistent",
         ChaosSpec(seed=seed, crash={1}, first_attempt_only=False)),
    ]


def _run(
    chaos: Optional[ChaosSpec],
    num_samples: int,
    batch_size: int,
    num_workers: int,
    seed: int,
    resilience: Optional[ResilienceConfig],
) -> Tuple[List[np.ndarray], ResilienceReport]:
    with PrepEngine(
        drill_pipeline(), drill_loader, num_samples, batch_size,
        seed=seed, num_workers=num_workers,
        sample_nbytes=DRILL_SAMPLE_NBYTES,
        resilience=resilience, chaos=chaos,
    ) as engine:
        batches = [b.data.copy() for b in engine.batches()]
        return batches, engine.report


def run_drill(
    num_samples: int = 20,
    batch_size: int = 4,
    num_workers: int = 2,
    seed: int = 7,
    shard_timeout_s: float = 2.0,
) -> List[DrillResult]:
    """Run every chaos scenario; each result records bit-identity to the
    appropriate fault-free reference plus the engine's recovery
    counters."""
    resilience = ResilienceConfig(
        shard_timeout_s=shard_timeout_s,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        heartbeat_timeout_s=max(4 * shard_timeout_s, 2.0),
    )
    clean, _ = _run(None, num_samples, batch_size, 0, seed, None)
    results: List[DrillResult] = []
    for name, spec in _scenarios(seed):
        if spec.poison:
            # Quarantine fill is deterministic: the parallel run must
            # match the serial run under the same chaos, not the clean
            # run (the poisoned sample is zero-filled in both).
            reference, _ = _run(
                spec, num_samples, batch_size, 0, seed, resilience
            )
        else:
            reference = clean
        t0 = time.monotonic()
        error = None
        try:
            batches, report = _run(
                spec, num_samples, batch_size, num_workers, seed, resilience
            )
            identical = len(batches) == len(reference) and all(
                np.array_equal(a, b) for a, b in zip(batches, reference)
            )
        except Exception as exc:  # the drill reports, never raises
            identical = False
            report = ResilienceReport()
            error = f"{type(exc).__name__}: {exc}"
        results.append(
            DrillResult(
                name=name,
                identical=identical,
                seconds=time.monotonic() - t0,
                report=report,
                error=error,
            )
        )
    return results
