"""Video data-preparation operations — the paper's extensibility story.

§V-C: "When a user wants to add a new data preparation functionality
(e.g., new input form such as video), they need to implement it ... then
we can program FPGAs using techniques such as partial re-configuration;
most of the interfacing logics remain unchanged, and only the
computation acceleration part of the accelerator is changed."

This module is that user: a video front-end built from the existing
substrate.  Clips are stored as motion-JPEG-style sequences (each frame
our baseline JPEG — intra-only video codecs really work like this), and
the pipeline decodes, temporally subsamples, crops consistently across
frames, and casts.  :func:`video_engine_resources` provides the extra
FPGA engine so :meth:`FpgaResourceModel.with_engine` can model the
partial reconfiguration.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.errors import CodecError, DataprepError
from repro.dataprep import cost as costmod
from repro.dataprep.cost import OpCost, cpu_mem_traffic
from repro.dataprep.jpeg import codec as jpeg_codec
from repro.dataprep.pipeline import PrepOp, PrepPipeline, SampleSpec, stack_samples
from repro.devices.fpga import EngineResources

_CLIP_MAGIC = b"RMJP"


def encode_clip(frames: List[np.ndarray], quality: int = 75) -> bytes:
    """Pack frames into a motion-JPEG-style clip container."""
    if not frames:
        raise CodecError("a clip needs at least one frame")
    shapes = {f.shape for f in frames}
    if len(shapes) != 1:
        raise CodecError(f"frames differ in shape: {shapes}")
    return pack_clip([jpeg_codec.encode(f, quality=quality) for f in frames])


def pack_clip(payloads: List[bytes]) -> bytes:
    """Assemble already-encoded per-frame JPEG payloads into a clip
    container (the byte layout :func:`encode_clip` produces)."""
    if not payloads:
        raise CodecError("a clip needs at least one frame")
    out = bytearray(_CLIP_MAGIC)
    out.extend(struct.pack("<I", len(payloads)))
    for payload in payloads:
        out.extend(struct.pack("<I", len(payload)))
        out.extend(payload)
    return bytes(out)


def decode_clip(data: bytes) -> List[np.ndarray]:
    """Unpack and decode every frame of a clip; malformed containers
    raise CodecError."""
    if data[:4] != _CLIP_MAGIC:
        raise CodecError("not an RMJP clip")
    try:
        return _decode_clip_checked(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed RMJP clip: {exc}") from exc


def _decode_clip_checked(data: bytes) -> List[np.ndarray]:
    return [jpeg_codec.decode(payload) for payload in _clip_payloads(data)]


def _clip_payloads(data: bytes) -> List[bytes]:
    """Split a clip container into its per-frame JPEG payloads."""
    if data[:4] != _CLIP_MAGIC:
        raise CodecError("not an RMJP clip")
    (count,) = struct.unpack_from("<I", data, 4)
    offset = 8
    payloads = []
    for _ in range(count):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payloads.append(data[offset : offset + length])
        offset += length
    return payloads


class DecodeVideo(PrepOp):
    """Clip bytes → (frames, H, W, 3) uint8 stack."""

    name = "decode_video"
    kind = "decode"

    def apply(self, data: Any, rng: np.random.Generator) -> np.ndarray:
        if not isinstance(data, (bytes, bytearray)):
            raise DataprepError("decode_video expects clip bytes")
        return np.stack(decode_clip(bytes(data)))

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        """Flatten every clip's frames into one ``decode_batch`` call so
        the whole batch shares a single batched JPEG transform stage,
        then regroup frames per clip."""
        for blob in batch:
            if not isinstance(blob, (bytes, bytearray)):
                raise DataprepError("decode_video expects clip bytes")
        try:
            payload_lists = [_clip_payloads(bytes(b)) for b in batch]
        except (struct.error, IndexError, ValueError) as exc:
            raise CodecError(f"malformed RMJP clip: {exc}") from exc
        flat = jpeg_codec.decode_batch(
            [p for payloads in payload_lists for p in payloads]
        )
        clips = []
        offset = 0
        for payloads in payload_lists:
            clips.append(np.stack(flat[offset : offset + len(payloads)]))
            offset += len(payloads)
        return stack_samples(clips)

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("video_mjpeg", self.name)
        frames, height, width = spec.shape[:3]
        pixels = frames * height * width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.DECODE_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("video_u8", (frames, height, width, 3), out_bytes)


@dataclass
class TemporalSubsample(PrepOp):
    """Keep every ``stride``-th frame (standard clip sampling)."""

    stride: int = 2
    name: str = "temporal_subsample"
    kind: str = "crop"

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise DataprepError(f"stride must be >= 1: {self.stride}")

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 4:
            raise DataprepError("temporal_subsample expects (T,H,W,C)")
        return data[:: self.stride]

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 5:
            raise DataprepError("temporal_subsample expects (N,T,H,W,C)")
        return batch[:, :: self.stride]

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("video_u8", self.name)
        frames, height, width = spec.shape[:3]
        kept = (frames + self.stride - 1) // self.stride
        out_bytes = float(kept * height * width * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CROP_CYCLES_PER_PIXEL * kept * height * width,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("video_u8", (kept, height, width, 3), out_bytes)


@dataclass
class ClipCrop(PrepOp):
    """One random spatial crop applied consistently to every frame (the
    augmentation must not jitter across a clip)."""

    out_height: int = 224
    out_width: int = 224
    name: str = "clip_crop"
    kind: str = "crop"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.ndim != 4:
            raise DataprepError("clip_crop expects (T,H,W,C)")
        _, h, w, _ = data.shape
        if h < self.out_height or w < self.out_width:
            raise DataprepError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        top = int(rng.integers(0, h - self.out_height + 1))
        left = int(rng.integers(0, w - self.out_width + 1))
        return data[:, top : top + self.out_height, left : left + self.out_width]

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.ndim != 5:
            raise DataprepError("clip_crop expects (N,T,H,W,C)")
        n, t, h, w, c = batch.shape
        if h < self.out_height or w < self.out_width:
            raise DataprepError(
                f"cannot crop {h}x{w} to {self.out_height}x{self.out_width}"
            )
        out = np.empty(
            (n, t, self.out_height, self.out_width, c), dtype=batch.dtype
        )
        for i, rng in enumerate(rngs):
            # One (top, left) per clip — the same draws ``apply`` makes —
            # and one contiguous window copy per clip.
            top = int(rng.integers(0, h - self.out_height + 1))
            left = int(rng.integers(0, w - self.out_width + 1))
            out[i] = batch[
                i, :, top : top + self.out_height, left : left + self.out_width
            ]
        return out

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("video_u8", self.name)
        frames = spec.shape[0]
        if spec.shape[1] < self.out_height or spec.shape[2] < self.out_width:
            raise DataprepError(
                f"cannot crop {spec.shape} to {self.out_height}x{self.out_width}"
            )
        pixels = frames * self.out_height * self.out_width
        out_bytes = float(pixels * 3)
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CROP_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec(
            "video_u8", (frames, self.out_height, self.out_width, 3), out_bytes
        )


@dataclass
class ClipCast(PrepOp):
    """uint8 clip → float32 with 1/255 normalization."""

    scale: float = 1.0 / 255.0
    name: str = "clip_cast"
    kind: str = "cast"

    def apply(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if data.dtype != np.uint8:
            raise DataprepError("clip_cast expects uint8 frames")
        return data.astype(np.float32) * self.scale

    def apply_batch(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> Any:
        if not isinstance(batch, np.ndarray):
            return super().apply_batch(batch, rngs)
        if batch.dtype != np.uint8:
            raise DataprepError("clip_cast expects uint8 frames")
        return batch.astype(np.float32) * self.scale

    def cost(self, spec: SampleSpec) -> Tuple[OpCost, SampleSpec]:
        spec.expect("video_u8", self.name)
        pixels = spec.shape[0] * spec.shape[1] * spec.shape[2]
        out_bytes = spec.nbytes * 4.0
        op = OpCost(
            name=self.name,
            kind=self.kind,
            cpu_cycles=costmod.CAST_CYCLES_PER_PIXEL * pixels,
            bytes_in=spec.nbytes,
            bytes_out=out_bytes,
            mem_traffic=cpu_mem_traffic(spec.nbytes, out_bytes),
        )
        return op, SampleSpec("video_f32", spec.shape, out_bytes)


def video_pipeline(
    out_height: int = 224, out_width: int = 224, stride: int = 2
) -> PrepPipeline:
    """Decode → temporal subsample → clip crop → cast."""
    return PrepPipeline(
        [
            DecodeVideo(),
            TemporalSubsample(stride),
            ClipCrop(out_height, out_width),
            ClipCast(),
        ],
        name="video-prep",
    )


def video_engine_resources() -> EngineResources:
    """FPGA resources of the video computation engine to swap in via
    partial reconfiguration.

    Sized as the JPEG decoder (the frame pipeline reuses it) plus modest
    stream-reassembly logic; combined with the fixed interfacing logic
    (Ethernet + P2P handler, which §V-C says stay resident) it must still
    fit the XCVU9P — a test checks that.
    """
    return EngineResources(
        name="video_decoder", luts=760_000, ffs=710_000, brams=256, dsps=1_140
    )
