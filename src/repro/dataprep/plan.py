"""Compiled prep plans: whole-pipeline fusion over pooled arenas.

PR 1/4 made each op's ``apply_batch`` fast *in isolation*; every stage
still materialized a fresh full-batch intermediate.  This module
compiles a :class:`~repro.dataprep.pipeline.PrepPipeline` plus a batch
geometry into an executable :class:`PrepPlan` that converts that per-op
speed into pipeline-level speed (the FFCV insight):

* **fusion** — adjacent element-wise ops collapse into single passes
  (``random_crop``+``mirror`` become one strided per-sample copy;
  ``gaussian_noise``+``cast`` share one float32 buffer and never
  round-trip through uint8);
* **invariant hoisting** — per-batch constants (Huffman/quant LUTs via
  their caches, mel banks, Hann windows, crop index layouts) are bound
  at compile time, outside the batch loop;
* **pooled arenas** — every intermediate is a pre-sized slot allocated
  at compile time, so steady-state ``execute()`` calls allocate nothing
  beyond codec-internal temporaries that are freed within the call
  (:func:`repro.perf.assert_zero_alloc` pins the net growth to ~zero).

Plans are compiled once per (pipeline fingerprint, geometry) and
memoized through :mod:`repro.cache`, so each process — including every
:class:`~repro.dataprep.engine.PrepEngine` worker — pays the compile
exactly once; the compile is traced as a ``prep.plan_compile`` span and
metric via :mod:`repro.obs`.

Determinism contract: ``PrepPlan.execute(batch, rngs)`` is bit-identical
to ``PrepPipeline.run_batch_reference(batch, rngs)`` on the same
per-sample streams.  Each fused stage draws from ``rngs[i]`` exactly the
values, in exactly the order, sample ``i``'s per-sample path would draw
(streams are independent, so reordering draws *across* samples is safe;
reordering *within* a sample's stream is not, and no stage does).

``execute`` returns a view of the plan's output slot — valid until the
next ``execute`` on the same plan.  Callers that need an owned array
(e.g. ``run_batch_vectorized``) copy it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro import cache, obs
from repro.errors import DataprepError
from repro.dataprep.pipeline import PrepPipeline, SampleSpec

__all__ = [
    "PlanGeometry",
    "PlanInapplicable",
    "PrepPlan",
    "compile_plan",
    "geometry_for_batch",
    "plan_fingerprint",
    "try_plan",
]


class PlanInapplicable(DataprepError):
    """This pipeline/batch combination cannot take the planned path
    (ragged geometry, unknown payloads, …); callers fall back to the
    per-op vectorized path."""


@dataclass(frozen=True)
class PlanGeometry:
    """The batch geometry a plan is specialized to.

    ``input_kind`` is the payload representation entering the pipeline
    (``jpeg``/``png`` blobs or an array kind); ``sample_shape`` is the
    *decoded* per-sample shape for blob inputs, the raw per-sample shape
    otherwise.  ``dtype`` is the input array dtype (``"bytes"`` for
    blobs).
    """

    batch_size: int
    input_kind: str
    sample_shape: Tuple[int, ...]
    dtype: str


def geometry_for_batch(pipeline: PrepPipeline, batch: Any) -> PlanGeometry:
    """Infer the :class:`PlanGeometry` of ``batch`` entering ``pipeline``.

    Raises :class:`PlanInapplicable` for batches a plan cannot be
    specialized to (empty, ragged shapes, unrecognized payloads).
    """
    from repro.dataprep import ops_image

    n = len(batch)
    if n == 0:
        raise PlanInapplicable("cannot plan an empty batch")
    first_op = pipeline.ops[0]
    if isinstance(first_op, ops_image.DecodeJpeg):
        shapes = {_jpeg_decoded_shape(b) for b in batch}
        if len(shapes) != 1:
            raise PlanInapplicable(f"mixed JPEG geometries: {sorted(shapes)}")
        return PlanGeometry(n, "jpeg", shapes.pop(), "bytes")
    if isinstance(first_op, ops_image.DecodePng):
        shapes = {_png_decoded_shape(b) for b in batch}
        if len(shapes) != 1:
            raise PlanInapplicable(f"mixed PNG geometries: {sorted(shapes)}")
        return PlanGeometry(n, "png", shapes.pop(), "bytes")
    if isinstance(batch, np.ndarray):
        return PlanGeometry(
            n, "array", tuple(batch.shape[1:]), str(batch.dtype)
        )
    if all(isinstance(s, np.ndarray) for s in batch):
        shapes = {(s.shape, str(s.dtype)) for s in batch}
        if len(shapes) != 1:
            raise PlanInapplicable("ragged array batch")
        shape, dtype = shapes.pop()
        return PlanGeometry(n, "array", tuple(shape), dtype)
    raise PlanInapplicable(f"unplannable payload type {type(batch[0]).__name__}")


def _jpeg_decoded_shape(blob: Any) -> Tuple[int, int, int]:
    import struct

    from repro.dataprep.jpeg import codec as jpeg_codec

    if not isinstance(blob, (bytes, bytearray)):
        raise PlanInapplicable("decode_jpeg expects compressed bytes")
    blob = bytes(blob)
    if blob[:4] != jpeg_codec._MAGIC:
        raise PlanInapplicable("not an RJPG stream")
    try:
        _, _, _, h, w = struct.unpack_from("<BBBHH", blob, 4)
    except struct.error as exc:
        raise PlanInapplicable(f"malformed RJPG header: {exc}") from exc
    return (h, w, 3)


def _png_decoded_shape(blob: Any) -> Tuple[int, int, int]:
    import struct

    from repro.dataprep.png import codec as png_codec

    if not isinstance(blob, (bytes, bytearray)):
        raise PlanInapplicable("decode_png expects compressed bytes")
    blob = bytes(blob)
    if blob[:4] != png_codec._MAGIC:
        raise PlanInapplicable("not an RPNG stream")
    try:
        _, h, w, c = struct.unpack_from("<BHHB", blob, 4)
    except struct.error as exc:
        raise PlanInapplicable(f"malformed RPNG header: {exc}") from exc
    return (h, w, c)


# -- stages ------------------------------------------------------------------


class PlanStage:
    """One compiled pipeline segment bound to arena slots.

    ``fuses`` names the pipeline ops this stage absorbed, ``invariants``
    the per-batch constants hoisted at compile time, and
    ``mutates_input`` whether ``run`` writes into the array it receives
    (the compiler copy-protects a caller batch from such a first stage).
    """

    fuses: Tuple[str, ...] = ()
    invariants: Tuple[str, ...] = ()
    mutates_input = False

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        raise NotImplementedError

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        """(name, array) pairs of this stage's arena slots."""
        return []

    def describe(self) -> str:
        parts = ["+".join(self.fuses)]
        slots = self.slots()
        if slots:
            parts.append(
                "slots["
                + ", ".join(
                    f"{name}:{a.dtype}{list(a.shape)}" for name, a in slots
                )
                + "]"
            )
        if self.invariants:
            parts.append("hoisted[" + ", ".join(self.invariants) + "]")
        return "  ".join(parts)


class CopyInStage(PlanStage):
    """Copies the caller's batch into an arena slot so that a mutating
    first stage never touches a caller-owned array (the guarantee
    ``run_batch_vectorized`` makes by copying)."""

    fuses = ("<copy-in>",)

    def __init__(self, geometry: PlanGeometry) -> None:
        self._slot = np.empty(
            (geometry.batch_size,) + geometry.sample_shape,
            dtype=np.dtype(geometry.dtype),
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        np.copyto(self._slot, data)
        return self._slot

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("copy", self._slot)]


class DecodeJpegStage(PlanStage):
    """JPEG blobs → uint8 image stack, decoded straight into the arena
    (no per-image arrays, no ``np.stack``).  The lock-step crossover and
    transform chunk are compile-time constants recorded in the plan."""

    invariants = ("huffman_luts", "quant_tables", "lockstep_min")

    def __init__(self, op: Any, geometry: PlanGeometry) -> None:
        from repro.dataprep.jpeg import codec as jpeg_codec

        self.fuses = (op.name,)
        self._fast = op.fast
        h, w, _ = geometry.sample_shape
        sub_h, sub_w = jpeg_codec._plane_geometry(True, h, w).luma_shape
        self.lockstep_min = jpeg_codec.lockstep_min_images(
            (sub_h // 8) * (sub_w // 8)
        )
        self.transform_chunk = jpeg_codec.PLANNED_TRANSFORM_CHUNK
        self._slot = np.empty(
            (geometry.batch_size,) + geometry.sample_shape, dtype=np.uint8
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        from repro.dataprep.jpeg import codec as jpeg_codec

        for blob in data:
            if not isinstance(blob, (bytes, bytearray)):
                raise DataprepError("decode_jpeg expects compressed bytes")
        jpeg_codec.decode_batch(
            [bytes(b) for b in data],
            fast=self._fast,
            lockstep_min=self.lockstep_min,
            transform_chunk=self.transform_chunk,
            out=self._slot,
        )
        return self._slot

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("decoded", self._slot)]

    def describe(self) -> str:
        return (
            super().describe()
            + f"  lockstep_min={self.lockstep_min}"
            + f" transform_chunk={self.transform_chunk}"
        )


class DecodePngStage(PlanStage):
    """PNG blobs → uint8 image stack via the lock-step inflate path,
    decoded straight into the arena."""

    invariants = ("deflate_luts", "lockstep_min")

    def __init__(self, op: Any, geometry: PlanGeometry) -> None:
        from repro.dataprep.png import deflate

        self.fuses = (op.name,)
        self.lockstep_min = deflate._LOCKSTEP_MIN_STREAMS
        self._slot = np.empty(
            (geometry.batch_size,) + geometry.sample_shape, dtype=np.uint8
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        from repro.dataprep.png import codec as png_codec

        for blob in data:
            if not isinstance(blob, (bytes, bytearray)):
                raise DataprepError("decode_png expects compressed bytes")
        png_codec.decode_batch(
            data, lockstep_min=self.lockstep_min, out=self._slot
        )
        return self._slot

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("decoded", self._slot)]

    def describe(self) -> str:
        return super().describe() + f"  lockstep_min={self.lockstep_min}"


class FusedCropMirrorStage(PlanStage):
    """``random_crop`` + ``mirror`` in one per-sample strided copy: the
    crop window is read (reversed when the sample mirrors) directly into
    the output slot, so no full-size intermediate or gather-index array
    is ever materialized.  Per stream ``i`` the draws are exactly the
    per-sample path's: two crop integers, then one mirror uniform."""

    invariants = ("crop_offsets_layout",)

    def __init__(self, crop: Any, mirror: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (crop.name, mirror.name)
        self._crop = crop
        self._mirror = mirror
        self._in_shape = in_shape
        out_shape = (crop.out_height, crop.out_width) + in_shape[2:]
        self._slot = np.empty(
            (geometry.batch_size,) + out_shape, dtype=np.uint8
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        h, w = data.shape[1:3]
        oh, ow = self._crop.out_height, self._crop.out_width
        if h < oh or w < ow:
            raise DataprepError(f"cannot crop {h}x{w} to {oh}x{ow}")
        tops, lefts = self._crop.offsets(data.shape[1:], rngs)
        flips = self._mirror.coin_flips(rngs)
        for i in range(data.shape[0]):
            window = data[
                i, tops[i] : tops[i] + oh, lefts[i] : lefts[i] + ow
            ]
            if flips[i]:
                window = window[:, ::-1]
            np.copyto(self._slot[i], window)
        return self._slot

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("cropped", self._slot)]


class CropStage(PlanStage):
    """Standalone ``random_crop`` into the arena."""

    def __init__(self, crop: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (crop.name,)
        self._crop = crop
        out_shape = (crop.out_height, crop.out_width) + in_shape[2:]
        self._slot = np.empty(
            (geometry.batch_size,) + out_shape, dtype=np.uint8
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        h, w = data.shape[1:3]
        oh, ow = self._crop.out_height, self._crop.out_width
        if h < oh or w < ow:
            raise DataprepError(f"cannot crop {h}x{w} to {oh}x{ow}")
        tops, lefts = self._crop.offsets(data.shape[1:], rngs)
        for i in range(data.shape[0]):
            np.copyto(
                self._slot[i],
                data[i, tops[i] : tops[i] + oh, lefts[i] : lefts[i] + ow],
            )
        return self._slot

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("cropped", self._slot)]


class MirrorStage(PlanStage):
    """Standalone ``mirror``, flipping selected rows in place through a
    one-sample scratch slot (a reversed self-copy would overlap)."""

    mutates_input = True

    def __init__(self, mirror: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (mirror.name,)
        self._mirror = mirror
        self._scratch = np.empty(in_shape, dtype=np.uint8)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        flips = self._mirror.coin_flips(rngs)
        for i in np.flatnonzero(flips):
            np.copyto(self._scratch, data[i, :, ::-1])
            np.copyto(data[i], self._scratch)
        return data

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("mirror_scratch", self._scratch)]


class FusedNoiseCastStage(PlanStage):
    """``gaussian_noise`` + ``cast`` sharing one float32 buffer: noise is
    drawn per-sample straight into the slot, the add/round/clip run in
    place, and the normalize-multiply writes the float32 output slot —
    the uint8 round-trip between the two ops disappears.  Bit-identity
    holds because post-clip values are exact integers in [0, 255], all
    exactly representable in float32, so skipping the uint8 cast cannot
    change a ulp."""

    def __init__(self, noise: Any, castop: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (noise.name, castop.name)
        self._noise = noise
        self._scale = np.float32(castop.scale)
        shape = (geometry.batch_size,) + in_shape
        self._buf = np.empty(shape, dtype=np.float32)
        self._out = np.empty(shape, dtype=np.float32)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        if data.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        buf = self._buf
        for row, rng in zip(buf, rngs):
            rng.standard_normal(row.shape, dtype=np.float32, out=row)
        buf *= np.float32(self._noise.sigma)
        buf += data
        np.round(buf, out=buf)
        np.clip(buf, 0.0, 255.0, out=buf)
        np.multiply(buf, self._scale, out=self._out)
        return self._out

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("noise", self._buf), ("out_f32", self._out)]


class NoiseStage(PlanStage):
    """Standalone ``gaussian_noise`` (uint8 → uint8 through the arena)."""

    def __init__(self, noise: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (noise.name,)
        self._noise = noise
        shape = (geometry.batch_size,) + in_shape
        self._buf = np.empty(shape, dtype=np.float32)
        self._out = np.empty(shape, dtype=np.uint8)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        if data.dtype != np.uint8:
            raise DataprepError("gaussian_noise expects uint8 pixels")
        buf = self._buf
        for row, rng in zip(buf, rngs):
            rng.standard_normal(row.shape, dtype=np.float32, out=row)
        buf *= np.float32(self._noise.sigma)
        buf += data
        np.round(buf, out=buf)
        np.clip(buf, 0.0, 255.0, out=buf)
        # Assignment truncates exactly like astype; post-clip values are
        # exact integers so both match the reference bits.
        self._out[...] = buf
        return self._out

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("noise", self._buf), ("out_u8", self._out)]


class CastStage(PlanStage):
    """Standalone ``cast`` (uint8 → scaled float32)."""

    def __init__(self, castop: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (castop.name,)
        self._scale = np.float32(castop.scale)
        self._out = np.empty(
            (geometry.batch_size,) + in_shape, dtype=np.float32
        )

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        if data.dtype != np.uint8:
            raise DataprepError("cast expects uint8 pixels")
        self._out[...] = data
        self._out *= self._scale
        return self._out

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [("out_f32", self._out)]


class SpectrogramStage(PlanStage):
    """``spectrogram`` with the Hann window hoisted and the framing,
    windowing and power passes bound to arena slots.  The FFT itself
    allocates its output (``np.fft.rfft`` has no ``out=``) — freed
    within the call, so net steady-state growth stays ~zero."""

    invariants = ("hann_window", "frame_layout")

    def __init__(self, op: Any, geometry: PlanGeometry) -> None:
        from repro.dataprep.audio import stft as stftmod

        self.fuses = (op.name,)
        self._op = op
        self._window = stftmod.cached_hann_window(op.win_length)
        n = geometry.batch_size
        (self._n_samples,) = geometry.sample_shape
        self._int_input = np.dtype(geometry.dtype) == np.dtype(np.int16)
        frames = stftmod.num_frames(
            self._n_samples, op.hop_length, op.win_length
        )
        self._frames = frames
        padded_len = (frames - 1) * op.hop_length + op.win_length
        bins = op.n_fft // 2 + 1
        self._padded = np.zeros((n, padded_len), dtype=np.float64)
        self._windows = np.empty((n, frames, op.win_length), dtype=np.float64)
        self._power = np.empty((n * frames, bins), dtype=np.float64)
        self._imag_sq = np.empty((n * frames, bins), dtype=np.float64)
        self._out = np.empty((n, frames, bins), dtype=np.float32)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        op = self._op
        n = self._n_samples
        # The tail of ``padded`` past ``n`` is zero at compile time and
        # never written, so no per-batch re-zeroing is needed.
        self._padded[:, :n] = data
        if self._int_input:
            self._padded[:, :n] /= 32768.0
        view = np.lib.stride_tricks.sliding_window_view(
            self._padded, op.win_length, axis=1
        )[:, :: op.hop_length]
        # Fuses the frame copy and the windowing into one pass.
        np.multiply(view, self._window[None, None, :], out=self._windows)
        spectrum = np.fft.rfft(
            self._windows.reshape(-1, op.win_length), n=op.n_fft, axis=1
        )
        np.multiply(spectrum.real, spectrum.real, out=self._power)
        np.multiply(spectrum.imag, spectrum.imag, out=self._imag_sq)
        self._power += self._imag_sq
        self._out[...] = self._power.reshape(self._out.shape)
        return self._out

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [
            ("padded", self._padded),
            ("windows", self._windows),
            ("power", self._power),
            ("imag_sq", self._imag_sq),
            ("out_f32", self._out),
        ]


class MelStage(PlanStage):
    """``mel_filter_bank`` with the bank hoisted and the matmul/log
    bound to arena slots.  The matmul uses the same operand layouts as
    the per-op path (C-contiguous input, transposed bank view) so the
    BLAS summation order — and therefore every bit — matches."""

    invariants = ("mel_bank",)

    def __init__(self, op: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        import repro.dataprep.audio.mel as melmod

        self.fuses = (op.name,)
        self._op = op
        frames, bins = in_shape
        n_fft = (bins - 1) * 2
        self._bank = melmod.mel_filter_bank(
            op.n_mels, n_fft, op.sample_rate
        )
        n = geometry.batch_size
        self._in_f64 = np.empty((n, frames, bins), dtype=np.float64)
        self._mel = np.empty((n, frames, op.n_mels), dtype=np.float64)
        self._out = np.empty((n, frames, op.n_mels), dtype=np.float32)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        self._in_f64[...] = data
        np.matmul(self._in_f64, self._bank.T, out=self._mel)
        if self._op.log:
            self._mel += 1e-10
            np.log(self._mel, out=self._mel)
        self._out[...] = self._mel
        return self._out

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [
            ("in_f64", self._in_f64),
            ("mel", self._mel),
            ("out_f32", self._out),
        ]


class MaskingStage(PlanStage):
    """``masking`` running in place on the previous stage's slot (the
    draws per stream are exactly the per-sample path's)."""

    mutates_input = True

    def __init__(self, op: Any) -> None:
        self.fuses = (op.name,)
        self._op = op

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        return self._op.apply_batch(data, rngs)


class NormalizeStage(PlanStage):
    """``norm`` with per-sample statistics and the broadcast bound to
    arena slots.  All arithmetic stays in float32 — a float32 array's
    ``.mean()``/``.std()`` are float32 scalars, so the per-sample
    reference never leaves float32 either (compiled only for float32
    inputs; anything else takes the generic stage)."""

    def __init__(self, op: Any, geometry: PlanGeometry,
                 in_shape: Tuple[int, ...]) -> None:
        self.fuses = (op.name,)
        self._op = op
        n = geometry.batch_size
        self._means = np.empty(n, dtype=np.float32)
        self._divisors = np.empty(n, dtype=np.float32)
        self._buf = np.empty((n,) + in_shape, dtype=np.float32)

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        for i in range(data.shape[0]):
            self._means[i] = data[i].mean()
            self._divisors[i] = data[i].std()
        self._divisors += self._op.eps
        np.subtract(data, self._means[:, None, None], out=self._buf)
        self._buf /= self._divisors[:, None, None]
        return self._buf

    def slots(self) -> List[Tuple[str, np.ndarray]]:
        return [
            ("means", self._means),
            ("divisors", self._divisors),
            ("out_f32", self._buf),
        ]


class OpStage(PlanStage):
    """Fallback stage delegating to the op's ``apply_batch`` — correct
    for any op, but without fusion or arena binding.  An op may mutate
    the stack it receives, so this stage is marked mutating."""

    mutates_input = True

    def __init__(self, op: Any) -> None:
        self.fuses = (op.name,)
        self._op = op

    def run(self, data: Any, rngs: Sequence[np.random.Generator]) -> Any:
        return self._op.apply_batch(data, rngs)

    def describe(self) -> str:
        return super().describe() + "  (generic apply_batch)"


# -- the plan ----------------------------------------------------------------


class PrepPlan:
    """An executable, geometry-specialized compilation of a pipeline."""

    def __init__(
        self,
        pipeline_name: str,
        fingerprint: str,
        geometry: PlanGeometry,
        stages: List[PlanStage],
        compile_seconds: float = 0.0,
    ) -> None:
        self.pipeline_name = pipeline_name
        self.fingerprint = fingerprint
        self.geometry = geometry
        self.stages = stages
        self.compile_seconds = compile_seconds

    def execute(
        self, batch: Any, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Run the compiled pipeline over ``batch``.

        Returns a **view of the plan's output slot**, valid until the
        next ``execute`` on this plan; copy it to keep it.  Bit-identical
        to ``run_batch_reference`` on the same streams.
        """
        n = len(batch)
        if n != self.geometry.batch_size:
            raise PlanInapplicable(
                f"plan compiled for batches of {self.geometry.batch_size}, "
                f"got {n}"
            )
        if n != len(rngs):
            raise DataprepError(
                f"batch of {n} needs {n} rng streams, got {len(rngs)}"
            )
        data = batch
        if self.geometry.input_kind == "array" and not isinstance(
            data, np.ndarray
        ):
            data = np.stack(data)
        for stage in self.stages:
            data = stage.run(data, rngs)
        return data

    def arena_nbytes(self) -> int:
        return sum(
            arr.nbytes for stage in self.stages for _, arr in stage.slots()
        )

    def describe(self) -> str:
        lines = [
            f"plan {self.pipeline_name}  fingerprint={self.fingerprint[:12]}",
            (
                f"  geometry: batch={self.geometry.batch_size}"
                f" input={self.geometry.input_kind}"
                f" sample={list(self.geometry.sample_shape)}"
                f" dtype={self.geometry.dtype}"
            ),
            f"  arena: {self.arena_nbytes() / 1e6:.1f} MB in "
            f"{sum(len(s.slots()) for s in self.stages)} slots",
        ]
        for idx, stage in enumerate(self.stages):
            lines.append(f"  [{idx}] {stage.describe()}")
        return "\n".join(lines)


def _op_signature(op: Any) -> dict:
    return {"type": type(op).__name__, "name": op.name, "params": vars(op)}


def plan_fingerprint(pipeline: PrepPipeline, geometry: PlanGeometry) -> str:
    """The memoization key: pipeline structure/params + geometry."""
    return cache.fingerprint(
        "prep-plan",
        pipeline.name,
        [_op_signature(op) for op in pipeline.ops],
        {
            "batch_size": geometry.batch_size,
            "input_kind": geometry.input_kind,
            "sample_shape": list(geometry.sample_shape),
            "dtype": geometry.dtype,
        },
    )


def compile_plan(
    pipeline: PrepPipeline, geometry: PlanGeometry
) -> PrepPlan:
    """Compile (or fetch the memoized) :class:`PrepPlan` for
    ``(pipeline, geometry)``.

    Compiles exactly once per process for a given fingerprint — so
    :class:`~repro.dataprep.engine.PrepEngine` workers compile on their
    first shard and reuse the plan for every later shard.  The compile
    is traced as a ``prep.plan_compile`` span, counted in
    ``prep.plan_compile_total`` and timed (ms) in the
    ``prep.plan_compile_ms`` histogram.
    """
    fp = plan_fingerprint(pipeline, geometry)
    return cache.memoized(
        ("prep-plan", fp), lambda: _compile(pipeline, geometry, fp)
    )


def _compile(
    pipeline: PrepPipeline, geometry: PlanGeometry, fp: str
) -> PrepPlan:
    from repro.dataprep import ops_audio, ops_image

    start = time.perf_counter()
    with obs.span(
        "prep.plan_compile",
        cat="prep",
        pipeline=pipeline.name,
        batch=geometry.batch_size,
    ):
        stages: List[PlanStage] = []
        shape: Optional[Tuple[int, ...]] = geometry.sample_shape
        dtype: Optional[str] = (
            "uint8" if geometry.input_kind in ("jpeg", "png")
            else geometry.dtype
        )
        ops = pipeline.ops
        i = 0
        while i < len(ops):
            op = ops[i]
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if shape is None:
                # A generic stage upstream lost shape/dtype tracking:
                # every remaining stage must stay generic.
                stages.append(OpStage(op))
                i += 1
                continue
            if isinstance(op, ops_image.DecodeJpeg) and i == 0 and (
                geometry.input_kind == "jpeg"
            ):
                stages.append(DecodeJpegStage(op, geometry))
                dtype = "uint8"
            elif isinstance(op, ops_image.DecodePng) and i == 0 and (
                geometry.input_kind == "png"
            ):
                stages.append(DecodePngStage(op, geometry))
                dtype = "uint8"
            elif (
                isinstance(op, ops_image.RandomCrop)
                and isinstance(nxt, ops_image.Mirror)
                and dtype == "uint8"
                and len(shape) == 3
            ):
                stages.append(
                    FusedCropMirrorStage(op, nxt, geometry, shape)
                )
                shape = (op.out_height, op.out_width) + shape[2:]
                i += 2
                continue
            elif (
                isinstance(op, ops_image.RandomCrop)
                and dtype == "uint8"
                and len(shape) == 3
            ):
                stages.append(CropStage(op, geometry, shape))
                shape = (op.out_height, op.out_width) + shape[2:]
            elif (
                isinstance(op, ops_image.Mirror)
                and dtype == "uint8"
                and len(shape) == 3
            ):
                stages.append(MirrorStage(op, geometry, shape))
            elif isinstance(op, ops_image.GaussianNoise) and isinstance(
                nxt, ops_image.CastToFloat
            ):
                stages.append(
                    FusedNoiseCastStage(op, nxt, geometry, shape)
                )
                dtype = "float32"
                i += 2
                continue
            elif isinstance(op, ops_image.GaussianNoise):
                stages.append(NoiseStage(op, geometry, shape))
                dtype = "uint8"
            elif isinstance(op, ops_image.CastToFloat):
                stages.append(CastStage(op, geometry, shape))
                dtype = "float32"
            elif (
                isinstance(op, ops_audio.Spectrogram)
                and i == 0
                and len(shape) == 1
            ):
                stage = SpectrogramStage(op, geometry)
                stages.append(stage)
                shape = stage._out.shape[1:]
                dtype = "float32"
            elif isinstance(op, ops_audio.MelFilterBank) and len(shape) == 2:
                stages.append(MelStage(op, geometry, shape))
                shape = (shape[0], op.n_mels)
                dtype = "float32"
            elif isinstance(op, ops_audio.SpecMasking):
                stages.append(MaskingStage(op))
            elif (
                isinstance(op, ops_audio.Normalize)
                and len(shape) == 2
                and dtype == "float32"
            ):
                stages.append(NormalizeStage(op, geometry, shape))
            else:
                stages.append(OpStage(op))
                shape = None
                dtype = None
            i += 1
        if stages and stages[0].mutates_input:
            stages.insert(0, CopyInStage(geometry))
    elapsed = time.perf_counter() - start
    obs.inc("prep.plan_compile_total")
    obs.observe("prep.plan_compile_ms", elapsed * 1e3)
    return PrepPlan(pipeline.name, fp, geometry, stages, elapsed)


def try_plan(pipeline: PrepPipeline, batch: Any) -> Optional[PrepPlan]:
    """The compiled plan for ``batch``, or ``None`` when this
    pipeline/batch combination cannot take the planned path."""
    try:
        geometry = geometry_for_batch(pipeline, batch)
    except PlanInapplicable:
        return None
    except Exception:
        # Malformed payloads surface their real error on the per-op path.
        return None
    return compile_plan(pipeline, geometry)
