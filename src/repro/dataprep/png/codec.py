"""The PNG-like container: filter, compress, frame."""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError
from repro.dataprep.png import deflate
from repro.dataprep.png.filters import filter_image, unfilter_image

_MAGIC = b"RPNG"
_VERSION = 1


@dataclass
class PngCodec:
    """Lossless codec instance.

    ``max_chain`` tunes the LZ77 matcher (longer chains = better ratio,
    slower encode) — the same knob zlib levels turn.
    """

    max_chain: int = 32

    def encode(self, image: np.ndarray) -> bytes:
        if image.ndim != 3 or image.shape[2] not in (1, 3, 4):
            raise CodecError(f"expected HxWx{{1,3,4}} image, got {image.shape}")
        if image.dtype != np.uint8:
            raise CodecError(f"expected uint8, got {image.dtype}")
        h, w, c = image.shape
        methods, residuals = filter_image(image)
        # Interleave the filter byte before each scanline, PNG-style.
        raw = np.empty((h, w * c + 1), dtype=np.uint8)
        raw[:, 0] = methods
        raw[:, 1:] = residuals
        compressed = deflate.compress(raw.tobytes(), max_chain=self.max_chain)
        out = bytearray(_MAGIC)
        out.extend(struct.pack("<BHHB", _VERSION, h, w, c))
        out.extend(compressed)
        return bytes(out)

    @staticmethod
    def decode(data: bytes) -> np.ndarray:
        if data[:4] != _MAGIC:
            raise CodecError("not an RPNG stream")
        try:
            return PngCodec._decode_checked(data)
        except CodecError:
            raise
        except (struct.error, IndexError, ValueError, KeyError) as exc:
            raise CodecError(f"malformed RPNG stream: {exc}") from exc

    @staticmethod
    def _decode_checked(data: bytes) -> np.ndarray:
        version, h, w, c = struct.unpack_from("<BHHB", data, 4)
        if version != _VERSION:
            raise CodecError(f"unsupported RPNG version {version}")
        raw = deflate.decompress(data[4 + struct.calcsize("<BHHB"):])
        stride = w * c
        if len(raw) != h * (stride + 1):
            raise CodecError("decompressed payload has the wrong size")
        lines = np.frombuffer(raw, dtype=np.uint8).reshape(h, stride + 1)
        methods = lines[:, 0].tolist()
        residuals = lines[:, 1:]
        return unfilter_image(methods, residuals, (h, w, c))


def encode(image: np.ndarray, max_chain: int = 32) -> bytes:
    """Module-level convenience wrapper around :class:`PngCodec`."""
    return PngCodec(max_chain=max_chain).encode(image)


def decode(data: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`PngCodec`."""
    return PngCodec.decode(data)


def decode_batch(
    datas, *, lockstep_min: "int | None" = None, out: "np.ndarray | None" = None
) -> list:
    """Decode many RPNG blobs, inflating their deflate payloads in
    lock-step (:func:`deflate.decompress_batch`); the row-sequential
    unfilter pass stays per-image.  Byte-identical to mapping
    :func:`decode`; malformed blobs raise the reference error.

    ``out`` optionally receives the decoded images in place (an
    ``N x h x w x c`` uint8 arena slot; every image must match) and is
    returned instead of a fresh list.
    """
    datas = [bytes(d) for d in datas]
    if out is not None and len(out) != len(datas):
        raise CodecError(
            f"decode out= holds {len(out)} slots for {len(datas)} blobs"
        )
    headers = []
    for data in datas:
        if data[:4] != _MAGIC:
            raise CodecError("not an RPNG stream")
        try:
            version, h, w, c = struct.unpack_from("<BHHB", data, 4)
        except struct.error as exc:
            raise CodecError(f"malformed RPNG stream: {exc}") from exc
        if version != _VERSION:
            raise CodecError(f"unsupported RPNG version {version}")
        headers.append((h, w, c))
    offset = 4 + struct.calcsize("<BHHB")
    raws = deflate.decompress_batch(
        [d[offset:] for d in datas], lockstep_min=lockstep_min
    )
    results = [] if out is None else out
    for i, (raw, (h, w, c)) in enumerate(zip(raws, headers)):
        stride = w * c
        if len(raw) != h * (stride + 1):
            raise CodecError("decompressed payload has the wrong size")
        lines = np.frombuffer(raw, dtype=np.uint8).reshape(h, stride + 1)
        image = unfilter_image(lines[:, 0].tolist(), lines[:, 1:], (h, w, c))
        if out is None:
            results.append(image)
        else:
            if image.shape != out.shape[1:]:
                raise CodecError(
                    f"decode out= expects uniform {out.shape[1:]} images,"
                    f" got {image.shape}"
                )
            out[i, ...] = image
    return results
