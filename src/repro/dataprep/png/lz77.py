"""LZ77 back-reference matching (the dictionary half of deflate).

A hash-chain matcher over a sliding window produces a token stream of
literals and (length, distance) matches; :func:`expand` reverses it.
The geometry follows deflate: window 32 KiB, match lengths 3..258.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

import numpy as np

from repro.errors import CodecError

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
_HASH_SHIFT = 16


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise CodecError(f"match length {self.length} out of range")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise CodecError(f"match distance {self.distance} out of range")


Token = Union[int, Match]  # int = literal byte value


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]


def tokenize_reference(
    data: bytes, max_chain: int = 32, lazy: bool = True
) -> List[Token]:
    """Byte-at-a-time LZ77 parse of ``data`` (the executable spec).

    ``max_chain`` bounds how many previous positions with the same hash
    are probed per position (the usual speed/ratio knob); ``lazy``
    enables deflate's one-step lazy matching.
    """
    n = len(data)
    tokens: List[Token] = []
    heads: Dict[int, List[int]] = {}

    def find_match(pos: int) -> Match:
        if pos + MIN_MATCH > n:
            return None  # type: ignore[return-value]
        chain = heads.get(_hash3(data, pos), ())
        best_len = 0
        best_dist = 0
        probes = 0
        for candidate in reversed(chain):
            if probes >= max_chain:
                break
            probes += 1
            distance = pos - candidate
            if distance > WINDOW_SIZE:
                break
            limit = min(MAX_MATCH, n - pos)
            length = 0
            while (
                length < limit
                and data[candidate + length] == data[pos + length]
            ):
                length += 1
            if length > best_len:
                best_len, best_dist = length, distance
                if length >= limit:
                    break
        if best_len >= MIN_MATCH:
            return Match(min(best_len, MAX_MATCH), best_dist)
        return None  # type: ignore[return-value]

    def insert(pos: int) -> None:
        if pos + MIN_MATCH <= n:
            heads.setdefault(_hash3(data, pos), []).append(pos)

    pos = 0
    while pos < n:
        match = find_match(pos)
        if match is not None and lazy and pos + 1 < n:
            insert(pos)
            nxt = find_match(pos + 1)
            if nxt is not None and nxt.length > match.length + 1:
                tokens.append(data[pos])
                pos += 1
                match = nxt
        if match is None:
            tokens.append(data[pos])
            insert(pos)
            pos += 1
        else:
            tokens.append(match)
            for i in range(match.length):
                insert(pos + i)
            pos += match.length
    return tokens


def tokenize(
    data: bytes, max_chain: int = 32, lazy: bool = True
) -> List[Token]:
    """Hash-chain LZ77 parse of ``data``; emits the exact token stream of
    :func:`tokenize_reference`.

    The speedups are purely mechanical: the rolling 3-byte hash is
    precomputed in one vectorized pass, candidate chains live in plain
    lists walked newest-first, a "can this candidate beat the best so
    far?" single-byte guard skips hopeless candidates (a match longer
    than ``best_len`` must agree at offset ``best_len``), and length
    extension compares 16-byte slices before falling back to bytes.
    Match objects are only materialized for emitted tokens.
    """
    n = len(data)
    if n < MIN_MATCH:
        return [b for b in data]
    arr = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
    hashes = (
        (arr[: n - 2] << 10) ^ (arr[1 : n - 1] << 5) ^ arr[2:]
    ).tolist()
    heads: Dict[int, List[int]] = {}
    tokens: List[Token] = []
    append_token = tokens.append
    mv = data
    last_hash_pos = n - 2  # positions < this have a 3-byte hash

    def find(pos: int) -> int:
        """Best (length << 16) | distance at ``pos``, or 0."""
        chain = heads.get(hashes[pos])
        if chain is None:
            return 0
        best_len = 0
        best_dist = 0
        limit = MAX_MATCH if n - pos > MAX_MATCH else n - pos
        probes = 0
        for j in range(len(chain) - 1, -1, -1):
            if probes >= max_chain:
                break
            probes += 1
            candidate = chain[j]
            distance = pos - candidate
            if distance > WINDOW_SIZE:
                break
            if best_len and mv[candidate + best_len] != mv[pos + best_len]:
                continue
            length = 0
            while (
                length + 16 <= limit
                and mv[candidate + length : candidate + length + 16]
                == mv[pos + length : pos + length + 16]
            ):
                length += 16
            while length < limit and mv[candidate + length] == mv[pos + length]:
                length += 1
            if length > best_len:
                best_len, best_dist = length, distance
                if length >= limit:
                    break
        if best_len >= MIN_MATCH:
            return (best_len << 16) | best_dist
        return 0

    pos = 0
    while pos < n:
        found = find(pos) if pos < last_hash_pos else 0
        if found and lazy and pos + 1 < n:
            heads.setdefault(hashes[pos], []).append(pos)
            nxt = find(pos + 1) if pos + 1 < last_hash_pos else 0
            if nxt and (nxt >> 16) > (found >> 16) + 1:
                append_token(mv[pos])
                pos += 1
                found = nxt
        if not found:
            append_token(mv[pos])
            if pos < last_hash_pos:
                heads.setdefault(hashes[pos], []).append(pos)
            pos += 1
        else:
            length = found >> 16
            append_token(Match(length, found & 0xFFFF))
            stop = pos + length
            for p in range(pos, stop if stop < last_hash_pos else last_hash_pos):
                heads.setdefault(hashes[p], []).append(p)
            pos = stop
    return tokens


def expand(tokens: Iterable[Token]) -> bytes:
    """Invert :func:`tokenize`.

    Non-overlapping matches copy with one slice; overlapping (RLE-style)
    matches tile the trailing segment cyclically, which reproduces the
    byte-at-a-time reconstruction exactly.
    """
    out = bytearray()
    append = out.append
    for token in tokens:
        if isinstance(token, Match):
            distance = token.distance
            length = token.length
            if distance > len(out):
                raise CodecError(
                    f"match distance {distance} beyond output "
                    f"({len(out)} bytes)"
                )
            start = len(out) - distance
            if distance >= length:
                out += out[start : start + length]
            else:
                seg = bytes(out[start:])
                reps = -(-length // distance)
                out += (seg * reps)[:length]
        else:
            if not 0 <= token <= 255:
                raise CodecError(f"invalid literal {token}")
            append(token)
    return bytes(out)


def compression_tokens_ratio(tokens: List[Token], original_len: int) -> float:
    """Fraction of input bytes covered by matches (a matcher quality
    metric used by the tests)."""
    if original_len == 0:
        raise CodecError("empty input")
    matched = sum(t.length for t in tokens if isinstance(t, Match))
    return matched / original_len
