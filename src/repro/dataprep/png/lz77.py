"""LZ77 back-reference matching (the dictionary half of deflate).

A hash-chain matcher over a sliding window produces a token stream of
literals and (length, distance) matches; :func:`expand` reverses it.
The geometry follows deflate: window 32 KiB, match lengths 3..258.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

from repro.errors import CodecError

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
_HASH_SHIFT = 16


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise CodecError(f"match length {self.length} out of range")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise CodecError(f"match distance {self.distance} out of range")


Token = Union[int, Match]  # int = literal byte value


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]


def tokenize(
    data: bytes, max_chain: int = 32, lazy: bool = True
) -> List[Token]:
    """Greedy-with-lazy-evaluation LZ77 parse of ``data``.

    ``max_chain`` bounds how many previous positions with the same hash
    are probed per position (the usual speed/ratio knob); ``lazy``
    enables deflate's one-step lazy matching.
    """
    n = len(data)
    tokens: List[Token] = []
    heads: Dict[int, List[int]] = {}

    def find_match(pos: int) -> Match:
        if pos + MIN_MATCH > n:
            return None  # type: ignore[return-value]
        chain = heads.get(_hash3(data, pos), ())
        best_len = 0
        best_dist = 0
        probes = 0
        for candidate in reversed(chain):
            if probes >= max_chain:
                break
            probes += 1
            distance = pos - candidate
            if distance > WINDOW_SIZE:
                break
            limit = min(MAX_MATCH, n - pos)
            length = 0
            while (
                length < limit
                and data[candidate + length] == data[pos + length]
            ):
                length += 1
            if length > best_len:
                best_len, best_dist = length, distance
                if length >= limit:
                    break
        if best_len >= MIN_MATCH:
            return Match(min(best_len, MAX_MATCH), best_dist)
        return None  # type: ignore[return-value]

    def insert(pos: int) -> None:
        if pos + MIN_MATCH <= n:
            heads.setdefault(_hash3(data, pos), []).append(pos)

    pos = 0
    while pos < n:
        match = find_match(pos)
        if match is not None and lazy and pos + 1 < n:
            insert(pos)
            nxt = find_match(pos + 1)
            if nxt is not None and nxt.length > match.length + 1:
                tokens.append(data[pos])
                pos += 1
                match = nxt
        if match is None:
            tokens.append(data[pos])
            insert(pos)
            pos += 1
        else:
            tokens.append(match)
            for i in range(match.length):
                insert(pos + i)
            pos += match.length
    return tokens


def expand(tokens: Iterable[Token]) -> bytes:
    """Invert :func:`tokenize`."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Match):
            if token.distance > len(out):
                raise CodecError(
                    f"match distance {token.distance} beyond output "
                    f"({len(out)} bytes)"
                )
            start = len(out) - token.distance
            # Byte-by-byte to support overlapping copies (RLE-style
            # matches where distance < length).
            for i in range(token.length):
                out.append(out[start + i])
        else:
            if not 0 <= token <= 255:
                raise CodecError(f"invalid literal {token}")
            out.append(token)
    return bytes(out)


def compression_tokens_ratio(tokens: List[Token], original_len: int) -> float:
    """Fraction of input bytes covered by matches (a matcher quality
    metric used by the tests)."""
    if original_len == 0:
        raise CodecError("empty input")
    matched = sum(t.length for t in tokens if isinstance(t, Match))
    return matched / original_len
