"""Deflate-style entropy coding of the LZ77 token stream.

Uses the real deflate alphabets — literal/length symbols 0..285 with the
standard extra-bit tables, distance symbols 0..29 — and canonical
Huffman codes built from the actual stream statistics ("dynamic Huffman"
mode), shipped as (BITS, HUFFVAL) specs in the header.  The Huffman
machinery is shared with the JPEG codec.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import CodecError
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
)
from repro.dataprep.png.lz77 import Match, Token, expand, tokenize

END_OF_BLOCK = 256

# RFC 1951 §3.2.5: length codes 257..285.
_LENGTH_BASE = (
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51,
    59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
)
_LENGTH_EXTRA = (
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4,
    4, 5, 5, 5, 5, 0,
)

# Distance codes 0..29.
_DIST_BASE = (
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385,
    513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
)
_DIST_EXTRA = (
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10,
    10, 11, 11, 12, 12, 13, 13,
)


def _code_for(value: int, bases: Tuple[int, ...], extras: Tuple[int, ...]) -> Tuple[int, int, int]:
    """(code index, extra-bit count, extra-bit value) for a length or
    distance."""
    for idx in range(len(bases) - 1, -1, -1):
        if value >= bases[idx]:
            return idx, extras[idx], value - bases[idx]
    raise CodecError(f"value {value} below alphabet base")


def length_symbol(length: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(length, _LENGTH_BASE, _LENGTH_EXTRA)
    return 257 + idx, nbits, extra


def distance_symbol(distance: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(distance, _DIST_BASE, _DIST_EXTRA)
    return idx, nbits, extra


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


def compress(data: bytes, max_chain: int = 32) -> bytes:
    """LZ77 + dynamic canonical Huffman, one block."""
    tokens = tokenize(data, max_chain=max_chain)

    litlen_freq = {END_OF_BLOCK: 1}
    dist_freq = {}
    events: List[Tuple] = []
    for token in tokens:
        if isinstance(token, Match):
            lsym, lbits, lextra = length_symbol(token.length)
            dsym, dbits, dextra = distance_symbol(token.distance)
            litlen_freq[lsym] = litlen_freq.get(lsym, 0) + 1
            dist_freq[dsym] = dist_freq.get(dsym, 0) + 1
            events.append(("m", lsym, lbits, lextra, dsym, dbits, dextra))
        else:
            litlen_freq[token] = litlen_freq.get(token, 0) + 1
            events.append(("l", token))

    litlen = HuffmanTable.from_frequencies(litlen_freq)
    # The distance table may be empty when no matches exist.
    dist = HuffmanTable.from_frequencies(dist_freq) if dist_freq else None

    writer = BitWriter()
    for event in events:
        if event[0] == "l":
            litlen.write_symbol(writer, event[1])
        else:
            _, lsym, lbits, lextra, dsym, dbits, dextra = event
            litlen.write_symbol(writer, lsym)
            writer.write(lextra, lbits)
            assert dist is not None
            dist.write_symbol(writer, dsym)
            writer.write(dextra, dbits)
    litlen.write_symbol(writer, END_OF_BLOCK)
    payload = writer.getvalue()

    out = bytearray()
    out.extend(struct.pack("<I", len(data)))
    _write_table(litlen.spec, out)
    out.append(1 if dist is not None else 0)
    if dist is not None:
        _write_table(dist.spec, out)
    out.extend(payload)
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`; malformed streams raise CodecError."""
    try:
        return _decompress_checked(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


def _decompress_checked(data: bytes) -> bytes:
    (expected_len,) = struct.unpack_from("<I", data, 0)
    offset = 4
    litlen_spec, offset = _read_table(data, offset)
    litlen = HuffmanTable(litlen_spec)
    has_dist = data[offset]
    offset += 1
    dist = None
    if has_dist:
        dist_spec, offset = _read_table(data, offset)
        dist = HuffmanTable(dist_spec)
    reader = BitReader(data[offset:])

    tokens: List[Token] = []
    produced = 0
    while True:
        symbol = litlen.read_symbol(reader)
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            tokens.append(symbol)
            produced += 1
            continue
        idx = symbol - 257
        if not 0 <= idx < len(_LENGTH_BASE):
            raise CodecError(f"invalid length symbol {symbol}")
        length = _LENGTH_BASE[idx] + reader.read(_LENGTH_EXTRA[idx])
        if dist is None:
            raise CodecError("match emitted but no distance table present")
        dsym = dist.read_symbol(reader)
        if not 0 <= dsym < len(_DIST_BASE):
            raise CodecError(f"invalid distance symbol {dsym}")
        distance = _DIST_BASE[dsym] + reader.read(_DIST_EXTRA[dsym])
        tokens.append(Match(length, distance))
        produced += length
        if produced > expected_len:
            raise CodecError("decompressed beyond the declared length")
    out = expand(tokens)
    if len(out) != expected_len:
        raise CodecError(
            f"declared {expected_len} bytes, reconstructed {len(out)}"
        )
    return out
