"""Deflate-style entropy coding of the LZ77 token stream.

Uses the real deflate alphabets — literal/length symbols 0..285 with the
standard extra-bit tables, distance symbols 0..29 — and canonical
Huffman codes built from the actual stream statistics ("dynamic Huffman"
mode), shipped as (BITS, HUFFVAL) specs in the header.  The Huffman
machinery is shared with the JPEG codec.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
    bit_windows,
    pack_bits,
    table_runtime,
)
from repro.dataprep.png.lz77 import Match, Token, expand, tokenize

END_OF_BLOCK = 256

# RFC 1951 §3.2.5: length codes 257..285.
_LENGTH_BASE = (
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51,
    59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
)
_LENGTH_EXTRA = (
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4,
    4, 5, 5, 5, 5, 0,
)

# Distance codes 0..29.
_DIST_BASE = (
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385,
    513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
)
_DIST_EXTRA = (
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10,
    10, 11, 11, 12, 12, 13, 13,
)


def _code_for(value: int, bases: Tuple[int, ...], extras: Tuple[int, ...]) -> Tuple[int, int, int]:
    """(code index, extra-bit count, extra-bit value) for a length or
    distance."""
    for idx in range(len(bases) - 1, -1, -1):
        if value >= bases[idx]:
            return idx, extras[idx], value - bases[idx]
    raise CodecError(f"value {value} below alphabet base")


def length_symbol(length: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(length, _LENGTH_BASE, _LENGTH_EXTRA)
    return 257 + idx, nbits, extra


def distance_symbol(distance: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(distance, _DIST_BASE, _DIST_EXTRA)
    return idx, nbits, extra


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


# Array mirrors of the alphabet tables for the vectorized encoder.
_LENGTH_BASE_ARR = np.array(_LENGTH_BASE, dtype=np.int64)
_LENGTH_EXTRA_ARR = np.array(_LENGTH_EXTRA, dtype=np.int64)
_DIST_BASE_ARR = np.array(_DIST_BASE, dtype=np.int64)
_DIST_EXTRA_ARR = np.array(_DIST_EXTRA, dtype=np.int64)


def compress(data: bytes, max_chain: int = 32) -> bytes:
    """LZ77 + dynamic canonical Huffman, one block.

    Vectorized encoder: length/distance symbols come from
    ``np.searchsorted`` over the alphabet bases, symbol frequencies from
    ``np.bincount``, and the payload from one :func:`pack_bits` call over
    the per-field ``(value, width)`` arrays scattered into stream order.
    Byte-identical to :func:`compress_reference`.
    """
    tokens = tokenize(data, max_chain=max_chain)

    lit_vals: List[int] = []
    match_lens: List[int] = []
    match_dists: List[int] = []
    flags: List[bool] = []
    for token in tokens:
        if isinstance(token, Match):
            flags.append(True)
            match_lens.append(token.length)
            match_dists.append(token.distance)
        else:
            flags.append(False)
            lit_vals.append(token)

    flags_arr = np.array(flags, dtype=bool)
    lit_arr = np.array(lit_vals, dtype=np.int64)
    len_arr = np.array(match_lens, dtype=np.int64)
    dist_arr = np.array(match_dists, dtype=np.int64)

    lidx = np.searchsorted(_LENGTH_BASE_ARR, len_arr, side="right") - 1
    lsym = lidx + 257
    lbits = _LENGTH_EXTRA_ARR[lidx]
    lextra = len_arr - _LENGTH_BASE_ARR[lidx]
    didx = np.searchsorted(_DIST_BASE_ARR, dist_arr, side="right") - 1
    dbits = _DIST_EXTRA_ARR[didx]
    dextra = dist_arr - _DIST_BASE_ARR[didx]

    litlen_counts = np.bincount(
        np.concatenate([lit_arr, lsym]), minlength=END_OF_BLOCK + 1
    )
    litlen_counts[END_OF_BLOCK] += 1
    litlen_freq = {
        int(s): int(c) for s, c in enumerate(litlen_counts) if c
    }
    dist_freq = {
        int(s): int(c) for s, c in enumerate(np.bincount(didx)) if c
    }

    litlen = HuffmanTable.from_frequencies(litlen_freq)
    dist = HuffmanTable.from_frequencies(dist_freq) if dist_freq else None

    lit_rt = table_runtime(litlen.spec)
    nfields = np.where(flags_arr, 4, 1)
    total = int(nfields.sum()) + 1  # + END_OF_BLOCK
    values = np.zeros(total, dtype=np.int64)
    widths = np.zeros(total, dtype=np.int64)
    starts = np.zeros(len(tokens), dtype=np.int64)
    if len(tokens) > 1:
        np.cumsum(nfields[:-1], out=starts[1:])
    ls = starts[~flags_arr]
    values[ls] = lit_rt.enc_code[lit_arr]
    widths[ls] = lit_rt.enc_len[lit_arr]
    if dist is not None:
        dist_rt = table_runtime(dist.spec)
        ms = starts[flags_arr]
        values[ms] = lit_rt.enc_code[lsym]
        widths[ms] = lit_rt.enc_len[lsym]
        values[ms + 1] = lextra
        widths[ms + 1] = lbits
        values[ms + 2] = dist_rt.enc_code[didx]
        widths[ms + 2] = dist_rt.enc_len[didx]
        values[ms + 3] = dextra
        widths[ms + 3] = dbits
    values[total - 1] = lit_rt.enc_code[END_OF_BLOCK]
    widths[total - 1] = lit_rt.enc_len[END_OF_BLOCK]
    payload = pack_bits(values, widths)

    out = bytearray()
    out.extend(struct.pack("<I", len(data)))
    _write_table(litlen.spec, out)
    out.append(1 if dist is not None else 0)
    if dist is not None:
        _write_table(dist.spec, out)
    out.extend(payload)
    return bytes(out)


def compress_reference(data: bytes, max_chain: int = 32) -> bytes:
    """Symbol-at-a-time :func:`compress` (the executable spec)."""
    tokens = tokenize(data, max_chain=max_chain)

    litlen_freq = {END_OF_BLOCK: 1}
    dist_freq = {}
    events: List[Tuple] = []
    for token in tokens:
        if isinstance(token, Match):
            lsym, lbits, lextra = length_symbol(token.length)
            dsym, dbits, dextra = distance_symbol(token.distance)
            litlen_freq[lsym] = litlen_freq.get(lsym, 0) + 1
            dist_freq[dsym] = dist_freq.get(dsym, 0) + 1
            events.append(("m", lsym, lbits, lextra, dsym, dbits, dextra))
        else:
            litlen_freq[token] = litlen_freq.get(token, 0) + 1
            events.append(("l", token))

    litlen = HuffmanTable.from_frequencies(litlen_freq)
    # The distance table may be empty when no matches exist.
    dist = HuffmanTable.from_frequencies(dist_freq) if dist_freq else None

    writer = BitWriter()
    for event in events:
        if event[0] == "l":
            litlen.write_symbol(writer, event[1])
        else:
            _, lsym, lbits, lextra, dsym, dbits, dextra = event
            litlen.write_symbol(writer, lsym)
            writer.write(lextra, lbits)
            assert dist is not None
            dist.write_symbol(writer, dsym)
            writer.write(dextra, dbits)
    litlen.write_symbol(writer, END_OF_BLOCK)
    payload = writer.getvalue()

    out = bytearray()
    out.extend(struct.pack("<I", len(data)))
    _write_table(litlen.spec, out)
    out.append(1 if dist is not None else 0)
    if dist is not None:
        _write_table(dist.spec, out)
    out.extend(payload)
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`; malformed streams raise CodecError."""
    try:
        return _decompress_checked(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


# Lock-step token decode beats the per-stream loop only once its fixed
# numpy-dispatch cost per token row (four masked phases over shared
# windows) is amortized over enough streams.  The crossover is
# content-dependent: literal-heavy payloads (noise-like filter
# residuals) cross near ~140 streams because match phases are skipped,
# match-heavy payloads closer to ~350.  192 is the measured middle
# ground for photo-like PNG batches.
_LOCKSTEP_MIN_STREAMS = 192

# Array mirrors for the lock-step walk (uint64 domain: they mix with
# bit cursors and 64-bit windows).
_LENGTH_BASE_U64 = np.array(_LENGTH_BASE, dtype=np.uint64)
_LENGTH_EXTRA_U64 = np.array(_LENGTH_EXTRA, dtype=np.uint64)
_DIST_BASE_U64 = np.array(_DIST_BASE, dtype=np.uint64)
_DIST_EXTRA_U64 = np.array(_DIST_EXTRA, dtype=np.uint64)

#: Event rows are stored in chunked matrices of this many iterations
#: (bounds transient memory without per-iteration list appends).
_CHUNK_ROWS = 256


def decompress_batch(
    datas: Sequence[bytes], *, lockstep_min: Optional[int] = None
) -> List[bytes]:
    """Decompress many streams, decoding their Huffman tokens in
    lock-step (the PR 4 SIMD discipline, extended to the inflate path).

    One vectorized walk advances a bit cursor per stream and decodes
    one litlen symbol (plus its masked length-extra / distance-symbol /
    distance-extra phases) per iteration across every live stream; the
    serial LZ77 expansion then runs per stream over the recorded token
    matrix, with literal runs emitted as single slices.  Byte-identical
    to :func:`decompress` per item; malformed streams are re-decoded on
    the per-stream path so they raise exactly the reference error.

    Below ``lockstep_min`` streams (default the measured crossover
    ``_LOCKSTEP_MIN_STREAMS``) the per-stream loop is used directly.
    """
    datas = [bytes(d) for d in datas]
    threshold = (
        _LOCKSTEP_MIN_STREAMS if lockstep_min is None else max(2, lockstep_min)
    )
    if len(datas) < threshold:
        return [decompress(d) for d in datas]
    try:
        parsed = [_parse_stream(d) for d in datas]
    except CodecError:
        # At least one malformed header: per-stream decode reports it
        # with the exact reference error (in input order).
        return [decompress(d) for d in datas]
    return _decompress_lockstep(datas, parsed)


def _parse_stream(data: bytes):
    """(expected_len, litlen runtime, dist runtime | None, payload)."""
    try:
        (expected_len,) = struct.unpack_from("<I", data, 0)
        offset = 4
        litlen_spec, offset = _read_table(data, offset)
        lit_rt = table_runtime(litlen_spec)
        has_dist = data[offset]
        offset += 1
        dist_rt = None
        if has_dist:
            dist_spec, offset = _read_table(data, offset)
            dist_rt = table_runtime(dist_spec)
        return expected_len, lit_rt, dist_rt, data[offset:]
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


def _decompress_lockstep(datas: List[bytes], parsed: List) -> List[bytes]:
    from repro.dataprep.jpeg.huffman import bit_windows_array

    n = len(datas)
    expected = [p[0] for p in parsed]
    payloads = [p[3] for p in parsed]

    # Flat per-stream windows: window index = woff[s] + (pos[s] >> 3).
    wins = [bit_windows_array(p) for p in payloads]
    woff = np.zeros(n, dtype=np.uint64)
    woff[1:] = np.cumsum([len(w) for w in wins[:-1]])
    warr = np.concatenate(wins)
    total_bits = np.array([len(p) * 8 for p in payloads], dtype=np.uint64)

    # Flat LUTs with per-stream offsets and widths.  The peek uses each
    # stream's own width via ``>> (63 - bits) >> 1`` (two shifts keep
    # the shift count in 0..63 even for 0-bit reads).
    lit_luts = [np.asarray(p[1].lut, dtype=np.int64) for p in parsed]
    lit_off = np.zeros(n, dtype=np.uint64)
    lit_off[1:] = np.cumsum([lu.size for lu in lit_luts[:-1]])
    lit_flat = np.concatenate(lit_luts)
    lit_shift = np.array(
        [63 - p[1].lut_bits for p in parsed], dtype=np.uint64
    )
    # Streams without a distance table get a 2-entry invalid LUT: any
    # match attempt decodes entry 0 and the lane falls back per-stream
    # (which raises the exact "no distance table" error).
    dist_luts = [
        np.asarray(p[2].lut, dtype=np.int64)
        if p[2] is not None
        else np.zeros(2, dtype=np.int64)
        for p in parsed
    ]
    dist_off = np.zeros(n, dtype=np.uint64)
    dist_off[1:] = np.cumsum([lu.size for lu in dist_luts[:-1]])
    dist_flat = np.concatenate(dist_luts)
    dist_shift = np.array(
        [63 - (p[2].lut_bits if p[2] is not None else 1) for p in parsed],
        dtype=np.uint64,
    )

    pos = np.zeros(n, dtype=np.uint64)
    done = np.zeros(n, dtype=bool)
    failed = np.zeros(n, dtype=bool)
    t_end = np.full(n, -1, dtype=np.int64)
    prev_pos = pos.copy()
    SEVEN = np.uint64(7)
    THREE = np.uint64(3)
    ONE = np.uint64(1)
    K29 = np.uint64(29)

    def peek(width_shift: np.ndarray) -> np.ndarray:
        """Next bits of every stream at its cursor, MSB-aligned to each
        stream's width (``width_shift`` = 63 - width)."""
        win = warr[(pos >> THREE) + woff]
        return ((win << (pos & SEVEN)) >> width_shift) >> ONE

    sym_chunks: List[np.ndarray] = []
    md_chunks: List[np.ndarray] = []
    T = 0
    row = _CHUNK_ROWS  # force allocation on the first iteration
    while not done.all():
        if row == _CHUNK_ROWS:
            sym_chunks.append(np.zeros((_CHUNK_ROWS, n), dtype=np.uint16))
            md_chunks.append(np.zeros((_CHUNK_ROWS, n), dtype=np.uint32))
            row = 0
        active = ~done

        # Phase A: one litlen symbol per stream.
        entry = lit_flat[peek(lit_shift) + lit_off]
        sym = (entry >> 5) * active
        pos += (entry & 31).astype(np.uint64) * active

        # Phases B-D fire only when some lane decoded a match this
        # iteration — filtered PNG residuals are literal-heavy, so most
        # iterations skip three of the four window reads.
        ismatch = active & (sym > END_OF_BLOCK)
        if ismatch.any():
            # Phase B: length extra bits (match lanes only).
            lidx = np.minimum(np.maximum(sym - 257, 0), 28)
            failed |= ismatch & (sym - 257 > 28)
            nb = _LENGTH_EXTRA_U64[lidx] * ismatch
            length = (_LENGTH_BASE_U64[lidx] + peek(63 - nb)) * ismatch
            pos += nb

            # Phase C: distance symbol (match lanes only).
            dentry = dist_flat[peek(dist_shift) + dist_off]
            dstall = ismatch & (dentry == 0)
            dsym = ((dentry >> 5) * ismatch).astype(np.uint64)
            failed |= ismatch & (dsym > K29)
            pos += (dentry & 31).astype(np.uint64) * ismatch

            # Phase D: distance extra bits (match lanes only).
            dnb = _DIST_EXTRA_U64[np.minimum(dsym, K29)] * ismatch
            distance = _DIST_BASE_U64[np.minimum(dsym, K29)] + peek(63 - dnb)
            distance *= ismatch
            pos += dnb

            failed |= dstall
            md_chunks[-1][row] = (length << np.uint64(16)) | distance
        # else: the pre-zeroed md row already encodes "no match".

        # A consumed token that ran past its stream is an underrun.
        over = active & (pos > total_bits)
        failed |= over
        np.minimum(pos, total_bits, out=pos)

        sym_chunks[-1][row] = sym

        isend = active & (sym == END_OF_BLOCK)
        t_end[isend] = T
        done |= isend | failed
        row += 1
        T += 1
        if T % 64 == 0:
            # An invalid litlen prefix never advances its cursor; flag
            # stalled lanes so the per-stream path raises for them.
            stalled = ~done & (pos == prev_pos)
            failed |= stalled
            done |= stalled
            np.copyto(prev_pos, pos)

    sym_mat = np.concatenate(sym_chunks)[:T]
    md_mat = np.concatenate(md_chunks)[:T]

    out: List[Optional[bytes]] = [None] * n
    for s in range(n):
        if not failed[s] and t_end[s] >= 0:
            out[s] = _expand_lane(
                sym_mat[: t_end[s], s], md_mat[: t_end[s], s], expected[s]
            )
        if out[s] is None:
            # Malformed (or lock-step-inapplicable) lane: the reference
            # path reproduces the exact CodecError.
            out[s] = decompress(datas[s])
    return out  # type: ignore[return-value]


def _expand_lane(
    syms: np.ndarray, mds: np.ndarray, expected_len: int
) -> Optional[bytes]:
    """LZ77 expansion of one stream's token column; literal runs are
    emitted as single slices.  None marks a malformed token stream (the
    caller re-decodes it per-stream for the exact error)."""
    matches = np.flatnonzero(syms > END_OF_BLOCK)
    lit = syms.astype(np.uint8)
    if matches.size == 0:
        body = lit.tobytes()
        return body if len(body) == expected_len else None
    lens = (mds[matches] >> 16).tolist()
    dists = (mds[matches] & 0xFFFF).tolist()
    buf = bytearray()
    prev = 0
    for m, length, distance in zip(matches.tolist(), lens, dists):
        if m > prev:
            buf += lit[prev:m].tobytes()
        produced = len(buf)
        if (
            produced + length > expected_len
            or distance == 0
            or distance > produced
        ):
            return None
        start = produced - distance
        if distance >= length:
            buf += buf[start : start + length]
        else:
            seg = bytes(buf[start:])
            reps = -(-length // distance)
            buf += (seg * reps)[:length]
        prev = m + 1
    if prev < syms.size:
        buf += lit[prev:].tobytes()
    return bytes(buf) if len(buf) == expected_len else None


def decompress_reference(data: bytes) -> bytes:
    """Symbol-at-a-time :func:`decompress` (the executable spec)."""
    try:
        return _decompress_checked_reference(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


def _decompress_checked(data: bytes) -> bytes:
    """Table-driven decode: one LUT probe per Huffman symbol against a
    64-bit window cursor, match copies via slices (cyclic tiling for the
    overlapping case).  Same outputs as the reference loop on well-formed
    streams; malformed streams always surface as CodecError."""
    (expected_len,) = struct.unpack_from("<I", data, 0)
    offset = 4
    litlen_spec, offset = _read_table(data, offset)
    lit_rt = table_runtime(litlen_spec)
    llut = lit_rt.lut
    lw = lit_rt.lut_bits
    lmask = (1 << lw) - 1
    has_dist = data[offset]
    offset += 1
    dlut = None
    dw = dmask = 0
    if has_dist:
        dist_spec, offset = _read_table(data, offset)
        dist_rt = table_runtime(dist_spec)
        dlut = dist_rt.lut
        dw = dist_rt.lut_bits
        dmask = (1 << dw) - 1
    payload = data[offset:]
    windows = bit_windows(payload)
    total_bits = len(payload) * 8

    out = bytearray()
    append = out.append
    pos = 0
    win = windows[0]
    s0 = s = 64
    try:
        while True:
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = llut[(win >> (s - lw)) & lmask]
            if not entry:
                raise CodecError("invalid Huffman code in bitstream")
            s -= entry & 31
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
            symbol = entry >> 5
            if symbol < END_OF_BLOCK:
                append(symbol)
                continue
            if symbol == END_OF_BLOCK:
                break
            idx = symbol - 257
            if idx >= 29:
                raise CodecError(f"invalid length symbol {symbol}")
            nb = _LENGTH_EXTRA[idx]
            if nb:
                s -= nb
                length = _LENGTH_BASE[idx] + ((win >> s) & ((1 << nb) - 1))
            else:
                length = _LENGTH_BASE[idx]
            if dlut is None:
                raise CodecError("match emitted but no distance table present")
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = dlut[(win >> (s - dw)) & dmask]
            if not entry:
                raise CodecError("invalid Huffman code in bitstream")
            s -= entry & 31
            dsym = entry >> 5
            if dsym >= 30:
                raise CodecError(f"invalid distance symbol {dsym}")
            nb = _DIST_EXTRA[dsym]
            if nb:
                s -= nb
                distance = _DIST_BASE[dsym] + ((win >> s) & ((1 << nb) - 1))
            else:
                distance = _DIST_BASE[dsym]
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
            produced = len(out)
            if produced + length > expected_len:
                raise CodecError("decompressed beyond the declared length")
            if distance > produced:
                raise CodecError(
                    f"match distance {distance} beyond output "
                    f"({produced} bytes)"
                )
            start = produced - distance
            if distance >= length:
                out += out[start : start + length]
            else:
                seg = bytes(out[start:])
                reps = -(-length // distance)
                out += (seg * reps)[:length]
    except IndexError:
        raise CodecError("bitstream underrun") from None
    if len(out) != expected_len:
        raise CodecError(
            f"declared {expected_len} bytes, reconstructed {len(out)}"
        )
    return bytes(out)


def _decompress_checked_reference(data: bytes) -> bytes:
    (expected_len,) = struct.unpack_from("<I", data, 0)
    offset = 4
    litlen_spec, offset = _read_table(data, offset)
    litlen = HuffmanTable(litlen_spec)
    has_dist = data[offset]
    offset += 1
    dist = None
    if has_dist:
        dist_spec, offset = _read_table(data, offset)
        dist = HuffmanTable(dist_spec)
    reader = BitReader(data[offset:])

    tokens: List[Token] = []
    produced = 0
    while True:
        symbol = litlen.read_symbol(reader)
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            tokens.append(symbol)
            produced += 1
            continue
        idx = symbol - 257
        if not 0 <= idx < len(_LENGTH_BASE):
            raise CodecError(f"invalid length symbol {symbol}")
        length = _LENGTH_BASE[idx] + reader.read(_LENGTH_EXTRA[idx])
        if dist is None:
            raise CodecError("match emitted but no distance table present")
        dsym = dist.read_symbol(reader)
        if not 0 <= dsym < len(_DIST_BASE):
            raise CodecError(f"invalid distance symbol {dsym}")
        distance = _DIST_BASE[dsym] + reader.read(_DIST_EXTRA[dsym])
        tokens.append(Match(length, distance))
        produced += length
        if produced > expected_len:
            raise CodecError("decompressed beyond the declared length")
    out = expand(tokens)
    if len(out) != expected_len:
        raise CodecError(
            f"declared {expected_len} bytes, reconstructed {len(out)}"
        )
    return out
