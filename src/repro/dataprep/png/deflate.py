"""Deflate-style entropy coding of the LZ77 token stream.

Uses the real deflate alphabets — literal/length symbols 0..285 with the
standard extra-bit tables, distance symbols 0..29 — and canonical
Huffman codes built from the actual stream statistics ("dynamic Huffman"
mode), shipped as (BITS, HUFFVAL) specs in the header.  The Huffman
machinery is shared with the JPEG codec.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.errors import CodecError
from repro.dataprep.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanTable,
    TableSpec,
    bit_windows,
    pack_bits,
    table_runtime,
)
from repro.dataprep.png.lz77 import Match, Token, expand, tokenize

END_OF_BLOCK = 256

# RFC 1951 §3.2.5: length codes 257..285.
_LENGTH_BASE = (
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51,
    59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
)
_LENGTH_EXTRA = (
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4,
    4, 5, 5, 5, 5, 0,
)

# Distance codes 0..29.
_DIST_BASE = (
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385,
    513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
)
_DIST_EXTRA = (
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10,
    10, 11, 11, 12, 12, 13, 13,
)


def _code_for(value: int, bases: Tuple[int, ...], extras: Tuple[int, ...]) -> Tuple[int, int, int]:
    """(code index, extra-bit count, extra-bit value) for a length or
    distance."""
    for idx in range(len(bases) - 1, -1, -1):
        if value >= bases[idx]:
            return idx, extras[idx], value - bases[idx]
    raise CodecError(f"value {value} below alphabet base")


def length_symbol(length: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(length, _LENGTH_BASE, _LENGTH_EXTRA)
    return 257 + idx, nbits, extra


def distance_symbol(distance: int) -> Tuple[int, int, int]:
    idx, nbits, extra = _code_for(distance, _DIST_BASE, _DIST_EXTRA)
    return idx, nbits, extra


def _write_table(spec: TableSpec, out: bytearray) -> None:
    out.extend(struct.pack("<16H", *spec.counts))
    out.extend(struct.pack("<H", len(spec.symbols)))
    out.extend(struct.pack(f"<{len(spec.symbols)}H", *spec.symbols))


def _read_table(buf: bytes, offset: int) -> Tuple[TableSpec, int]:
    counts = struct.unpack_from("<16H", buf, offset)
    offset += 32
    (nsym,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    symbols = struct.unpack_from(f"<{nsym}H", buf, offset)
    offset += 2 * nsym
    return TableSpec(tuple(counts), tuple(symbols)), offset


# Array mirrors of the alphabet tables for the vectorized encoder.
_LENGTH_BASE_ARR = np.array(_LENGTH_BASE, dtype=np.int64)
_LENGTH_EXTRA_ARR = np.array(_LENGTH_EXTRA, dtype=np.int64)
_DIST_BASE_ARR = np.array(_DIST_BASE, dtype=np.int64)
_DIST_EXTRA_ARR = np.array(_DIST_EXTRA, dtype=np.int64)


def compress(data: bytes, max_chain: int = 32) -> bytes:
    """LZ77 + dynamic canonical Huffman, one block.

    Vectorized encoder: length/distance symbols come from
    ``np.searchsorted`` over the alphabet bases, symbol frequencies from
    ``np.bincount``, and the payload from one :func:`pack_bits` call over
    the per-field ``(value, width)`` arrays scattered into stream order.
    Byte-identical to :func:`compress_reference`.
    """
    tokens = tokenize(data, max_chain=max_chain)

    lit_vals: List[int] = []
    match_lens: List[int] = []
    match_dists: List[int] = []
    flags: List[bool] = []
    for token in tokens:
        if isinstance(token, Match):
            flags.append(True)
            match_lens.append(token.length)
            match_dists.append(token.distance)
        else:
            flags.append(False)
            lit_vals.append(token)

    flags_arr = np.array(flags, dtype=bool)
    lit_arr = np.array(lit_vals, dtype=np.int64)
    len_arr = np.array(match_lens, dtype=np.int64)
    dist_arr = np.array(match_dists, dtype=np.int64)

    lidx = np.searchsorted(_LENGTH_BASE_ARR, len_arr, side="right") - 1
    lsym = lidx + 257
    lbits = _LENGTH_EXTRA_ARR[lidx]
    lextra = len_arr - _LENGTH_BASE_ARR[lidx]
    didx = np.searchsorted(_DIST_BASE_ARR, dist_arr, side="right") - 1
    dbits = _DIST_EXTRA_ARR[didx]
    dextra = dist_arr - _DIST_BASE_ARR[didx]

    litlen_counts = np.bincount(
        np.concatenate([lit_arr, lsym]), minlength=END_OF_BLOCK + 1
    )
    litlen_counts[END_OF_BLOCK] += 1
    litlen_freq = {
        int(s): int(c) for s, c in enumerate(litlen_counts) if c
    }
    dist_freq = {
        int(s): int(c) for s, c in enumerate(np.bincount(didx)) if c
    }

    litlen = HuffmanTable.from_frequencies(litlen_freq)
    dist = HuffmanTable.from_frequencies(dist_freq) if dist_freq else None

    lit_rt = table_runtime(litlen.spec)
    nfields = np.where(flags_arr, 4, 1)
    total = int(nfields.sum()) + 1  # + END_OF_BLOCK
    values = np.zeros(total, dtype=np.int64)
    widths = np.zeros(total, dtype=np.int64)
    starts = np.zeros(len(tokens), dtype=np.int64)
    if len(tokens) > 1:
        np.cumsum(nfields[:-1], out=starts[1:])
    ls = starts[~flags_arr]
    values[ls] = lit_rt.enc_code[lit_arr]
    widths[ls] = lit_rt.enc_len[lit_arr]
    if dist is not None:
        dist_rt = table_runtime(dist.spec)
        ms = starts[flags_arr]
        values[ms] = lit_rt.enc_code[lsym]
        widths[ms] = lit_rt.enc_len[lsym]
        values[ms + 1] = lextra
        widths[ms + 1] = lbits
        values[ms + 2] = dist_rt.enc_code[didx]
        widths[ms + 2] = dist_rt.enc_len[didx]
        values[ms + 3] = dextra
        widths[ms + 3] = dbits
    values[total - 1] = lit_rt.enc_code[END_OF_BLOCK]
    widths[total - 1] = lit_rt.enc_len[END_OF_BLOCK]
    payload = pack_bits(values, widths)

    out = bytearray()
    out.extend(struct.pack("<I", len(data)))
    _write_table(litlen.spec, out)
    out.append(1 if dist is not None else 0)
    if dist is not None:
        _write_table(dist.spec, out)
    out.extend(payload)
    return bytes(out)


def compress_reference(data: bytes, max_chain: int = 32) -> bytes:
    """Symbol-at-a-time :func:`compress` (the executable spec)."""
    tokens = tokenize(data, max_chain=max_chain)

    litlen_freq = {END_OF_BLOCK: 1}
    dist_freq = {}
    events: List[Tuple] = []
    for token in tokens:
        if isinstance(token, Match):
            lsym, lbits, lextra = length_symbol(token.length)
            dsym, dbits, dextra = distance_symbol(token.distance)
            litlen_freq[lsym] = litlen_freq.get(lsym, 0) + 1
            dist_freq[dsym] = dist_freq.get(dsym, 0) + 1
            events.append(("m", lsym, lbits, lextra, dsym, dbits, dextra))
        else:
            litlen_freq[token] = litlen_freq.get(token, 0) + 1
            events.append(("l", token))

    litlen = HuffmanTable.from_frequencies(litlen_freq)
    # The distance table may be empty when no matches exist.
    dist = HuffmanTable.from_frequencies(dist_freq) if dist_freq else None

    writer = BitWriter()
    for event in events:
        if event[0] == "l":
            litlen.write_symbol(writer, event[1])
        else:
            _, lsym, lbits, lextra, dsym, dbits, dextra = event
            litlen.write_symbol(writer, lsym)
            writer.write(lextra, lbits)
            assert dist is not None
            dist.write_symbol(writer, dsym)
            writer.write(dextra, dbits)
    litlen.write_symbol(writer, END_OF_BLOCK)
    payload = writer.getvalue()

    out = bytearray()
    out.extend(struct.pack("<I", len(data)))
    _write_table(litlen.spec, out)
    out.append(1 if dist is not None else 0)
    if dist is not None:
        _write_table(dist.spec, out)
    out.extend(payload)
    return bytes(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`; malformed streams raise CodecError."""
    try:
        return _decompress_checked(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


def decompress_reference(data: bytes) -> bytes:
    """Symbol-at-a-time :func:`decompress` (the executable spec)."""
    try:
        return _decompress_checked_reference(data)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, KeyError) as exc:
        raise CodecError(f"malformed deflate stream: {exc}") from exc


def _decompress_checked(data: bytes) -> bytes:
    """Table-driven decode: one LUT probe per Huffman symbol against a
    64-bit window cursor, match copies via slices (cyclic tiling for the
    overlapping case).  Same outputs as the reference loop on well-formed
    streams; malformed streams always surface as CodecError."""
    (expected_len,) = struct.unpack_from("<I", data, 0)
    offset = 4
    litlen_spec, offset = _read_table(data, offset)
    lit_rt = table_runtime(litlen_spec)
    llut = lit_rt.lut
    lw = lit_rt.lut_bits
    lmask = (1 << lw) - 1
    has_dist = data[offset]
    offset += 1
    dlut = None
    dw = dmask = 0
    if has_dist:
        dist_spec, offset = _read_table(data, offset)
        dist_rt = table_runtime(dist_spec)
        dlut = dist_rt.lut
        dw = dist_rt.lut_bits
        dmask = (1 << dw) - 1
    payload = data[offset:]
    windows = bit_windows(payload)
    total_bits = len(payload) * 8

    out = bytearray()
    append = out.append
    pos = 0
    win = windows[0]
    s0 = s = 64
    try:
        while True:
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = llut[(win >> (s - lw)) & lmask]
            if not entry:
                raise CodecError("invalid Huffman code in bitstream")
            s -= entry & 31
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
            symbol = entry >> 5
            if symbol < END_OF_BLOCK:
                append(symbol)
                continue
            if symbol == END_OF_BLOCK:
                break
            idx = symbol - 257
            if idx >= 29:
                raise CodecError(f"invalid length symbol {symbol}")
            nb = _LENGTH_EXTRA[idx]
            if nb:
                s -= nb
                length = _LENGTH_BASE[idx] + ((win >> s) & ((1 << nb) - 1))
            else:
                length = _LENGTH_BASE[idx]
            if dlut is None:
                raise CodecError("match emitted but no distance table present")
            if s < 32:
                pos += s0 - s
                win = windows[pos >> 3]
                s0 = s = 64 - (pos & 7)
            entry = dlut[(win >> (s - dw)) & dmask]
            if not entry:
                raise CodecError("invalid Huffman code in bitstream")
            s -= entry & 31
            dsym = entry >> 5
            if dsym >= 30:
                raise CodecError(f"invalid distance symbol {dsym}")
            nb = _DIST_EXTRA[dsym]
            if nb:
                s -= nb
                distance = _DIST_BASE[dsym] + ((win >> s) & ((1 << nb) - 1))
            else:
                distance = _DIST_BASE[dsym]
            if pos + s0 - s > total_bits:
                raise CodecError("bitstream underrun")
            produced = len(out)
            if produced + length > expected_len:
                raise CodecError("decompressed beyond the declared length")
            if distance > produced:
                raise CodecError(
                    f"match distance {distance} beyond output "
                    f"({produced} bytes)"
                )
            start = produced - distance
            if distance >= length:
                out += out[start : start + length]
            else:
                seg = bytes(out[start:])
                reps = -(-length // distance)
                out += (seg * reps)[:length]
    except IndexError:
        raise CodecError("bitstream underrun") from None
    if len(out) != expected_len:
        raise CodecError(
            f"declared {expected_len} bytes, reconstructed {len(out)}"
        )
    return bytes(out)


def _decompress_checked_reference(data: bytes) -> bytes:
    (expected_len,) = struct.unpack_from("<I", data, 0)
    offset = 4
    litlen_spec, offset = _read_table(data, offset)
    litlen = HuffmanTable(litlen_spec)
    has_dist = data[offset]
    offset += 1
    dist = None
    if has_dist:
        dist_spec, offset = _read_table(data, offset)
        dist = HuffmanTable(dist_spec)
    reader = BitReader(data[offset:])

    tokens: List[Token] = []
    produced = 0
    while True:
        symbol = litlen.read_symbol(reader)
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            tokens.append(symbol)
            produced += 1
            continue
        idx = symbol - 257
        if not 0 <= idx < len(_LENGTH_BASE):
            raise CodecError(f"invalid length symbol {symbol}")
        length = _LENGTH_BASE[idx] + reader.read(_LENGTH_EXTRA[idx])
        if dist is None:
            raise CodecError("match emitted but no distance table present")
        dsym = dist.read_symbol(reader)
        if not 0 <= dsym < len(_DIST_BASE):
            raise CodecError(f"invalid distance symbol {dsym}")
        distance = _DIST_BASE[dsym] + reader.read(_DIST_EXTRA[dsym])
        tokens.append(Match(length, distance))
        produced += length
        if produced > expected_len:
            raise CodecError("decompressed beyond the declared length")
    out = expand(tokens)
    if len(out) != expected_len:
        raise CodecError(
            f"declared {expected_len} bytes, reconstructed {len(out)}"
        )
    return out
