"""PNG scanline prediction filters (RFC 2083 §6).

Each scanline is transformed into residuals against a predictor; the
encoder picks the filter minimizing the sum of absolute residuals (the
standard heuristic), and the decoder reverses it exactly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import CodecError

FILTER_NONE = 0
FILTER_SUB = 1
FILTER_UP = 2
FILTER_AVERAGE = 3
FILTER_PAETH = 4

FILTER_NAMES = {
    FILTER_NONE: "none",
    FILTER_SUB: "sub",
    FILTER_UP: "up",
    FILTER_AVERAGE: "average",
    FILTER_PAETH: "paeth",
}


def _paeth_predictor(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The Paeth predictor, vectorized over a scanline (a=left, b=up,
    c=up-left), all int16."""
    p = a + b - c
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    pred = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return pred


def _shift_left(line: np.ndarray, bpp: int) -> np.ndarray:
    """The 'pixel to the left' array (zeros for the first pixel)."""
    out = np.zeros_like(line)
    out[bpp:] = line[:-bpp]
    return out


def filter_scanline(
    line: np.ndarray, prev: np.ndarray, bpp: int, method: int
) -> np.ndarray:
    """Residuals of one scanline under ``method`` (uint8 arithmetic mod
    256, as PNG specifies)."""
    line16 = line.astype(np.int16)
    prev16 = prev.astype(np.int16)
    left = _shift_left(line16, bpp)
    upleft = _shift_left(prev16, bpp)
    if method == FILTER_NONE:
        pred = np.zeros_like(line16)
    elif method == FILTER_SUB:
        pred = left
    elif method == FILTER_UP:
        pred = prev16
    elif method == FILTER_AVERAGE:
        pred = (left + prev16) // 2
    elif method == FILTER_PAETH:
        pred = _paeth_predictor(left, prev16, upleft)
    else:
        raise CodecError(f"unknown filter method {method}")
    return ((line16 - pred) % 256).astype(np.uint8)


def unfilter_scanline(
    residual: np.ndarray, prev: np.ndarray, bpp: int, method: int
) -> np.ndarray:
    """Invert :func:`filter_scanline` (sequential in x for left-dependent
    predictors, as the reconstruction is recursive)."""
    if method == FILTER_NONE:
        return residual.copy()
    if method == FILTER_UP:
        return ((residual.astype(np.int16) + prev.astype(np.int16)) % 256).astype(
            np.uint8
        )
    out = np.zeros_like(residual)
    res16 = residual.astype(np.int16)
    prev16 = prev.astype(np.int16)
    n = residual.shape[0]
    for i in range(n):
        left = int(out[i - bpp]) if i >= bpp else 0
        up = int(prev16[i])
        upleft = int(prev16[i - bpp]) if i >= bpp else 0
        if method == FILTER_SUB:
            pred = left
        elif method == FILTER_AVERAGE:
            pred = (left + up) // 2
        elif method == FILTER_PAETH:
            p = left + up - upleft
            pa, pb, pc = abs(p - left), abs(p - up), abs(p - upleft)
            if pa <= pb and pa <= pc:
                pred = left
            elif pb <= pc:
                pred = up
            else:
                pred = upleft
        else:
            raise CodecError(f"unknown filter method {method}")
        out[i] = (int(res16[i]) + pred) % 256
    return out


def choose_filter(line: np.ndarray, prev: np.ndarray, bpp: int) -> Tuple[int, np.ndarray]:
    """Pick the filter with the minimum sum of absolute residuals
    (residuals treated as signed, the libpng heuristic)."""
    best_method = FILTER_NONE
    best_score = None
    best_residual = None
    for method in FILTER_NAMES:
        residual = filter_scanline(line, prev, bpp, method)
        signed = residual.astype(np.int16)
        signed = np.where(signed > 127, 256 - signed, signed)
        score = int(np.abs(signed).sum())
        if best_score is None or score < best_score:
            best_method, best_score, best_residual = method, score, residual
    assert best_residual is not None
    return best_method, best_residual


def filter_image_reference(image: np.ndarray) -> Tuple[List[int], np.ndarray]:
    """Line-at-a-time :func:`filter_image` (the executable spec)."""
    if image.ndim != 3:
        raise CodecError(f"expected HxWxC image, got {image.shape}")
    if image.dtype != np.uint8:
        raise CodecError(f"expected uint8, got {image.dtype}")
    h, w, c = image.shape
    flat = image.reshape(h, w * c)
    methods: List[int] = []
    residuals = np.zeros_like(flat)
    prev = np.zeros(w * c, dtype=np.uint8)
    for y in range(h):
        method, residual = choose_filter(flat[y], prev, c)
        methods.append(method)
        residuals[y] = residual
        prev = flat[y]
    return methods, residuals


def filter_image(image: np.ndarray) -> Tuple[List[int], np.ndarray]:
    """Filter every scanline of an H×W×C uint8 image; returns the chosen
    per-line methods and the residual plane (H × W·C).

    All five candidate residual planes are produced for the whole image
    at once; the per-line minimum-absolute-residual choice (first
    minimum wins, matching :func:`choose_filter`'s strict-improvement
    scan order) then picks one row per line.  Output is identical to
    :func:`filter_image_reference`.
    """
    if image.ndim != 3:
        raise CodecError(f"expected HxWxC image, got {image.shape}")
    if image.dtype != np.uint8:
        raise CodecError(f"expected uint8, got {image.dtype}")
    h, w, c = image.shape
    bpp = c
    flat = image.reshape(h, w * c)
    line = flat.astype(np.int16)
    prev = np.zeros_like(line)
    prev[1:] = line[:-1]
    left = np.zeros_like(line)
    left[:, bpp:] = line[:, :-bpp]
    upleft = np.zeros_like(line)
    upleft[:, bpp:] = prev[:, :-bpp]

    candidates = np.empty((5, h, w * c), dtype=np.int16)
    candidates[FILTER_NONE] = line
    candidates[FILTER_SUB] = line - left
    candidates[FILTER_UP] = line - prev
    candidates[FILTER_AVERAGE] = line - (left + prev) // 2
    candidates[FILTER_PAETH] = line - _paeth_predictor(left, prev, upleft)
    candidates %= 256

    signed = np.where(candidates > 127, 256 - candidates, candidates)
    scores = np.abs(signed, out=signed).sum(axis=2)
    methods = np.argmin(scores, axis=0)  # first minimum, like the spec
    residuals = np.take_along_axis(
        candidates, methods[None, :, None], axis=0
    )[0].astype(np.uint8)
    return methods.tolist(), residuals


def unfilter_image(
    methods: List[int], residuals: np.ndarray, shape: Tuple[int, int, int]
) -> np.ndarray:
    """Invert :func:`filter_image`.

    NONE/UP/SUB rows invert with whole-row numpy ops (SUB is a per-lane
    cumulative sum — uint8 addition wraps mod 256 natively).  The
    left-recursive AVERAGE/PAETH rows are inherently sequential in x, so
    they run over plain Python lists, which sidesteps the per-element
    numpy scalar-indexing overhead of the reference scanline.
    """
    h, w, c = shape
    if residuals.shape != (h, w * c):
        raise CodecError(
            f"residual plane {residuals.shape} does not match image {shape}"
        )
    if len(methods) != h:
        raise CodecError("one filter method per scanline required")
    stride = w * c
    out = np.zeros((h, stride), dtype=np.uint8)
    zero_row = np.zeros(stride, dtype=np.uint8)
    for y in range(h):
        method = methods[y]
        prev = out[y - 1] if y else zero_row
        if method == FILTER_NONE:
            out[y] = residuals[y]
        elif method == FILTER_UP:
            np.add(residuals[y], prev, out=out[y])  # uint8 wraps mod 256
        elif method == FILTER_SUB:
            lanes = residuals[y].reshape(w, c).astype(np.int32)
            np.cumsum(lanes, axis=0, out=lanes)
            lanes %= 256
            out[y] = lanes.astype(np.uint8).reshape(stride)
        elif method == FILTER_AVERAGE:
            row = residuals[y].tolist()
            prev_l = prev.tolist()
            for i in range(stride):
                left = row[i - c] if i >= c else 0
                row[i] = (row[i] + ((left + prev_l[i]) >> 1)) & 255
            out[y] = row
        elif method == FILTER_PAETH:
            row = residuals[y].tolist()
            prev_l = prev.tolist()
            for i in range(stride):
                if i >= c:
                    a = row[i - c]
                    cc = prev_l[i - c]
                else:
                    a = 0
                    cc = 0
                b = prev_l[i]
                p = a + b - cc
                pa = abs(p - a)
                pb = abs(p - b)
                pc = abs(p - cc)
                if pa <= pb and pa <= pc:
                    pred = a
                elif pb <= pc:
                    pred = b
                else:
                    pred = cc
                row[i] = (row[i] + pred) & 255
            out[y] = row
        else:
            raise CodecError(f"unknown filter method {method}")
    return out.reshape(h, w, c)
