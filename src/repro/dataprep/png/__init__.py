"""A functional PNG-equivalent lossless codec.

§VII-A notes TrainBox can host existing decoding accelerators for other
formats — PNG among them.  This package provides a complete lossless
image codec with PNG's algorithmic structure, so the preparation stack
can serve datasets stored losslessly:

* per-scanline prediction filters (None/Sub/Up/Average/Paeth) with the
  minimum-sum-of-absolute-differences heuristic
  (:mod:`repro.dataprep.png.filters`);
* LZ77 back-reference matching over a sliding window
  (:mod:`repro.dataprep.png.lz77`);
* canonical Huffman entropy coding of the literal/length and distance
  streams, reusing the JPEG codec's Huffman machinery
  (:mod:`repro.dataprep.png.deflate`);
* a small container (:mod:`repro.dataprep.png.codec`).

Unlike the JPEG codec this one is exactly lossless — a property test
pins bit-perfect round trips on arbitrary images.
"""

from repro.dataprep.png.codec import PngCodec, decode, encode

__all__ = ["PngCodec", "decode", "encode"]
