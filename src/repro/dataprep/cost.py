"""The data-preparation cost model.

Every operation prices itself as an :class:`OpCost`: host-CPU cycles,
bytes in/out, and memory traffic.  The constants below are calibrated so
that the end-to-end pipelines reproduce the paper's measured host-resource
profile (§III-C):

* the **image pipeline** on 256×256 JPEG inputs costs ≈3.9 M CPU
  cycles/sample, which makes a 48-core 2.5 GHz host saturate at ≈30.5 K
  samples/s — i.e. Inception-v4 (1 669 samples/s per accelerator) stops
  scaling at ≈18.3 accelerators and RNN-S (12 022 samples/s) needs
  ≈100.7× a DGX-2's cores at the 256-accelerator target, both numbers the
  paper reports;
* the **audio pipeline** on 6.96 s Librispeech-like streams costs ≈13.6 M
  cycles/sample, which puts Transformer-SR's saturation at ≈4.4
  accelerators (§VI-D).

Device profiles express how much faster an FPGA or GPU engine runs each
*kind* of operation than one host core.  FPGA numbers reflect deeply
pipelined streaming engines (the paper reports a dedicated decoder at
59.6% of an XCVU9P's LUTs); the GPU profile encodes the paper's §V-B
argument: no good parallel Huffman decode, so near-CPU decode speed, but
high throughput on regular elementwise work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import DataprepError
from repro import units

# ---------------------------------------------------------------------------
# Op kinds. Every concrete op declares one; device profiles key off them.
# ---------------------------------------------------------------------------

OP_KINDS = (
    "load",          # moving bytes without transforming them
    "decode",        # JPEG entropy decode + IDCT (irregular, serial)
    "crop",
    "mirror",
    "noise",
    "cast",
    "spectrogram",   # STFT: framing + windowing + many small FFTs
    "mel",           # mel filter-bank projection
    "masking",       # SpecAugment-style time/frequency masking
    "norm",          # per-feature normalization
)


@dataclass(frozen=True)
class OpCost:
    """Cost of applying one operation to one sample.

    Attributes:
        name: instance label ("decode_jpeg", "random_crop", ...).
        kind: one of :data:`OP_KINDS`; selects the device speedup.
        cpu_cycles: cycles one host core spends on the op for one sample.
        bytes_in / bytes_out: payload sizes around the op.
        mem_traffic: bytes of memory-system traffic when the op runs on
            the host CPU (reads + writes, after cache absorption).
    """

    name: str
    kind: str
    cpu_cycles: float
    bytes_in: float
    bytes_out: float
    mem_traffic: float

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise DataprepError(f"unknown op kind: {self.kind}")
        for attr in ("cpu_cycles", "bytes_in", "bytes_out", "mem_traffic"):
            if getattr(self, attr) < 0:
                raise DataprepError(f"{self.name}.{attr} must be >= 0")


#: Fraction of raw read+write traffic that reaches DRAM when an op runs on
#: the CPU (the rest is absorbed by caches).  Calibrated so the image
#: pipeline's formatting+augmentation share of memory bandwidth lands at
#: the paper's ≈59% (Figure 11a).
CACHE_ABSORPTION = 0.5


def cpu_mem_traffic(bytes_in: float, bytes_out: float) -> float:
    """Memory traffic for a CPU-executed op: read input + write output,
    discounted by cache absorption."""
    return (bytes_in + bytes_out) * CACHE_ABSORPTION


@dataclass(frozen=True)
class PipelineCost:
    """Aggregate cost of a pipeline applied to one sample."""

    ops: Tuple[OpCost, ...]

    @property
    def cpu_cycles(self) -> float:
        return sum(op.cpu_cycles for op in self.ops)

    @property
    def bytes_in(self) -> float:
        return self.ops[0].bytes_in if self.ops else 0.0

    @property
    def bytes_out(self) -> float:
        return self.ops[-1].bytes_out if self.ops else 0.0

    @property
    def mem_traffic(self) -> float:
        return sum(op.mem_traffic for op in self.ops)

    def by_stage(self) -> Dict[str, OpCost]:
        return {op.name: op for op in self.ops}

    def split(self, kinds: Iterable[str]) -> "PipelineCost":
        """Sub-pipeline containing only ops of the given kinds."""
        wanted = set(kinds)
        return PipelineCost(tuple(op for op in self.ops if op.kind in wanted))


# ---------------------------------------------------------------------------
# Device profiles.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceProfile:
    """Per-op-kind throughput of a preparation device, expressed as a
    speedup over a single host core at ``reference_frequency``."""

    name: str
    speedups: Mapping[str, float]
    reference_frequency: float = 2.5 * units.GHZ

    def speedup(self, kind: str) -> float:
        if kind not in OP_KINDS:
            raise DataprepError(f"unknown op kind: {kind}")
        try:
            return self.speedups[kind]
        except KeyError:
            raise DataprepError(
                f"profile {self.name} has no speedup for kind {kind!r}"
            ) from None

    def effective_cycles(self, cost: PipelineCost) -> float:
        """Reference-core cycles this device needs for one sample."""
        return sum(op.cpu_cycles / self.speedup(op.kind) for op in cost.ops)

    def sample_rate(self, cost: PipelineCost) -> float:
        """Samples/second one device of this profile sustains."""
        cycles = self.effective_cycles(cost)
        if cycles <= 0:
            return math.inf
        return self.reference_frequency / cycles


#: One host core: the identity profile.
CPU_PROFILE = DeviceProfile(
    name="cpu-core",
    speedups={kind: 1.0 for kind in OP_KINDS},
)

#: FPGA streaming engines.  Decode is fully pipelined in hardware (Table
#: II dedicates most of the part to it); elementwise ops stream at line
#: rate; FFT-heavy audio ops gain less but still far outrun a core
#: (the paper cites FPGAs beating GPUs on many small FFTs, §V-B).
FPGA_PROFILE = DeviceProfile(
    name="fpga",
    speedups={
        "load": 100.0,
        "decode": 80.0,
        "crop": 100.0,
        "mirror": 100.0,
        "noise": 100.0,
        "cast": 100.0,
        "spectrogram": 30.0,
        "mel": 25.0,
        "masking": 20.0,
        "norm": 40.0,
    },
)

#: A GPU used for preparation: excellent at regular elementwise work,
#: nearly serial on Huffman-bound decode, and launch/memory-bound on the
#: many small FFTs of the STFT (§V-B cites FPGAs beating GPUs there).
GPU_PROFILE = DeviceProfile(
    name="gpu",
    speedups={
        "load": 100.0,
        "decode": 5.0,
        "crop": 60.0,
        "mirror": 60.0,
        "noise": 60.0,
        "cast": 60.0,
        "spectrogram": 6.0,
        "mel": 30.0,
        "masking": 30.0,
        "norm": 30.0,
    },
)

_PROFILES = {p.name: p for p in (CPU_PROFILE, FPGA_PROFILE, GPU_PROFILE)}


def profile_by_name(name: str) -> DeviceProfile:
    """Look up a registered device profile ("cpu-core", "fpga", "gpu")."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise DataprepError(
            f"unknown device profile {name!r}; known: {sorted(_PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Calibrated per-unit cycle constants used by the concrete ops.
# ---------------------------------------------------------------------------

#: JPEG decode cycles per output pixel (entropy decode + dequant + IDCT +
#: color conversion).  38 cycles/px × 65 536 px ≈ 2.5 M cycles for a
#: 256×256 input.
DECODE_CYCLES_PER_PIXEL = 38.0

#: PNG decode cycles per output pixel (inflate + unfilter; no transform
#: stage, so cheaper than JPEG per pixel — but PNG payloads are larger).
PNG_DECODE_CYCLES_PER_PIXEL = 22.0

#: Crop is an address-strided copy.
CROP_CYCLES_PER_PIXEL = 0.6

#: Mirror is a reversed copy.
MIRROR_CYCLES_PER_PIXEL = 1.0

#: Gaussian noise needs an RNG draw + add + clip per subpixel.
NOISE_CYCLES_PER_PIXEL = 16.0

#: uint8→float32 widening with normalization.
CAST_CYCLES_PER_PIXEL = 11.0

#: STFT cycles per (frame × n_fft × log2(n_fft)) butterfly unit.
STFT_CYCLES_PER_BUTTERFLY = 2.8

#: Mel projection cycles per (frame × mel bin) with a sparse filter bank
#: (~8 FFT bins contribute per mel bin → ~8 MACs each).
MEL_CYCLES_PER_BIN = 34.0

#: Masking touches every (frame × mel) cell once.
MASK_CYCLES_PER_BIN = 9.0

#: Normalization: two passes (stats + apply) over every cell.
NORM_CYCLES_PER_BIN = 9.0
